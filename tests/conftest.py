"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import strategies as st

from repro.core.demand import FlowDemand
from repro.graph.builders import diamond, fujita_fig2_bridge, fujita_fig4, parallel_links
from repro.graph.network import FlowNetwork

# --------------------------------------------------------------------------
# plain fixtures
# --------------------------------------------------------------------------


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic RNG for tests that need randomness."""
    return np.random.default_rng(12345)


@pytest.fixture(autouse=True)
def _ledger_in_tmpdir(monkeypatch, tmp_path_factory):
    """Keep CLI run-ledger writes out of the working tree.

    The ``compute`` / ``sweep`` subcommands append to ``.repro/runs``
    by default; tests drive ``main()`` from the repo checkout, so point
    the default at a throwaway directory instead.
    """
    monkeypatch.setenv(
        "REPRO_LEDGER_DIR", str(tmp_path_factory.mktemp("ledger"))
    )


@pytest.fixture
def diamond_net() -> FlowNetwork:
    return diamond()


@pytest.fixture
def fig2_net() -> FlowNetwork:
    return fujita_fig2_bridge()


@pytest.fixture
def fig4_net() -> FlowNetwork:
    return fujita_fig4()


@pytest.fixture
def par3_net() -> FlowNetwork:
    return parallel_links(3, 1, 0.1)


@pytest.fixture
def unit_demand() -> FlowDemand:
    return FlowDemand("s", "t", 1)


@pytest.fixture
def two_demand() -> FlowDemand:
    return FlowDemand("s", "t", 2)


# --------------------------------------------------------------------------
# network construction helpers (importable by tests via conftest fixtures)
# --------------------------------------------------------------------------


def build_network(links, *, undirected_indices=()):
    """Construct a FlowNetwork from (tail, head, cap, p) tuples."""
    net = FlowNetwork()
    for i, (tail, head, cap, p) in enumerate(links):
        net.add_link(tail, head, cap, p, directed=i not in set(undirected_indices))
    return net


@pytest.fixture
def make_network():
    return build_network


def random_small_network(seed: int, *, max_links: int = 9, max_capacity: int = 3):
    """A small random connected network for exhaustive cross-validation.

    Unlike the library generators this one is intentionally scrappy:
    arbitrary directions, parallel links, dead ends — the adversarial
    shapes exact algorithms must all agree on.
    """
    rng = np.random.default_rng(seed)
    num_nodes = int(rng.integers(3, 6))
    nodes = ["s", "t"] + [f"v{i}" for i in range(num_nodes - 2)]
    num_links = int(rng.integers(num_nodes - 1, max_links + 1))
    net = FlowNetwork(name=f"rand{seed}")
    net.add_nodes(nodes)
    # spanning structure first so the graph is connected
    order = list(rng.permutation(len(nodes)))
    for pos in range(1, len(nodes)):
        a = nodes[order[int(rng.integers(0, pos))]]
        b = nodes[order[pos]]
        if rng.random() < 0.5:
            a, b = b, a
        net.add_link(a, b, int(rng.integers(1, max_capacity + 1)), float(rng.uniform(0.05, 0.4)))
    while net.num_links < num_links:
        i = int(rng.integers(0, len(nodes)))
        j = int(rng.integers(0, len(nodes) - 1))
        if j >= i:
            j += 1
        net.add_link(
            nodes[i], nodes[j], int(rng.integers(1, max_capacity + 1)), float(rng.uniform(0.05, 0.4))
        )
    return net


@pytest.fixture
def make_random_network():
    return random_small_network


# --------------------------------------------------------------------------
# hypothesis strategies
# --------------------------------------------------------------------------

failure_probabilities = st.floats(
    min_value=0.0, max_value=0.95, allow_nan=False, allow_infinity=False
)
capacities = st.integers(min_value=1, max_value=4)


@st.composite
def small_networks(draw, min_nodes=3, max_nodes=5, max_links=8):
    """Hypothesis strategy: small connected random networks with s and t."""
    num_nodes = draw(st.integers(min_nodes, max_nodes))
    nodes = ["s", "t"] + [f"v{i}" for i in range(num_nodes - 2)]
    net = FlowNetwork()
    net.add_nodes(nodes)
    # spanning tree over a drawn permutation
    perm = draw(st.permutations(list(range(num_nodes))))
    for pos in range(1, num_nodes):
        parent_pos = draw(st.integers(0, pos - 1))
        a, b = nodes[perm[parent_pos]], nodes[perm[pos]]
        if draw(st.booleans()):
            a, b = b, a
        net.add_link(a, b, draw(capacities), draw(failure_probabilities))
    extra = draw(st.integers(0, max_links - (num_nodes - 1)))
    for _ in range(extra):
        i = draw(st.integers(0, num_nodes - 1))
        j = draw(st.integers(0, num_nodes - 1))
        if i == j:
            continue
        net.add_link(nodes[i], nodes[j], draw(capacities), draw(failure_probabilities))
    return net


@st.composite
def probability_vectors(draw, min_size=1, max_size=8):
    size = draw(st.integers(min_size, max_size))
    return [draw(failure_probabilities) for _ in range(size)]
