"""Unit tests for peers and churn models."""

import pytest

from repro.exceptions import OverlayError
from repro.p2p.churn import ChildChurnModel, EndpointChurnModel, StaticChurnModel
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers


class TestPeer:
    def test_availability(self):
        peer = Peer("p0", mean_session=300, mean_offline=100)
        assert peer.availability == pytest.approx(0.75)
        assert peer.failure_probability == pytest.approx(0.25)

    def test_always_on_peer(self):
        peer = Peer("p0", mean_session=100, mean_offline=0)
        assert peer.availability == 1.0

    def test_reserved_id_rejected(self):
        with pytest.raises(OverlayError):
            Peer(MEDIA_SERVER)

    def test_negative_capacity_rejected(self):
        with pytest.raises(OverlayError):
            Peer("p0", upload_capacity=-1)

    def test_bad_durations_rejected(self):
        with pytest.raises(OverlayError):
            Peer("p0", mean_session=0)
        with pytest.raises(OverlayError):
            Peer("p0", mean_offline=-1)

    def test_frozen(self):
        peer = Peer("p0")
        with pytest.raises(AttributeError):
            peer.upload_capacity = 5


class TestMakePeers:
    def test_count_and_names(self):
        peers = make_peers(3)
        assert [p.peer_id for p in peers] == ["p0", "p1", "p2"]

    def test_homogeneous_parameters(self):
        peers = make_peers(2, upload_capacity=7, mean_session=10, mean_offline=5)
        assert all(p.upload_capacity == 7 for p in peers)
        assert all(p.availability == pytest.approx(2 / 3) for p in peers)

    def test_empty(self):
        assert make_peers(0) == []

    def test_negative_rejected(self):
        with pytest.raises(OverlayError):
            make_peers(-1)


class TestChurnModels:
    def setup_method(self):
        self.peer_a = Peer("a", mean_session=300, mean_offline=100)  # avail 0.75
        self.peer_b = Peer("b", mean_session=100, mean_offline=100)  # avail 0.5

    def test_child_model_uses_head(self):
        model = ChildChurnModel()
        assert model.link_failure_probability(self.peer_a, self.peer_b) == pytest.approx(0.5)

    def test_child_model_server_tail(self):
        model = ChildChurnModel()
        assert model.link_failure_probability(None, self.peer_b) == pytest.approx(0.5)

    def test_endpoint_model_combines(self):
        model = EndpointChurnModel()
        p = model.link_failure_probability(self.peer_a, self.peer_b)
        assert p == pytest.approx(1 - 0.75 * 0.5)

    def test_endpoint_model_server_is_sure(self):
        model = EndpointChurnModel()
        assert model.link_failure_probability(None, self.peer_b) == pytest.approx(0.5)

    def test_server_to_server(self):
        assert EndpointChurnModel().link_failure_probability(None, None) == 0.0

    def test_static_model(self):
        model = StaticChurnModel(0.2)
        assert model.link_failure_probability(self.peer_a, self.peer_b) == 0.2

    def test_static_model_validation(self):
        with pytest.raises(ValueError):
            StaticChurnModel(1.0)

    def test_peer_failure_probability_helper(self):
        model = ChildChurnModel()
        assert model.peer_failure_probability(None) == 0.0
        assert model.peer_failure_probability(self.peer_b) == pytest.approx(0.5)
