"""Unit tests for the end-to-end scenario driver."""

import pytest

from repro.exceptions import OverlayError
from repro.p2p.peer import make_peers
from repro.p2p.scenario import build_overlay, run_scenario


class TestBuildOverlay:
    def test_families(self):
        peers = make_peers(6, upload_capacity=6)
        for family in ("single-tree", "multi-tree", "mesh"):
            overlay = build_overlay(family, peers, num_stripes=2)
            assert overlay.edges

    def test_unknown_family(self):
        with pytest.raises(OverlayError):
            build_overlay("hypercube", make_peers(4))


class TestRunScenario:
    def test_multi_tree_scenario(self):
        result = run_scenario(
            "multi-tree",
            num_peers=6,
            num_stripes=2,
            seed=0,
            num_samples=1500,
            peer_level_trials=500,
        )
        assert 0.0 <= result.exact_reliability <= 1.0
        assert result.estimate_interval[0] <= result.estimate <= result.estimate_interval[1]
        assert result.peer_level is not None
        assert result.subscriber == "p5"

    def test_estimate_brackets_exact(self):
        result = run_scenario(
            "single-tree", num_peers=6, num_stripes=1, seed=1, num_samples=8000,
            peer_level_trials=None,
        )
        low, high = result.estimate_interval
        assert low - 0.02 <= result.exact_reliability <= high + 0.02

    def test_peer_level_skippable(self):
        result = run_scenario(
            "mesh", num_peers=6, num_stripes=2, seed=2, num_samples=500, peer_level_trials=None
        )
        assert result.peer_level is None

    def test_explicit_subscriber(self):
        result = run_scenario(
            "single-tree",
            num_peers=6,
            num_stripes=1,
            subscriber="p0",
            seed=0,
            num_samples=500,
            peer_level_trials=None,
        )
        assert result.subscriber == "p0"

    def test_deeper_subscriber_less_reliable(self):
        shallow = run_scenario(
            "single-tree", num_peers=7, num_stripes=1, subscriber="p0",
            seed=0, num_samples=200, peer_level_trials=None,
        )
        deep = run_scenario(
            "single-tree", num_peers=7, num_stripes=1, subscriber="p6",
            seed=0, num_samples=200, peer_level_trials=None,
        )
        assert deep.exact_reliability < shallow.exact_reliability

    def test_multi_tree_beats_single_tree(self):
        """The paper's §II claim: striping over interior-disjoint trees
        improves fault tolerance for deep subscribers."""
        kwargs = dict(
            num_peers=8, num_stripes=2, seed=0, num_samples=200, peer_level_trials=None
        )
        single = run_scenario("single-tree", **kwargs)
        multi = run_scenario("multi-tree", **kwargs)
        assert multi.exact_reliability > single.exact_reliability

    def test_details_populated(self):
        result = run_scenario(
            "multi-tree", num_peers=6, num_stripes=2, seed=0, num_samples=200,
            peer_level_trials=None,
        )
        assert result.details["num_links"] > 0
