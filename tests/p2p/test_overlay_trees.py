"""Unit tests for overlays: construction, mesh, trees, conversion."""

import pytest

from repro.exceptions import OverlayError
from repro.flow.base import max_flow_value
from repro.graph.connectivity import has_directed_path
from repro.p2p.churn import ChildChurnModel, StaticChurnModel
from repro.p2p.overlay import Overlay, random_mesh, to_flow_network
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.trees import multi_tree, single_tree


class TestOverlay:
    def test_duplicate_peer_ids_rejected(self):
        with pytest.raises(OverlayError):
            Overlay(peers=[Peer("a"), Peer("a")], num_stripes=1)

    def test_zero_stripes_rejected(self):
        with pytest.raises(OverlayError):
            Overlay(peers=[Peer("a")], num_stripes=0)

    def test_add_edge_validates_stripe(self):
        overlay = Overlay(peers=[Peer("a")], num_stripes=1)
        with pytest.raises(OverlayError):
            overlay.add_edge(MEDIA_SERVER, "a", 1)

    def test_add_edge_validates_peer(self):
        overlay = Overlay(peers=[Peer("a")], num_stripes=1)
        with pytest.raises(OverlayError):
            overlay.add_edge(MEDIA_SERVER, "zzz", 0)

    def test_server_never_receives(self):
        overlay = Overlay(peers=[Peer("a")], num_stripes=1)
        with pytest.raises(OverlayError):
            overlay.add_edge("a", MEDIA_SERVER, 0)

    def test_out_degree(self):
        overlay = Overlay(peers=[Peer("a"), Peer("b")], num_stripes=2)
        overlay.add_edge("a", "b", 0)
        overlay.add_edge("a", "b", 1)
        assert overlay.out_degree("a") == 2

    def test_upload_violations(self):
        overlay = Overlay(peers=[Peer("a", upload_capacity=1), Peer("b")], num_stripes=2)
        overlay.add_edge("a", "b", 0)
        overlay.add_edge("a", "b", 1)
        assert overlay.upload_violations() == ["a"]

    def test_peer_lookup_server(self):
        overlay = Overlay(peers=[Peer("a")], num_stripes=1)
        assert overlay.peer(MEDIA_SERVER) is None


class TestSingleTree:
    def test_every_peer_reached(self):
        peers = make_peers(7)
        overlay = single_tree(peers, fanout=2)
        net = to_flow_network(overlay, StaticChurnModel(0.1))
        for peer in peers:
            assert has_directed_path(net, MEDIA_SERVER, peer.peer_id)

    def test_edge_count(self):
        # n peers, k stripes over the same tree: n*k edges
        overlay = single_tree(make_peers(5), fanout=2, num_stripes=3)
        assert len(overlay.edges) == 15

    def test_fanout_respected(self):
        overlay = single_tree(make_peers(7), fanout=2)
        for peer in overlay.peers:
            children = [e for e in overlay.edges if e.tail == peer.peer_id]
            assert len(children) <= 2

    def test_rejects_bad_fanout(self):
        with pytest.raises(OverlayError):
            single_tree(make_peers(3), fanout=0)


class TestMultiTree:
    def test_interior_disjoint(self):
        """The SplitStream property: each peer interior in <= 1 stripe."""
        overlay = multi_tree(make_peers(9), num_stripes=3)
        for peer in overlay.peers:
            assert len(overlay.interior_stripes(peer.peer_id)) <= 1

    def test_every_peer_gets_every_stripe(self):
        overlay = multi_tree(make_peers(8), num_stripes=2)
        for stripe in range(2):
            providers = {e.head for e in overlay.stripe_edges(stripe)}
            for peer in overlay.peers:
                assert peer.peer_id in providers

    def test_demand_feasible_from_server(self):
        overlay = multi_tree(make_peers(8), num_stripes=2)
        net = to_flow_network(overlay, StaticChurnModel(0.1))
        for peer in overlay.peers:
            assert max_flow_value(net, MEDIA_SERVER, peer.peer_id) >= 2

    def test_needs_enough_peers(self):
        with pytest.raises(OverlayError):
            multi_tree(make_peers(2), num_stripes=3)

    def test_single_stripe_reduces_to_tree(self):
        overlay = multi_tree(make_peers(5), num_stripes=1)
        assert len(overlay.edges) == 5


class TestRandomMesh:
    def test_every_peer_receives_every_stripe(self):
        overlay = random_mesh(make_peers(10, upload_capacity=6), num_stripes=2, seed=0)
        for stripe in range(2):
            receivers = {e.head for e in overlay.stripe_edges(stripe)}
            assert receivers == {p.peer_id for p in overlay.peers}

    def test_deterministic(self):
        peers = make_peers(8, upload_capacity=6)
        a = random_mesh(peers, num_stripes=2, seed=4)
        b = random_mesh(peers, num_stripes=2, seed=4)
        assert [(e.tail, e.head, e.stripe) for e in a.edges] == [
            (e.tail, e.head, e.stripe) for e in b.edges
        ]

    def test_acyclic_order_based(self):
        overlay = random_mesh(make_peers(10, upload_capacity=6), num_stripes=1, seed=1)
        position = {p.peer_id: i for i, p in enumerate(overlay.peers)}
        position[MEDIA_SERVER] = -1
        for edge in overlay.edges:
            assert position[edge.tail] < position[edge.head]

    def test_empty_rejected(self):
        with pytest.raises(OverlayError):
            random_mesh([], num_stripes=1)

    def test_budget_respected_or_server_fallback(self):
        overlay = random_mesh(make_peers(12, upload_capacity=1), num_stripes=2, seed=2)
        assert overlay.upload_violations() == []


class TestToFlowNetwork:
    def test_link_per_edge(self):
        overlay = single_tree(make_peers(4), fanout=2, num_stripes=2)
        net = to_flow_network(overlay, StaticChurnModel(0.3))
        assert net.num_links == len(overlay.edges)
        assert all(p == pytest.approx(0.3) for p in net.failure_probabilities())

    def test_child_churn_probabilities(self):
        peers = [Peer("a", mean_session=100, mean_offline=100)]
        overlay = Overlay(peers=peers, num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "a", 0)
        net = to_flow_network(overlay, ChildChurnModel())
        assert net.link(0).failure_probability == pytest.approx(0.5)

    def test_nodes_include_server(self):
        overlay = single_tree(make_peers(3))
        net = to_flow_network(overlay, StaticChurnModel())
        assert net.has_node(MEDIA_SERVER)
