"""Unit tests for exact peer-level reliability (node splitting)."""

import pytest

from repro.exceptions import OverlayError
from repro.p2p.exact import exact_peer_level_reliability
from repro.p2p.peer import make_peers
from repro.p2p.simulation import peer_level_reliability
from repro.p2p.streaming import delivery_paths
from repro.p2p.trees import multi_tree, single_tree
from repro.p2p.overlay import random_mesh


class TestExactPeerLevel:
    def test_single_tree_closed_form(self):
        peers = make_peers(7, mean_session=300, mean_offline=100)  # avail 0.75
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        exact = exact_peer_level_reliability(overlay, "p6", 1)
        relays = delivery_paths(overlay, "p6")[0].relay_peers
        assert exact.value == pytest.approx(0.75 ** len(relays))

    def test_matches_simulator_single_tree(self):
        peers = make_peers(7, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        exact = exact_peer_level_reliability(overlay, "p6", 1)
        sim = peer_level_reliability(overlay, "p6", 1, num_trials=30_000, seed=0)
        assert sim == pytest.approx(exact.value, abs=0.01)

    def test_matches_simulator_multi_tree(self):
        peers = make_peers(8, mean_session=300, mean_offline=100, upload_capacity=8)
        overlay = multi_tree(peers, num_stripes=2)
        exact = exact_peer_level_reliability(overlay, "p7", 2)
        sim = peer_level_reliability(overlay, "p7", 2, num_trials=30_000, seed=1)
        assert sim == pytest.approx(exact.value, abs=0.01)

    def test_matches_simulator_mesh(self):
        peers = make_peers(8, mean_session=200, mean_offline=100, upload_capacity=6)
        overlay = random_mesh(peers, num_stripes=1, providers_per_stripe=2, seed=2)
        exact = exact_peer_level_reliability(overlay, "p7", 1)
        sim = peer_level_reliability(overlay, "p7", 1, num_trials=30_000, seed=3)
        assert sim == pytest.approx(exact.value, abs=0.01)

    def test_subscriber_churn_toggle(self):
        peers = make_peers(6, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        pinned = exact_peer_level_reliability(overlay, "p5", 1)
        churny = exact_peer_level_reliability(
            overlay, "p5", 1, include_subscriber_churn=True
        )
        assert churny.value == pytest.approx(pinned.value * 0.75)

    def test_correlation_vs_independent_links(self):
        """Two stripes over one tree: correlated (peer-level) reliability
        strictly exceeds the independent-link value — now proven exactly
        instead of statistically."""
        from repro.core.api import compute_reliability
        from repro.core.demand import FlowDemand
        from repro.p2p.churn import ChildChurnModel
        from repro.p2p.overlay import to_flow_network
        from repro.p2p.peer import MEDIA_SERVER

        peers = make_peers(6, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=2)
        independent = compute_reliability(
            to_flow_network(overlay, ChildChurnModel()),
            demand=FlowDemand(MEDIA_SERVER, "p5", 2),
        ).value
        correlated = exact_peer_level_reliability(overlay, "p5", 2).value
        assert correlated > independent

    def test_reliable_peers_give_one(self):
        peers = make_peers(6, mean_offline=0)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        assert exact_peer_level_reliability(overlay, "p5", 1).value == 1.0

    def test_method_forwarding(self):
        peers = make_peers(6, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        auto = exact_peer_level_reliability(overlay, "p5", 1)
        naive = exact_peer_level_reliability(overlay, "p5", 1, method="naive")
        assert naive.value == pytest.approx(auto.value, abs=1e-10)
        assert naive.method == "naive+nodesplit"

    def test_validation(self):
        peers = make_peers(4)
        overlay = single_tree(peers)
        with pytest.raises(OverlayError):
            exact_peer_level_reliability(overlay, "p3", 0)
        with pytest.raises(OverlayError):
            exact_peer_level_reliability(overlay, "nope", 1)
