"""Unit tests for the treebone hybrid and redundant-provider mesh."""

import pytest

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.exceptions import OverlayError
from repro.p2p.churn import ChildChurnModel, StaticChurnModel
from repro.p2p.overlay import random_mesh, to_flow_network
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.scenario import run_scenario
from repro.p2p.streaming import schedule_report
from repro.p2p.trees import single_tree, treebone


class TestTreebone:
    def test_every_peer_served(self):
        overlay = treebone(make_peers(10, upload_capacity=8), seed=0)
        assert schedule_report(overlay).unreached == ()

    def test_backbone_is_stable_core(self):
        peers = [
            Peer("stable0", mean_session=1000, upload_capacity=8),
            Peer("stable1", mean_session=900, upload_capacity=8),
            Peer("flaky0", mean_session=10, upload_capacity=8),
            Peer("flaky1", mean_session=10, upload_capacity=8),
            Peer("flaky2", mean_session=10, upload_capacity=8),
        ]
        overlay = treebone(peers, backbone_fraction=0.4, seed=1)
        forwarders = {e.tail for e in overlay.edges if e.tail != MEDIA_SERVER}
        assert forwarders <= {"stable0", "stable1"}

    def test_auxiliary_links_add_redundancy(self):
        peers = make_peers(10, upload_capacity=10)
        plain = single_tree(peers, fanout=2)
        hybrid = treebone(peers, backbone_fraction=0.5, auxiliary_per_peer=1, seed=2)
        # hybrid has strictly more delivery edges
        assert len(hybrid.edges) > len(plain.edges)

    def test_hybrid_beats_plain_tree_reliability(self):
        peers = make_peers(8, mean_session=120, mean_offline=60, upload_capacity=10)
        demand = FlowDemand(MEDIA_SERVER, "p7", 1)
        plain_net = to_flow_network(single_tree(peers, fanout=2), ChildChurnModel())
        hybrid_net = to_flow_network(
            treebone(peers, backbone_fraction=0.5, auxiliary_per_peer=2, seed=3),
            ChildChurnModel(),
        )
        plain = compute_reliability(plain_net, demand=demand).value
        hybrid = compute_reliability(hybrid_net, demand=demand).value
        assert hybrid > plain

    def test_deterministic(self):
        peers = make_peers(8, upload_capacity=8)
        a = treebone(peers, seed=5)
        b = treebone(peers, seed=5)
        assert [(e.tail, e.head, e.stripe) for e in a.edges] == [
            (e.tail, e.head, e.stripe) for e in b.edges
        ]

    def test_validation(self):
        with pytest.raises(OverlayError):
            treebone([])
        with pytest.raises(OverlayError):
            treebone(make_peers(4), backbone_fraction=0.0)
        with pytest.raises(OverlayError):
            treebone(make_peers(4), fanout=0)

    def test_scenario_family(self):
        result = run_scenario(
            "treebone",
            num_peers=8,
            num_stripes=1,
            upload_capacity=8,
            seed=0,
            num_samples=500,
            peer_level_trials=None,
        )
        assert 0 < result.exact_reliability <= 1


class TestRedundantMesh:
    def test_two_providers_create_extra_edges(self):
        peers = make_peers(10, upload_capacity=8)
        single = random_mesh(peers, num_stripes=1, providers_per_stripe=1, seed=0)
        double = random_mesh(peers, num_stripes=1, providers_per_stripe=2, seed=0)
        assert len(double.edges) > len(single.edges)

    def test_redundancy_improves_reliability(self):
        peers = make_peers(10, mean_session=120, mean_offline=60, upload_capacity=8)
        demand = FlowDemand(MEDIA_SERVER, "p9", 1)
        values = {}
        for providers in (1, 2):
            overlay = random_mesh(
                peers, num_stripes=1, providers_per_stripe=providers, seed=1
            )
            net = to_flow_network(overlay, ChildChurnModel())
            values[providers] = compute_reliability(net, demand=demand).value
        assert values[2] > values[1]

    def test_budget_still_respected(self):
        peers = make_peers(12, upload_capacity=2)
        overlay = random_mesh(peers, num_stripes=2, providers_per_stripe=2, seed=2)
        assert overlay.upload_violations() == []

    def test_validation(self):
        with pytest.raises(OverlayError):
            random_mesh(make_peers(4), providers_per_stripe=0)

    def test_default_unchanged(self):
        # providers_per_stripe=1 keeps the original single-provider form:
        # every peer has exactly one provider per stripe
        peers = make_peers(8, upload_capacity=8)
        overlay = random_mesh(peers, num_stripes=2, seed=3)
        for stripe in range(2):
            heads = [e.head for e in overlay.stripe_edges(stripe)]
            assert len(heads) == len(set(heads))
