"""Unit tests for overlay repair."""

import pytest

from repro.exceptions import EstimationError
from repro.p2p.overlay import Overlay
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.repair import repair_overlay, repaired_reliability
from repro.p2p.simulation import peer_level_reliability
from repro.p2p.streaming import delivery_paths, schedule_report
from repro.p2p.trees import multi_tree, single_tree


class TestRepairOverlay:
    def test_no_departures_preserves_delivery(self):
        overlay = single_tree(make_peers(7, upload_capacity=4), fanout=2)
        repaired = repair_overlay(overlay, [])
        report = schedule_report(repaired)
        assert report.unreached == ()

    def test_orphans_reattached(self):
        # p0 is the root child; killing it orphans its whole subtree
        overlay = single_tree(make_peers(7, upload_capacity=6), fanout=2)
        repaired = repair_overlay(overlay, ["p0"])
        report = schedule_report(repaired)
        assert report.unreached == ()
        assert all(p.peer_id != "p0" for p in repaired.peers)

    def test_offline_peers_carry_nothing(self):
        overlay = single_tree(make_peers(7, upload_capacity=6), fanout=2)
        repaired = repair_overlay(overlay, ["p1", "p2"])
        for edge in repaired.edges:
            assert edge.tail not in ("p1", "p2")
            assert edge.head not in ("p1", "p2")

    def test_capacity_respected_during_repair(self):
        overlay = single_tree(make_peers(7, upload_capacity=2), fanout=2)
        repaired = repair_overlay(overlay, ["p0"])
        assert repaired.upload_violations() == []

    def test_no_capacity_no_repair(self):
        # the dead peer is mid-chain; the server's only slot is still
        # occupied by root, and root itself has no upload budget.
        peers = [
            Peer("root", upload_capacity=0),
            Peer("mid", upload_capacity=1),
            Peer("leaf", upload_capacity=0),
        ]
        overlay = Overlay(peers=peers, num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "root", 0)
        overlay.add_edge("root", "mid", 0)
        overlay.add_edge("mid", "leaf", 0)
        repaired = repair_overlay(overlay, ["mid"])
        assert (0, "leaf") in schedule_report(repaired).unreached

    def test_server_reuses_freed_slot(self):
        # killing the server's own child frees a server slot: the orphan
        # below it gets adopted by the server, no fallback needed.
        peers = [Peer("root", upload_capacity=1), Peer("leaf", upload_capacity=0)]
        overlay = Overlay(peers=peers, num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "root", 0)
        overlay.add_edge("root", "leaf", 0)
        repaired = repair_overlay(overlay, ["root"])
        assert schedule_report(repaired).unreached == ()

    def test_server_fallback_rescues(self):
        peers = [
            Peer("root", upload_capacity=0),
            Peer("mid", upload_capacity=1),
            Peer("leaf", upload_capacity=0),
        ]
        overlay = Overlay(peers=peers, num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "root", 0)
        overlay.add_edge("root", "mid", 0)
        overlay.add_edge("mid", "leaf", 0)
        repaired = repair_overlay(overlay, ["mid"], server_fallback=True)
        assert schedule_report(repaired).unreached == ()

    def test_multi_tree_repair_keeps_all_stripes(self):
        overlay = multi_tree(make_peers(8, upload_capacity=8), num_stripes=2)
        repaired = repair_overlay(overlay, ["p0"])
        paths = delivery_paths(repaired, "p7")
        assert set(paths) == {0, 1}

    def test_cascaded_adoption(self):
        # killing the single relay forces a chain of adoptions
        overlay = single_tree(make_peers(5, upload_capacity=4), fanout=1)
        repaired = repair_overlay(overlay, ["p0"])
        assert schedule_report(repaired).unreached == ()


class TestRepairedReliability:
    def test_repair_never_hurts(self):
        peers = make_peers(8, mean_session=120, mean_offline=60, upload_capacity=8)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        without = peer_level_reliability(overlay, "p7", 1, num_trials=1500, seed=4)
        with_repair = repaired_reliability(overlay, "p7", 1, num_trials=1500, seed=4)
        assert with_repair >= without - 0.02

    def test_repair_helps_deep_subscribers_substantially(self):
        peers = make_peers(8, mean_session=120, mean_offline=120, upload_capacity=8)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        without = peer_level_reliability(overlay, "p7", 1, num_trials=1500, seed=0)
        with_repair = repaired_reliability(overlay, "p7", 1, num_trials=1500, seed=0)
        assert with_repair > without + 0.1

    def test_server_fallback_gives_full_reliability(self):
        peers = make_peers(6, mean_session=60, mean_offline=60, upload_capacity=6)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        value = repaired_reliability(
            overlay, "p5", 1, num_trials=400, seed=1, server_fallback=True
        )
        assert value == 1.0

    def test_deterministic(self):
        peers = make_peers(6, upload_capacity=6)
        overlay = multi_tree(peers, num_stripes=2)
        a = repaired_reliability(overlay, "p5", 2, num_trials=300, seed=9)
        b = repaired_reliability(overlay, "p5", 2, num_trials=300, seed=9)
        assert a == b

    def test_validation(self):
        overlay = single_tree(make_peers(3))
        with pytest.raises(EstimationError):
            repaired_reliability(overlay, "p2", 1, num_trials=0)
