"""Unit tests for delivery paths, schedule auditing and the simulators."""

import pytest

from repro.exceptions import EstimationError, OverlayError
from repro.p2p.metrics import summarize
from repro.p2p.overlay import Overlay
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.simulation import StreamingSimulator, peer_level_reliability
from repro.p2p.streaming import delivery_paths, schedule_report, stripe_depth
from repro.p2p.trees import multi_tree, single_tree


class TestDeliveryPaths:
    def test_tree_paths(self):
        overlay = single_tree(make_peers(7), fanout=2)
        paths = delivery_paths(overlay, "p6")
        assert set(paths) == {0}
        path = paths[0]
        assert path.edges[0].tail == MEDIA_SERVER
        assert path.edges[-1].head == "p6"

    def test_multi_tree_paths_cover_all_stripes(self):
        overlay = multi_tree(make_peers(8), num_stripes=2)
        paths = delivery_paths(overlay, "p5")
        assert set(paths) == {0, 1}

    def test_relay_peers(self):
        overlay = single_tree(make_peers(7), fanout=2)
        path = delivery_paths(overlay, "p6")[0]
        assert path.relay_peers == tuple(e.head for e in path.edges[:-1])

    def test_ambiguous_provider_rejected(self):
        overlay = Overlay(peers=[Peer("a"), Peer("b")], num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "a", 0)
        overlay.add_edge(MEDIA_SERVER, "b", 0)
        overlay.add_edge("a", "b", 0)  # second provider for b
        with pytest.raises(OverlayError):
            delivery_paths(overlay, "b")

    def test_unreached_peer_rejected(self):
        overlay = Overlay(peers=[Peer("a")], num_stripes=1)
        with pytest.raises(OverlayError):
            delivery_paths(overlay, "a")


class TestStripeDepth:
    def test_binary_tree_depths(self):
        overlay = single_tree(make_peers(7), fanout=2)
        depth = stripe_depth(overlay, 0)
        assert depth["p0"] == 1
        assert depth["p1"] == 2 and depth["p2"] == 2
        assert depth["p6"] == 3

    def test_server_excluded(self):
        overlay = single_tree(make_peers(3))
        assert MEDIA_SERVER not in stripe_depth(overlay, 0)


class TestScheduleReport:
    def test_healthy_multi_tree(self):
        overlay = multi_tree(make_peers(8, upload_capacity=8), num_stripes=2)
        report = schedule_report(overlay)
        assert report.fully_schedulable
        assert report.unreached == ()
        assert report.max_depth >= 1

    def test_capacity_violation_detected(self):
        overlay = single_tree(make_peers(7, upload_capacity=1), fanout=2)
        report = schedule_report(overlay)
        assert not report.fully_schedulable
        assert report.upload_violations

    def test_unreached_detected(self):
        overlay = Overlay(peers=[Peer("a"), Peer("b")], num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "a", 0)
        report = schedule_report(overlay)
        assert (0, "b") in report.unreached


class TestPeerLevelReliability:
    def test_deterministic(self):
        overlay = multi_tree(make_peers(6), num_stripes=2)
        a = peer_level_reliability(overlay, "p5", 2, num_trials=300, seed=9)
        b = peer_level_reliability(overlay, "p5", 2, num_trials=300, seed=9)
        assert a == b

    def test_perfect_peers_give_one(self):
        peers = make_peers(6, mean_offline=0)  # availability 1
        overlay = multi_tree(peers, num_stripes=2)
        assert peer_level_reliability(overlay, "p5", 2, num_trials=50, seed=0) == 1.0

    def test_in_unit_interval(self):
        overlay = single_tree(make_peers(6), fanout=2, num_stripes=1)
        value = peer_level_reliability(overlay, "p5", 1, num_trials=500, seed=3)
        assert 0.0 <= value <= 1.0

    def test_trials_validated(self):
        overlay = single_tree(make_peers(3))
        with pytest.raises(EstimationError):
            peer_level_reliability(overlay, "p2", 1, num_trials=0)

    def test_subscriber_churn_toggle(self):
        overlay = single_tree(make_peers(6), fanout=2, num_stripes=1)
        lenient = peer_level_reliability(overlay, "p5", 1, num_trials=800, seed=1)
        strict = peer_level_reliability(
            overlay, "p5", 1, num_trials=800, seed=1, require_subscriber_online=True
        )
        assert strict <= lenient


class TestStreamingSimulator:
    def test_no_churn_full_continuity(self):
        peers = make_peers(6, mean_session=1e9, mean_offline=1)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        sim = StreamingSimulator(overlay)
        out = sim.run("p5", horizon=50, seed=0)
        assert out.continuity_index == pytest.approx(1.0)

    def test_churn_reduces_continuity(self):
        peers = make_peers(6, mean_session=20, mean_offline=20)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        sim = StreamingSimulator(overlay)
        out = sim.run("p5", horizon=400, seed=0)
        assert 0.0 < out.continuity_index < 1.0

    def test_deterministic(self):
        peers = make_peers(6, mean_session=30, mean_offline=10)
        overlay = multi_tree(peers, num_stripes=2)
        sim = StreamingSimulator(overlay)
        a = sim.run("p5", horizon=120, seed=4)
        b = sim.run("p5", horizon=120, seed=4)
        assert a.chunks_received == b.chunks_received

    def test_expected_chunk_count(self):
        overlay = single_tree(make_peers(3), num_stripes=2)
        sim = StreamingSimulator(overlay, chunk_interval=1.0)
        out = sim.run("p2", horizon=30, seed=0)
        assert out.chunks_expected == 60

    def test_per_stripe_breakdown(self):
        overlay = multi_tree(make_peers(6, mean_session=1e9), num_stripes=2)
        out = StreamingSimulator(overlay).run("p5", horizon=20, seed=0)
        assert sum(out.per_stripe_received) == out.chunks_received

    def test_parameter_validation(self):
        overlay = single_tree(make_peers(3))
        with pytest.raises(EstimationError):
            StreamingSimulator(overlay, chunk_interval=0)


class TestMetrics:
    def test_summary(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s.mean == pytest.approx(2.0)
        assert s.count == 3
        assert s.minimum == 1.0 and s.maximum == 3.0
        assert s.std == pytest.approx(1.0)
        assert s.stderr == pytest.approx(1.0 / 3**0.5)

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0 and s.stderr == 0.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])


class TestLatencyMetrics:
    def test_startup_delay_equals_path_depth_times_hop_delay(self):
        peers = make_peers(7, mean_session=1e9, mean_offline=1)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        sim = StreamingSimulator(overlay, hop_delay=0.1)
        out = sim.run("p6", horizon=20, seed=0)
        from repro.p2p.streaming import delivery_paths

        hops = delivery_paths(overlay, "p6")[0].hops
        assert out.startup_delay == pytest.approx(hops * 0.1)

    def test_mean_delay_constant_without_churn(self):
        peers = make_peers(7, mean_session=1e9, mean_offline=1)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        sim = StreamingSimulator(overlay, hop_delay=0.05)
        out = sim.run("p6", horizon=20, seed=0)
        assert out.mean_delivery_delay == pytest.approx(out.startup_delay)

    def test_no_delivery_means_no_metrics(self):
        overlay = Overlay(peers=[Peer("a")], num_stripes=1)
        overlay.add_edge(MEDIA_SERVER, "a", 0)
        # subscriber is a, but give it an unreachable stripe structure by
        # using a fresh overlay whose subscriber never receives: easiest is
        # a subscriber with no incoming edges
        lonely = Overlay(peers=[Peer("a"), Peer("b")], num_stripes=1)
        lonely.add_edge(MEDIA_SERVER, "a", 0)
        out = StreamingSimulator(lonely).run("b", horizon=10, seed=0)
        assert out.chunks_received == 0
        assert out.startup_delay is None
        assert out.mean_delivery_delay is None

    def test_deeper_subscriber_larger_startup(self):
        peers = make_peers(7, mean_session=1e9, mean_offline=1)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        sim = StreamingSimulator(overlay, hop_delay=0.1)
        shallow = sim.run("p0", horizon=20, seed=0)
        deep = sim.run("p6", horizon=20, seed=0)
        assert deep.startup_delay > shallow.startup_delay
