"""Property suite for the rare-event engine.

Two contracts, pinned across seeds and topologies:

* **agreement** — on every small fixture the exact value (naive /
  bottleneck) lies inside the estimator's reported confidence interval,
  and homogeneous spectrum weights collapse to the Poisson-binomial
  failure tail;
* **replayability** — same seed + inputs reproduce the estimate
  bit-for-bit, value *and* details, for both variants.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.rare import (
    destruction_spectrum,
    permutation_montecarlo_reliability,
    rare_reliability,
    sample_failure_orders,
    splitting_reliability,
)
from repro.core.stratified import poisson_binomial
from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    parallel_links,
)

SEEDS = [0, 7, 23, 101]

#: Exact engines accumulate in a different order than the estimator's
#: analytic conditioning; degenerate (zero-width) intervals can differ
#: from the exact value by float rounding alone.
_ULP_SLACK = 1e-9

#: (name, network factory, demand) — every small fixture with an exact
#: answer cheap enough to recompute per case.
FIXTURES = [
    ("diamond", lambda: diamond(), FlowDemand("s", "t", 1)),
    ("fig2", lambda: fujita_fig2_bridge(), FlowDemand("s", "t", 1)),
    ("fig4", lambda: fujita_fig4(), FlowDemand("s", "t", 2)),
    ("par3", lambda: parallel_links(3, capacity=1, failure_probability=0.2),
     FlowDemand("s", "t", 1)),
]


@pytest.mark.parametrize("name,factory,demand", FIXTURES)
@pytest.mark.parametrize("seed", SEEDS)
def test_permutation_interval_contains_exact(name, factory, demand, seed):
    net = factory()
    exact = naive_reliability(net, demand).value
    est = permutation_montecarlo_reliability(net, demand, num_samples=3000, seed=seed)
    assert est.low - _ULP_SLACK <= exact <= est.high + _ULP_SLACK, (
        name, seed, exact, est,
    )


@pytest.mark.parametrize("name,factory,demand", FIXTURES)
@pytest.mark.parametrize("seed", SEEDS[:2])
def test_splitting_interval_contains_exact(name, factory, demand, seed):
    net = factory()
    exact = naive_reliability(net, demand).value
    est = splitting_reliability(net, demand, num_samples=1200, seed=seed)
    assert est.low - _ULP_SLACK <= exact <= est.high + _ULP_SLACK, (
        name, seed, exact, est,
    )


@pytest.mark.parametrize("variant", ["permutation", "splitting"])
@pytest.mark.parametrize("seed", SEEDS)
def test_replay_bit_identical(variant, seed):
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    kwargs = dict(variant=variant, num_samples=500, seed=seed)
    a = rare_reliability(net, demand, **kwargs)
    b = rare_reliability(net, demand, **kwargs)
    assert a.value == b.value
    assert (a.low, a.high, a.num_samples, a.hits) == (b.low, b.high, b.num_samples, b.hits)
    assert a.details == b.details


def test_agreement_against_bottleneck_engine():
    """Cross-check against the paper's exact engine, not just naive."""
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    exact = bottleneck_reliability(net, demand).value
    est = permutation_montecarlo_reliability(net, demand, num_samples=4000, seed=13)
    assert est.low <= exact <= est.high


# -- hypothesis: spectrum invariants ---------------------------------------


@settings(max_examples=30, deadline=None)
@given(
    num_links=st.integers(min_value=1, max_value=10),
    batch=st.integers(min_value=1, max_value=40),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_failure_orders_are_permutations(num_links, batch, seed):
    rng = np.random.default_rng(seed)
    orders = sample_failure_orders(num_links, batch, rng)
    assert orders.shape == (batch, num_links)
    expected = np.arange(num_links)
    assert np.array_equal(np.sort(orders, axis=1), np.tile(expected, (batch, 1)))


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**32 - 1),
    rate=st.integers(min_value=1, max_value=3),
)
def test_spectrum_sums_to_one_and_critical_monotone(seed, rate):
    """The spectrum is a probability distribution over critical numbers,
    and no critical number can undercut the min-cut cardinality."""
    net = fujita_fig4()
    demand = FlowDemand("s", "t", rate)
    spec = destruction_spectrum(net, demand, num_permutations=150, seed=seed)
    pmf = spec.pmf()
    assert pmf.sum() == pytest.approx(1.0)
    assert np.all(pmf >= 0.0)
    cdf = spec.cdf()
    assert np.all(np.diff(cdf) >= -1e-12)
    # Higher demand -> earlier deaths: the cdf for rate r dominates the
    # cdf for rate r' < r pointwise (same seed = same permutations).
    if rate > 1:
        easier = destruction_spectrum(
            net, FlowDemand("s", "t", rate - 1), num_permutations=150, seed=seed
        )
        assert np.all(spec.cdf() >= easier.cdf() - 1e-12)


@settings(max_examples=15, deadline=None)
@given(
    p=st.floats(min_value=1e-6, max_value=0.9),
    seed=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_homogeneous_weights_equal_poisson_binomial_tail(p, seed):
    """With identical link probabilities the general IS-weight formula
    must agree with the Poisson-binomial failure-tail lookup — the two
    code paths compute the same conditional probability."""
    from repro.core.rare import (
        _failure_tail,
        _log_binomials,
        _spectrum_weights,
    )

    m = 6
    rng = np.random.default_rng(seed)
    orders = sample_failure_orders(m, 25, rng)
    criticals = rng.integers(1, m + 2, size=25)
    probs = np.full(m, p)
    tail = _failure_tail(probs)
    assert tail is not None
    fast = _spectrum_weights(
        orders, criticals, probs, failure_tail=tail, log_binom=_log_binomials(m)
    )
    general = _spectrum_weights(
        orders, criticals, probs, failure_tail=None, log_binom=_log_binomials(m)
    )
    np.testing.assert_allclose(general, fast, rtol=1e-9, atol=1e-300)


@settings(max_examples=20, deadline=None)
@given(
    probs=st.lists(
        st.floats(min_value=0.0, max_value=1.0), min_size=1, max_size=8
    )
)
def test_failure_tail_matches_poisson_binomial(probs):
    """tail[b] = P(#failed >= b) derived from the alive-count DP."""
    from repro.core.rare import _failure_tail

    arr = np.full(len(probs), probs[0])  # homogeneous by construction
    tail = _failure_tail(arr)
    assert tail is not None
    alive = poisson_binomial(arr)
    m = len(arr)
    for b in range(m + 2):
        expected = float(alive[: m - b + 1].sum()) if b <= m else 0.0
        assert tail[b] == pytest.approx(expected, abs=1e-12)
    assert tail[0] == pytest.approx(1.0)
    assert np.all(np.diff(tail) <= 1e-12)  # monotone non-increasing


def test_exact_value_on_series_min_cut_one():
    """One critical link: the permutation estimate is *exact* for any
    sample count, because every order's weight integrates the same
    analytic tail (variance comes only from the spectrum, which is
    degenerate here)."""
    net = parallel_links(1, capacity=2, failure_probability=0.3)
    demand = FlowDemand("s", "t", 1)
    est = permutation_montecarlo_reliability(net, demand, num_samples=50, seed=0)
    assert est.value == pytest.approx(0.7, abs=1e-12)
    assert est.details["relative_error"] == pytest.approx(0.0, abs=1e-12)
    assert math.isclose(est.details["unreliability"], 0.3, rel_tol=1e-12)
