"""Property: engine masks are bit-for-bit worker-count invariant.

The bit-identity argument (sound pruning + certain-negative screens ⇒
every variant computes the ground-truth realization masks) must hold on
*arbitrary* bottlenecked instances, not just the paper's figures.  Each
seed builds a random two-sided network and demands identical ``uint64``
mask arrays across ``workers ∈ {1, 2, 4}``, with and without screens,
plus the reliability values the arrays imply.
"""

import numpy as np
import pytest

from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.engine import build_realization_arrays
from repro.graph.cuts import find_bottleneck
from repro.graph.generators import bottlenecked_network

WORKERS = (1, 2, 4)


def _instance(seed: int):
    net = bottlenecked_network(
        source_side_links=5,
        sink_side_links=4,
        num_bottlenecks=2,
        demand=2,
        seed=seed,
    )
    split = find_bottleneck(net, "s", "t", max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    assignments = enumerate_assignments(capacities, 2)
    return net, split, assignments


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 101])
def test_masks_bit_identical_across_worker_counts(seed):
    net, split, assignments = _instance(seed)
    source_serial = build_side_array(
        split.source_side,
        role="source",
        terminal="s",
        ports=split.source_ports,
        assignments=assignments,
        demand=2,
    )
    sink_serial = build_side_array(
        split.sink_side,
        role="sink",
        terminal="t",
        ports=split.sink_ports,
        assignments=assignments,
        demand=2,
    )
    for workers in WORKERS:
        for screen in (True, False):
            source_arr, sink_arr, _ = build_realization_arrays(
                split,
                source="s",
                sink="t",
                assignments=assignments,
                demand=2,
                screen=screen,
                workers=workers,
            )
            np.testing.assert_array_equal(
                source_serial.masks,
                source_arr.masks,
                err_msg=f"source masks diverge (seed={seed}, workers={workers}, "
                f"screen={screen})",
            )
            np.testing.assert_array_equal(
                sink_serial.masks,
                sink_arr.masks,
                err_msg=f"sink masks diverge (seed={seed}, workers={workers}, "
                f"screen={screen})",
            )


@pytest.mark.parametrize("seed", [0, 1, 7, 23, 101])
def test_reliability_worker_invariant(seed):
    net, _, _ = _instance(seed)
    demand = FlowDemand("s", "t", 2)
    serial = bottleneck_reliability(net, demand)
    for workers in WORKERS:
        engine = bottleneck_reliability(net, demand, workers=workers)
        assert engine.value == pytest.approx(serial.value, abs=1e-12), (
            f"value diverges at seed={seed}, workers={workers}"
        )


@pytest.mark.parametrize("seed", [3, 11])
def test_screen_counter_only_removes_solves(seed):
    """Screens may only subtract solves; masks already pinned above."""
    net, split, assignments = _instance(seed)
    _, _, stats_on = build_realization_arrays(
        split, source="s", sink="t", assignments=assignments, demand=2, workers=1
    )
    src_off, snk_off, stats_off = build_realization_arrays(
        split,
        source="s",
        sink="t",
        assignments=assignments,
        demand=2,
        workers=1,
        screen=False,
    )
    assert stats_off["screened_solves"] == 0
    assert stats_on["screened_solves"] >= 0
