"""Property: the incremental Gray-walk kernels are bit-identical.

The escape hatch (``incremental=``) defaults to the new path only
because these tests prove equivalence: on the paper's figures and on
random bottlenecked instances, every kernel — naive table, serial side
arrays, chunked engine across worker counts and screen settings — must
produce the *same bits* (feasibility tables, ``uint64`` realization
masks, ``ReliabilityResult.value``) with the incremental engine on as
with cold solves.  Not approximately: ``==`` on floats and arrays.
"""

import numpy as np
import pytest

from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.engine import build_realization_arrays
from repro.core.naive import feasibility_table, naive_reliability
from repro.graph.builders import fujita_fig4
from repro.graph.cuts import find_bottleneck
from repro.graph.generators import bottlenecked_network

SEEDS = [0, 1, 7, 23, 101]
WORKERS = (1, 2, 4)


def _instance(seed):
    net = bottlenecked_network(
        source_side_links=5,
        sink_side_links=4,
        num_bottlenecks=2,
        demand=2,
        seed=seed,
    )
    split = find_bottleneck(net, "s", "t", max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    assignments = enumerate_assignments(capacities, 2)
    return net, split, assignments


class TestNaiveTableBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("prune", [True, False])
    def test_tables_identical(self, seed, prune):
        net = bottlenecked_network(
            source_side_links=4, sink_side_links=3, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        cold, _ = feasibility_table(net, demand, prune=prune, incremental=False)
        warm, _ = feasibility_table(net, demand, prune=prune, incremental=True)
        np.testing.assert_array_equal(cold, warm)

    @pytest.mark.parametrize("prune", [True, False])
    def test_fig4_value_identical(self, prune):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        cold = naive_reliability(net, demand, prune=prune, incremental=False)
        warm = naive_reliability(net, demand, prune=prune, incremental=True)
        assert warm.value == cold.value
        assert warm.details["incremental"] is True
        assert cold.details["incremental"] is False


class TestSideArrayBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("prune", [True, False])
    def test_serial_masks_identical(self, seed, prune):
        _, split, assignments = _instance(seed)
        for role, side, terminal, ports in (
            ("source", split.source_side, "s", split.source_ports),
            ("sink", split.sink_side, "t", split.sink_ports),
        ):
            cold = build_side_array(
                side, role=role, terminal=terminal, ports=ports,
                assignments=assignments, demand=2, prune=prune, incremental=False,
            )
            warm = build_side_array(
                side, role=role, terminal=terminal, ports=ports,
                assignments=assignments, demand=2, prune=prune, incremental=True,
            )
            np.testing.assert_array_equal(cold.masks, warm.masks)
            np.testing.assert_allclose(
                cold.probabilities, warm.probabilities, rtol=0, atol=0
            )


class TestEngineBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_chunked_masks_identical_across_workers_and_screens(self, seed):
        _, split, assignments = _instance(seed)
        cold_src = build_side_array(
            split.source_side, role="source", terminal="s",
            ports=split.source_ports, assignments=assignments, demand=2,
            incremental=False,
        )
        cold_snk = build_side_array(
            split.sink_side, role="sink", terminal="t",
            ports=split.sink_ports, assignments=assignments, demand=2,
            incremental=False,
        )
        for workers in WORKERS:
            for screen in (True, False):
                src, snk, stats = build_realization_arrays(
                    split, source="s", sink="t", assignments=assignments,
                    demand=2, workers=workers, screen=screen, incremental=True,
                )
                assert stats["incremental"] is True
                np.testing.assert_array_equal(cold_src.masks, src.masks)
                np.testing.assert_array_equal(cold_snk.masks, snk.masks)


class TestReliabilityValueBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_bottleneck_value_identical(self, seed):
        net, split, _ = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        cold = bottleneck_reliability(net, demand, cut=split.cut, incremental=False)
        for workers in (None, *WORKERS):
            warm = bottleneck_reliability(
                net, demand, cut=split.cut, workers=workers, incremental=True
            )
            assert warm.value == cold.value

    def test_fig4_pinned_value(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        for incremental in (False, True):
            result = bottleneck_reliability(net, demand, incremental=incremental)
            assert f"{result.value:.10f}" == "0.8426357910"


class TestObsPartition:
    def test_flow_solves_still_partition_flow_calls(self):
        """The incremental engines report their solver invocations as
        FLOW_SOLVES, so the recorder total must still equal the result's
        ``flow_calls`` exactly."""
        from repro.obs import Recorder, record

        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        for workers in (None, 2):
            recorder = Recorder()
            with record(recorder):
                result = bottleneck_reliability(
                    net, demand, workers=workers, incremental=True
                )
            totals = recorder.counter_totals()
            assert totals.get("flow_solves", 0) == result.flow_calls
