"""Property-based tests for the max-flow substrate."""

import networkx as nx
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.flow.base import get_solver, max_flow, max_flow_value
from repro.flow.decomposition import decompose
from repro.flow.mincut import min_cut_capacity
from tests.conftest import small_networks


def networkx_value(net, source="s", sink="t"):
    g = nx.DiGraph()
    g.add_nodes_from(net.nodes())
    for link in net.links():
        if link.tail == link.head:
            continue
        pairs = [(link.tail, link.head)]
        if not link.directed:
            pairs.append((link.head, link.tail))
        for u, v in pairs:
            if g.has_edge(u, v):
                g[u][v]["capacity"] += link.capacity
            else:
                g.add_edge(u, v, capacity=link.capacity)
    return nx.maximum_flow_value(g, source, sink)


class TestSolverProperties:
    @settings(max_examples=60, deadline=None)
    @given(small_networks())
    def test_all_solvers_agree_with_networkx(self, net):
        expected = networkx_value(net)
        for name in ("dinic", "edmonds_karp", "push_relabel", "capacity_scaling"):
            assert max_flow_value(net, "s", "t", solver=name) == expected, name

    @settings(max_examples=40, deadline=None)
    @given(small_networks(), st.integers(0, 6))
    def test_limit_is_min_of_limit_and_flow(self, net, limit):
        true_value = max_flow_value(net, "s", "t")
        limited = max_flow(net, "s", "t", limit=limit).value
        assert limited == min(limit, true_value)

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_duality(self, net):
        result = max_flow(net, "s", "t")
        assert min_cut_capacity(net, result) == result.value

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_flow_conservation(self, net):
        result = max_flow(net, "s", "t")
        balance = {node: 0 for node in net.nodes()}
        for index, flow in result.link_flows.items():
            link = net.link(index)
            balance[link.tail] -= flow
            balance[link.head] += flow
        for node, value in balance.items():
            if node == "s":
                assert value == -result.value
            elif node == "t":
                assert value == result.value
            else:
                assert value == 0

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_capacity_respected(self, net):
        result = max_flow(net, "s", "t")
        for index, flow in result.link_flows.items():
            link = net.link(index)
            assert abs(flow) <= link.capacity
            if link.directed:
                assert flow >= 0

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_decomposition_counts_match(self, net):
        result = max_flow(net, "s", "t")
        streams = decompose(net, result)
        assert len(streams) == result.value

    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_monotone_in_alive_set(self, net):
        """Dropping a link can never increase the max flow."""
        full = max_flow_value(net, "s", "t")
        for drop in range(min(net.num_links, 4)):
            alive = [i for i in range(net.num_links) if i != drop]
            assert max_flow_value(net, "s", "t", alive=alive) <= full
