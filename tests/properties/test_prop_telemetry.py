"""Property: the worker event spool is a faithful mirror of the trace.

The cross-process aggregation contract (ISSUE PR 7): when a chunked
build runs under a :func:`repro.obs.telemetry_session`, every chunk —
in-process or in a pool worker — spools its counters as a
``worker-*.jsonl`` stream carrying *exactly* what the parent replays
onto its ``engine.chunk`` span.  Summing the spool files must therefore
reproduce the parent recorder's ``flow_solves`` / ``screened_solves`` /
``array_entries_built`` totals **bit-exactly**, at every worker count —
(Solve *counts* are not worker-count invariant — each chunk cold-starts
its own incremental walk, so more chunks mean more solves.  What is
invariant is the reliability value, and that each run's spool mirrors
that run's trace.)
"""

import pytest

from repro import obs
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.parallel import parallel_naive_reliability
from repro.graph.builders import fujita_fig4
from repro.graph.generators import bottlenecked_network
from repro.obs import merge_spool, telemetry_session

WORKERS = (1, 2, 4)

#: Counters every engine chunk spools; the heart of the merge invariant.
SPOOLED = ("flow_solves", "screened_solves", "array_entries_built")


def _instances():
    yield "fig4", fujita_fig4(), FlowDemand("s", "t", 2)
    net = bottlenecked_network(
        source_side_links=5,
        sink_side_links=4,
        num_bottlenecks=2,
        demand=2,
        seed=23,
    )
    yield "random-23", net, FlowDemand("s", "t", 2)


def _run(net, demand, workers, tmp_path, tag):
    spool = tmp_path / f"ev-{tag}-w{workers}"
    with telemetry_session(spool, meta={"case": tag, "workers": workers}) as rec:
        result = bottleneck_reliability(net, demand, workers=workers)
    return result, rec.counter_totals(), merge_spool(spool)


@pytest.mark.parametrize("tag_net_demand", list(_instances()), ids=lambda t: t[0])
def test_merged_spool_equals_replayed_totals(tag_net_demand, tmp_path):
    tag, net, demand = tag_net_demand
    reference = None
    for workers in WORKERS:
        result, totals, summary = _run(net, demand, workers, tmp_path, tag)

        # 1. Merge invariant: worker spool totals == parent replayed
        #    totals, bit-exact (== on ints, no approx).
        for name in SPOOLED:
            assert summary.worker_totals.get(name, 0) == totals.get(name, 0), (
                f"{tag} workers={workers}: spool/{name} "
                f"{summary.worker_totals.get(name)} != trace {totals.get(name)}"
            )

        # 2. The parent stream finished cleanly and its final snapshot
        #    agrees with the in-memory recorder.
        assert summary.parent_finished
        for name in SPOOLED:
            assert summary.parent_totals.get(name, 0) == totals.get(name, 0)

        # 3. flow_solves partitions the result's solve accounting.
        assert totals.get("flow_solves", 0) == result.flow_calls

        # 4. The reliability value is worker-count invariant (solve
        #    counts are not: each chunk cold-starts its own walk).
        if reference is None:
            reference = result.value
        else:
            assert result.value == reference, f"{tag} workers={workers}"


def test_parallel_naive_chunks_spool_their_solves(tmp_path):
    """The naive-parallel engine honours the same spool contract."""
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    reference = None
    for workers in WORKERS:
        spool = tmp_path / f"ev-naive-w{workers}"
        with telemetry_session(spool) as rec:
            result = parallel_naive_reliability(net, demand, workers=workers)
        totals = rec.counter_totals()
        summary = merge_spool(spool)
        assert summary.worker_totals.get("flow_solves", 0) == totals.get(
            "flow_solves", 0
        )
        assert totals.get("flow_solves", 0) == result.flow_calls
        if reference is None:
            reference = result.value
        else:
            assert result.value == reference


def test_session_totals_match_sessionless_run():
    """Telemetry must observe, never perturb: counters are unchanged."""
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    with obs.record() as rec:
        bare = bottleneck_reliability(net, demand, workers=2)
    bare_totals = rec.counter_totals()

    import tempfile

    with tempfile.TemporaryDirectory() as directory:
        with telemetry_session(directory) as rec:
            traced = bottleneck_reliability(net, demand, workers=2)
        traced_totals = rec.counter_totals()

    assert traced.value == bare.value
    assert {k: v for k, v in traced_totals.items() if not k.startswith("solver.")} == {
        k: v for k, v in bare_totals.items() if not k.startswith("solver.")
    }
