"""Property-based tests for the P2P substrate."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.p2p.churn import ChildChurnModel, EndpointChurnModel, StaticChurnModel
from repro.p2p.overlay import random_mesh, to_flow_network
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.streaming import schedule_report, stripe_depth
from repro.p2p.trees import multi_tree, single_tree, treebone

peer_counts = st.integers(min_value=2, max_value=12)
stripe_counts = st.integers(min_value=1, max_value=3)


class TestTreeProperties:
    @settings(max_examples=40)
    @given(peer_counts, st.integers(1, 3), stripe_counts)
    def test_single_tree_everyone_served(self, n, fanout, stripes):
        overlay = single_tree(make_peers(n, upload_capacity=99), fanout=fanout, num_stripes=stripes)
        assert schedule_report(overlay).unreached == ()

    @settings(max_examples=40)
    @given(peer_counts, stripe_counts)
    def test_multi_tree_interior_disjoint(self, n, stripes):
        if n < stripes:
            return
        overlay = multi_tree(make_peers(n, upload_capacity=99), num_stripes=stripes)
        for peer in overlay.peers:
            assert len(overlay.interior_stripes(peer.peer_id)) <= 1

    @settings(max_examples=40)
    @given(peer_counts, stripe_counts)
    def test_multi_tree_everyone_served_every_stripe(self, n, stripes):
        if n < stripes:
            return
        overlay = multi_tree(make_peers(n, upload_capacity=99), num_stripes=stripes)
        assert schedule_report(overlay).unreached == ()

    @settings(max_examples=30)
    @given(peer_counts, st.integers(0, 2**31 - 1))
    def test_treebone_everyone_served(self, n, seed):
        overlay = treebone(make_peers(n, upload_capacity=99), seed=seed)
        assert schedule_report(overlay).unreached == ()

    @settings(max_examples=30)
    @given(peer_counts, st.integers(1, 3))
    def test_tree_depth_bounded_by_peer_count(self, n, fanout):
        overlay = single_tree(make_peers(n, upload_capacity=99), fanout=fanout)
        depth = stripe_depth(overlay, 0)
        assert max(depth.values()) <= n


class TestMeshProperties:
    @settings(max_examples=30)
    @given(peer_counts, stripe_counts, st.integers(0, 2**31 - 1))
    def test_mesh_everyone_served(self, n, stripes, seed):
        overlay = random_mesh(
            make_peers(n, upload_capacity=99), num_stripes=stripes, seed=seed
        )
        assert schedule_report(overlay).unreached == ()

    @settings(max_examples=30)
    @given(peer_counts, st.integers(0, 2**31 - 1))
    def test_mesh_respects_budgets(self, n, seed):
        overlay = random_mesh(
            make_peers(n, upload_capacity=2), num_stripes=2, seed=seed,
            providers_per_stripe=2,
        )
        assert overlay.upload_violations() == []


class TestChurnModelProperties:
    sessions = st.floats(min_value=1.0, max_value=1e5, allow_nan=False)
    offlines = st.floats(min_value=0.0, max_value=1e5, allow_nan=False)

    @settings(max_examples=50)
    @given(sessions, offlines, sessions, offlines)
    def test_endpoint_model_at_least_child_model(self, s1, o1, s2, o2):
        a = Peer("a", mean_session=s1, mean_offline=o1)
        b = Peer("b", mean_session=s2, mean_offline=o2)
        child = ChildChurnModel().link_failure_probability(a, b)
        endpoint = EndpointChurnModel().link_failure_probability(a, b)
        assert endpoint >= child - 1e-12

    @settings(max_examples=50)
    @given(sessions, offlines)
    def test_probabilities_valid(self, s, o):
        peer = Peer("a", mean_session=s, mean_offline=o)
        for model in (ChildChurnModel(), EndpointChurnModel(), StaticChurnModel(0.1)):
            p = model.link_failure_probability(peer, peer)
            assert 0.0 <= p < 1.0

    @settings(max_examples=30)
    @given(peer_counts, st.floats(0.0, 0.9))
    def test_conversion_produces_valid_network(self, n, p):
        overlay = single_tree(make_peers(n, upload_capacity=99))
        net = to_flow_network(overlay, StaticChurnModel(p))
        assert net.num_links == len(overlay.edges)
        assert net.has_node(MEDIA_SERVER)
        for prob in net.failure_probabilities():
            assert 0.0 <= prob < 1.0
