"""Property: the sweep engine is bit-identical to the pointwise path.

The sweep exists purely as a performance layer — one §III-C array build
serving a whole grid of Eq. 2 / Eq. 3 evaluations.  These tests pin the
contract that makes the cache key sound: for every sweep point, for
every combination of cache state (cold/warm), worker count and
incremental toggle, ``compute_reliability_sweep`` must reproduce a
fresh :func:`bottleneck_reliability` call on the point network *bit for
bit* — ``==`` on the float value and ``==`` on ``details`` (modulo the
solve-accounting keys, which legitimately differ when no solves run).
"""

import numpy as np
import pytest

from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
from repro.graph.builders import fujita_fig4
from repro.graph.generators import bottlenecked_network

SEEDS = [0, 1, 7, 23]

#: details keys that describe *how the solves were accounted*, not what
#: was computed; the sweep path legitimately reports no per-point solves.
ACCOUNTING_KEYS = ("engine", "array_cache", "obs")


def _scrub(details):
    return {k: v for k, v in details.items() if k not in ACCOUNTING_KEYS}


def _instance(seed):
    return bottlenecked_network(
        source_side_links=5,
        sink_side_links=4,
        num_bottlenecks=2,
        demand=2,
        seed=seed,
    )


def assert_point_identical(swept, net, demand, spec, **kwargs):
    for i, result in enumerate(swept):
        point = bottleneck_reliability(
            spec.point_network(net, i), demand, **kwargs
        )
        assert result.value == point.value
        assert result.method == point.method == "bottleneck"
        assert result.configurations == point.configurations
        assert result.flow_calls == 0
        assert _scrub(result.details) == _scrub(point.details)


class TestSweepPointwiseBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", [None, 2])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_availability_grid(self, seed, workers, incremental):
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.availability(list(np.linspace(0.7, 0.99, 5)))
        cache = ArrayCache()
        cold = compute_reliability_sweep(
            net,
            demand,
            sweep=spec,
            workers=workers,
            incremental=incremental,
            cache=cache,
        )
        warm = compute_reliability_sweep(
            net,
            demand,
            sweep=spec,
            workers=workers,
            incremental=incremental,
            cache=cache,
        )
        for swept in (cold, warm):
            assert_point_identical(
                swept, net, demand, spec, workers=workers, incremental=incremental
            )
        assert warm.flow_calls == 0
        assert warm.cache_stats["misses"] == 0
        assert warm.values == cold.values

    @pytest.mark.parametrize("seed", SEEDS)
    def test_warm_cache_ignores_build_knobs(self, seed):
        """Columns cached by one build path must serve every other:
        solver knobs are excluded from the key because the bits are
        ground truth."""
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.availability([0.8, 0.95])
        cache = ArrayCache()
        baseline = compute_reliability_sweep(
            net, demand, sweep=spec, workers=None, incremental=False, cache=cache
        )
        for workers, incremental in [(None, True), (2, False), (2, True)]:
            again = compute_reliability_sweep(
                net,
                demand,
                sweep=spec,
                workers=workers,
                incremental=incremental,
                cache=cache,
            )
            assert again.flow_calls == 0
            assert again.values == baseline.values

    @pytest.mark.parametrize("seed", SEEDS)
    def test_failure_scale_grid(self, seed):
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.failure_scale([0.25, 0.5, 1.0, 1.5])
        swept = compute_reliability_sweep(net, demand, sweep=spec)
        assert_point_identical(swept, net, demand, spec)

    def test_fig4_demand_grid(self):
        net = fujita_fig4(failure_probability=0.1)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.demand_rates([1, 2, 3, 4])
        swept = compute_reliability_sweep(net, demand, sweep=spec)
        for rate, result in zip(spec.values, swept):
            point = bottleneck_reliability(net, FlowDemand("s", "t", rate))
            assert result.value == point.value
            assert _scrub(result.details) == _scrub(point.details)
