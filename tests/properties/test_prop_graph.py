"""Property-based tests for graph-structure algorithms."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.connectivity import (
    bridges,
    connected_components,
    has_path,
    is_connected,
)
from repro.graph.cuts import is_disconnecting, is_minimal_cut, minimal_st_cuts
from repro.graph.io import from_dict, to_dict
from repro.core.assignments import count_assignments, enumerate_assignments, support_mask
from tests.conftest import small_networks


class TestConnectivityProperties:
    @settings(max_examples=50, deadline=None)
    @given(small_networks())
    def test_components_partition_nodes(self, net):
        comps = connected_components(net)
        all_nodes = [node for comp in comps for node in comp]
        assert sorted(map(str, all_nodes)) == sorted(map(str, net.nodes()))

    @settings(max_examples=50, deadline=None)
    @given(small_networks())
    def test_strategy_networks_are_connected(self, net):
        assert is_connected(net)

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_bridge_definition(self, net):
        """Removing a bridge increases the component count; removing a
        non-bridge does not."""
        bridge_set = set(bridges(net))
        base = len(connected_components(net))
        for link in net.links():
            alive = [l.index for l in net.links() if l.index != link.index]
            after = len(connected_components(net, alive))
            if link.index in bridge_set:
                assert after == base + 1
            else:
                assert after == base

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_minimal_cuts_are_minimal_and_disconnecting(self, net):
        for cut in minimal_st_cuts(net, "s", "t", 2, limit=16):
            assert is_disconnecting(net, "s", "t", cut)
            assert is_minimal_cut(net, "s", "t", list(cut))

    @settings(max_examples=40, deadline=None)
    @given(small_networks())
    def test_full_link_removal_disconnects(self, net):
        assert is_disconnecting(net, "s", "t", range(net.num_links))
        assert has_path(net, "s", "t")


class TestIoProperties:
    @settings(max_examples=50, deadline=None)
    @given(small_networks())
    def test_serialization_round_trip(self, net):
        clone = from_dict(to_dict(net))
        assert clone.num_nodes == net.num_nodes
        assert clone.num_links == net.num_links
        for a, b in zip(net.links(), clone.links()):
            assert a.endpoints == b.endpoints
            assert a.capacity == b.capacity
            assert a.failure_probability == pytest.approx(b.failure_probability)


class TestAssignmentProperties:
    caps = st.lists(st.integers(0, 4), min_size=1, max_size=4)

    @settings(max_examples=80)
    @given(caps, st.integers(0, 6))
    def test_count_matches_enumeration(self, caps, demand):
        assert count_assignments(caps, demand) == len(enumerate_assignments(caps, demand))

    @settings(max_examples=80)
    @given(caps, st.integers(0, 6))
    def test_assignments_valid(self, caps, demand):
        for a in enumerate_assignments(caps, demand):
            assert sum(a) == demand
            assert all(0 <= v <= min(c, demand) for v, c in zip(a, caps))

    @settings(max_examples=80)
    @given(caps, st.integers(0, 5))
    def test_assignments_unique_and_sorted(self, caps, demand):
        result = enumerate_assignments(caps, demand)
        assert len(set(result)) == len(result)
        assert result == sorted(result)

    @settings(max_examples=50)
    @given(caps, st.integers(1, 5))
    def test_support_popcount_bounds(self, caps, demand):
        for a in enumerate_assignments(caps, demand):
            mask = support_mask(a)
            positive = sum(1 for v in a if v > 0)
            assert bin(mask).count("1") == positive
