"""Property-based tests for the reliability algorithms — the library's
strongest invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.bounds import cut_upper_bound, route_lower_bound
from repro.core.demand import FlowDemand
from repro.core.factoring import factoring_reliability
from repro.core.naive import naive_reliability
from repro.exceptions import DecompositionError
from repro.graph.cuts import find_bottleneck
from repro.core.bottleneck import bottleneck_reliability
from tests.conftest import small_networks


class TestReliabilityInvariants:
    @settings(max_examples=40, deadline=None)
    @given(small_networks(), st.integers(1, 3))
    def test_in_unit_interval(self, net, rate):
        value = naive_reliability(net, FlowDemand("s", "t", rate)).value
        assert 0.0 <= value <= 1.0

    @settings(max_examples=40, deadline=None)
    @given(small_networks(), st.integers(1, 3))
    def test_naive_equals_factoring(self, net, rate):
        demand = FlowDemand("s", "t", rate)
        a = naive_reliability(net, demand).value
        b = factoring_reliability(net, demand).value
        assert a == pytest.approx(b, abs=1e-10)

    @settings(max_examples=30, deadline=None)
    @given(small_networks(), st.integers(1, 2))
    def test_monotone_in_demand(self, net, rate):
        """Raising the demand can never raise the reliability."""
        low = naive_reliability(net, FlowDemand("s", "t", rate)).value
        high = naive_reliability(net, FlowDemand("s", "t", rate + 1)).value
        assert high <= low + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_monotone_in_failure_probability(self, net):
        """Raising any link's failure probability can never raise the
        reliability."""
        demand = FlowDemand("s", "t", 1)
        base = naive_reliability(net, demand).value
        bumped_probs = [min(0.95, p + 0.3) for p in net.failure_probabilities()]
        worse = naive_reliability(
            net.with_failure_probabilities(bumped_probs), demand
        ).value
        assert worse <= base + 1e-12

    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_adding_a_parallel_link_never_hurts(self, net):
        demand = FlowDemand("s", "t", 1)
        base = naive_reliability(net, demand).value
        boosted = net.copy()
        boosted.add_link("s", "t", 1, 0.5)
        better = naive_reliability(boosted, demand).value
        assert better >= base - 1e-12

    @settings(max_examples=30, deadline=None)
    @given(small_networks(), st.integers(1, 2))
    def test_bounds_bracket_exact(self, net, rate):
        demand = FlowDemand("s", "t", rate)
        exact = naive_reliability(net, demand).value
        assert route_lower_bound(net, demand) <= exact + 1e-9
        assert cut_upper_bound(net, demand) >= exact - 1e-9

    @settings(max_examples=30, deadline=None)
    @given(small_networks(), st.integers(1, 2))
    def test_bottleneck_agrees_when_applicable(self, net, rate):
        """Whenever a bottleneck cut exists, the paper's algorithm must
        reproduce the naive value exactly."""
        demand = FlowDemand("s", "t", rate)
        split = find_bottleneck(net, "s", "t", max_size=2)
        if split is None:
            return
        # Only directed-forward or undirected cut links fit the model;
        # find_bottleneck already guarantees that via split_on_cut, but
        # undirected cut links on pathological graphs are out of model —
        # the strategy only generates directed links, so this is exact.
        try:
            value = bottleneck_reliability(net, demand, cut=split.cut).value
        except DecompositionError:
            return
        expected = naive_reliability(net, demand).value
        assert value == pytest.approx(expected, abs=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(small_networks())
    def test_perfect_links_make_it_deterministic(self, net):
        """With no failures, reliability is 0/1 by feasibility."""
        sure = net.with_failure_probabilities([0.0] * net.num_links)
        demand = FlowDemand("s", "t", 1)
        from repro.flow.base import is_feasible

        value = naive_reliability(sure, demand).value
        assert value == (1.0 if is_feasible(sure, "s", "t", 1) else 0.0)

    @settings(max_examples=25, deadline=None)
    @given(small_networks())
    def test_naive_pruning_invariance(self, net):
        demand = FlowDemand("s", "t", 2)
        a = naive_reliability(net, demand, prune=True)
        b = naive_reliability(net, demand, prune=False)
        assert a.value == pytest.approx(b.value, abs=1e-12)
        assert a.flow_calls <= b.flow_calls
