"""Properties of the Gray-code machinery behind the incremental walk.

The incremental engine's exactness argument leans on three facts:
``gray_code`` is a bijection on ``[0, 2^n)``, consecutive codes differ
in exactly the bit ``gray_flip_position`` names, and ``gray_lattice``
(with any position permutation) visits every mask exactly once with
one-bit steps.  Each is pinned here independently of any flow solver.
"""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.exceptions import IntractableError, ReproValueError
from repro.probability.bitset import gray_code, gray_flip_position, gray_lattice

widths = st.integers(min_value=0, max_value=12)


class TestGrayCode:
    @given(widths)
    def test_bijection_on_range(self, n):
        codes = [gray_code(i) for i in range(1 << n)]
        assert sorted(codes) == list(range(1 << n))

    @given(st.integers(min_value=1, max_value=(1 << 24) - 1))
    def test_adjacent_codes_differ_in_flip_position(self, i):
        delta = gray_code(i) ^ gray_code(i - 1)
        assert delta == 1 << gray_flip_position(i)

    @given(st.integers(min_value=1, max_value=(1 << 24) - 1))
    def test_flip_position_is_trailing_zeros(self, i):
        assert i % (1 << gray_flip_position(i)) == 0
        assert (i >> gray_flip_position(i)) & 1 == 1

    def test_flip_position_rejects_nonpositive(self):
        with pytest.raises(ReproValueError):
            gray_flip_position(0)
        with pytest.raises(ReproValueError):
            gray_flip_position(-3)


class TestGrayLattice:
    @given(widths)
    def test_visits_every_mask_exactly_once(self, n):
        walk = list(gray_lattice(n))
        assert len(walk) == 1 << n
        assert sorted(walk) == list(range(1 << n))

    @given(widths)
    def test_consecutive_masks_differ_in_one_bit(self, n):
        walk = list(gray_lattice(n))
        for previous, current in zip(walk, walk[1:]):
            assert (previous ^ current).bit_count() == 1

    @given(widths.flatmap(lambda n: st.permutations(range(n))))
    def test_any_order_keeps_coverage_and_one_bit_steps(self, order):
        n = len(order)
        walk = list(gray_lattice(n, order))
        assert sorted(walk) == list(range(1 << n))
        for previous, current in zip(walk, walk[1:]):
            assert (previous ^ current).bit_count() == 1

    def test_order_controls_flip_frequencies(self):
        # Walk position p flips 2^(n-1-p) times; the permutation decides
        # which bit sits at which position.  This is what plan_gray_order
        # exploits to park flow-carrying links at rarely-flipped slots.
        n = 4
        order = [2, 0, 3, 1]
        walk = list(gray_lattice(n, order))
        flips = [0] * n
        for previous, current in zip(walk, walk[1:]):
            flips[(previous ^ current).bit_length() - 1] += 1
        for position, bit in enumerate(order):
            assert flips[bit] == 1 << (n - 1 - position)

    def test_rejects_non_permutations(self):
        with pytest.raises(ReproValueError):
            list(gray_lattice(3, [0, 1]))
        with pytest.raises(ReproValueError):
            list(gray_lattice(3, [0, 1, 1]))
        with pytest.raises(ReproValueError):
            list(gray_lattice(-1))

    def test_rejects_over_budget_widths(self):
        with pytest.raises(IntractableError):
            next(gray_lattice(40))

    def test_zero_width_walk_is_the_empty_mask(self):
        assert list(gray_lattice(0)) == [0]
