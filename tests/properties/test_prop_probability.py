"""Property-based tests for the probability substrate."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.probability.bitset import (
    indices_from_mask,
    iter_submasks,
    mask_from_indices,
    popcount,
    popcount_array,
)
from repro.probability.enumeration import (
    configuration_probabilities,
    configuration_probability,
)
from repro.probability.inclusion_exclusion import (
    union_probability,
    union_probability_from_intersections,
)
from repro.probability.zeta import (
    subset_moebius,
    subset_zeta,
    superset_moebius,
    superset_zeta,
)

from tests.conftest import probability_vectors

masks = st.integers(min_value=0, max_value=(1 << 20) - 1)


class TestBitsetProperties:
    @given(masks)
    def test_mask_round_trip(self, mask):
        assert mask_from_indices(indices_from_mask(mask)) == mask

    @given(masks)
    def test_popcount_equals_index_count(self, mask):
        assert popcount(mask) == len(indices_from_mask(mask))

    @given(st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_submask_count_is_power_of_two(self, mask):
        subs = list(iter_submasks(mask))
        assert len(subs) == 1 << popcount(mask)
        assert len(set(subs)) == len(subs)

    @given(st.integers(min_value=0, max_value=(1 << 10) - 1))
    def test_every_submask_is_contained(self, mask):
        for sub in iter_submasks(mask):
            assert sub & ~mask == 0


class TestEnumerationProperties:
    @given(probability_vectors(max_size=10))
    def test_table_sums_to_one(self, probs):
        table = configuration_probabilities(probs)
        assert table.sum() == pytest.approx(1.0)

    @given(probability_vectors(max_size=8))
    def test_table_nonnegative(self, probs):
        assert (configuration_probabilities(probs) >= 0).all()

    @given(probability_vectors(max_size=6), st.integers(0, 63))
    def test_table_matches_scalar(self, probs, raw_mask):
        mask = raw_mask & ((1 << len(probs)) - 1)
        table = configuration_probabilities(probs)
        assert table[mask] == pytest.approx(configuration_probability(probs, mask))

    @given(probability_vectors(max_size=8))
    def test_marginal_recovery(self, probs):
        """Summing the table over configurations where link i is alive
        recovers 1 - p_i."""
        table = configuration_probabilities(probs)
        m = len(probs)
        for i in range(m):
            alive_mass = sum(table[c] for c in range(1 << m) if (c >> i) & 1)
            assert alive_mass == pytest.approx(1.0 - probs[i], abs=1e-9)


class TestZetaProperties:
    @given(st.integers(0, 5), st.integers(0, 2**31 - 1))
    def test_moebius_inverts_zeta(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.normal(size=1 << n)
        assert np.allclose(subset_moebius(subset_zeta(values)), values)
        assert np.allclose(superset_moebius(superset_zeta(values)), values)

    @given(st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_zeta_is_linear(self, n, seed):
        rng = np.random.default_rng(seed)
        a = rng.normal(size=1 << n)
        b = rng.normal(size=1 << n)
        assert np.allclose(subset_zeta(a + b), subset_zeta(a) + subset_zeta(b))

    @given(st.integers(1, 5), st.integers(0, 2**31 - 1))
    def test_total_mass_preserved_at_extremes(self, n, seed):
        rng = np.random.default_rng(seed)
        values = rng.random(1 << n)
        assert subset_zeta(values)[(1 << n) - 1] == pytest.approx(values.sum())
        assert superset_zeta(values)[0] == pytest.approx(values.sum())


class TestInclusionExclusionProperties:
    @settings(max_examples=50)
    @given(
        st.integers(1, 4),
        st.lists(st.tuples(st.integers(0, 15), st.floats(0.001, 1.0)), min_size=1, max_size=30),
    )
    def test_ie_matches_direct_union(self, n_events, raw_outcomes):
        """For any finite outcome space, the signed intersection sum
        equals the direct union probability."""
        universe = (1 << n_events) - 1
        outcome_masks = [m & universe for m, _ in raw_outcomes]
        weights = np.array([w for _, w in raw_outcomes])
        weights /= weights.sum()
        table = np.zeros(1 << n_events)
        for x in range(1 << n_events):
            table[x] = sum(
                w for m, w in zip(outcome_masks, weights) if (m & x) == x
            )
        direct = union_probability(outcome_masks, weights.tolist())
        assert union_probability_from_intersections(table) == pytest.approx(direct)
