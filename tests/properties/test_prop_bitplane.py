"""Property: the bit-parallel block kernel is a pure performance layer.

The blocked kernel (:mod:`repro.core.bitplane`) and the share-nothing
sharded build (:mod:`repro.core.shard`) exist only to reach the same
§III-C realization bits faster.  These tests pin the acceptance bar:
for every seed, block size, worker count and knob combination, the
masks, the reliability value *and* the result ``details`` must be
bit-identical to the serial scalar path — and a cache directory
populated by any number of contending shard processes must serve a
repeat sweep with zero max-flow solves.
"""

import json
import subprocess
import sys
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bitplane import build_side_array_blocked
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.shard import plan_columns, sharded_sweep
from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
from repro.graph.cuts import find_bottleneck
from repro.graph.generators import bottlenecked_network
from repro.graph.io import save

SEEDS = [0, 7, 23]
BLOCK_BITS = [4, 8, 14]
WORKERS = [1, 2, 4]

#: details keys that describe *how the solves were accounted*, not what
#: was computed (same contract as the sweep property suite).
ACCOUNTING_KEYS = ("engine", "array_cache", "obs")


def _scrub(details):
    return {k: v for k, v in details.items() if k not in ACCOUNTING_KEYS}


def _instance(seed):
    return bottlenecked_network(
        source_side_links=5,
        sink_side_links=4,
        num_bottlenecks=2,
        demand=2,
        seed=seed,
    )


def _split(net):
    split = find_bottleneck(net, "s", "t", max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    return split, enumerate_assignments(capacities, 2)


class TestBlockedMasksBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("block_bits", BLOCK_BITS)
    @pytest.mark.parametrize("screen", [False, True])
    def test_source_side_masks(self, seed, block_bits, screen):
        net = _instance(seed)
        split, assignments = _split(net)
        scalar = build_side_array(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
        )
        blocked = build_side_array_blocked(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            screen=screen,
            block_bits=block_bits,
        )
        assert np.array_equal(scalar.masks, blocked.masks)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("prune", [False, True])
    @pytest.mark.parametrize("incremental", [False, True])
    def test_knob_combinations(self, seed, prune, incremental):
        net = _instance(seed)
        split, assignments = _split(net)
        kwargs = dict(
            role="sink",
            terminal="t",
            ports=split.sink_ports,
            assignments=assignments,
            demand=2,
            prune=prune,
            incremental=incremental,
        )
        scalar = build_side_array(split.sink_side, **kwargs)
        blocked = build_side_array_blocked(
            split.sink_side, block_bits=6, **kwargs
        )
        assert np.array_equal(scalar.masks, blocked.masks)

    @settings(max_examples=12, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=300),
        block_bits=st.integers(min_value=1, max_value=14),
        screen=st.booleans(),
        prune=st.booleans(),
    )
    def test_arbitrary_block_sizes(self, seed, block_bits, screen, prune):
        """Any block size from single-entry to bigger-than-the-lattice."""
        net = bottlenecked_network(
            source_side_links=4,
            sink_side_links=3,
            num_bottlenecks=2,
            demand=2,
            seed=seed,
        )
        split, assignments = _split(net)
        kwargs = dict(
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            prune=prune,
        )
        scalar = build_side_array(split.source_side, **kwargs)
        blocked = build_side_array_blocked(
            split.source_side, block_bits=block_bits, screen=screen, **kwargs
        )
        assert np.array_equal(scalar.masks, blocked.masks)


class TestBlockedValueBitIdentity:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("block_bits", BLOCK_BITS)
    def test_serial_blocked_point(self, seed, block_bits):
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        scalar = bottleneck_reliability(net, demand)
        blocked = bottleneck_reliability(net, demand, block_bits=block_bits)
        assert blocked.value == scalar.value
        assert _scrub(blocked.details) == _scrub(scalar.details)

    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("workers", WORKERS)
    def test_chunked_blocked_point(self, seed, workers):
        """``--workers`` (high-bit chunks) composes with ``--block-bits``
        (in-chunk vector blocks); the pair must still be bit-identical
        to the plain scalar build."""
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        scalar = bottleneck_reliability(net, demand, workers=workers)
        blocked = bottleneck_reliability(
            net, demand, workers=workers, block_bits=4
        )
        assert blocked.value == scalar.value
        assert _scrub(blocked.details) == _scrub(scalar.details)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_blocked_sweep_matches_pointwise(self, seed):
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.availability(list(np.linspace(0.7, 0.99, 4)))
        swept = compute_reliability_sweep(
            net, demand, sweep=spec, block_bits=5
        )
        for i, result in enumerate(swept):
            point = bottleneck_reliability(spec.point_network(net, i), demand)
            assert result.value == point.value
            assert _scrub(result.details) == _scrub(point.details)


class TestShardedBuilds:
    @pytest.mark.parametrize("seed", SEEDS)
    @pytest.mark.parametrize("shards", [1, 2, 4])
    def test_sharded_sweep_bit_identity(self, tmp_path, seed, shards):
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.availability([0.8, 0.9, 0.95])
        plain = compute_reliability_sweep(net, demand, sweep=spec)
        sharded = sharded_sweep(
            net,
            demand,
            sweep=spec,
            shards=shards,
            cache_dir=str(tmp_path / f"cache{shards}"),
        )
        assert sharded.values == plain.values
        for mine, theirs in zip(sharded, plain):
            assert _scrub(mine.details) == _scrub(theirs.details)

    @pytest.mark.parametrize("block_bits", [None, 5])
    def test_warm_rerun_solves_nothing(self, tmp_path, block_bits):
        net = _instance(0)
        demand = FlowDemand("s", "t", 2)
        spec = SweepSpec.availability([0.8, 0.95])
        cache_dir = str(tmp_path / "cache")
        cold = sharded_sweep(
            net, demand, sweep=spec, shards=2,
            cache_dir=cache_dir, block_bits=block_bits,
        )
        assert cold.flow_calls > 0
        warm = sharded_sweep(
            net, demand, sweep=spec, shards=2,
            cache_dir=cache_dir, block_bits=block_bits,
        )
        assert warm.flow_calls == 0
        assert warm.values == cold.values
        assert not list(Path(cache_dir).glob("*.claim"))

    def test_shard_contention_two_processes(self, tmp_path):
        """Two *independent CLI runs* race on one cache directory: the
        claim files distribute the columns, both runs report the same
        curve, and no stale claims survive."""
        net = _instance(0)
        save(net, tmp_path / "net.json")
        cache_dir = tmp_path / "cache"
        argv = [
            sys.executable, "-m", "repro", "sweep", str(tmp_path / "net.json"),
            "-s", "s", "-t", "t", "-d", "2",
            "--availability", "0.8:0.95:3",
            "--cache-dir", str(cache_dir),
            "--shard", "2", "--block-bits", "5",
            "--no-ledger", "--json",
        ]
        procs = [
            subprocess.Popen(argv, stdout=subprocess.PIPE, text=True)
            for _ in range(2)
        ]
        outputs = [json.loads(p.communicate(timeout=300)[0]) for p in procs]
        assert all(p.returncode == 0 for p in procs)
        assert outputs[0]["points"] == outputs[1]["points"]
        _, units = plan_columns(
            net, FlowDemand("s", "t", 2),
            sweep=SweepSpec.availability([0.8, 0.875, 0.95]),
        )
        assert len(list(cache_dir.glob("*.npy"))) == len(units)
        assert not list(cache_dir.glob("*.claim"))


class TestClaimProtocol:
    def test_claim_is_exclusive_until_released(self, tmp_path):
        cache = ArrayCache(tmp_path)
        assert cache.try_claim("k") is True
        assert cache.try_claim("k") is False
        cache.release_claim("k")
        assert cache.try_claim("k") is True

    def test_contains_sees_disk_and_memory(self, tmp_path):
        cache = ArrayCache(tmp_path)
        assert not cache.contains("k")
        cache.put("k", np.zeros(4, dtype=bool))
        assert cache.contains("k")
        fresh = ArrayCache(tmp_path)
        assert fresh.contains("k")

    def test_plan_columns_dedupes_across_rates(self):
        net = _instance(0)
        demand = FlowDemand("s", "t", 2)
        sides, units = plan_columns(
            net, demand, sweep=SweepSpec.demand_rates([1, 2])
        )
        assert len(sides) == 2
        keys = [u["key"] for u in units]
        assert len(keys) == len(set(keys))
