"""Property-based tests for the extension modules."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.demand import FlowDemand
from repro.core.distribution import flow_value_distribution
from repro.core.multisink import broadcast_reliability
from repro.core.naive import naive_reliability
from repro.core.reductions import reduce_for_unit_demand
from repro.core.stratified import poisson_binomial, sample_with_alive_count
from repro.probability.bitset import popcount
from repro.probability.enumeration import configuration_probabilities
from tests.conftest import probability_vectors, small_networks


class TestDistributionProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_pmf_is_a_distribution(self, net):
        dist = flow_value_distribution(net, "s", "t")
        assert all(p >= -1e-12 for p in dist.pmf)
        assert sum(dist.pmf) == pytest.approx(1.0)

    @settings(max_examples=25, deadline=None)
    @given(small_networks(), st.integers(1, 3))
    def test_tail_matches_naive(self, net, rate):
        dist = flow_value_distribution(net, "s", "t")
        expected = naive_reliability(net, FlowDemand("s", "t", rate)).value
        assert dist.reliability(rate) == pytest.approx(expected, abs=1e-10)

    @settings(max_examples=25, deadline=None)
    @given(small_networks())
    def test_reliability_is_nonincreasing_in_rate(self, net):
        dist = flow_value_distribution(net, "s", "t")
        values = [dist.reliability(v) for v in range(len(dist.pmf) + 2)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-12


class TestReductionProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_reduction_preserves_unit_reliability(self, net):
        demand = FlowDemand("s", "t", 1)
        expected = naive_reliability(net, demand).value
        report = reduce_for_unit_demand(net, demand)
        if report.network.num_links == 0:
            assert expected == pytest.approx(0.0, abs=1e-12)
        else:
            value = naive_reliability(report.network, demand).value
            assert value == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_reduction_never_grows(self, net):
        report = reduce_for_unit_demand(net, FlowDemand("s", "t", 1))
        assert report.network.num_links <= net.num_links


class TestStratifiedProperties:
    @settings(max_examples=50)
    @given(probability_vectors(max_size=8))
    def test_poisson_binomial_matches_enumeration(self, probs):
        dist = poisson_binomial(probs)
        table = configuration_probabilities(probs)
        m = len(probs)
        for j in range(m + 1):
            expected = sum(table[mask] for mask in range(1 << m) if popcount(mask) == j)
            assert dist[j] == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=30)
    @given(probability_vectors(min_size=2, max_size=6), st.integers(0, 2**31 - 1))
    def test_conditional_sampling_popcount(self, probs, seed):
        # avoid zero-probability strata by keeping probs interior
        probs = [min(max(p, 0.05), 0.9) for p in probs]
        rng = np.random.default_rng(seed)
        dist = poisson_binomial(probs)
        count = int(np.argmax(dist))  # the most likely stratum is never empty
        for _ in range(10):
            mask = sample_with_alive_count(probs, count, rng)
            assert popcount(mask) == count


class TestBroadcastProperties:
    @settings(max_examples=20, deadline=None)
    @given(small_networks())
    def test_single_subscriber_equals_reliability(self, net):
        value = broadcast_reliability(net, "s", ["t"], 1).value
        expected = naive_reliability(net, FlowDemand("s", "t", 1)).value
        assert value == pytest.approx(expected, abs=1e-10)

    @settings(max_examples=15, deadline=None)
    @given(small_networks())
    def test_broadcast_below_individual(self, net):
        nodes = [n for n in net.nodes() if n not in ("s",)]
        if len(nodes) < 2:
            return
        subscribers = nodes[:2]
        both = broadcast_reliability(net, "s", subscribers, 1).value
        for sub in subscribers:
            single = broadcast_reliability(net, "s", [sub], 1).value
            assert both <= single + 1e-10


class TestFrontierProperties:
    @settings(max_examples=30, deadline=None)
    @given(small_networks())
    def test_directed_frontier_matches_naive(self, net):
        from repro.core.frontier import directed_frontier_reliability

        demand = FlowDemand("s", "t", 1)
        expected = naive_reliability(net, demand).value
        value = directed_frontier_reliability(net, demand).value
        assert value == pytest.approx(expected, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(small_networks(), st.integers(0, 2**31 - 1))
    def test_directed_frontier_order_invariant(self, net, seed):
        from repro.core.frontier import directed_frontier_reliability

        demand = FlowDemand("s", "t", 1)
        base = directed_frontier_reliability(net, demand).value
        rng = np.random.default_rng(seed)
        order = [int(x) for x in rng.permutation(net.num_links)]
        shuffled = directed_frontier_reliability(net, demand, order=order).value
        assert shuffled == pytest.approx(base, abs=1e-9)


class TestImportanceProperties:
    @settings(max_examples=20, deadline=None)
    @given(small_networks())
    def test_conditional_decomposition_holds(self, net):
        from repro.core.importance import link_importances

        demand = FlowDemand("s", "t", 1)
        base = naive_reliability(net, demand).value
        for imp in link_importances(net, demand, method="naive"):
            p = net.link(imp.link_index).failure_probability
            reconstructed = (1 - p) * imp.reliability_if_up + p * imp.reliability_if_down
            assert reconstructed == pytest.approx(base, abs=1e-9)

    @settings(max_examples=20, deadline=None)
    @given(small_networks())
    def test_birnbaum_nonnegative(self, net):
        """Flow feasibility is monotone, so no link can hurt by existing."""
        from repro.core.importance import link_importances

        demand = FlowDemand("s", "t", 1)
        for imp in link_importances(net, demand, method="naive"):
            assert imp.birnbaum >= -1e-12
