"""Property: served answers are pinned to the pointwise path.

The serving twin of ``test_prop_sweep``: for any round of queries, the
planner must (a) answer every query bit-identically to a fresh
:func:`bottleneck_reliability` call on the point network, (b) merge
N concurrent identical queries into **one** array build, and (c) emit
byte-identical response lines for identical queries — the canonical-
encoding invariant the protocol promises.
"""

import json

import pytest

from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.sweep import ArrayCache
from repro.graph.builders import fujita_fig4
from repro.graph.generators import bottlenecked_network
from repro.graph.io import to_dict
from repro.serve.planner import answer_queries
from repro.serve.protocol import QUERY_SCHEMA, decode_query, encode_line

SEEDS = [0, 1, 7, 23]


def _instance(seed):
    return bottlenecked_network(
        source_side_links=5,
        sink_side_links=4,
        num_bottlenecks=2,
        demand=2,
        seed=seed,
    )


def _query(net, qid=None, **extra):
    payload = {
        "schema": QUERY_SCHEMA,
        "op": "query",
        "network": to_dict(net),
        "source": "s",
        "sink": "t",
        "rate": 2,
    }
    if qid is not None:
        payload["id"] = qid
    payload.update(extra)
    return decode_query(json.dumps(payload).encode("utf-8"))


class TestCoalescingInvariants:
    @pytest.mark.parametrize("n", [2, 8, 32])
    def test_n_identical_queries_build_arrays_exactly_once(self, n):
        """The tentpole invariant: concurrency must not multiply work."""
        solo_cache = ArrayCache()
        answer_queries([_query(fujita_fig4())], cache=solo_cache)

        batch_cache = ArrayCache()
        queries = [_query(fujita_fig4()) for _ in range(n)]
        payloads = answer_queries(queries, cache=batch_cache)

        assert batch_cache.stats()["stores"] == solo_cache.stats()["stores"]
        assert all(p["batch"]["queries"] == n for p in payloads)

    @pytest.mark.parametrize("n", [2, 8])
    def test_identical_queries_get_byte_identical_responses(self, n):
        cache = ArrayCache()
        queries = [_query(fujita_fig4(), availability=[0.9, 0.99]) for _ in range(n)]
        lines = {encode_line(p) for p in answer_queries(queries, cache=cache)}
        assert len(lines) == 1

    @pytest.mark.parametrize("seed", SEEDS)
    def test_batched_values_bit_identical_to_pointwise(self, seed):
        net = _instance(seed)
        demand = FlowDemand("s", "t", 2)
        cache = ArrayCache()
        grid = [0.85, 0.9, 0.95, 0.99]
        # Two riders on the same topology plus a no-axis point query.
        queries = [
            _query(net, qid="grid", availability=grid),
            _query(net, qid="scale", failure_scale=[0.5, 1.0]),
            _query(net, qid="point"),
        ]
        by_id = {p["id"]: p for p in answer_queries(queries, cache=cache)}

        for query, payload in ((queries[0], by_id["grid"]),):
            for index, point in enumerate(payload["points"]):
                fresh = bottleneck_reliability(
                    query.spec.point_network(net, index), demand
                )
                assert point["reliability"] == fresh.value

        scale_query = queries[1]
        for index, point in enumerate(by_id["scale"]["points"]):
            fresh = bottleneck_reliability(
                scale_query.spec.point_network(net, index), demand
            )
            assert point["reliability"] == fresh.value

        fresh = bottleneck_reliability(net, demand)
        assert by_id["point"]["points"][0]["reliability"] == fresh.value

    @pytest.mark.parametrize("seed", SEEDS[:2])
    def test_warm_round_spends_zero_solves_and_stays_identical(self, seed):
        net = _instance(seed)
        cache = ArrayCache()
        cold = answer_queries([_query(net, availability=[0.9, 0.95])], cache=cache)
        warm = answer_queries([_query(net, availability=[0.9, 0.95])], cache=cache)
        again = answer_queries([_query(net, availability=[0.9, 0.95])], cache=cache)
        assert warm[0]["flow_calls"] == 0 and warm[0]["warm"]
        # Values never drift between cold and warm serving...
        assert warm[0]["points"] == cold[0]["points"]
        # ...and two warm rounds are byte-identical end to end.
        assert encode_line(warm[0]) == encode_line(again[0])
