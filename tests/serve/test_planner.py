"""Planner unit tests: coalescing, warm answers, fallback isolation."""

import json

from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.sweep import ArrayCache, network_fingerprint, plan_batch
from repro.graph.builders import diamond, fujita_fig4
from repro.graph.io import to_dict
from repro.serve.planner import answer_queries
from repro.serve.protocol import QUERY_SCHEMA, decode_query


def _query(net=None, qid=None, **extra):
    payload = {
        "schema": QUERY_SCHEMA,
        "op": "query",
        "network": to_dict(net if net is not None else fujita_fig4()),
        "source": "s",
        "sink": "t",
        "rate": 2,
    }
    if qid is not None:
        payload["id"] = qid
    payload.update(extra)
    return decode_query(json.dumps(payload).encode("utf-8"))


class TestPlanBatch:
    def test_same_topology_merges_to_one_plan(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        plans = plan_batch([(net, demand)] * 4)
        assert len(plans) == 1
        assert plans[0].indices == (0, 1, 2, 3)
        assert len(plans[0].spec) == 4

    def test_probability_changes_share_a_fingerprint(self):
        net = fujita_fig4()
        shifted = net.with_failure_probabilities({0: 0.5})
        assert network_fingerprint(net) == network_fingerprint(shifted)
        demand = FlowDemand("s", "t", 2)
        plans = plan_batch([(net, demand), (shifted, demand)])
        assert len(plans) == 1

    def test_different_rates_split_plans(self):
        net = fujita_fig4()
        plans = plan_batch(
            [(net, FlowDemand("s", "t", 2)), (net, FlowDemand("s", "t", 3))]
        )
        assert len(plans) == 2


class TestAnswerQueries:
    def test_identical_queries_coalesce_into_one_batch(self):
        cache = ArrayCache()
        queries = [_query(qid=i) for i in range(4)]
        payloads = answer_queries(queries, cache=cache)
        assert [p["id"] for p in payloads] == [0, 1, 2, 3]
        assert all(p["batch"] == {"queries": 4, "points": 4} for p in payloads)
        # One merged plan: every response reports the same batch solves.
        assert len({p["flow_calls"] for p in payloads}) == 1

    def test_warm_cache_answers_with_zero_solves(self):
        cache = ArrayCache()
        first = answer_queries([_query()], cache=cache)
        assert first[0]["flow_calls"] > 0 and not first[0]["warm"]
        second = answer_queries([_query(availability=[0.9, 0.99])], cache=cache)
        assert second[0]["flow_calls"] == 0 and second[0]["warm"]

    def test_values_match_fresh_bottleneck_reliability(self):
        cache = ArrayCache()
        net = fujita_fig4()
        [payload] = answer_queries([_query(net=net)], cache=cache)
        fresh = bottleneck_reliability(net, FlowDemand("s", "t", 2))
        assert payload["points"][0]["reliability"] == fresh.value

    def test_non_coalescible_method_falls_back_and_matches(self):
        cache = ArrayCache()
        net = diamond()
        batched, naive = answer_queries(
            [_query(net=net), _query(net=net, method="naive")], cache=cache
        )
        assert naive["method"] == "naive"
        assert naive["batch"]["queries"] == 1
        assert (
            abs(batched["points"][0]["reliability"] - naive["points"][0]["reliability"])
            < 1e-12
        )

    def test_mixed_topologies_answer_in_submission_order(self):
        cache = ArrayCache()
        queries = [
            _query(net=fujita_fig4(), qid="a"),
            _query(net=diamond(), qid="b"),
            _query(net=fujita_fig4(), qid="c"),
        ]
        payloads = answer_queries(queries, cache=cache)
        assert [p["id"] for p in payloads] == ["a", "b", "c"]
        # The two fig4 queries merged; diamond rode its own plan.
        assert payloads[0]["batch"]["queries"] == 2
        assert payloads[1]["batch"]["queries"] == 1
