"""Wire-protocol unit tests: decode paths, error vocabulary, canonical
encoding."""

import json

import pytest

from repro.graph.builders import fujita_fig4
from repro.graph.io import to_dict
from repro.serve.protocol import (
    ERROR_BAD_JSON,
    ERROR_BAD_REQUEST,
    ERROR_BAD_VERSION,
    QUERY_SCHEMA,
    RESPONSE_SCHEMA,
    ProtocolError,
    decode_query,
    encode_line,
    error_payload,
    response_payload,
)


def _query_payload(**extra):
    payload = {
        "schema": QUERY_SCHEMA,
        "op": "query",
        "network": to_dict(fujita_fig4()),
        "source": "s",
        "sink": "t",
        "rate": 2,
    }
    payload.update(extra)
    return payload


def _encode(payload):
    return json.dumps(payload).encode("utf-8")


class TestDecodeQuery:
    def test_minimal_query_decodes(self):
        query = decode_query(_encode(_query_payload(id=7)))
        assert query.op == "query"
        assert query.qid == 7
        assert query.demand.rate == 2
        # No axis: one point at the network's own probabilities.
        assert query.spec.kind == "overrides"
        assert len(query.spec) == 1

    def test_availability_scalar_and_list(self):
        scalar = decode_query(_encode(_query_payload(availability=0.9)))
        assert scalar.spec.kind == "availability"
        assert len(scalar.spec) == 1
        grid = decode_query(_encode(_query_payload(availability=[0.9, 0.95])))
        assert len(grid.spec) == 2

    def test_overrides_keys_are_link_indices(self):
        query = decode_query(_encode(_query_payload(overrides={"0": 0.5})))
        assert query.spec.kind == "overrides"
        assert query.spec.values[0] == {0: 0.5}

    def test_ping_and_shutdown_skip_payload_validation(self):
        for op in ("ping", "shutdown"):
            query = decode_query(_encode({"schema": QUERY_SCHEMA, "op": op}))
            assert query.op == op
            assert query.net is None


class TestDecodeErrors:
    def _code(self, raw: bytes) -> str:
        with pytest.raises(ProtocolError) as excinfo:
            decode_query(raw)
        return excinfo.value.code

    def test_not_utf8(self):
        assert self._code(b"\xff\xfe{}") == ERROR_BAD_JSON

    def test_not_json(self):
        assert self._code(b"{truncated") == ERROR_BAD_JSON

    def test_not_an_object(self):
        assert self._code(b"[1, 2]") == ERROR_BAD_REQUEST

    def test_unknown_schema_version(self):
        payload = _query_payload()
        payload["schema"] = "repro.serve/query/v999"
        assert self._code(_encode(payload)) == ERROR_BAD_VERSION

    def test_missing_schema(self):
        payload = _query_payload()
        del payload["schema"]
        assert self._code(_encode(payload)) == ERROR_BAD_VERSION

    def test_unknown_op(self):
        assert (
            self._code(_encode({"schema": QUERY_SCHEMA, "op": "explode"}))
            == ERROR_BAD_REQUEST
        )

    def test_missing_network(self):
        payload = _query_payload()
        del payload["network"]
        assert self._code(_encode(payload)) == ERROR_BAD_REQUEST

    def test_missing_demand_fields(self):
        payload = _query_payload()
        del payload["rate"]
        assert self._code(_encode(payload)) == ERROR_BAD_REQUEST

    def test_unknown_terminal(self):
        assert self._code(_encode(_query_payload(source="nope"))) == ERROR_BAD_REQUEST

    def test_unknown_method(self):
        assert (
            self._code(_encode(_query_payload(method="quantum")))
            == ERROR_BAD_REQUEST
        )

    def test_two_axes_rejected(self):
        payload = _query_payload(availability=[0.9], failure_scale=[1.0])
        assert self._code(_encode(payload)) == ERROR_BAD_REQUEST

    def test_bad_axis_values(self):
        assert (
            self._code(_encode(_query_payload(availability="high")))
            == ERROR_BAD_REQUEST
        )


class TestEncoding:
    def test_encode_line_is_canonical(self):
        a = encode_line({"b": 1, "a": 2})
        b = encode_line({"a": 2, "b": 1})
        assert a == b == b'{"a":2,"b":1}\n'

    def test_response_payload_shape(self):
        query = decode_query(_encode(_query_payload(id=3, availability=[0.9, 0.95])))
        payload = response_payload(
            query, [0.5, 0.6], flow_calls=0, batch_queries=4, batch_points=8,
            method="bottleneck",
        )
        assert payload["schema"] == RESPONSE_SCHEMA
        assert payload["id"] == 3
        assert payload["warm"] is True
        assert payload["points"] == [
            {"x": 0.9, "reliability": 0.5},
            {"x": 0.95, "reliability": 0.6},
        ]
        assert payload["batch"] == {"queries": 4, "points": 8}

    def test_cold_response_is_not_warm(self):
        query = decode_query(_encode(_query_payload()))
        payload = response_payload(
            query, [0.5], flow_calls=69, batch_queries=1, batch_points=1,
            method="bottleneck",
        )
        assert payload["warm"] is False

    def test_error_payload_carries_code(self):
        payload = error_payload(ERROR_BAD_REQUEST, "nope", qid=9)
        assert payload["ok"] is False
        assert payload["id"] == 9
        assert payload["error"]["code"] == ERROR_BAD_REQUEST
