"""End-to-end daemon tests over real sockets.

Two driving styles: a background ``serve_forever`` thread for the
blocking-client flows, and a deterministic single-thread style where
the test owns both the client socket and ``server.step()`` — the latter
is what makes the torn-request and oversized-line paths testable
without races.
"""

import json
import socket
import threading

import pytest

from repro.core.demand import FlowDemand
from repro.core.sweep import ArrayCache
from repro.exceptions import ReproValueError
from repro.graph.builders import fujita_fig4
from repro.serve.client import ReliabilityClient
from repro.serve.protocol import QUERY_SCHEMA, encode_line
from repro.serve.server import ReliabilityServer


@pytest.fixture
def threaded_server():
    server = ReliabilityServer(coalesce_window=0.0)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    try:
        yield server
    finally:
        server.request_shutdown()
        thread.join(timeout=10)
        server.close()


def _recv_line(sock, buffer=None):
    """Read one response line; pass the same ``buffer`` to keep the
    bytes after the first newline (two replies can share one recv)."""
    buffer = bytearray() if buffer is None else buffer
    while b"\n" not in buffer:
        chunk = sock.recv(65536)
        if not chunk:
            raise AssertionError("connection closed before a full line")
        buffer.extend(chunk)
    newline = buffer.find(b"\n")
    line = bytes(buffer[:newline])
    del buffer[: newline + 1]
    return json.loads(line.decode("utf-8"))


class TestLifecycle:
    def test_constructor_validation(self):
        with pytest.raises(ReproValueError):
            ReliabilityServer(coalesce_window=-1.0)
        with pytest.raises(ReproValueError):
            ReliabilityServer(max_line_bytes=0)

    def test_ephemeral_port_and_idempotent_close(self):
        server = ReliabilityServer()
        assert server.port > 0
        assert server.address == f"127.0.0.1:{server.port}"
        server.close()
        server.close()

    def test_shutdown_op_stops_serve_forever(self):
        server = ReliabilityServer(coalesce_window=0.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        with ReliabilityClient("127.0.0.1", server.port) as client:
            ack = client.shutdown()
        assert ack["ok"] is True and ack["op"] == "shutdown"
        thread.join(timeout=10)
        assert not thread.is_alive()


class TestQueries:
    def test_ping(self, threaded_server):
        with ReliabilityClient("127.0.0.1", threaded_server.port) as client:
            ack = client.ping()
        assert ack["ok"] is True and ack["op"] == "ping"

    def test_cold_then_warm_query(self, threaded_server):
        net = fujita_fig4()
        with ReliabilityClient("127.0.0.1", threaded_server.port) as client:
            cold = client.query(net, "s", "t", 2, qid=1)
            warm = client.query(net, "s", "t", 2, qid=2)
        assert cold["ok"] and cold["flow_calls"] > 0 and not cold["warm"]
        assert warm["ok"] and warm["flow_calls"] == 0 and warm["warm"]
        assert (
            warm["points"][0]["reliability"] == cold["points"][0]["reliability"]
        )

    def test_axis_grid_round_trip(self, threaded_server):
        net = fujita_fig4()
        with ReliabilityClient("127.0.0.1", threaded_server.port) as client:
            reply = client.query(net, "s", "t", 2, availability=[0.9, 0.95, 0.99])
        assert [p["x"] for p in reply["points"]] == [0.9, 0.95, 0.99]
        values = [p["reliability"] for p in reply["points"]]
        assert values == sorted(values)  # higher availability, higher reliability

    def test_warm_prebuild_makes_first_query_warm(self):
        server = ReliabilityServer(coalesce_window=0.0)
        thread = threading.Thread(target=server.serve_forever, daemon=True)
        thread.start()
        try:
            solves = server.warm(fujita_fig4(), FlowDemand("s", "t", 2))
            assert solves > 0
            with ReliabilityClient("127.0.0.1", server.port) as client:
                reply = client.query(fujita_fig4(), "s", "t", 2)
            assert reply["warm"] and reply["flow_calls"] == 0
        finally:
            server.request_shutdown()
            thread.join(timeout=10)

    def test_disk_cache_warms_across_server_instances(self, tmp_path):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        first = ReliabilityServer(cache=ArrayCache(tmp_path))
        assert first.warm(net, demand) > 0
        first.close()
        second = ReliabilityServer(cache=ArrayCache(tmp_path))
        assert second.warm(net, demand) == 0
        second.close()


class TestProtocolErrorPaths:
    """Deterministic single-thread driving: the test owns step()."""

    def _connect(self, server):
        sock = socket.create_connection(("127.0.0.1", server.port), timeout=5)
        sock.settimeout(5)
        return sock

    def test_bad_schema_line_gets_error_response(self):
        with ReliabilityServer(coalesce_window=0.0) as server:
            sock = self._connect(server)
            sock.sendall(encode_line({"schema": "nope", "op": "query"}))
            for _ in range(20):
                server.step(timeout=0.01)
            reply = _recv_line(sock)
            sock.close()
        assert reply["ok"] is False
        assert reply["error"]["code"] == "unsupported-schema"

    def test_bad_json_then_good_ping_on_same_connection(self):
        """Per-line errors are not connection-fatal."""
        with ReliabilityServer(coalesce_window=0.0) as server:
            sock = self._connect(server)
            sock.sendall(b"{not json}\n")
            sock.sendall(encode_line({"schema": QUERY_SCHEMA, "op": "ping"}))
            for _ in range(20):
                server.step(timeout=0.01)
            buffer = bytearray()
            first = _recv_line(sock, buffer)
            second = _recv_line(sock, buffer)
            sock.close()
        assert first["error"]["code"] == "bad-json"
        assert second["ok"] is True and second["op"] == "ping"

    def test_oversized_line_is_connection_fatal(self):
        with ReliabilityServer(coalesce_window=0.0, max_line_bytes=128) as server:
            sock = self._connect(server)
            sock.sendall(b"x" * 512)  # no newline: an unbounded line
            for _ in range(20):
                server.step(timeout=0.01)
            reply = _recv_line(sock)
            assert reply["error"]["code"] == "oversized"
            # The server closes after flushing the error.
            for _ in range(20):
                server.step(timeout=0.01)
            assert sock.recv(65536) == b""
            sock.close()

    def test_torn_request_is_counted_and_dropped(self):
        with ReliabilityServer(coalesce_window=0.0) as server:
            sock = self._connect(server)
            sock.sendall(b'{"schema": "repro.serve/query/v1", "op"')  # no newline
            for _ in range(20):
                server.step(timeout=0.01)
            sock.close()
            for _ in range(50):
                server.step(timeout=0.01)
                if server.torn_requests:
                    break
            assert server.torn_requests == 1
            assert server.queries_served == 0

    def test_clean_disconnect_is_not_torn(self):
        with ReliabilityServer(coalesce_window=0.0) as server:
            sock = self._connect(server)
            sock.sendall(encode_line({"schema": QUERY_SCHEMA, "op": "ping"}))
            for _ in range(20):
                server.step(timeout=0.01)
            _recv_line(sock)
            sock.close()
            for _ in range(20):
                server.step(timeout=0.01)
            assert server.torn_requests == 0
