"""Integration: every worked example of the paper, end to end.

One test class per paper artifact, mirroring the experiment index in
DESIGN.md (E1-E6).  These are the "does the reproduction actually
reproduce the paper" tests.
"""

import pytest

from repro.core.accumulate import accumulate
from repro.core.arrays import RealizationArray, build_side_array
from repro.core.assignments import classify_by_support, enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability, pattern_probability
from repro.core.bridge import bridge_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.graph.builders import diamond, fujita_fig2_bridge, fujita_fig4
from repro.graph.cuts import find_bottleneck
from repro.graph.transforms import split_on_cut
from repro.probability.enumeration import configuration_probabilities

import numpy as np


class TestFig1NaiveCalculation:
    """E1 / Fig. 1: the naive method is the definition — sum the
    probabilities of the feasible configurations."""

    def test_manual_expansion_matches(self):
        net = diamond(capacity=1, failure_probability=0.2)
        demand = FlowDemand("s", "t", 1)
        probs = configuration_probabilities(net)
        # manual: feasible iff links {0,2} alive or links {1,3} alive
        manual = sum(
            probs[mask]
            for mask in range(16)
            if ((mask >> 0) & (mask >> 2) & 1) or ((mask >> 1) & (mask >> 3) & 1)
        )
        assert naive_reliability(net, demand).value == pytest.approx(manual)

    def test_probability_table_is_the_papers_product_formula(self):
        net = diamond(capacity=1, failure_probability=0.2)
        probs = configuration_probabilities(net)
        # the expression below Fig. 1: prod p(e) over dead * prod (1-p) over alive
        mask = 0b0110
        expected = 0.2 * 0.8 * 0.8 * 0.2
        assert probs[mask] == pytest.approx(expected)


class TestFig2EquationOne:
    """E2 / Fig. 2 + Eq. (1): bridge decomposition."""

    def test_equation_one(self):
        net = fujita_fig2_bridge()
        demand = FlowDemand("s", "t", 2)
        result = bridge_reliability(net, demand)
        naive = naive_reliability(net, demand)
        assert result.value == pytest.approx(naive.value, abs=1e-12)

    def test_bridge_capacity_below_demand_is_trivially_zero(self):
        """'If c(e') < d, the reliability ... is trivially zero.'"""
        net = fujita_fig2_bridge(bridge_capacity=1)
        assert bridge_reliability(net, FlowDemand("s", "t", 2)).value == 0.0

    def test_fewer_configurations_than_naive(self):
        net = fujita_fig2_bridge()
        demand = FlowDemand("s", "t", 2)
        assert (
            bridge_reliability(net, demand).configurations
            < naive_reliability(net, demand).configurations
        )


class TestExample1Assignments:
    """E3 / Example 1: the twelve assignments for d=5, c=(3,3,3)."""

    def test_verbatim(self):
        expected = [
            (0, 2, 3), (0, 3, 2), (1, 1, 3), (1, 2, 2), (1, 3, 1), (2, 0, 3),
            (2, 1, 2), (2, 2, 1), (2, 3, 0), (3, 0, 2), (3, 1, 1), (3, 2, 0),
        ]
        assert enumerate_assignments([3, 3, 3], 5) == expected


class TestExample5Classification:
    """E5 / Example 5: support classification."""

    def test_verbatim(self):
        assignments = [(1, 2, 0), (2, 1, 0), (1, 1, 1), (0, 2, 1), (2, 0, 1)]
        table = classify_by_support(assignments, 3)
        assert [assignments[i] for i in table[0b111]] == assignments
        assert [assignments[i] for i in table[0b011]] == [(1, 2, 0), (2, 1, 0)]
        assert [assignments[i] for i in table[0b110]] == [(0, 2, 1)]
        assert [assignments[i] for i in table[0b101]] == [(2, 0, 1)]
        for small in (0b000, 0b001, 0b010, 0b100):
            assert table[small] == ()


class TestFig4Fig5Example3:
    """E4: the two-bottleneck graph and its Fig. 5 configurations."""

    def setup_method(self):
        self.net = fujita_fig4()
        self.demand = FlowDemand("s", "t", 2)
        self.split = split_on_cut(self.net, "s", "t", [0, 1])
        self.assignments = enumerate_assignments([2, 2], 2)

    def test_example3_assignment_set(self):
        """D = {(2,0), (1,1), (0,2)} for d=2, two bottleneck links."""
        assert set(self.assignments) == {(2, 0), (1, 1), (0, 2)}

    def test_fig5_realized_sets(self):
        array = build_side_array(
            self.split.source_side,
            role="source",
            terminal="s",
            ports=self.split.source_ports,
            assignments=self.assignments,
            demand=2,
        )
        j = {a: i for i, a in enumerate(self.assignments)}

        def realized(mask):
            return {self.assignments[i] for i in array.realized_indices(mask)}

        # Fig. 5(a): realizes (1,1) and (0,2)
        assert realized(0b1101) == {(1, 1), (0, 2)}
        # Fig. 5(b): realizes only (1,1)
        assert realized(0b0101) == {(1, 1)}
        # Fig. 5(c): realizes all three
        assert realized(0b1111) == {(1, 1), (2, 0), (0, 2)}

    def test_example3_simple_product_would_be_wrong(self):
        """§IV's point: the Eq. (1)-style product of side reliabilities
        over-counts for k >= 2, because a configuration pair only
        delivers when both sides realize a *common* assignment."""
        build = lambda role, terminal, ports, side: build_side_array(  # noqa: E731
            side, role=role, terminal=terminal, ports=ports,
            assignments=self.assignments, demand=2,
        )
        src = build("source", "s", self.split.source_ports, self.split.source_side)
        snk = build("sink", "t", self.split.sink_ports, self.split.sink_side)
        p_s_any = float(src.probabilities[src.masks != 0].sum())
        p_t_any = float(snk.probabilities[snk.masks != 0].sum())
        cut_alive = pattern_probability(self.net, (0, 1), 0b11)
        naive_product = p_s_any * cut_alive * p_t_any
        exact = naive_reliability(self.net, self.demand).value
        accumulated = bottleneck_reliability(self.net, self.demand, cut=[0, 1]).value
        assert accumulated == pytest.approx(exact, abs=1e-12)
        # and the simple product genuinely disagrees: it over-counts
        # configuration pairs realizing only disjoint assignment sets,
        # while ignoring patterns where a bottleneck link is down
        assert naive_product != pytest.approx(exact, abs=1e-6)

    def test_fig4_discovery_finds_the_two_bottlenecks(self):
        split = find_bottleneck(self.net, "s", "t")
        assert split.cut == (0, 1)


class TestExample6TableIEndToEnd:
    """E6: the worked accumulation reproduced through the library's
    public machinery (not hand-rolled arithmetic)."""

    def test_inclusion_exclusion_identity(self):
        # Table I with uniform configuration probabilities 1/4 per side.
        s_masks = np.array([0b01, 0b10, 0b11, 0b10], dtype=np.uint64)
        t_masks = np.array([0b11, 0b10, 0b01, 0b00], dtype=np.uint64)
        quarter = np.full(4, 0.25)
        source = RealizationArray(s_masks, quarter, 2, 0)
        sink = RealizationArray(t_masks, quarter, 2, 0)
        p_b1 = (0.25 + 0.25) * (0.25 + 0.25)
        p_b2 = (0.25 * 3) * (0.25 * 2)
        p_b1b2 = 0.25 * 0.25
        expected = p_b1 + p_b2 - p_b1b2
        assert accumulate(source, sink, [0, 1]) == pytest.approx(expected)


class TestEquation2And3:
    """Eq. (2) pattern probabilities and the Eq. (3) mixture."""

    def test_pattern_probabilities_partition(self):
        net = fujita_fig4(failure_probability=0.2)
        total = sum(pattern_probability(net, (0, 1), w) for w in range(4))
        assert total == pytest.approx(1.0)

    def test_equation_3_mixture_reproduces_reliability(self):
        """Summing p_{E'} r_{E'} over patterns = the naive value."""
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        split = split_on_cut(net, "s", "t", [0, 1])
        assignments = enumerate_assignments([2, 2], 2)
        src = build_side_array(
            split.source_side, role="source", terminal="s",
            ports=split.source_ports, assignments=assignments, demand=2,
        )
        snk = build_side_array(
            split.sink_side, role="sink", terminal="t",
            ports=split.sink_ports, assignments=assignments, demand=2,
        )
        classes = classify_by_support(assignments, 2)
        total = sum(
            pattern_probability(net, (0, 1), w) * accumulate(src, snk, classes[w])
            for w in range(4)
            if classes[w]
        )
        assert total == pytest.approx(naive_reliability(net, demand).value, abs=1e-12)
