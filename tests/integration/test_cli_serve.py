"""CLI integration for ``repro serve``: lifecycle, ledger and kill-safety.

The daemon needs a real child process for everything interesting — the
protocol ``shutdown`` op must land a ``completed`` ledger record, and a
SIGTERM mid-serve must land an ``interrupted`` one with a parseable
telemetry trace (the same kill-safety contract compute/sweep honour).
"""

import json
import re
import signal
import subprocess
import sys
import time
from pathlib import Path

import pytest

from repro.cli import main
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.graph.builders import fujita_fig4
from repro.graph.io import save
from repro.obs import read_events
from repro.serve.client import ReliabilityClient

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


def _spawn(*args):
    import os

    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "serve", *args],
        stderr=subprocess.PIPE,
        text=True,
        env=env,
    )


def _runs_list(ledger_dir):
    import os

    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    out = subprocess.run(
        [sys.executable, "-m", "repro", "runs", "list", "--json",
         "--ledger-dir", ledger_dir],
        capture_output=True,
        text=True,
        env=env,
        check=True,
    )
    return json.loads(out.stdout)


def _wait_for_port(proc, *, want_warm=False):
    """Read startup stderr until the bound address (and warm line) appear."""
    port = None
    warmed = not want_warm
    lines = []
    while port is None or not warmed:
        line = proc.stderr.readline()
        if not line:
            raise AssertionError(f"daemon exited early:\n{''.join(lines)}")
        lines.append(line)
        match = re.search(r"serving on 127\.0\.0\.1:(\d+)", line)
        if match:
            port = int(match.group(1))
        if "warmed" in line:
            warmed = True
    return port


class TestArgumentValidation:
    def test_cache_max_bytes_requires_cache_dir(self, capsys):
        assert main(["serve", "--cache-max-bytes", "1024"]) == 1
        assert "--cache-max-bytes requires --cache-dir" in capsys.readouterr().err

    def test_warm_requires_demand_flags(self, net_file, capsys):
        assert main(["serve", "--warm", net_file]) == 1
        assert "--warm requires" in capsys.readouterr().err

    def test_sweep_cache_max_bytes_requires_cache_dir(self, net_file, capsys):
        code = main(
            [
                "sweep", net_file, "-s", "s", "-t", "t", "-d", "2",
                "--availability", "0.9,0.95", "--cache-max-bytes", "1024",
            ]
        )
        assert code == 1
        assert "--cache-max-bytes requires --cache-dir" in capsys.readouterr().err


class TestServeLifecycle:
    def test_shutdown_op_lands_a_completed_ledger_record(
        self, net_file, tmp_path
    ):
        ledger = str(tmp_path / "runs")
        events = str(tmp_path / "ev")
        proc = _spawn(
            "--warm", net_file, "-s", "s", "-t", "t", "-d", "2",
            "--cache-dir", str(tmp_path / "cache"),
            "--events", events, "--ledger-dir", ledger,
        )
        try:
            port = _wait_for_port(proc, want_warm=True)
            net = fujita_fig4()
            with ReliabilityClient("127.0.0.1", port) as client:
                assert client.ping()["ok"]
                reply = client.query(net, "s", "t", 2)
                # Warmed at startup: the first query answers zero-solve...
                assert reply["warm"] is True and reply["flow_calls"] == 0
                # ...and matches the pointwise CLI path bit for bit.
                fresh = bottleneck_reliability(net, FlowDemand("s", "t", 2))
                assert reply["points"][0]["reliability"] == fresh.value
                client.shutdown()
            assert proc.wait(timeout=15) == 0
        finally:
            if proc.poll() is None:
                proc.kill()
            stderr = proc.stderr.read()
        assert "recorded (completed)" in stderr
        assert re.search(r"served \d+ queries", stderr)
        stream = read_events(Path(events) / "main.jsonl")
        assert stream[0]["ev"] == "start"
        assert stream[0]["meta"]["port"] == port
        assert stream[-1]["ev"] == "finish"
        entries = _runs_list(ledger)
        assert entries[-1]["command"] == "serve"
        assert entries[-1]["status"] == "completed"

    def test_sigterm_lands_interrupted_with_parseable_trace(self, tmp_path):
        ledger = str(tmp_path / "runs")
        events = str(tmp_path / "ev")
        proc = _spawn("--events", events, "--ledger-dir", ledger)
        try:
            _wait_for_port(proc)
            time.sleep(0.2)
            proc.send_signal(signal.SIGTERM)
            assert proc.wait(timeout=15) == 130
        finally:
            if proc.poll() is None:
                proc.kill()
            stderr = proc.stderr.read()
        assert "recorded (interrupted)" in stderr
        assert "terminated" in stderr
        entries = _runs_list(ledger)
        assert entries[-1]["command"] == "serve"
        assert entries[-1]["status"] == "interrupted"
        # The stream stays parseable line-by-line and the telemetry
        # ``finish`` event is suppressed (the run did not finish).
        stream = read_events(Path(events) / "main.jsonl")
        assert stream[0]["ev"] == "start"
        assert all("ev" in event for event in stream)
        assert not any(event["ev"] == "finish" for event in stream)
