"""Regression fixtures: pinned reliabilities on canonical instances.

These values were computed once with the cross-validated exact methods
and are pinned to 12 decimal places — any future change to *any* layer
(max-flow, enumeration, accumulation) that shifts them is a regression,
not noise.
"""

import pytest

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    grid_network,
    parallel_links,
    series_chain,
    two_paths,
)
from repro.graph.generators import bottlenecked_network, chained_network

# (label, network factory, source, sink, rate, pinned value)
PINNED = [
    ("diamond d=1", diamond, "s", "t", 1, 0.96390000000000),
    ("diamond d=2", diamond, "s", "t", 2, 0.65610000000000),
    ("fig2 d=1", fujita_fig2_bridge, "s", "t", 1, 0.836192889000),
    ("fig2 d=2", fujita_fig2_bridge, "s", "t", 2, 0.387420489000),
    ("fig4 d=1", fujita_fig4, "s", "t", 1, 0.968623029000),
    ("fig4 d=2", fujita_fig4, "s", "t", 2, 0.842635791000),
    ("fig4 d=3", fujita_fig4, "s", "t", 3, 0.612220032000),
    ("par5 d=3", lambda: parallel_links(5, 1, 0.1), "s", "t", 3, 0.991440000000),
    ("chain5 d=1", lambda: series_chain(5, 1, 0.1), "s", "t", 1, 0.590490000000),
    ("twopaths d=3", lambda: two_paths(2, 1, 0.1), "s", "t", 3, 0.656100000000),
    ("grid2x2 d=2", lambda: grid_network(2, 2), "s", "t", 2, 0.531441000000),
    (
        "bottlenecked seed0 d=2",
        lambda: bottlenecked_network(
            source_side_links=6, sink_side_links=5, num_bottlenecks=2, demand=2, seed=0
        ),
        "s",
        "t",
        2,
        0.879672866450,
    ),
    (
        "chained seed7 d=2",
        lambda: chained_network([4, 5, 4], cut_sizes=2, demand=2, seed=7),
        "s",
        "t",
        2,
        0.696601168084,
    ),
]


@pytest.mark.parametrize(
    "label,factory,source,sink,rate,pinned",
    PINNED,
    ids=[row[0] for row in PINNED],
)
def test_pinned_reliability(label, factory, source, sink, rate, pinned):
    net = factory()
    result = compute_reliability(net, source, sink, rate)
    assert result.value == pytest.approx(pinned, abs=5e-12), label


def test_fixture_generators_are_stable():
    """The seeded generators must keep producing byte-identical
    structures, or the pinned values above would silently test a
    different instance."""
    net = bottlenecked_network(
        source_side_links=6, sink_side_links=5, num_bottlenecks=2, demand=2, seed=0
    )
    signature = [
        (str(l.tail), str(l.head), l.capacity, round(l.failure_probability, 10))
        for l in net.links()
    ]
    assert signature[0] == ("x0", "y0", 2, 0.2092404218)
    assert len(signature) == 13
