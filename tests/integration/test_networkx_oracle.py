"""Integration: structural graph algorithms vs networkx oracles.

networkx never appears in library code; here it independently verifies
bridges, connectivity, minimum cuts and simple-path enumeration on
randomized instances.
"""

import networkx as nx
import pytest

from repro.core.paths import minimal_paths
from repro.exceptions import IntractableError
from repro.flow.base import max_flow
from repro.flow.mincut import min_cut_capacity
from repro.graph.connectivity import bridges, connected_components, is_connected
from repro.graph.cuts import minimum_cardinality_cut
from repro.graph.generators import random_network
from repro.graph.network import FlowNetwork
from tests.conftest import random_small_network


def to_multigraph(net: FlowNetwork) -> nx.MultiGraph:
    g = nx.MultiGraph()
    g.add_nodes_from(net.nodes())
    for link in net.links():
        if link.tail != link.head:
            g.add_edge(link.tail, link.head, index=link.index)
    return g


def to_digraph(net: FlowNetwork) -> nx.DiGraph:
    g = nx.DiGraph()
    g.add_nodes_from(net.nodes())
    for link in net.links():
        if link.tail == link.head:
            continue
        pairs = [(link.tail, link.head)]
        if not link.directed:
            pairs.append((link.head, link.tail))
        for u, v in pairs:
            if g.has_edge(u, v):
                g[u][v]["capacity"] += link.capacity
            else:
                g.add_edge(u, v, capacity=link.capacity)
    return g


class TestConnectivityOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_components_match(self, seed):
        net = random_small_network(seed)
        ours = {frozenset(map(str, c)) for c in connected_components(net)}
        theirs = {
            frozenset(map(str, c)) for c in nx.connected_components(to_multigraph(net))
        }
        assert ours == theirs

    @pytest.mark.parametrize("seed", range(8))
    def test_is_connected_matches(self, seed):
        net = random_small_network(seed)
        assert is_connected(net) == nx.is_connected(to_multigraph(net))

    @pytest.mark.parametrize("seed", range(8))
    def test_bridges_match(self, seed):
        net = random_small_network(seed)
        g = to_multigraph(net)
        # networkx bridges() works on simple graphs; identify multigraph
        # bridge *edges* by endpoint pair with multiplicity 1.
        simple = nx.Graph(g)
        nx_bridge_pairs = set(map(frozenset, nx.bridges(simple)))
        our_pairs = set()
        for index in bridges(net):
            link = net.link(index)
            our_pairs.add(frozenset((link.tail, link.head)))
        # a pair detected by networkx with parallel links is not a bridge
        expected = {
            pair
            for pair in nx_bridge_pairs
            if g.number_of_edges(*tuple(pair)) == 1
        }
        assert our_pairs == expected


class TestCutOracles:
    @pytest.mark.parametrize("seed", range(6))
    def test_minimum_cardinality_cut_size(self, seed):
        net = random_small_network(seed)
        cut = minimum_cardinality_cut(net, "s", "t")
        g = to_multigraph(net)
        if not nx.has_path(g, "s", "t"):
            assert cut is None
            return
        # networkx's minimum_edge_cut ignores multigraph multiplicity
        # (parallel links must ALL be cut); the honest oracle is unit
        # max-flow with capacity = multiplicity.
        weighted = nx.Graph()
        weighted.add_nodes_from(g.nodes())
        for u, v in g.edges():
            if weighted.has_edge(u, v):
                weighted[u][v]["capacity"] += 1
            else:
                weighted.add_edge(u, v, capacity=1)
        expected = nx.maximum_flow_value(weighted.to_directed(), "s", "t")
        assert len(cut) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_max_flow_min_cut_duality_on_random(self, seed):
        net = random_network(7, 13, seed=seed, max_capacity=4)
        result = max_flow(net, "s", "t")
        assert min_cut_capacity(net, result) == result.value
        assert result.value == nx.maximum_flow_value(to_digraph(net), "s", "t")


class TestPathOracles:
    @pytest.mark.parametrize("seed", range(8))
    def test_simple_path_count_matches(self, seed):
        net = random_small_network(seed)
        try:
            ours = minimal_paths(net, "s", "t", max_paths=200)
        except IntractableError:
            return
        g = nx.MultiDiGraph()
        g.add_nodes_from(net.nodes())
        for link in net.links():
            if link.tail == link.head:
                continue
            g.add_edge(link.tail, link.head, key=link.index)
            if not link.directed:
                g.add_edge(link.head, link.tail, key=link.index)
        theirs = list(nx.all_simple_edge_paths(g, "s", "t"))
        # networkx counts undirected links twice only when both
        # orientations appear in distinct simple paths, as we do
        assert len(ours) == len(theirs)
