"""Integration: the P2P pipeline against the exact algorithms.

Key identity exercised here: for a *single tree* with the child-churn
model, link failures coincide exactly with peer failures, so the exact
flow reliability must equal the closed-form product of path-peer
availabilities — and the peer-level (correlated) simulator must agree.
"""

import pytest

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.flow.base import max_flow
from repro.flow.decomposition import decompose
from repro.p2p.churn import ChildChurnModel, StaticChurnModel
from repro.p2p.overlay import to_flow_network
from repro.p2p.peer import MEDIA_SERVER, make_peers
from repro.p2p.simulation import StreamingSimulator, peer_level_reliability
from repro.p2p.streaming import delivery_paths
from repro.p2p.trees import multi_tree, single_tree


class TestSingleTreeClosedForm:
    def test_reliability_is_path_availability_product(self):
        peers = make_peers(7, mean_session=300, mean_offline=100)  # avail 0.75
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        net = to_flow_network(overlay, ChildChurnModel())
        demand = FlowDemand(MEDIA_SERVER, "p6", 1)
        exact = compute_reliability(net, demand=demand).value
        path = delivery_paths(overlay, "p6")[0]
        # every hop's failure = child peer offline (0.25); the path has
        # len(edges) hops, and no other route exists
        assert exact == pytest.approx(0.75 ** path.hops)

    def test_peer_level_simulator_matches_closed_form(self):
        # The link model charges the subscriber's own availability to its
        # incoming link, so the comparable simulation requires the
        # subscriber online too.
        peers = make_peers(7, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        simulated = peer_level_reliability(
            overlay, "p6", 1, num_trials=20_000, seed=0, require_subscriber_online=True
        )
        path = delivery_paths(overlay, "p6")[0]
        assert simulated == pytest.approx(0.75 ** path.hops, abs=0.02)

    def test_relay_only_variant_matches_simulator_default(self):
        # With the subscriber pinned online, only the relay peers matter.
        peers = make_peers(7, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=1)
        simulated = peer_level_reliability(overlay, "p6", 1, num_trials=20_000, seed=0)
        path = delivery_paths(overlay, "p6")[0]
        assert simulated == pytest.approx(0.75 ** len(path.relay_peers), abs=0.02)


class TestMultiTreeCorrelationGap:
    def test_independent_links_underestimate_single_tree_stack(self):
        """Two stripes over the *same* tree: the independent-link model
        squares every hop availability while the truth (peer level)
        does not — the exact value must undershoot the simulator."""
        peers = make_peers(6, mean_session=300, mean_offline=100)
        overlay = single_tree(peers, fanout=2, num_stripes=2)
        net = to_flow_network(overlay, ChildChurnModel())
        demand = FlowDemand(MEDIA_SERVER, "p5", 2)
        exact = compute_reliability(net, demand=demand).value
        correlated = peer_level_reliability(overlay, "p5", 2, num_trials=20_000, seed=1)
        assert exact < correlated - 0.01

    def test_multi_tree_improves_on_single_tree(self):
        peers = make_peers(8, mean_session=300, mean_offline=60)
        demand_rate = 2
        values = {}
        for name, overlay in (
            ("single", single_tree(peers, fanout=2, num_stripes=2)),
            ("multi", multi_tree(peers, num_stripes=2)),
        ):
            net = to_flow_network(overlay, ChildChurnModel())
            demand = FlowDemand(MEDIA_SERVER, "p7", demand_rate)
            values[name] = compute_reliability(net, demand=demand).value
        assert values["multi"] > values["single"]


class TestSubStreamsOnOverlays:
    def test_flow_decomposition_yields_stripe_paths(self):
        peers = make_peers(8, upload_capacity=8)
        overlay = multi_tree(peers, num_stripes=2)
        net = to_flow_network(overlay, StaticChurnModel(0.1))
        result = max_flow(net, MEDIA_SERVER, "p7", limit=2)
        streams = decompose(net, result)
        assert len(streams) == 2
        for stream in streams:
            assert stream.nodes[0] == MEDIA_SERVER
            assert stream.nodes[-1] == "p7"


class TestStreamingSimulatorConsistency:
    def test_continuity_tracks_availability_scale(self):
        """More churn => lower continuity, monotonically."""
        values = []
        for offline in (0.0001, 30.0, 120.0):
            peers = make_peers(6, mean_session=120, mean_offline=offline)
            overlay = single_tree(peers, fanout=2, num_stripes=1)
            out = StreamingSimulator(overlay).run("p5", horizon=500, seed=2)
            values.append(out.continuity_index)
        assert values[0] > values[1] > values[2]

    def test_multi_tree_continuity_beats_single_tree_under_churn(self):
        peers = make_peers(8, mean_session=60, mean_offline=30, upload_capacity=8)
        single = single_tree(peers, fanout=2, num_stripes=2)
        multi = multi_tree(peers, num_stripes=2)
        # average a few seeds to damp DES noise
        def mean_continuity(overlay):
            outs = [
                StreamingSimulator(overlay).run("p7", horizon=400, seed=s).continuity_index
                for s in range(4)
            ]
            return sum(outs) / len(outs)

        assert mean_continuity(multi) >= mean_continuity(single) - 0.05


class TestNaiveOnOverlayNetworks:
    @pytest.mark.parametrize("stripes", [1, 2])
    def test_auto_method_agrees_with_naive(self, stripes):
        peers = make_peers(5, mean_session=300, mean_offline=60)
        overlay = multi_tree(peers, num_stripes=stripes) if stripes > 1 else single_tree(peers)
        net = to_flow_network(overlay, ChildChurnModel())
        demand = FlowDemand(MEDIA_SERVER, "p4", stripes)
        auto = compute_reliability(net, demand=demand).value
        naive = naive_reliability(net, demand).value
        assert auto == pytest.approx(naive, abs=1e-10)
