"""CLI integration: the ``--workers`` flag on compute and profile."""

import json
import re

import pytest

from repro.cli import main
from repro.graph.builders import fujita_fig4
from repro.graph.io import save

_FIG4_RELIABILITY = "0.8426357910"


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


class TestComputeWorkers:
    @pytest.mark.parametrize("method", ["bottleneck", "naive-parallel", "auto"])
    def test_workers_two_matches_serial_value(self, net_file, capsys, method):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", method, "--workers", "2"]
        ) == 0
        assert _FIG4_RELIABILITY in capsys.readouterr().out

    def test_engine_flow_calls_reported_in_json(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck", "--workers", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reliability"] == pytest.approx(0.842635791, abs=1e-9)
        assert payload["flow_calls"] > 0

    def test_workers_zero_rejected(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck", "--workers", "0"]
        ) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_workers_rejected_for_serial_method(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--workers", "2"]
        ) == 1
        err = capsys.readouterr().err
        assert "--workers is not supported" in err
        assert "naive-parallel" in err


class TestProfileWorkers:
    def test_profile_engine_path_partitions_flow_solves(self, net_file, capsys):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck", "--workers", "2"]
        ) == 0
        out = capsys.readouterr().out
        assert _FIG4_RELIABILITY in out
        flow_calls = int(re.search(r"max-flow calls: (\d+)", out).group(1))
        counted = int(re.search(r"flow_solves = (\d+)", out).group(1))
        assert counted == flow_calls
        assert "screened_solves" in out
        screened = int(re.search(r"screened_solves = (\d+)", out).group(1))
        assert screened > 0

    def test_profile_workers_zero_rejected(self, net_file, capsys):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck", "--workers", "0"]
        ) == 1
        assert "--workers must be >= 1" in capsys.readouterr().err
