"""CLI integration: the ``sweep`` subcommand and its disk cache."""

import json

import pytest

from repro.cli import main
from repro.graph.builders import fujita_fig4
from repro.graph.io import save

_FIG4_RELIABILITY = "0.8426357910"


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


def run_sweep(net_file, *extra):
    return main(["sweep", net_file, "-s", "s", "-t", "t", "-d", "2", *extra])


class TestSweepCommand:
    def test_availability_table(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.8,0.9,0.95") == 0
        out = capsys.readouterr().out
        assert "availability" in out and "reliability" in out
        # p = 0.1 per link is the fig-4 default, so the 0.9 point is the
        # canonical fig-4 value.
        assert _FIG4_RELIABILITY in out
        assert "max-flow calls:" in out
        assert "array cache:" in out

    def test_grid_spec_start_stop_n(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.8:0.9:3", "--json") == 0
        payload = json.loads(capsys.readouterr().out)
        assert [p["x"] for p in payload["points"]] == pytest.approx(
            [0.8, 0.85, 0.9]
        )

    def test_rates_sweep(self, net_file, capsys):
        assert run_sweep(net_file, "--rates", "1,2,3") == 0
        out = capsys.readouterr().out
        assert "rate" in out
        assert _FIG4_RELIABILITY in out

    def test_failure_scale_with_override(self, net_file, capsys):
        assert (
            run_sweep(
                net_file, "--failure-scale", "0.5,1.0", "--override", "0=0.2", "--json"
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["kind"] == "failure-scale"
        assert len(payload["points"]) == 2

    def test_second_run_against_disk_cache_solves_nothing(
        self, net_file, tmp_path, capsys
    ):
        cache_dir = str(tmp_path / "arrays")
        args = ("--availability", "0.7:0.99:5", "--cache-dir", cache_dir, "--json")
        assert run_sweep(net_file, *args) == 0
        first = json.loads(capsys.readouterr().out)
        assert run_sweep(net_file, *args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first["flow_calls"] > 0
        assert second["flow_calls"] == 0
        assert second["cache"]["misses"] == 0
        assert second["cache"]["hits"] > 0
        # identical values, not merely close
        assert [p["reliability"] for p in second["points"]] == [
            p["reliability"] for p in first["points"]
        ]

    def test_workers_two_matches_default(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.9", "--json") == 0
        serial = json.loads(capsys.readouterr().out)
        assert (
            run_sweep(net_file, "--availability", "0.9", "--workers", "2", "--json")
            == 0
        )
        engine = json.loads(capsys.readouterr().out)
        assert serial["points"] == engine["points"]


class TestBlockBitsFlag:
    def test_blocked_sweep_matches_default(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.8,0.9", "--json") == 0
        scalar = json.loads(capsys.readouterr().out)
        assert (
            run_sweep(
                net_file, "--availability", "0.8,0.9", "--block-bits", "6", "--json"
            )
            == 0
        )
        blocked = json.loads(capsys.readouterr().out)
        assert scalar["points"] == blocked["points"]

    def test_block_bits_out_of_range(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.9", "--block-bits", "0") == 1
        assert "block_bits" in capsys.readouterr().err

    def test_compute_block_bits_matches_default(self, net_file, capsys):
        base = ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
                "--method", "bottleneck", "--json"]
        assert main(base) == 0
        scalar = json.loads(capsys.readouterr().out)
        assert main(base + ["--block-bits", "6"]) == 0
        blocked = json.loads(capsys.readouterr().out)
        assert blocked["reliability"] == scalar["reliability"]

    def test_compute_block_bits_needs_bottleneck_method(self, net_file, capsys):
        assert (
            main(
                ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
                 "--method", "naive", "--block-bits", "6"]
            )
            == 1
        )
        assert "--block-bits" in capsys.readouterr().err


class TestShardFlag:
    def test_sharded_sweep_matches_default(self, net_file, tmp_path, capsys):
        assert run_sweep(net_file, "--availability", "0.8,0.9", "--json") == 0
        plain = json.loads(capsys.readouterr().out)
        cache_dir = str(tmp_path / "arrays")
        assert (
            run_sweep(
                net_file, "--availability", "0.8,0.9",
                "--cache-dir", cache_dir, "--shard", "2", "--json",
            )
            == 0
        )
        sharded = json.loads(capsys.readouterr().out)
        assert plain["points"] == sharded["points"]
        # a second sharded run finds every column published
        assert (
            run_sweep(
                net_file, "--availability", "0.8,0.9",
                "--cache-dir", cache_dir, "--shard", "2", "--json",
            )
            == 0
        )
        warm = json.loads(capsys.readouterr().out)
        assert warm["flow_calls"] == 0
        assert warm["points"] == sharded["points"]

    def test_shard_requires_cache_dir(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.9", "--shard", "2") == 1
        assert "--cache-dir" in capsys.readouterr().err

    def test_shard_zero_rejected(self, net_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "arrays")
        assert (
            run_sweep(
                net_file, "--availability", "0.9",
                "--cache-dir", cache_dir, "--shard", "0",
            )
            == 1
        )
        assert "--shard" in capsys.readouterr().err

    def test_shard_excludes_workers(self, net_file, tmp_path, capsys):
        cache_dir = str(tmp_path / "arrays")
        assert (
            run_sweep(
                net_file, "--availability", "0.9", "--cache-dir", cache_dir,
                "--shard", "2", "--workers", "2",
            )
            == 1
        )
        assert "pick one" in capsys.readouterr().err


class TestSweepValidation:
    def test_workers_zero_rejected(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.9", "--workers", "0") == 1
        assert "--workers must be >= 1" in capsys.readouterr().err

    def test_bad_grid_spec(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.8:0.9") == 1
        assert "start:stop:n" in capsys.readouterr().err

    def test_unparsable_grid(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "a,b") == 1
        assert "cannot parse" in capsys.readouterr().err

    def test_empty_grid(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", ",") == 1
        assert "empty" in capsys.readouterr().err

    def test_bad_override(self, net_file, capsys):
        assert (
            run_sweep(net_file, "--availability", "0.9", "--override", "nope") == 1
        )
        assert "LINK=P" in capsys.readouterr().err

    def test_bad_rates(self, net_file, capsys):
        assert run_sweep(net_file, "--rates", "1,x") == 1
        assert "cannot parse --rates" in capsys.readouterr().err

    def test_out_of_range_availability(self, net_file, capsys):
        assert run_sweep(net_file, "--availability", "0.9,1.5") == 1
        assert "outside" in capsys.readouterr().err

    def test_axis_required(self, net_file, capsys):
        with pytest.raises(SystemExit):
            main(["sweep", net_file, "-s", "s", "-t", "t", "-d", "2"])
