"""Integration: every exact method must agree on shared instances, and
Monte-Carlo must converge to them.

This is the backbone of the reproduction: the paper's algorithm
(bottleneck), its Eq. (1) special case (bridge), the extension (chain),
and two independent exact baselines (naive enumeration, factoring) are
implemented with disjoint machinery — agreement across dozens of
randomized instances is strong evidence each one is right.
"""

import pytest

from repro.core.bottleneck import bottleneck_reliability
from repro.core.bridge import bridge_reliability
from repro.core.chain import chain_reliability
from repro.core.demand import FlowDemand
from repro.core.factoring import factoring_reliability
from repro.core.montecarlo import montecarlo_reliability
from repro.core.naive import naive_reliability
from repro.graph.builders import fujita_fig2_bridge, fujita_fig4
from repro.graph.cuts import find_bottleneck
from repro.graph.generators import bottlenecked_network, chained_network
from tests.conftest import random_small_network

TOL = 1e-10


class TestExactMethodsAgree:
    @pytest.mark.parametrize("seed", range(12))
    def test_naive_vs_factoring_on_adversarial_networks(self, seed):
        net = random_small_network(seed)
        for rate in (1, 2):
            demand = FlowDemand("s", "t", rate)
            a = naive_reliability(net, demand).value
            b = factoring_reliability(net, demand).value
            assert a == pytest.approx(b, abs=TOL), f"seed={seed} rate={rate}"

    @pytest.mark.parametrize("seed", range(10))
    @pytest.mark.parametrize("k", [1, 2])
    def test_bottleneck_vs_naive_vs_factoring(self, seed, k):
        net = bottlenecked_network(
            source_side_links=6,
            sink_side_links=5,
            num_bottlenecks=k,
            demand=2,
            seed=seed,
        )
        demand = FlowDemand("s", "t", 2)
        naive = naive_reliability(net, demand).value
        fact = factoring_reliability(net, demand).value
        bneck = bottleneck_reliability(net, demand, cut=list(range(k))).value
        chain = chain_reliability(net, demand, [list(range(k))]).value
        assert naive == pytest.approx(fact, abs=TOL)
        assert naive == pytest.approx(bneck, abs=TOL)
        assert naive == pytest.approx(chain, abs=TOL)

    @pytest.mark.parametrize("seed", range(6))
    def test_discovered_cut_matches_supplied_cut(self, seed):
        net = bottlenecked_network(
            source_side_links=6, sink_side_links=6, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        auto = bottleneck_reliability(net, demand).value
        manual = bottleneck_reliability(net, demand, cut=[0, 1]).value
        assert auto == pytest.approx(manual, abs=TOL)

    @pytest.mark.parametrize("seed", range(5))
    def test_chain_on_multi_segment_instances(self, seed):
        net = chained_network([3, 4, 3], cut_sizes=[1, 2], demand=1, seed=seed)
        demand = FlowDemand("s", "t", 1)
        naive = naive_reliability(net, demand).value
        chain = chain_reliability(net, demand, net._chain_cut_indices).value
        fact = factoring_reliability(net, demand).value
        assert chain == pytest.approx(naive, abs=TOL)
        assert fact == pytest.approx(naive, abs=TOL)

    def test_bridge_chain_bottleneck_trio_on_fig2(self):
        net = fujita_fig2_bridge(failure_probability=0.15, bridge_failure_probability=0.05)
        demand = FlowDemand("s", "t", 2)
        values = [
            naive_reliability(net, demand).value,
            bridge_reliability(net, demand).value,
            bottleneck_reliability(net, demand, cut=[8]).value,
            chain_reliability(net, demand, [[8]]).value,
            factoring_reliability(net, demand).value,
        ]
        assert max(values) - min(values) < TOL

    @pytest.mark.parametrize("rate", [1, 2, 3, 4])
    def test_all_demands_on_fig4(self, rate):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", rate)
        naive = naive_reliability(net, demand).value
        bneck = bottleneck_reliability(net, demand, cut=[0, 1]).value
        assert bneck == pytest.approx(naive, abs=TOL)

    @pytest.mark.parametrize("p", [0.01, 0.3, 0.6, 0.9])
    def test_extreme_failure_probabilities(self, p):
        net = fujita_fig4(failure_probability=p)
        demand = FlowDemand("s", "t", 2)
        naive = naive_reliability(net, demand).value
        bneck = bottleneck_reliability(net, demand, cut=[0, 1]).value
        assert bneck == pytest.approx(naive, abs=TOL)

    def test_heterogeneous_probabilities(self):
        net = fujita_fig4()
        probs = [0.05, 0.35, 0.1, 0.2, 0.3, 0.15, 0.25, 0.4, 0.01]
        net = net.with_failure_probabilities(probs)
        demand = FlowDemand("s", "t", 2)
        assert bottleneck_reliability(net, demand, cut=[0, 1]).value == pytest.approx(
            naive_reliability(net, demand).value, abs=TOL
        )


class TestMonteCarloConvergence:
    @pytest.mark.parametrize("seed", range(3))
    def test_interval_covers_exact(self, seed):
        net = bottlenecked_network(
            source_side_links=5, sink_side_links=5, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(net, demand).value
        est = montecarlo_reliability(net, demand, num_samples=30_000, seed=seed, confidence=0.99)
        assert est.contains(exact)

    def test_error_shrinks_with_samples(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(net, demand).value
        errors = []
        for n in (200, 2000, 20000):
            est = montecarlo_reliability(net, demand, num_samples=n, seed=1)
            errors.append(est.half_width)
        assert errors[0] > errors[1] > errors[2]
        est = montecarlo_reliability(net, demand, num_samples=20000, seed=1)
        assert abs(est.value - exact) < 0.02


class TestAutoDiscovery:
    @pytest.mark.parametrize("seed", range(4))
    def test_find_bottleneck_yields_valid_algorithm_input(self, seed):
        net = bottlenecked_network(
            source_side_links=7, sink_side_links=5, num_bottlenecks=2, demand=2, seed=seed
        )
        split = find_bottleneck(net, "s", "t")
        assert split is not None
        demand = FlowDemand("s", "t", 2)
        value = bottleneck_reliability(net, demand, cut=split.cut).value
        assert value == pytest.approx(naive_reliability(net, demand).value, abs=TOL)


class TestSixWayUnitDemandAgreement:
    """For d = 1 the library has SIX independent exact engines: naive
    enumeration, factoring, bottleneck (when a cut exists), directed
    frontier, minpath inclusion-exclusion, and series-parallel (when
    reducible).  One instance agreeing across all of them is the
    strongest correctness statement the suite makes."""

    @pytest.mark.parametrize("seed", range(8))
    def test_all_engines_agree(self, seed):
        from repro.core.frontier import directed_frontier_reliability
        from repro.core.paths import minpath_reliability
        from repro.core.reductions import series_parallel_reliability
        from repro.exceptions import IntractableError, ReproError

        net = random_small_network(seed)
        demand = FlowDemand("s", "t", 1)
        reference = naive_reliability(net, demand).value
        values = {
            "factoring": factoring_reliability(net, demand).value,
            "frontier-directed": directed_frontier_reliability(net, demand).value,
        }
        try:
            values["minpaths"] = minpath_reliability(net, demand, max_paths=18).value
        except IntractableError:
            pass
        try:
            values["series-parallel"] = series_parallel_reliability(net, demand).value
        except ReproError:
            pass
        split = find_bottleneck(net, "s", "t", max_size=2)
        if split is not None:
            try:
                values["bottleneck"] = bottleneck_reliability(
                    net, demand, cut=split.cut
                ).value
            except Exception:
                pass
        for name, value in values.items():
            assert value == pytest.approx(reference, abs=TOL), f"{name} seed={seed}"
