"""CLI integration: ``--incremental``/``--no-incremental`` and the
eager option validation on compute and profile.

The validation-ordering tests pin the satellite fix: a bad
option/method pairing must be rejected *before* the network file is
touched, so the error is the pairing error even when the file does not
exist (previously ``load()`` ran first and its side effects — and
errors — masked the real problem).
"""

import re

import pytest

from repro.cli import main
from repro.graph.builders import fujita_fig4
from repro.graph.io import save

_FIG4_RELIABILITY = "0.8426357910"


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


class TestComputeIncremental:
    @pytest.mark.parametrize("method", ["naive", "bottleneck", "auto"])
    @pytest.mark.parametrize("flag", ["--incremental", "--no-incremental"])
    def test_value_identical_either_way(self, net_file, capsys, method, flag):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", method, flag]
        ) == 0
        assert _FIG4_RELIABILITY in capsys.readouterr().out

    def test_incremental_saves_augmenting_path_work(self, net_file, capsys):
        """The savings metric is augmenting-path work, not invocation
        count — repairs are many tiny solves, so ``flow_calls`` can grow
        while the total path work shrinks."""

        def paths(flag):
            assert main(
                ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
                 "--method", "naive", flag]
            ) == 0
            out = capsys.readouterr().out
            return int(re.search(r"solver\.\w+\.paths = (\d+)", out).group(1))

        assert paths("--incremental") < paths("--no-incremental")

    def test_flags_are_mutually_exclusive(self, net_file, capsys):
        with pytest.raises(SystemExit):
            main(
                ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
                 "--incremental", "--no-incremental"]
            )
        assert "not allowed with" in capsys.readouterr().err

    @pytest.mark.parametrize("flag", ["--incremental", "--no-incremental"])
    def test_rejected_for_unsupported_method(self, net_file, capsys, flag):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "factoring", flag]
        ) == 1
        err = capsys.readouterr().err
        assert f"{flag} is not supported" in err
        assert "naive, bottleneck, auto" in err


class TestValidationPrecedesLoad:
    """The pairing error must win even when the network file is absent."""

    def test_compute_incremental_error_before_load(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(
            ["compute", missing, "-s", "s", "-t", "t", "-d", "2",
             "--method", "factoring", "--incremental"]
        ) == 1
        err = capsys.readouterr().err
        assert "--incremental is not supported" in err
        assert "nope.json" not in err

    def test_compute_workers_error_before_load(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(
            ["compute", missing, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--workers", "2"]
        ) == 1
        err = capsys.readouterr().err
        assert "--workers is not supported" in err
        assert "nope.json" not in err

    def test_profile_workers_error_before_load(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(
            ["profile", missing, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--workers", "2"]
        ) == 1
        err = capsys.readouterr().err
        assert "--workers is not supported" in err
        assert "nope.json" not in err

    def test_missing_file_still_reported_when_options_valid(self, tmp_path, capsys):
        missing = str(tmp_path / "nope.json")
        assert main(
            ["compute", missing, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--incremental"]
        ) == 1
        assert "nope.json" in capsys.readouterr().err


class TestProfileIncremental:
    def test_profile_reports_repair_counters(self, net_file, capsys):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--incremental"]
        ) == 0
        out = capsys.readouterr().out
        assert _FIG4_RELIABILITY in out
        assert "flow_repairs" in out
        assert "augmenting_paths_saved" in out
        flow_calls = int(re.search(r"max-flow calls: (\d+)", out).group(1))
        counted = int(re.search(r"flow_solves = (\d+)", out).group(1))
        assert counted == flow_calls

    def test_profile_incremental_partitions_flow_solves_with_workers(
        self, net_file, capsys
    ):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck", "--workers", "2", "--incremental"]
        ) == 0
        out = capsys.readouterr().out
        assert _FIG4_RELIABILITY in out
        flow_calls = int(re.search(r"max-flow calls: (\d+)", out).group(1))
        counted = int(re.search(r"flow_solves = (\d+)", out).group(1))
        assert counted == flow_calls
