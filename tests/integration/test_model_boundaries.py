"""Model boundaries, documented as executable facts.

The paper's algorithm models delivery as sub-streams pushed forward
across the bottleneck.  With *undirected* cut links there exist
networks where a max-flow routes through the far side and back —
crossing the cut backwards — which the assignment model deliberately
does not count.  This module pins the canonical counterexample, so the
boundary is a tested, documented property rather than a surprise.

(The library's generators only produce forward cut links; README's
"Model notes" states the restriction; `split_on_cut` rejects *directed*
backward cut links outright.)
"""

import pytest

from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.flow.base import max_flow_value
from repro.graph.cuts import is_minimal_cut
from repro.graph.network import FlowNetwork
from repro.graph.transforms import split_on_cut


def back_routing_network() -> FlowNetwork:
    """The minimal back-routing construction.

    The only s-t route is
    ``s -> x1 =e1=> y1 -> y2 <=e2= x2 -> x3 =e3=> y3 -> t``:
    it crosses the (undirected) cut *backwards* on ``e2``, using the
    sink side as a shortcut between two source-side nodes.  No
    forward-only assignment of the single sub-stream is feasible.
    """
    net = FlowNetwork(name="back-routing")
    net.add_link("x1", "y1", 1, 0.1, directed=False)  # 0: e1 (cut)
    net.add_link("x2", "y2", 1, 0.1, directed=False)  # 1: e2 (cut)
    net.add_link("x3", "y3", 1, 0.1, directed=False)  # 2: e3 (cut)
    net.add_link("s", "x1", 1, 0.1)  # 3
    net.add_link("x2", "x3", 1, 0.1)  # 4
    net.add_link("x3", "x1", 1, 0.1)  # 5: G_s connector (forward-useless)
    net.add_link("y1", "y2", 1, 0.1)  # 6
    net.add_link("y3", "t", 1, 0.1)  # 7
    net.add_link("y3", "y2", 1, 0.1)  # 8: G_t connector (forward-useless)
    return net


class TestBackRoutingBoundary:
    def test_cut_is_a_valid_bottleneck_set(self):
        net = back_routing_network()
        assert is_minimal_cut(net, "s", "t", [0, 1, 2])
        split = split_on_cut(net, "s", "t", [0, 1, 2])
        assert len(split.source_side.link_map) == 3
        assert len(split.sink_side.link_map) == 3

    def test_true_max_flow_uses_back_routing(self):
        assert max_flow_value(back_routing_network(), "s", "t") == 1

    def test_models_diverge_exactly_here(self):
        """Naive (true max-flow semantics) sees positive reliability;
        the forward-sub-stream model sees zero.  Both are correct for
        their own semantics — this test pins the gap."""
        net = back_routing_network()
        demand = FlowDemand("s", "t", 1)
        flow_semantics = naive_reliability(net, demand).value
        substream_semantics = bottleneck_reliability(net, demand, cut=[0, 1, 2]).value
        assert flow_semantics > 0.3  # every link alive w.p. 0.9, 9 links
        assert substream_semantics == 0.0

    def test_orienting_the_cut_forward_restores_agreement(self):
        """The same topology with forward-directed cut links has no
        back-route, so both semantics coincide (at zero: the only
        delivery route needed e2 backwards)."""
        net = back_routing_network()
        directed = FlowNetwork(name="forward-only")
        for link in net.links():
            directed.add_link(
                link.tail, link.head, link.capacity, link.failure_probability,
                directed=True,
            )
        demand = FlowDemand("s", "t", 1)
        assert max_flow_value(directed, "s", "t") == 0
        assert naive_reliability(directed, demand).value == 0.0
        assert bottleneck_reliability(directed, demand, cut=[0, 1, 2]).value == 0.0

    def test_directed_frontier_follows_flow_semantics(self):
        """The frontier methods implement reachability (flow) semantics,
        so they agree with naive, not with the sub-stream model."""
        from repro.core.frontier import directed_frontier_reliability

        net = back_routing_network()
        demand = FlowDemand("s", "t", 1)
        expected = naive_reliability(net, demand).value
        assert directed_frontier_reliability(net, demand).value == pytest.approx(
            expected, abs=1e-10
        )
