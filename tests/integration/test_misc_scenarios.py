"""Cross-cutting scenarios that exercise less-travelled combinations:
integer node labels, undirected cut links, endpoint churn, auto-dispatch
boundaries and k = 3 bottlenecks."""

import pytest

from repro.core.api import compute_reliability
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.graph.builders import parallel_links
from repro.graph.cuts import find_bottleneck
from repro.graph.generators import bottlenecked_network
from repro.graph.io import from_dict, to_dict
from repro.graph.network import FlowNetwork
from repro.p2p.churn import EndpointChurnModel
from repro.p2p.peer import MEDIA_SERVER, make_peers
from repro.p2p.overlay import to_flow_network
from repro.p2p.scenario import run_scenario
from repro.p2p.trees import multi_tree


class TestIntegerNodeLabels:
    def build(self):
        net = FlowNetwork()
        net.add_link(0, 1, 2, 0.1)
        net.add_link(1, 2, 2, 0.1)
        net.add_link(0, 3, 1, 0.2)
        net.add_link(3, 2, 1, 0.2)
        return net

    def test_compute(self):
        result = compute_reliability(self.build(), 0, 2, 1)
        assert 0 < result.value < 1

    def test_json_round_trip_preserves_reliability(self):
        net = self.build()
        clone = from_dict(to_dict(net))
        a = naive_reliability(net, FlowDemand(0, 2, 1)).value
        b = naive_reliability(clone, FlowDemand(0, 2, 1)).value
        assert a == pytest.approx(b, abs=1e-12)


class TestUndirectedCutLinks:
    def test_undirected_bridge_matches_naive(self):
        """An undirected bridge between well-behaved sides stays exact
        (back-routing can never help through a single bridge)."""
        net = FlowNetwork()
        net.add_link("s", "a", 1, 0.1)
        net.add_link("s", "b", 1, 0.1)
        net.add_link("a", "x", 1, 0.1)
        net.add_link("b", "x", 1, 0.1)
        net.add_link("x", "y", 2, 0.05, directed=False)  # undirected bridge
        net.add_link("y", "c", 1, 0.1)
        net.add_link("y", "d", 1, 0.1)
        net.add_link("c", "t", 1, 0.1)
        net.add_link("d", "t", 1, 0.1)
        demand = FlowDemand("s", "t", 2)
        expected = naive_reliability(net, demand).value
        value = bottleneck_reliability(net, demand, cut=[4]).value
        assert value == pytest.approx(expected, abs=1e-12)

    def test_undirected_pair_cut_matches_naive(self):
        net = FlowNetwork()
        net.add_link("x1", "y1", 1, 0.1, directed=False)  # 0: cut
        net.add_link("x2", "y2", 1, 0.1, directed=False)  # 1: cut
        net.add_link("s", "x1", 1, 0.1)
        net.add_link("s", "x2", 1, 0.1)
        net.add_link("y1", "t", 1, 0.1)
        net.add_link("y2", "t", 1, 0.1)
        demand = FlowDemand("s", "t", 2)
        expected = naive_reliability(net, demand).value
        value = bottleneck_reliability(net, demand, cut=[0, 1]).value
        assert value == pytest.approx(expected, abs=1e-12)


class TestThreeBottlenecks:
    @pytest.mark.parametrize("rate", [1, 2, 3])
    def test_k3_matches_naive(self, rate):
        net = bottlenecked_network(
            source_side_links=5, sink_side_links=5, num_bottlenecks=3, demand=3, seed=21
        )
        demand = FlowDemand("s", "t", rate)
        expected = naive_reliability(net, demand).value
        value = bottleneck_reliability(net, demand, cut=[0, 1, 2]).value
        assert value == pytest.approx(expected, abs=1e-10)

    def test_discovery_respects_max_size(self):
        net = bottlenecked_network(
            source_side_links=5, sink_side_links=5, num_bottlenecks=3, demand=2, seed=21
        )
        assert find_bottleneck(net, "s", "t", max_size=2) is None or (
            len(find_bottleneck(net, "s", "t", max_size=2).cut) <= 2
        )
        split = find_bottleneck(net, "s", "t", max_size=3)
        assert split is not None
        assert len(split.cut) <= 3


class TestAutoDispatchBoundaries:
    def test_tiny_cutless_network_uses_naive(self):
        result = compute_reliability(parallel_links(4, 1, 0.1), "s", "t", 2)
        assert result.method == "naive"

    def test_auto_is_exact_regardless_of_route(self):
        for seed in range(3):
            net = bottlenecked_network(
                source_side_links=5, sink_side_links=4, num_bottlenecks=2, demand=2, seed=seed
            )
            demand = FlowDemand("s", "t", 2)
            auto = compute_reliability(net, demand=demand).value
            reference = naive_reliability(net, demand).value
            assert auto == pytest.approx(reference, abs=1e-10)


class TestEndpointChurnScenario:
    def test_endpoint_model_is_more_pessimistic(self):
        peers = make_peers(6, mean_session=300, mean_offline=100, upload_capacity=8)
        overlay = multi_tree(peers, num_stripes=2)
        demand = FlowDemand(MEDIA_SERVER, "p5", 2)
        child_net = to_flow_network(overlay, EndpointChurnModel())
        from repro.p2p.churn import ChildChurnModel

        child = compute_reliability(
            to_flow_network(overlay, ChildChurnModel()), demand=demand
        ).value
        endpoint = compute_reliability(child_net, demand=demand).value
        assert endpoint <= child + 1e-12

    def test_scenario_with_custom_churn(self):
        result = run_scenario(
            "multi-tree",
            num_peers=6,
            num_stripes=2,
            churn=EndpointChurnModel(),
            seed=0,
            num_samples=500,
            peer_level_trials=None,
        )
        assert 0 <= result.exact_reliability <= 1
