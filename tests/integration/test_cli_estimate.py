"""Integration tests for the ``repro estimate`` subcommand.

Covers the CLI surface of the rare-event tier and the acceptance
criterion that every estimate is replayable *from the run ledger*: the
ledger records the seed, and re-running with it reproduces the value
bit-for-bit.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.graph.builders import fujita_fig4
from repro.graph.io import save


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


@pytest.fixture
def five_nines_file(tmp_path):
    path = tmp_path / "net9.json"
    save(fujita_fig4(failure_probability=1e-5), path)
    return str(path)


def _estimate(net_file, *extra):
    return main(
        ["estimate", net_file, "-s", "s", "-t", "t", "-d", "2", *extra]
    )


class TestEstimateCommand:
    def test_default_run_prints_interval(self, net_file, capsys):
        assert _estimate(net_file, "--budget", "1000", "--no-ledger") == 0
        out = capsys.readouterr().out
        assert "method: rare-permutation" in out
        assert "interval" in out and "unreliability" in out

    def test_json_output_is_machine_readable(self, net_file, capsys):
        assert (
            _estimate(net_file, "--budget", "1000", "--seed", "7", "--json",
                      "--no-ledger")
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "rare-permutation"
        assert payload["seed"] == 7
        assert 0.0 <= payload["reliability"] <= 1.0
        low, high = payload["interval"]
        assert low <= payload["reliability"] <= high
        assert payload["flow_calls"] > 0

    def test_splitting_variant(self, net_file, capsys):
        assert (
            _estimate(net_file, "--variant", "splitting", "--budget", "400",
                      "--json", "--no-ledger")
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["method"] == "rare-splitting"

    def test_five_nines_with_target_relative_error(self, five_nines_file, capsys):
        assert (
            _estimate(
                five_nines_file,
                "--budget", "20000",
                "--target-relative-error", "0.1",
                "--seed", "3",
                "--json",
                "--no-ledger",
            )
            == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["unreliability"] < 1e-3
        assert payload["relative_error"] <= 0.1

    def test_same_seed_replays_bit_identical(self, net_file, capsys):
        args = ("--budget", "800", "--seed", "42", "--json", "--no-ledger")
        assert _estimate(net_file, *args) == 0
        first = json.loads(capsys.readouterr().out)
        assert _estimate(net_file, *args) == 0
        second = json.loads(capsys.readouterr().out)
        assert first == second

    def test_budget_must_be_positive(self, net_file, capsys):
        assert _estimate(net_file, "--budget", "0", "--no-ledger") == 1
        assert "--budget must be positive" in capsys.readouterr().err

    def test_splitting_rejects_target_relative_error(self, net_file, capsys):
        assert (
            _estimate(
                net_file,
                "--variant", "splitting",
                "--target-relative-error", "0.1",
                "--no-ledger",
            )
            == 1
        )
        assert "permutation variant" in capsys.readouterr().err


class TestLedgerRoundTrip:
    def test_estimate_recorded_and_replayable_from_ledger(
        self, net_file, tmp_path, capsys
    ):
        """The acceptance criterion: the ledger's params carry the seed,
        and replaying with it reproduces the recorded value exactly."""
        ledger = str(tmp_path / "runs")
        assert (
            _estimate(
                net_file, "--budget", "900", "--seed", "11",
                "--ledger-dir", ledger,
            )
            == 0
        )
        err = capsys.readouterr().err
        assert "recorded (completed)" in err

        assert main(["runs", "show", "-1", "--ledger-dir", ledger]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["command"] == "estimate"
        assert record["status"] == "completed"
        assert record["params"]["seed"] == 11
        assert record["params"]["budget"] == 900
        assert record["counters"]["mc_samples"] == 900
        assert record["counters"]["samples_vectorized"] == 900
        assert record["counters"]["spectrum_solves"] > 0

        # Replay from the ledger record alone.
        assert (
            _estimate(
                net_file,
                "--budget", str(record["params"]["budget"]),
                "--seed", str(record["params"]["seed"]),
                "--json",
                "--no-ledger",
            )
            == 0
        )
        replay = json.loads(capsys.readouterr().out)
        assert replay["reliability"] == record["value"]

    def test_identical_estimates_diff_clean(self, net_file, tmp_path, capsys):
        ledger = str(tmp_path / "runs")
        args = ("--budget", "500", "--seed", "2", "--ledger-dir", ledger)
        assert _estimate(net_file, *args) == 0
        assert _estimate(net_file, *args) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "-2", "-1", "--ledger-dir", ledger]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_estimate_span_lands_in_trace(self, net_file, tmp_path, capsys):
        trace_file = tmp_path / "trace.json"
        assert (
            _estimate(
                net_file, "--budget", "300", "--no-ledger",
                "--trace-json", str(trace_file),
            )
            == 0
        )
        trace = json.loads(trace_file.read_text())
        text = json.dumps(trace)
        assert "rare.spectrum" in text
