"""CLI integration: telemetry flags, the run ledger and kill-safety.

In-process ``main()`` drives everything except the live-endpoint scrape
and the SIGTERM test, which need a real child process (the endpoint must
be up *while* the run executes; the signal must hit a whole process).
"""

import json
import os
import signal
import subprocess
import sys
import time
import urllib.request
from pathlib import Path

import pytest

from repro import obs
from repro.cli import main
from repro.graph.builders import fujita_fig4
from repro.graph.io import save
from repro.obs import MetricsServer, read_events
from repro.obs.recorder import FLOW_SOLVES, Recorder

REPO_SRC = str(Path(__file__).resolve().parents[2] / "src")


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


def _compute(net_file, *extra):
    return main(["compute", net_file, "-s", "s", "-t", "t", "-d", "2", *extra])


class TestEventsFlag:
    def test_compute_writes_events_stream(self, net_file, tmp_path, capsys):
        events_dir = tmp_path / "ev"
        assert _compute(net_file, "--events", str(events_dir), "--no-ledger") == 0
        events = read_events(events_dir / "main.jsonl")
        assert events[0]["ev"] == "start"
        assert events[0]["meta"]["command"] == "compute"
        assert events[-1]["ev"] == "finish"
        assert events[-1]["counters"][FLOW_SOLVES] > 0

    def test_sweep_workers_spool_worker_files(self, net_file, tmp_path, capsys):
        events_dir = tmp_path / "ev"
        assert (
            main(
                [
                    "sweep",
                    net_file,
                    "-s",
                    "s",
                    "-t",
                    "t",
                    "-d",
                    "2",
                    "--availability",
                    "0.8,0.9",
                    "--workers",
                    "2",
                    "--events",
                    str(events_dir),
                    "--no-ledger",
                ]
            )
            == 0
        )
        worker_files = list(events_dir.glob("worker-*.jsonl"))
        assert worker_files, "chunked sweep must spool worker events"
        for path in worker_files:
            events = read_events(path)
            assert events[0]["ev"] == "start"
            assert any(e["ev"] == "span_close" for e in events)


class TestRunLedgerCli:
    def test_compute_appends_and_runs_list_shows_it(
        self, net_file, tmp_path, capsys
    ):
        ledger = str(tmp_path / "runs")
        assert _compute(net_file, "--ledger-dir", ledger) == 0
        err = capsys.readouterr().err
        assert "recorded (completed)" in err

        assert main(["runs", "list", "--ledger-dir", ledger]) == 0
        out = capsys.readouterr().out
        assert "compute" in out and "completed" in out

    def test_runs_show_round_trips_record(self, net_file, tmp_path, capsys):
        ledger = str(tmp_path / "runs")
        assert _compute(net_file, "--ledger-dir", ledger) == 0
        capsys.readouterr()
        assert main(["runs", "show", "-1", "--ledger-dir", ledger]) == 0
        record = json.loads(capsys.readouterr().out)
        assert record["schema"] == "repro.obs/run/v1"
        assert record["command"] == "compute"
        assert record["counters"][FLOW_SOLVES] == record["flow_calls"] > 0
        assert record["value"] == pytest.approx(0.842635791)

    def test_no_ledger_suppresses_append(self, net_file, tmp_path, capsys):
        ledger = tmp_path / "runs"
        assert _compute(net_file, "--ledger-dir", str(ledger), "--no-ledger") == 0
        assert not ledger.exists()

    def test_identical_runs_diff_clean(self, net_file, tmp_path, capsys):
        ledger = str(tmp_path / "runs")
        assert _compute(net_file, "--ledger-dir", ledger) == 0
        assert _compute(net_file, "--ledger-dir", ledger) == 0
        capsys.readouterr()
        assert main(["runs", "diff", "-2", "-1", "--ledger-dir", ledger]) == 0
        assert "no regressions" in capsys.readouterr().out

    def test_injected_double_flow_solves_fails_diff(
        self, net_file, tmp_path, capsys
    ):
        ledger = tmp_path / "runs"
        assert _compute(net_file, "--ledger-dir", str(ledger)) == 0
        capsys.readouterr()
        # Inject a 2x flow_solves regression into a copy of the record.
        [record_path] = [
            p for p in ledger.glob("*.json") if p.name != "index.jsonl"
        ]
        record = json.loads(record_path.read_text())
        record["counters"][FLOW_SOLVES] *= 2
        regressed = tmp_path / "regressed.json"
        regressed.write_text(json.dumps(record))

        code = main(
            ["runs", "diff", str(record_path), str(regressed), "--ledger-dir", str(ledger)]
        )
        out = capsys.readouterr().out
        assert code == 1
        assert "REGRESSION" in out and "flow_solves" in out and "2.00x" in out

    def test_diff_json_output(self, net_file, tmp_path, capsys):
        ledger = str(tmp_path / "runs")
        assert _compute(net_file, "--ledger-dir", ledger) == 0
        capsys.readouterr()
        assert (
            main(["runs", "diff", "-1", "-1", "--ledger-dir", ledger, "--json"]) == 0
        )
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["counter_regressions"] == []

    def test_empty_ledger_messages(self, tmp_path, capsys):
        ledger = str(tmp_path / "empty")
        assert main(["runs", "list", "--ledger-dir", ledger]) == 0
        assert "no runs recorded" in capsys.readouterr().out
        assert main(["runs", "diff", "-2", "-1", "--ledger-dir", ledger]) == 1
        assert "out of range" in capsys.readouterr().err


class TestTopCommand:
    def test_top_renders_one_frame(self, capsys):
        rec = Recorder()
        with obs.record(rec):
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 42)
        with MetricsServer(rec) as server:
            assert main(["top", server.url, "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "repro top" in out
        assert "sweep.run" in out
        assert "flow_solves" in out and "42" in out

    def test_top_unreachable_endpoint_errors(self, capsys):
        # Port 9 (discard) is never a metrics endpoint.
        assert main(["top", "http://127.0.0.1:9", "--iterations", "1"]) == 1
        assert "cannot reach" in capsys.readouterr().err


def _spawn(args, cwd):
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    return subprocess.Popen(
        [sys.executable, "-m", "repro", *args],
        cwd=cwd,
        env=env,
        stdout=subprocess.PIPE,
        stderr=subprocess.PIPE,
        text=True,
    )


class TestLiveEndpoint:
    def test_metrics_served_while_sweep_runs(self, net_file, tmp_path):
        proc = _spawn(
            [
                "sweep",
                net_file,
                "-s",
                "s",
                "-t",
                "t",
                "-d",
                "2",
                "--availability",
                "0.8:0.99:50",
                "--metrics-port",
                "0",
                "--metrics-linger",
                "8",
                "--ledger-dir",
                str(tmp_path / "runs"),
            ],
            cwd=tmp_path,
        )
        try:
            # The endpoint URL is announced on stderr before the run.
            url = None
            for line in proc.stderr:
                if "metrics endpoint:" in line:
                    url = line.split("metrics endpoint:", 1)[1].strip()
                    break
            assert url, "endpoint announcement never appeared on stderr"
            # The endpoint is up before the first span opens, so an
            # early scrape can legitimately see an empty exposition;
            # poll until the run has produced metrics (the linger
            # window keeps the endpoint alive after completion).
            deadline = time.monotonic() + 20
            body = ""
            while time.monotonic() < deadline and "repro_" not in body:
                with urllib.request.urlopen(url + "/metrics", timeout=5.0) as response:
                    body = response.read().decode("utf-8")
                if "repro_" not in body:
                    time.sleep(0.1)
            assert "repro_" in body
            with urllib.request.urlopen(url + "/trace.json", timeout=5.0) as response:
                payload = json.loads(response.read().decode("utf-8"))
            assert "counters" in payload
        finally:
            proc.terminate()
            proc.wait(timeout=30)


class TestKillSafety:
    def test_sigterm_leaves_readable_trace_and_interrupted_record(
        self, net_file, tmp_path
    ):
        events_dir = tmp_path / "ev"
        ledger_dir = tmp_path / "runs"
        proc = _spawn(
            [
                "compute",
                net_file,
                "-s",
                "s",
                "-t",
                "t",
                "-d",
                "1",
                "--method",
                "montecarlo",
                "--samples",
                "200000000",
                "--events",
                str(events_dir),
                "--ledger-dir",
                str(ledger_dir),
            ],
            cwd=tmp_path,
        )
        try:
            deadline = time.monotonic() + 30
            main_jsonl = events_dir / "main.jsonl"
            while time.monotonic() < deadline and not main_jsonl.exists():
                time.sleep(0.05)
            assert main_jsonl.exists(), "sink never flushed its start event"
            time.sleep(0.3)  # let the run get into the sampling loop
            proc.send_signal(signal.SIGTERM)
            _, err = proc.communicate(timeout=30)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=30)

        assert proc.returncode == 130
        assert "terminated" in err
        assert "recorded (interrupted)" in err

        # Every line of the trace parses (a truncated tail is allowed
        # by read_events; interior corruption would raise).
        events = read_events(main_jsonl)
        assert events[0]["ev"] == "start"
        assert not any(e["ev"] == "finish" for e in events)

        # The ledger holds exactly one well-formed interrupted record.
        index = (ledger_dir / "index.jsonl").read_text().splitlines()
        assert len(index) == 1
        entry = json.loads(index[0])
        assert entry["status"] == "interrupted"
        record = json.loads(
            (ledger_dir / f"{entry['id']}.json").read_text()
        )
        assert record["status"] == "interrupted"
        assert record["schema"] == "repro.obs/run/v1"
