"""Unit tests for link importance measures."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.importance import link_importances, most_important_link
from repro.core.naive import naive_reliability
from repro.exceptions import ReproError
from repro.graph.builders import diamond, parallel_links, series_chain, two_paths
from repro.graph.network import FlowNetwork

UNIT = FlowDemand("s", "t", 1)


class TestLinkImportances:
    def test_series_chain_all_equal(self):
        """In a pure series system every link is equally pivotal."""
        net = series_chain(3, 1, 0.1)
        table = link_importances(net, UNIT)
        values = [imp.birnbaum for imp in table]
        assert values[0] == pytest.approx(values[1])
        assert values[1] == pytest.approx(values[2])
        # Birnbaum for series: product of the *other* availabilities
        assert values[0] == pytest.approx(0.9**2)

    def test_parallel_links_symmetry(self):
        net = parallel_links(3, 1, 0.2)
        table = link_importances(net, UNIT)
        assert len({round(imp.birnbaum, 12) for imp in table}) == 1
        # Birnbaum for parallel: probability all others are down
        assert table[0].birnbaum == pytest.approx(0.2**2)

    def test_diamond_symmetry(self):
        table = link_importances(diamond(), UNIT)
        assert table[0].birnbaum == pytest.approx(table[1].birnbaum)
        assert table[2].birnbaum == pytest.approx(table[3].birnbaum)

    def test_birnbaum_is_derivative(self):
        """Finite-difference check: dR/d(availability_e) == Birnbaum."""
        net = two_paths(2, 1, 0.2)
        table = link_importances(net, UNIT)
        eps = 1e-6
        for imp in table:
            p = net.link(imp.link_index).failure_probability
            bumped = net.with_failure_probabilities({imp.link_index: p - eps})
            base = naive_reliability(net, UNIT).value
            up = naive_reliability(bumped, UNIT).value
            derivative = (up - base) / eps
            assert derivative == pytest.approx(imp.birnbaum, abs=1e-5)

    def test_conditional_decomposition(self):
        """R = (1-p_e) R(1_e) + p_e R(0_e) for every link."""
        net = diamond(cross_link=True)
        base = naive_reliability(net, UNIT).value
        for imp in link_importances(net, UNIT):
            p = net.link(imp.link_index).failure_probability
            reconstructed = (1 - p) * imp.reliability_if_up + p * imp.reliability_if_down
            assert reconstructed == pytest.approx(base, abs=1e-12)

    def test_bridge_dominates(self):
        """A mandatory bridge is more pivotal than redundant branches."""
        net = FlowNetwork()
        net.add_link("s", "m", 1, 0.1)  # 0: bridge
        net.add_link("m", "a", 1, 0.1)  # 1
        net.add_link("m", "b", 1, 0.1)  # 2
        net.add_link("a", "t", 1, 0.1)  # 3
        net.add_link("b", "t", 1, 0.1)  # 4
        table = link_importances(net, UNIT)
        assert table[0].birnbaum > max(imp.birnbaum for imp in table[1:])

    def test_improvement_potential_nonnegative(self):
        for imp in link_importances(diamond(cross_link=True), UNIT):
            assert imp.improvement_potential >= -1e-12

    def test_raw_at_least_one_for_useful_links(self):
        net = series_chain(2, 1, 0.1)
        for imp in link_importances(net, UNIT):
            assert imp.risk_achievement_worth >= 1.0

    def test_useless_link_scores_zero(self):
        net = series_chain(2, 1, 0.1)
        net.add_link("t", "s", 1, 0.5)  # backwards: never useful
        table = link_importances(net, UNIT)
        assert table[2].birnbaum == pytest.approx(0.0, abs=1e-12)
        assert table[2].improvement_potential == pytest.approx(0.0, abs=1e-12)

    def test_perfect_system_degenerate_measures(self):
        net = parallel_links(2, 1, 0.0)
        table = link_importances(net, UNIT)
        for imp in table:
            assert imp.fussell_vesely == 0.0
            assert imp.risk_achievement_worth >= 0.0

    def test_method_forwarding(self):
        net = diamond()
        a = link_importances(net, UNIT, method="naive")
        b = link_importances(net, UNIT, method="factoring")
        for x, y in zip(a, b):
            assert x.birnbaum == pytest.approx(y.birnbaum, abs=1e-10)

    def test_montecarlo_rejected(self):
        with pytest.raises(ReproError):
            link_importances(diamond(), UNIT, method="montecarlo")


class TestMostImportantLink:
    def test_bridge_selected(self):
        net = FlowNetwork()
        net.add_link("s", "m", 1, 0.1)
        net.add_link("m", "a", 1, 0.1)
        net.add_link("m", "b", 1, 0.1)
        net.add_link("a", "t", 1, 0.1)
        net.add_link("b", "t", 1, 0.1)
        best = most_important_link(net, UNIT)
        assert best.link_index == 0

    def test_measure_selection(self):
        best = most_important_link(diamond(), UNIT, measure="fussell_vesely")
        assert 0 <= best.link_index < 4

    def test_unknown_measure(self):
        with pytest.raises(ReproError):
            most_important_link(diamond(), UNIT, measure="karma")
