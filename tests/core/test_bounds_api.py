"""Unit tests for the cheap bounds and the high-level API."""

import pytest

from repro.core.api import available_methods, compute_reliability
from repro.core.bounds import cut_upper_bound, reliability_bounds, route_lower_bound
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.result import EstimateResult, ReliabilityResult
from repro.exceptions import ReproError
from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    parallel_links,
    series_chain,
)
from repro.graph.generators import bottlenecked_network, random_network
from repro.graph.network import FlowNetwork


class TestCutUpperBound:
    def test_series_chain_exact(self):
        # every link is a cut; the bound equals the true reliability
        net = series_chain(3, capacity=1, failure_probability=0.1)
        demand = FlowDemand("s", "t", 1)
        assert cut_upper_bound(net, demand) == pytest.approx(0.9)

    def test_parallel_exact(self):
        net = parallel_links(3, 1, 0.1)
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(net, demand).value
        assert cut_upper_bound(net, demand, max_cut_size=3) == pytest.approx(exact)

    def test_is_upper_bound(self):
        for seed in range(5):
            net = random_network(6, 10, seed=seed)
            demand = FlowDemand("s", "t", 1)
            exact = naive_reliability(net, demand).value
            assert cut_upper_bound(net, demand) >= exact - 1e-12

    def test_disconnected_zero(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        assert cut_upper_bound(net, FlowDemand("s", "t", 1)) == 0.0

    def test_infeasible_demand_zero(self):
        assert cut_upper_bound(diamond(), FlowDemand("s", "t", 5)) == 0.0


class TestRouteLowerBound:
    def test_single_path(self):
        net = series_chain(3, capacity=1, failure_probability=0.1)
        demand = FlowDemand("s", "t", 1)
        assert route_lower_bound(net, demand) == pytest.approx(0.9**3)

    def test_diamond_two_families(self):
        demand = FlowDemand("s", "t", 1)
        bound = route_lower_bound(diamond(), demand, max_families=2)
        # both disjoint 2-hop paths found: IE gives the exact value here
        assert bound == pytest.approx(1 - (1 - 0.81) ** 2)

    def test_is_lower_bound(self):
        for seed in range(5):
            net = random_network(6, 10, seed=seed)
            demand = FlowDemand("s", "t", 1)
            exact = naive_reliability(net, demand).value
            assert route_lower_bound(net, demand) <= exact + 1e-12

    def test_infeasible_zero(self):
        assert route_lower_bound(diamond(), FlowDemand("s", "t", 5)) == 0.0

    def test_more_families_never_worse(self):
        demand = FlowDemand("s", "t", 1)
        one = route_lower_bound(diamond(), demand, max_families=1)
        two = route_lower_bound(diamond(), demand, max_families=2)
        assert two >= one - 1e-12

    def test_rejects_zero_families(self):
        with pytest.raises(ReproError):
            route_lower_bound(diamond(), FlowDemand("s", "t", 1), max_families=0)


class TestReliabilityBounds:
    @pytest.mark.parametrize("seed", range(5))
    def test_brackets_exact(self, seed):
        net = bottlenecked_network(
            source_side_links=5, sink_side_links=5, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        low, high = reliability_bounds(net, demand)
        exact = naive_reliability(net, demand).value
        assert low - 1e-10 <= exact <= high + 1e-10


class TestComputeReliability:
    def test_positional_triple(self):
        result = compute_reliability(diamond(), "s", "t", 1)
        assert isinstance(result, ReliabilityResult)

    def test_demand_keyword(self):
        result = compute_reliability(diamond(), demand=FlowDemand("s", "t", 1))
        assert 0 < result.value < 1

    def test_both_forms_rejected(self):
        with pytest.raises(ReproError):
            compute_reliability(diamond(), "s", "t", 1, demand=FlowDemand("s", "t", 1))

    def test_neither_form_rejected(self):
        with pytest.raises(ReproError):
            compute_reliability(diamond())

    def test_explicit_methods_agree(self):
        net = fujita_fig4()
        values = {}
        for method in ("naive", "factoring"):
            values[method] = compute_reliability(net, "s", "t", 2, method=method).value
        values["bottleneck"] = compute_reliability(
            net, "s", "t", 2, method="bottleneck", cut=[0, 1]
        ).value
        values["chain"] = compute_reliability(
            net, "s", "t", 2, method="chain", cuts=[[0, 1]]
        ).value
        assert len({round(v, 10) for v in values.values()}) == 1

    def test_bridge_method(self):
        result = compute_reliability(fujita_fig2_bridge(), "s", "t", 2, method="bridge")
        assert result.method == "bridge"

    def test_montecarlo_method(self):
        result = compute_reliability(
            diamond(), "s", "t", 1, method="montecarlo", num_samples=500, seed=0
        )
        assert isinstance(result, EstimateResult)

    def test_chain_requires_cuts(self):
        with pytest.raises(ReproError):
            compute_reliability(fujita_fig4(), "s", "t", 2, method="chain")

    def test_unknown_method(self):
        with pytest.raises(ReproError):
            compute_reliability(diamond(), "s", "t", 1, method="magic")

    def test_auto_prefers_bottleneck(self):
        net = fujita_fig2_bridge()
        assert compute_reliability(net, "s", "t", 2).method == "bottleneck"

    def test_auto_falls_back_without_cut(self):
        result = compute_reliability(parallel_links(5), "s", "t", 2)
        assert result.method in ("naive", "factoring")
        exact = naive_reliability(parallel_links(5), FlowDemand("s", "t", 2)).value
        assert result.value == pytest.approx(exact)

    def test_auto_factoring_for_larger_cutless_networks(self):
        net = parallel_links(14, 1, 0.1)
        result = compute_reliability(net, "s", "t", 2)
        assert result.method == "factoring"

    def test_available_methods(self):
        assert "bottleneck" in available_methods()
        assert "auto" in available_methods()

    def test_float_protocol(self):
        assert 0 < float(compute_reliability(diamond(), "s", "t", 1)) < 1
