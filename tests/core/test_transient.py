"""Unit tests for time-dependent reliability."""

import math

import pytest

from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.transient import (
    LinkDynamics,
    availability_at,
    reliability_over_time,
)
from repro.exceptions import EstimationError
from repro.graph.builders import diamond, series_chain

UNIT = FlowDemand("s", "t", 1)


class TestAvailabilityAt:
    def test_starts_at_one(self):
        assert availability_at(100, 50, 0.0) == pytest.approx(1.0)

    def test_starts_at_zero_when_initially_down(self):
        assert availability_at(100, 50, 0.0, initially_up=False) == pytest.approx(0.0)

    def test_converges_to_stationary(self):
        stationary = 100 / 150
        assert availability_at(100, 50, 1e9) == pytest.approx(stationary)
        assert availability_at(100, 50, 1e9, initially_up=False) == pytest.approx(stationary)

    def test_monotone_decay_from_up(self):
        values = [availability_at(100, 50, t) for t in (0, 10, 50, 200, 1000)]
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-12

    def test_monotone_rise_from_down(self):
        values = [availability_at(100, 50, t, initially_up=False) for t in (0, 10, 50, 200)]
        for a, b in zip(values, values[1:]):
            assert b >= a - 1e-12

    def test_never_failing_component(self):
        assert availability_at(math.inf, 50, 123.0) == 1.0

    def test_instant_repair(self):
        assert availability_at(100, 0, 123.0) == 1.0

    def test_closed_form(self):
        lam, mu, t = 1 / 100, 1 / 50, 30.0
        expected = mu / (lam + mu) + (1 - mu / (lam + mu)) * math.exp(-(lam + mu) * t)
        assert availability_at(100, 50, t) == pytest.approx(expected)

    def test_validation(self):
        with pytest.raises(EstimationError):
            availability_at(0, 50, 1.0)
        with pytest.raises(EstimationError):
            availability_at(100, -1, 1.0)
        with pytest.raises(EstimationError):
            availability_at(100, 50, -1.0)


class TestReliabilityOverTime:
    def dynamics(self, net, mean_up=100.0, mean_down=50.0):
        return [LinkDynamics(mean_up, mean_down) for _ in range(net.num_links)]

    def test_starts_at_feasibility(self):
        net = diamond()
        values = reliability_over_time(net, UNIT, self.dynamics(net), [0.0])
        assert values[0] == pytest.approx(1.0)

    def test_converges_to_stationary_reliability(self):
        net = diamond()
        stationary_p = 1 - (100 / 150)
        expected = naive_reliability(
            net.with_failure_probabilities([stationary_p] * 4), UNIT
        ).value
        values = reliability_over_time(net, UNIT, self.dynamics(net), [1e9])
        assert values[0] == pytest.approx(expected, abs=1e-9)

    def test_monotone_decay_from_all_up(self):
        net = series_chain(3)
        values = reliability_over_time(
            net, UNIT, self.dynamics(net), [0.0, 5.0, 20.0, 100.0, 1e6]
        )
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-12

    def test_heterogeneous_dynamics(self):
        net = series_chain(2)
        dynamics = [LinkDynamics(100, 50), LinkDynamics(math.inf, 1)]
        values = reliability_over_time(net, UNIT, dynamics, [30.0])
        # second link never fails: reliability = first link's availability
        assert values[0] == pytest.approx(availability_at(100, 50, 30.0), abs=1e-9)

    def test_matches_static_snapshot(self):
        net = diamond()
        dynamics = self.dynamics(net)
        t = 42.0
        p = 1 - availability_at(100, 50, t)
        expected = naive_reliability(
            net.with_failure_probabilities([p] * 4), UNIT
        ).value
        values = reliability_over_time(net, UNIT, dynamics, [t], method="naive")
        assert values[0] == pytest.approx(expected, abs=1e-9)

    def test_length_validation(self):
        net = diamond()
        with pytest.raises(EstimationError):
            reliability_over_time(net, UNIT, [LinkDynamics(10, 10)], [0.0])
