"""Unit tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main
from repro.graph.builders import fujita_fig4
from repro.graph.io import save


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_compute_args(self):
        args = build_parser().parse_args(
            ["compute", "x.json", "-s", "s", "-t", "t", "-d", "2"]
        )
        assert args.rate == 2
        assert args.method == "auto"

    def test_bad_method_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(
                ["compute", "x.json", "-s", "s", "-t", "t", "-d", "1", "--method", "magic"]
            )


class TestCommands:
    def test_describe(self, net_file, capsys):
        assert main(["describe", net_file]) == 0
        out = capsys.readouterr().out
        assert "fujita-fig4" in out
        assert "e0" in out

    def test_compute_auto(self, net_file, capsys):
        assert main(["compute", net_file, "-s", "s", "-t", "t", "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "0.8426357910" in out

    def test_compute_explicit_method(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2", "--method", "naive"]
        ) == 0
        assert "naive" in capsys.readouterr().out

    def test_compute_json_output(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2", "--json"]
        ) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["reliability"] == pytest.approx(0.842635791)
        assert payload["method"] == "bottleneck"

    def test_compute_montecarlo(self, net_file, capsys):
        assert main(
            [
                "compute", net_file, "-s", "s", "-t", "t", "-d", "2",
                "--method", "montecarlo", "--samples", "2000",
            ]
        ) == 0
        assert "interval" in capsys.readouterr().out

    def test_bounds(self, net_file, capsys):
        assert main(["bounds", net_file, "-s", "s", "-t", "t", "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "lower bound" in out and "upper bound" in out

    def test_distribution(self, net_file, capsys):
        assert main(["distribution", net_file, "-s", "s", "-t", "t"]) == 0
        out = capsys.readouterr().out
        assert "expected deliverable rate" in out

    def test_sample_network_stdout(self, capsys):
        assert main(["sample-network", "--kind", "diamond"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert len(payload["links"]) == 4

    def test_sample_network_file(self, tmp_path, capsys):
        out_path = tmp_path / "sample.json"
        assert main(["sample-network", "--kind", "fig4", "-o", str(out_path)]) == 0
        assert out_path.exists()

    def test_missing_file_is_error(self, capsys):
        assert main(["describe", "/nonexistent/net.json"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_bad_terminal_is_error(self, net_file, capsys):
        assert main(["compute", net_file, "-s", "s", "-t", "zzz", "-d", "1"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_roundtrip_sample_to_compute(self, tmp_path, capsys):
        out_path = tmp_path / "bn.json"
        assert main(["sample-network", "--kind", "bottlenecked", "-o", str(out_path)]) == 0
        capsys.readouterr()
        assert main(["compute", str(out_path), "-s", "s", "-t", "t", "-d", "2"]) == 0
        assert "reliability" in capsys.readouterr().out


class TestImportanceCommand:
    def test_importance_output(self, net_file, capsys):
        assert main(["importance", net_file, "-s", "s", "-t", "t", "-d", "2"]) == 0
        out = capsys.readouterr().out
        assert "birnbaum" in out
        assert "e0" in out

    def test_importance_measure_choice(self, net_file, capsys):
        assert main(
            ["importance", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--measure", "fussell_vesely"]
        ) == 0
        assert "e0" in capsys.readouterr().out

    def test_bad_measure_rejected(self, net_file):
        with pytest.raises(SystemExit):
            main(["importance", net_file, "-s", "s", "-t", "t", "-d", "2",
                  "--measure", "vibes"])


class TestModuleEntryPoint:
    def test_version_flag(self):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "--version"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        assert "repro 1.0.0" in proc.stdout

    def test_module_compute_round_trip(self, net_file):
        import subprocess
        import sys

        proc = subprocess.run(
            [sys.executable, "-m", "repro", "compute", net_file,
             "-s", "s", "-t", "t", "-d", "2", "--json"],
            capture_output=True,
            text=True,
        )
        assert proc.returncode == 0
        import json as _json

        payload = _json.loads(proc.stdout)
        assert abs(payload["reliability"] - 0.842635791) < 1e-9
