"""Unit tests for the Eq. (1) bridge case and the headline bottleneck
algorithm."""

import pytest

from repro.core.bottleneck import (
    bottleneck_reliability,
    pattern_probabilities,
    pattern_probability,
)
from repro.core.bridge import bridge_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.exceptions import DecompositionError, ReproValueError
from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    parallel_links,
    series_chain,
)
from repro.graph.generators import bottlenecked_network
from repro.graph.network import FlowNetwork


class TestPatternProbability:
    def test_sums_to_one(self):
        net = fujita_fig4()
        total = sum(pattern_probability(net, (0, 1), p) for p in range(4))
        assert total == pytest.approx(1.0)

    def test_all_alive(self):
        net = fujita_fig4(failure_probability=0.1)
        assert pattern_probability(net, (0, 1), 0b11) == pytest.approx(0.81)

    def test_all_dead(self):
        net = fujita_fig4(failure_probability=0.1)
        assert pattern_probability(net, (0, 1), 0) == pytest.approx(0.01)

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_vectorized_table_is_ulp_identical(self, seed):
        """The doubling table multiplies in the same left-to-right order
        as the scalar product, so every entry must be *bit*-equal — the
        Eq. (3) terms (and hence the prob_fsum total) are unchanged by
        the vectorization."""
        net = bottlenecked_network(
            source_side_links=4,
            sink_side_links=3,
            num_bottlenecks=3,
            demand=2,
            seed=seed,
        )
        cut = tuple(range(3))
        table = pattern_probabilities(net, cut)
        assert len(table) == 8
        for pattern in range(8):
            assert float(table[pattern]) == pattern_probability(net, cut, pattern)

    def test_vectorized_table_empty_cut(self):
        net = fujita_fig4()
        table = pattern_probabilities(net, ())
        assert list(table) == [1.0]

    @pytest.mark.parametrize("pattern", [-1, 4, 1 << 10])
    def test_pattern_out_of_range(self, pattern):
        net = fujita_fig4()
        with pytest.raises(ReproValueError, match="out of range for a 2-link cut"):
            pattern_probability(net, (0, 1), pattern)

    @pytest.mark.parametrize("index", [-1, 99])
    def test_cut_index_out_of_range(self, index):
        net = fujita_fig4()
        with pytest.raises(ReproValueError, match="out of range"):
            pattern_probability(net, (0, index), 0)
        with pytest.raises(ReproValueError, match="out of range"):
            pattern_probabilities(net, (0, index))

    def test_cut_index_not_an_integer(self):
        net = fujita_fig4()
        with pytest.raises(ReproValueError, match="not an integer"):
            pattern_probability(net, (0, "e1"), 0)
        with pytest.raises(ReproValueError, match="not an integer"):
            pattern_probabilities(net, (0.5,))


class TestBridgeReliability:
    def test_fig2_matches_naive(self):
        net = fujita_fig2_bridge()
        demand = FlowDemand("s", "t", 2)
        assert bridge_reliability(net, demand).value == pytest.approx(
            naive_reliability(net, demand).value
        )

    def test_eq1_product_structure(self):
        net = fujita_fig2_bridge(failure_probability=0.2, bridge_failure_probability=0.3)
        demand = FlowDemand("s", "t", 1)
        result = bridge_reliability(net, demand)
        d = result.details
        assert result.value == pytest.approx(
            d["source_side_reliability"] * d["bridge_availability"] * d["sink_side_reliability"]
        )

    def test_capacity_below_demand_trivially_zero(self):
        net = fujita_fig2_bridge(bridge_capacity=1)
        result = bridge_reliability(net, FlowDemand("s", "t", 2))
        assert result.value == 0.0
        assert "capacity" in result.details["reason"]

    def test_auto_discovers_bridge(self):
        net = fujita_fig2_bridge()
        result = bridge_reliability(net, FlowDemand("s", "t", 1))
        assert result.details["bridge"] == 8

    def test_no_bridge_raises(self):
        with pytest.raises(DecompositionError):
            bridge_reliability(diamond(), FlowDemand("s", "t", 1))

    def test_chain_of_bridges(self):
        # every link is a bridge; decomposing at the middle one works
        net = series_chain(3, capacity=1, failure_probability=0.1)
        demand = FlowDemand("s", "t", 1)
        result = bridge_reliability(net, demand, bridge=1)
        assert result.value == pytest.approx(0.9**3)

    def test_terminal_on_bridge_endpoint(self):
        # s -> t single link: both sides are trivial
        net = series_chain(1, capacity=2, failure_probability=0.25)
        result = bridge_reliability(net, FlowDemand("s", "t", 1))
        assert result.value == pytest.approx(0.75)


class TestBottleneckReliability:
    def test_fig4_matches_naive(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        assert bottleneck_reliability(net, demand, cut=[0, 1]).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-12
        )

    def test_fig4_demand_one(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 1)
        assert bottleneck_reliability(net, demand).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-12
        )

    def test_fig4_demand_three(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 3)
        assert bottleneck_reliability(net, demand, cut=[0, 1]).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-12
        )

    def test_bridge_special_case(self):
        # k=1 goes through the same machinery and must match Eq. (1)
        net = fujita_fig2_bridge()
        demand = FlowDemand("s", "t", 2)
        assert bottleneck_reliability(net, demand, cut=[8]).value == pytest.approx(
            bridge_reliability(net, demand).value, abs=1e-12
        )

    def test_cut_discovery(self):
        net = fujita_fig4()
        result = bottleneck_reliability(net, FlowDemand("s", "t", 2))
        assert result.details["cut"] == (0, 1)

    def test_cut_capacity_below_demand(self):
        net = fujita_fig4()
        result = bottleneck_reliability(net, FlowDemand("s", "t", 5), cut=[0, 1])
        assert result.value == 0.0
        assert result.details["reason"] == "cut capacity below demand"

    def test_no_cut_raises(self):
        with pytest.raises(DecompositionError):
            bottleneck_reliability(parallel_links(5), FlowDemand("s", "t", 1))

    def test_invalid_cut_rejected(self):
        with pytest.raises(DecompositionError):
            bottleneck_reliability(fujita_fig4(), FlowDemand("s", "t", 2), cut=[0])

    @pytest.mark.parametrize("strategy", ["zeta", "pairs"])
    def test_strategies_agree(self, strategy):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        value = bottleneck_reliability(net, demand, cut=[0, 1], strategy=strategy).value
        assert value == pytest.approx(0.8426357910000003, abs=1e-12)

    def test_flow_call_count_bound(self):
        """Cost matches §III-C: at most |D| (2^{|E_s|} + 2^{|E_t|}) solves."""
        net = fujita_fig4()
        result = bottleneck_reliability(
            net, FlowDemand("s", "t", 2), cut=[0, 1], prune=False, incremental=False
        )
        assert result.flow_calls == 3 * (2**4 + 2**3)

    def test_prune_does_not_change_value(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        a = bottleneck_reliability(net, demand, cut=[0, 1], prune=True)
        b = bottleneck_reliability(net, demand, cut=[0, 1], prune=False)
        assert a.value == pytest.approx(b.value, abs=1e-15)
        assert a.flow_calls <= b.flow_calls

    @pytest.mark.parametrize("seed", range(6))
    def test_random_bottlenecked_instances(self, seed):
        net = bottlenecked_network(
            source_side_links=6, sink_side_links=6, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        assert bottleneck_reliability(net, demand).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    @pytest.mark.parametrize("k", [1, 2, 3])
    def test_varying_bottleneck_count(self, k):
        net = bottlenecked_network(
            source_side_links=max(4, k + 2),
            sink_side_links=max(4, k + 2),
            num_bottlenecks=k,
            demand=2,
            seed=11,
        )
        demand = FlowDemand("s", "t", 2)
        assert bottleneck_reliability(net, demand, cut=list(range(k))).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    def test_shared_port_cut_links(self):
        """Two bottleneck links sharing the same source-side endpoint."""
        net = FlowNetwork()
        net.add_link("x", "y1", 1, 0.1)  # 0 (cut)
        net.add_link("x", "y2", 1, 0.1)  # 1 (cut)
        net.add_link("s", "x", 2, 0.1)  # 2
        net.add_link("y1", "t", 1, 0.1)  # 3
        net.add_link("y2", "t", 1, 0.1)  # 4
        demand = FlowDemand("s", "t", 2)
        assert bottleneck_reliability(net, demand, cut=[0, 1]).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-12
        )

    def test_alpha_reported(self):
        result = bottleneck_reliability(fujita_fig4(), FlowDemand("s", "t", 2), cut=[0, 1])
        assert result.details["alpha"] == pytest.approx(4 / 9)
