"""Unit tests for the factoring baseline and the Monte-Carlo estimator."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.factoring import factoring_reliability
from repro.core.montecarlo import montecarlo_reliability, wilson_interval
from repro.core.naive import naive_reliability
from repro.exceptions import EstimationError, IntractableError
from repro.graph.builders import diamond, parallel_links, series_chain, two_paths
from repro.graph.generators import bottlenecked_network, random_network
from repro.graph.network import FlowNetwork


class TestFactoring:
    def test_series(self):
        net = series_chain(3, capacity=1, failure_probability=0.1)
        assert factoring_reliability(net, FlowDemand("s", "t", 1)).value == pytest.approx(0.9**3)

    def test_parallel(self):
        net = parallel_links(3, 1, 0.1)
        result = factoring_reliability(net, FlowDemand("s", "t", 2))
        assert result.value == pytest.approx(3 * 0.81 * 0.1 + 0.729)

    @pytest.mark.parametrize("seed", range(8))
    def test_matches_naive_on_random(self, seed):
        net = random_network(6, 11, seed=seed)
        demand = FlowDemand("s", "t", 1)
        assert factoring_reliability(net, demand).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_matches_naive_demand_two(self, seed):
        net = bottlenecked_network(
            source_side_links=5, sink_side_links=5, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        assert factoring_reliability(net, demand).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    def test_impossible_demand(self):
        assert factoring_reliability(diamond(), FlowDemand("s", "t", 5)).value == 0.0

    def test_certain_network(self):
        net = series_chain(2, capacity=1, failure_probability=0.0)
        result = factoring_reliability(net, FlowDemand("s", "t", 1))
        assert result.value == 1.0
        # the pessimistic short-circuit fires at the root: 1 branch node
        assert result.details["branch_nodes"] == 1

    def test_heuristic_reduces_branching(self):
        net = bottlenecked_network(
            source_side_links=7, sink_side_links=7, num_bottlenecks=2, demand=2, seed=3
        )
        demand = FlowDemand("s", "t", 2)
        smart = factoring_reliability(net, demand, use_flow_heuristic=True)
        dumb = factoring_reliability(net, demand, use_flow_heuristic=False)
        assert smart.value == pytest.approx(dumb.value, abs=1e-10)
        assert smart.details["branch_nodes"] <= dumb.details["branch_nodes"]

    def test_far_fewer_calls_than_naive(self):
        net = bottlenecked_network(
            source_side_links=8, sink_side_links=8, num_bottlenecks=2, demand=2, seed=1
        )
        demand = FlowDemand("s", "t", 2)
        fact = factoring_reliability(net, demand)
        naive = naive_reliability(net, demand, prune=False)
        assert fact.flow_calls < naive.flow_calls / 4

    def test_size_guard(self):
        net = parallel_links(41)
        with pytest.raises(IntractableError):
            factoring_reliability(net, FlowDemand("s", "t", 1))


class TestWilsonInterval:
    def test_contains_point_estimate(self):
        low, high = wilson_interval(40, 100)
        assert low < 0.4 < high

    def test_extreme_zero(self):
        low, high = wilson_interval(0, 50)
        assert low == 0.0
        assert high > 0.0

    def test_extreme_full(self):
        low, high = wilson_interval(50, 50)
        assert high == 1.0
        assert low < 1.0

    def test_narrower_with_more_samples(self):
        w_small = wilson_interval(40, 100)
        w_big = wilson_interval(400, 1000)
        assert (w_big[1] - w_big[0]) < (w_small[1] - w_small[0])

    def test_higher_confidence_is_wider(self):
        w90 = wilson_interval(40, 100, 0.90)
        w99 = wilson_interval(40, 100, 0.99)
        assert (w99[1] - w99[0]) > (w90[1] - w90[0])

    def test_bad_inputs(self):
        with pytest.raises(EstimationError):
            wilson_interval(5, 0)
        with pytest.raises(EstimationError):
            wilson_interval(11, 10)
        with pytest.raises(EstimationError):
            wilson_interval(5, 10, confidence=0.5)


class TestMonteCarlo:
    def test_deterministic(self):
        demand = FlowDemand("s", "t", 1)
        a = montecarlo_reliability(diamond(), demand, num_samples=1000, seed=5)
        b = montecarlo_reliability(diamond(), demand, num_samples=1000, seed=5)
        assert a.value == b.value

    def test_interval_covers_exact(self):
        demand = FlowDemand("s", "t", 1)
        exact = naive_reliability(diamond(), demand).value
        est = montecarlo_reliability(diamond(), demand, num_samples=20_000, seed=0, confidence=0.99)
        assert est.contains(exact)

    def test_interval_covers_exact_demand_two(self):
        net = two_paths(2, 1)
        demand = FlowDemand("s", "t", 3)
        exact = naive_reliability(net, demand).value
        est = montecarlo_reliability(net, demand, num_samples=20_000, seed=1, confidence=0.99)
        assert est.contains(exact)

    def test_cache_bounds_flow_calls(self):
        demand = FlowDemand("s", "t", 1)
        est = montecarlo_reliability(diamond(), demand, num_samples=5000, seed=2)
        assert est.details["flow_calls"] <= 16
        assert est.details["distinct_configurations"] <= 16

    def test_sure_network(self):
        net = series_chain(1, capacity=1, failure_probability=0.0)
        est = montecarlo_reliability(net, FlowDemand("s", "t", 1), num_samples=100, seed=0)
        assert est.value == 1.0

    def test_impossible_network(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1, 0.1)
        est = montecarlo_reliability(net, FlowDemand("s", "t", 1), num_samples=100, seed=0)
        assert est.value == 0.0

    def test_sample_count_respected(self):
        est = montecarlo_reliability(diamond(), FlowDemand("s", "t", 1), num_samples=777, seed=0)
        assert est.num_samples == 777
        assert 0 <= est.hits <= 777

    def test_batching_irrelevant_to_value(self):
        demand = FlowDemand("s", "t", 1)
        a = montecarlo_reliability(diamond(), demand, num_samples=1000, seed=7, batch_size=64)
        b = montecarlo_reliability(diamond(), demand, num_samples=1000, seed=7, batch_size=4096)
        assert a.value == b.value

    def test_bad_arguments(self):
        demand = FlowDemand("s", "t", 1)
        with pytest.raises(EstimationError):
            montecarlo_reliability(diamond(), demand, num_samples=0)
        with pytest.raises(EstimationError):
            montecarlo_reliability(diamond(), demand, num_samples=10, batch_size=0)
