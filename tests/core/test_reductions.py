"""Unit tests for series–parallel reductions."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.reductions import reduce_for_unit_demand, series_parallel_reliability
from repro.exceptions import ReproError
from repro.graph.builders import diamond, parallel_links, series_chain, two_paths
from repro.graph.network import FlowNetwork
from tests.conftest import random_small_network

UNIT = FlowDemand("s", "t", 1)


class TestSeriesParallelReliability:
    def test_series_chain(self):
        net = series_chain(4, 1, 0.1)
        result = series_parallel_reliability(net, UNIT)
        assert result.value == pytest.approx(0.9**4)
        assert result.details["series_steps"] == 3

    def test_parallel_links(self):
        net = parallel_links(3, 1, 0.2)
        result = series_parallel_reliability(net, UNIT)
        assert result.value == pytest.approx(1 - 0.2**3)
        assert result.details["parallel_steps"] == 2

    def test_diamond(self):
        result = series_parallel_reliability(diamond(), UNIT)
        assert result.value == pytest.approx(1 - (1 - 0.81) ** 2)

    def test_two_paths(self):
        net = two_paths(2, 1, 0.1)
        result = series_parallel_reliability(net, UNIT)
        assert result.value == pytest.approx(
            naive_reliability(net, UNIT).value, abs=1e-12
        )

    def test_matches_naive_on_sp_networks(self):
        # nested series/parallel composition
        net = FlowNetwork()
        net.add_link("s", "a", 1, 0.1)
        net.add_link("a", "t", 1, 0.15)
        net.add_link("s", "b", 1, 0.2)
        net.add_link("b", "c", 1, 0.25)
        net.add_link("c", "t", 1, 0.3)
        net.add_link("b", "c", 1, 0.35)  # parallel inside the lower path
        result = series_parallel_reliability(net, FlowDemand("s", "t", 1))
        expected = naive_reliability(net, FlowDemand("s", "t", 1)).value
        assert result.value == pytest.approx(expected, abs=1e-12)

    def test_undirected_sp_network(self):
        net = FlowNetwork()
        net.add_link("s", "a", 1, 0.1, directed=False)
        net.add_link("a", "t", 1, 0.1, directed=False)
        net.add_link("s", "t", 1, 0.3, directed=False)
        result = series_parallel_reliability(net, FlowDemand("s", "t", 1))
        expected = naive_reliability(net, FlowDemand("s", "t", 1)).value
        assert result.value == pytest.approx(expected, abs=1e-12)

    def test_non_sp_network_rejected(self):
        # the Wheatstone bridge is the canonical non-SP graph
        net = diamond(cross_link=True)
        with pytest.raises(ReproError):
            series_parallel_reliability(net, UNIT)

    def test_demand_two_rejected(self):
        with pytest.raises(ReproError):
            series_parallel_reliability(diamond(), FlowDemand("s", "t", 2))

    def test_disconnected_is_zero(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1, 0.1)  # wrong direction only
        result = series_parallel_reliability(net, FlowDemand("s", "t", 1))
        assert result.value == 0.0

    def test_dead_branch_pruned(self):
        net = series_chain(2, 1, 0.1)
        net.add_link("v1", "dead_end", 1, 0.5)
        result = series_parallel_reliability(net, UNIT)
        assert result.value == pytest.approx(0.81)
        assert result.details["pruned_links"] >= 1

    def test_zero_capacity_link_ignored(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.2)
        net.add_link("s", "t", 0, 0.0)  # zero capacity: dead weight
        result = series_parallel_reliability(net, UNIT)
        assert result.value == pytest.approx(0.8)


class TestReduceForUnitDemand:
    def test_preserves_reliability_on_random_networks(self):
        """The key soundness property: reducing never changes the d=1
        reliability, fully reducible or not."""
        for seed in range(10):
            net = random_small_network(seed)
            demand = FlowDemand("s", "t", 1)
            report = reduce_for_unit_demand(net, demand)
            expected = naive_reliability(net, demand).value
            if report.network.num_links == 0:
                assert expected == pytest.approx(0.0, abs=1e-12)
            else:
                reduced_value = naive_reliability(report.network, demand).value
                assert reduced_value == pytest.approx(expected, abs=1e-10), f"seed={seed}"

    def test_never_grows(self):
        for seed in range(6):
            net = random_small_network(seed)
            report = reduce_for_unit_demand(net, FlowDemand("s", "t", 1))
            assert report.network.num_links <= net.num_links

    def test_mixed_direction_parallels_not_merged(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.5)
        net.add_link("s", "t", 1, 0.5, directed=False)
        report = reduce_for_unit_demand(net, FlowDemand("s", "t", 1))
        # they must not merge blindly, but the reliability must hold
        expected = naive_reliability(net, FlowDemand("s", "t", 1)).value
        value = naive_reliability(report.network, FlowDemand("s", "t", 1)).value
        assert value == pytest.approx(expected, abs=1e-12)

    def test_report_counts(self):
        report = reduce_for_unit_demand(series_chain(3, 1, 0.1), FlowDemand("s", "t", 1))
        assert report.original_links == 3
        assert report.series_steps == 2
        assert report.fully_reduced
