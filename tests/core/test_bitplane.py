"""Unit tests for the bit-parallel block kernel and the sharded builds."""

import numpy as np
import pytest

from repro.core.assignments import enumerate_assignments
from repro.core.bitplane import (
    DEFAULT_BLOCK_BITS,
    blocked_side_masks,
    build_side_array_blocked,
    resolve_block_bits,
)
from repro.core.demand import FlowDemand
from repro.core.engine import build_realization_arrays
from repro.core.shard import plan_columns, sharded_sweep
from repro.core.sweep import ArrayCache, SweepSpec
from repro.exceptions import ReproValueError
from repro.graph.builders import fujita_fig4
from repro.graph.cuts import find_bottleneck
from repro.obs import Recorder, record


def _fig4_split():
    net = fujita_fig4()
    split = find_bottleneck(net, "s", "t", max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    return net, split, enumerate_assignments(capacities, 2)


class TestResolveBlockBits:
    def test_none_passes_through(self):
        assert resolve_block_bits(None) is None

    def test_valid_range(self):
        assert resolve_block_bits(1) == 1
        assert resolve_block_bits(DEFAULT_BLOCK_BITS) == DEFAULT_BLOCK_BITS
        assert resolve_block_bits(20) == 20

    @pytest.mark.parametrize("bad", [0, -3, 21, 64])
    def test_out_of_range_rejected(self, bad):
        with pytest.raises(ReproValueError, match="block_bits"):
            resolve_block_bits(bad)


class TestBlockedSideArray:
    def test_matches_scalar_engine_arrays(self):
        net, split, assignments = _fig4_split()
        source, sink, _stats = build_realization_arrays(
            split,
            source="s",
            sink="t",
            assignments=assignments,
            demand=2,
            workers=1,
        )
        blocked_source = build_side_array_blocked(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            block_bits=6,
        )
        assert np.array_equal(source.masks, blocked_source.masks)
        assert source.num_assignments == blocked_source.num_assignments

    def test_counts_once_under_recorder(self):
        """The serial wrapper owns the counting; totals must partition
        exactly like the scalar path's (no double count via replay)."""
        _net, split, assignments = _fig4_split()
        rec = Recorder()
        with record(rec):
            build_side_array_blocked(
                split.source_side,
                role="source",
                terminal="s",
                ports=split.source_ports,
                assignments=assignments,
                demand=2,
                block_bits=6,
            )
        totals = rec.counter_totals()
        size = 1 << len(split.source_side.link_map)
        assert totals["array_entries_built"] == size * len(assignments)
        solved = totals["flow_solves"]
        assert 0 < solved <= size * len(assignments)
        assert totals.get("block_screened", 0) > 0

    def test_screens_do_not_change_masks(self):
        _net, split, assignments = _fig4_split()
        kwargs = dict(
            role="sink",
            terminal="t",
            ports=split.sink_ports,
            assignments=assignments,
            demand=2,
            block_bits=4,
        )
        screened = build_side_array_blocked(split.sink_side, **kwargs)
        unscreened = build_side_array_blocked(
            split.sink_side, screen=False, **kwargs
        )
        assert np.array_equal(screened.masks, unscreened.masks)

    def test_engine_stats_carry_block_accounting(self):
        _net, split, assignments = _fig4_split()
        _source, _sink, stats = build_realization_arrays(
            split,
            source="s",
            sink="t",
            assignments=assignments,
            demand=2,
            workers=2,
            block_bits=5,
        )
        assert stats["block_bits"] == 5
        assert stats["block_screened"] > 0
        assert stats["screened_solves"] >= stats["block_screened"]


class TestBlockedKernelErrors:
    def test_bad_block_bits_rejected(self):
        _net, split, assignments = _fig4_split()
        with pytest.raises(ReproValueError, match="block_bits"):
            build_side_array_blocked(
                split.source_side,
                role="source",
                terminal="s",
                ports=split.source_ports,
                assignments=assignments,
                demand=2,
                block_bits=0,
            )


class TestShardPlan:
    def test_two_sides_and_unique_keys(self):
        net = fujita_fig4()
        sides, units = plan_columns(
            net,
            FlowDemand("s", "t", 2),
            sweep=SweepSpec.availability([0.8, 0.9]),
        )
        assert [s["role"] for s in sides] == ["source", "sink"]
        keys = [u["key"] for u in units]
        assert len(keys) == len(set(keys))
        # availability sweeps share one demand: columns = assignments x sides
        assert all(u["demand"] == 2 for u in units)

    def test_sharded_sweep_rejects_zero_shards(self, tmp_path):
        with pytest.raises(ReproValueError, match="shards"):
            sharded_sweep(
                fujita_fig4(),
                FlowDemand("s", "t", 2),
                sweep=SweepSpec.availability([0.8]),
                shards=0,
                cache_dir=str(tmp_path),
            )


class TestClaims:
    def test_memory_only_cache_refuses_claims(self):
        cache = ArrayCache()
        with pytest.raises(ReproValueError, match="directory"):
            cache.try_claim("k")
        with pytest.raises(ReproValueError, match="directory"):
            cache.release_claim("k")

    def test_release_is_idempotent(self, tmp_path):
        cache = ArrayCache(tmp_path)
        assert cache.try_claim("k")
        cache.release_claim("k")
        cache.release_claim("k")  # no claim file left — still fine
        assert cache.try_claim("k")


class TestKernelInternals:
    def test_blocked_masks_bit_identical_to_wrapper(self):
        """``blocked_side_masks`` (uncounted kernel) and the counting
        wrapper agree — the engine dispatch path returns the same rows."""
        from repro.core.arrays import _side_template
        from repro.flow.base import get_solver

        _net, split, assignments = _fig4_split()
        view = split.source_side
        net = view.network
        ports = list(split.source_ports)
        template, port_names, s_idx, t_idx = _side_template(
            net, role="source", terminal="s", ports=ports, demand=2
        )
        rows, stats = blocked_side_masks(
            net,
            template,
            port_names,
            s_idx,
            t_idx,
            role="source",
            terminal="s",
            ports=ports,
            assignments=assignments,
            demand=2,
            solver=get_solver(None),
            n_bits=net.num_links,
            block_bits=6,
        )
        wrapped = build_side_array_blocked(
            view,
            role="source",
            terminal="s",
            ports=ports,
            assignments=assignments,
            demand=2,
            block_bits=6,
        )
        assert stats.flow_calls > 0
        assert np.array_equal(rows, wrapped.masks)
