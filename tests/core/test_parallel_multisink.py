"""Unit tests for the process-parallel enumeration and the broadcast
(multi-sink) extension."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.multisink import broadcast_reliability, coverage_curve
from repro.core.naive import naive_reliability
from repro.core.parallel import default_workers, parallel_naive_reliability
from repro.exceptions import DemandError, EstimationError
from repro.graph.builders import diamond, fujita_fig4, parallel_links, two_paths
from repro.graph.generators import bottlenecked_network
from repro.graph.network import FlowNetwork


class TestParallelNaive:
    def test_matches_serial_fig4(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        serial = naive_reliability(net, demand).value
        for workers in (1, 2, 4):
            par = parallel_naive_reliability(net, demand, workers=workers)
            assert par.value == pytest.approx(serial, abs=1e-12), workers

    @pytest.mark.parametrize("seed", range(3))
    def test_matches_serial_random(self, seed):
        net = bottlenecked_network(
            source_side_links=5, sink_side_links=5, num_bottlenecks=2, demand=2, seed=seed
        )
        demand = FlowDemand("s", "t", 2)
        serial = naive_reliability(net, demand).value
        par = parallel_naive_reliability(net, demand, workers=2)
        assert par.value == pytest.approx(serial, abs=1e-12)

    def test_unpruned_variant(self):
        net = diamond()
        demand = FlowDemand("s", "t", 1)
        par = parallel_naive_reliability(net, demand, workers=2, prune=False)
        assert par.value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-12
        )
        assert par.flow_calls == 16  # no pruning: every configuration solved

    def test_chunking_metadata(self):
        net = diamond()
        result = parallel_naive_reliability(net, FlowDemand("s", "t", 1), workers=3)
        assert result.method == "naive-parallel"
        assert result.details["chunks"] == 4  # next power of two

    def test_worker_validation(self):
        with pytest.raises(EstimationError):
            parallel_naive_reliability(diamond(), FlowDemand("s", "t", 1), workers=0)

    def test_default_workers_positive(self):
        assert default_workers() >= 1

    def test_more_workers_than_configurations(self):
        net = parallel_links(2, 1, 0.1)
        result = parallel_naive_reliability(net, FlowDemand("s", "t", 1), workers=16)
        assert result.value == pytest.approx(1 - 0.01)


class TestBroadcastReliability:
    def build(self):
        """s feeds two subscribers through a shared capacity-2 trunk."""
        net = FlowNetwork()
        net.add_link("s", "hub", 2, 0.1)  # the shared trunk
        net.add_link("hub", "u", 1, 0.1)
        net.add_link("hub", "v", 1, 0.1)
        return net

    def test_simultaneity_constraint(self):
        """Both subscribers need their unit at once: the trunk carries 2,
        so broadcast is possible, but a capacity-1 trunk would kill it."""
        net = self.build()
        both = broadcast_reliability(net, "s", ["u", "v"], 1)
        expected = 0.9**3  # trunk + both legs must be up
        assert both.value == pytest.approx(expected, abs=1e-12)

    def test_capacity_contention(self):
        net = self.build().with_failure_probabilities([0.1, 0.1, 0.1])
        thin = FlowNetwork()
        thin.add_link("s", "hub", 1, 0.1)  # trunk too thin for two copies
        thin.add_link("hub", "u", 1, 0.1)
        thin.add_link("hub", "v", 1, 0.1)
        assert broadcast_reliability(thin, "s", ["u", "v"], 1).value == 0.0

    def test_single_subscriber_equals_paper_quantity(self):
        net = fujita_fig4()
        single = broadcast_reliability(net, "s", ["t"], 2)
        expected = naive_reliability(net, FlowDemand("s", "t", 2)).value
        assert single.value == pytest.approx(expected, abs=1e-12)

    def test_never_above_weakest_individual(self):
        net = self.build()
        report = coverage_curve(net, "s", ["u", "v"], 1)
        assert report.broadcast <= min(report.individual) + 1e-12

    def test_validation(self):
        net = self.build()
        with pytest.raises(DemandError):
            broadcast_reliability(net, "s", [], 1)
        with pytest.raises(DemandError):
            broadcast_reliability(net, "s", ["u", "u"], 1)
        with pytest.raises(DemandError):
            broadcast_reliability(net, "s", ["u", "s"], 1)
        with pytest.raises(DemandError):
            broadcast_reliability(net, "s", ["nope"], 1)
        with pytest.raises(DemandError):
            broadcast_reliability(net, "s", ["u"], 0)


class TestCoverageCurve:
    def test_report_fields(self):
        net = two_paths(2, 1, 0.1)
        net.add_link("a", "u", 1, 0.2)
        report = coverage_curve(net, "s", ["t", "u"], 1)
        assert len(report.individual) == 2
        assert report.subscribers == ("t", "u")
        assert 0 <= report.expected_coverage <= 1
        weakest, value = report.weakest
        assert value == min(report.individual)

    def test_expected_coverage_is_mean(self):
        net = two_paths(2, 1, 0.1)
        net.add_link("a", "u", 1, 0.2)
        report = coverage_curve(net, "s", ["t", "u"], 1)
        assert report.expected_coverage == pytest.approx(
            sum(report.individual) / 2
        )

    def test_individual_values_match_compute(self):
        net = self_net = fujita_fig4()
        report = coverage_curve(net, "s", ["t"], 2)
        expected = naive_reliability(net, FlowDemand("s", "t", 2)).value
        assert report.individual[0] == pytest.approx(expected, abs=1e-10)


class TestCoverageDistribution:
    def build(self):
        from repro.graph.builders import two_paths

        net = two_paths(2, 1, 0.1)
        net.add_link("a", "u", 1, 0.2)
        return net

    def test_is_a_distribution(self):
        from repro.core.multisink import coverage_distribution

        pmf = coverage_distribution(self.build(), "s", ["t", "u"], 1)
        assert len(pmf) == 3
        assert sum(pmf) == pytest.approx(1.0)
        assert all(p >= 0 for p in pmf)

    def test_mean_matches_individual_sum(self):
        from repro.core.multisink import coverage_curve, coverage_distribution

        net = self.build()
        pmf = coverage_distribution(net, "s", ["t", "u"], 1)
        report = coverage_curve(net, "s", ["t", "u"], 1)
        mean = sum(k * p for k, p in enumerate(pmf))
        assert mean == pytest.approx(sum(report.individual), abs=1e-10)

    def test_single_subscriber_reduces_to_reliability(self):
        from repro.core.multisink import coverage_distribution

        net = fujita_fig4()
        pmf = coverage_distribution(net, "s", ["t"], 2)
        expected = naive_reliability(net, FlowDemand("s", "t", 2)).value
        assert pmf[1] == pytest.approx(expected, abs=1e-12)
        assert pmf[0] == pytest.approx(1 - expected, abs=1e-12)

    def test_all_or_nothing_when_subscribers_share_everything(self):
        from repro.core.multisink import coverage_distribution
        from repro.graph.network import FlowNetwork

        net = FlowNetwork()
        net.add_link("s", "hub", 1, 0.3)
        net.add_link("hub", "u", 1, 0.0)
        net.add_link("hub", "v", 1, 0.0)
        pmf = coverage_distribution(net, "s", ["u", "v"], 1)
        # both served iff the trunk survives; exactly-one is impossible
        assert pmf[1] == pytest.approx(0.0, abs=1e-12)
        assert pmf[2] == pytest.approx(0.7, abs=1e-12)

    def test_validation(self):
        from repro.core.multisink import coverage_distribution
        from repro.exceptions import DemandError

        with pytest.raises(DemandError):
            coverage_distribution(self.build(), "s", [], 1)
        with pytest.raises(DemandError):
            coverage_distribution(self.build(), "s", ["t"], 0)
