"""Unit tests for the frontier-sweep exact algorithm."""

import numpy as np
import pytest

from repro.core.demand import FlowDemand
from repro.core.frontier import bfs_link_order, frontier_reliability, frontier_width
from repro.core.naive import naive_reliability
from repro.exceptions import ReproError
from repro.graph.network import FlowNetwork

UNIT = FlowDemand("s", "t", 1)


def undirected_random(seed: int, n: int = 5, m: int = 9) -> FlowNetwork:
    rng = np.random.default_rng(seed)
    nodes = ["s", "t"] + [f"v{i}" for i in range(n - 2)]
    net = FlowNetwork()
    net.add_nodes(nodes)
    order = list(rng.permutation(n))
    for pos in range(1, n):
        a = nodes[order[int(rng.integers(0, pos))]]
        b = nodes[order[pos]]
        net.add_link(a, b, 1, float(rng.uniform(0.05, 0.5)), directed=False)
    while net.num_links < m:
        i, j = int(rng.integers(0, n)), int(rng.integers(0, n))
        if i == j:
            continue
        net.add_link(nodes[i], nodes[j], 1, float(rng.uniform(0.05, 0.5)), directed=False)
    return net


def undirected_ladder(sections: int, p: float = 0.1) -> FlowNetwork:
    net = FlowNetwork(name=f"uladder-{sections}")
    nodes = ["s"] + [f"m{i}" for i in range(sections - 1)] + ["t"]
    for a, b in zip(nodes, nodes[1:]):
        net.add_link(a, b, 1, p, directed=False)
        net.add_link(a, b, 1, p, directed=False)
    return net


class TestFrontierReliability:
    def test_single_link(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.25, directed=False)
        assert frontier_reliability(net, UNIT).value == pytest.approx(0.75)

    def test_series_of_two(self):
        net = FlowNetwork()
        net.add_link("s", "m", 1, 0.1, directed=False)
        net.add_link("m", "t", 1, 0.2, directed=False)
        assert frontier_reliability(net, UNIT).value == pytest.approx(0.9 * 0.8)

    def test_parallel_pair(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.3, directed=False)
        net.add_link("s", "t", 1, 0.4, directed=False)
        assert frontier_reliability(net, UNIT).value == pytest.approx(1 - 0.12)

    def test_undirected_diamond(self):
        net = FlowNetwork()
        for a, b in [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t")]:
            net.add_link(a, b, 1, 0.1, directed=False)
        expected = naive_reliability(net, UNIT).value
        assert frontier_reliability(net, UNIT).value == pytest.approx(expected, abs=1e-12)

    def test_wheatstone_bridge(self):
        # the canonical non-series-parallel case
        net = FlowNetwork()
        for a, b in [("s", "a"), ("s", "b"), ("a", "t"), ("b", "t"), ("a", "b")]:
            net.add_link(a, b, 1, 0.2, directed=False)
        expected = naive_reliability(net, UNIT).value
        assert frontier_reliability(net, UNIT).value == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("seed", range(12))
    def test_matches_naive_on_random_undirected(self, seed):
        net = undirected_random(seed)
        expected = naive_reliability(net, UNIT).value
        assert frontier_reliability(net, UNIT).value == pytest.approx(expected, abs=1e-10)

    def test_long_ladder_closed_form(self):
        net = undirected_ladder(50)  # 100 links, 2^100 configurations
        result = frontier_reliability(net, UNIT)
        assert result.value == pytest.approx((1 - 0.01) ** 50, abs=1e-12)
        assert result.details["peak_states"] <= 4

    def test_disconnected_terminal(self):
        net = FlowNetwork()
        net.add_node("t")
        net.add_link("s", "a", 1, 0.1, directed=False)
        assert frontier_reliability(net, UNIT).value == 0.0

    def test_zero_capacity_links_ignored(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.3, directed=False)
        net.add_link("s", "t", 0, 0.0, directed=False)
        assert frontier_reliability(net, UNIT).value == pytest.approx(0.7)

    def test_rejects_directed_links(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.1)
        with pytest.raises(ReproError):
            frontier_reliability(net, UNIT)

    def test_rejects_rate_two(self):
        net = FlowNetwork()
        net.add_link("s", "t", 2, 0.1, directed=False)
        with pytest.raises(ReproError):
            frontier_reliability(net, FlowDemand("s", "t", 2))

    def test_custom_order_must_cover(self):
        net = undirected_ladder(3)
        with pytest.raises(ReproError):
            frontier_reliability(net, UNIT, order=[0, 1])

    def test_custom_order_same_value(self):
        net = undirected_random(3)
        expected = frontier_reliability(net, UNIT).value
        reversed_order = list(range(net.num_links))[::-1]
        assert frontier_reliability(net, UNIT, order=reversed_order).value == pytest.approx(
            expected, abs=1e-10
        )

    def test_state_budget_guard(self):
        net = undirected_random(5, n=5, m=9)
        with pytest.raises(ReproError):
            frontier_reliability(net, UNIT, max_states=1)


class TestOrderHelpers:
    def test_bfs_order_covers_all_links(self):
        net = undirected_random(1)
        order = bfs_link_order(net, "s")
        assert sorted(order) == list(range(net.num_links))

    def test_bfs_order_includes_unreachable(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.1, directed=False)
        net.add_link("x", "y", 1, 0.1, directed=False)
        order = bfs_link_order(net, "s")
        assert sorted(order) == [0, 1]
        assert order[0] == 0

    def test_frontier_width_chain(self):
        net = undirected_ladder(10)
        order = bfs_link_order(net, "s")
        assert frontier_width(net, order) <= 3

    def test_frontier_width_reflects_order_quality(self):
        net = undirected_ladder(6)
        good = bfs_link_order(net, "s")
        # interleave the two ends: pathologically wide order
        bad = good[::2] + good[1::2]
        assert frontier_width(net, good) <= frontier_width(net, bad)
