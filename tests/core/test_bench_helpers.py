"""Unit tests for the bench harness (repro.bench) and exceptions."""

import pytest

from repro.bench.harness import TimedResult, time_call
from repro.bench.reporting import PHASE_HEADERS, format_table, phase_rows, print_table
from repro.bench.workloads import (
    alpha_workload,
    chain_workload,
    dk_workload,
    scaling_workload,
)
from repro.core.naive import naive_reliability
from repro.exceptions import (
    DecompositionError,
    GraphError,
    IntractableError,
    LinkNotFoundError,
    NodeNotFoundError,
    ReproError,
    SolverError,
    ValidationError,
)


class TestTimeCall:
    def test_returns_value_and_time(self):
        result = time_call(lambda x: x * 2, 21)
        assert isinstance(result, TimedResult)
        assert result.value == 42
        assert result.seconds >= 0.0

    def test_repeats_keep_best(self):
        calls = []

        def fn():
            calls.append(1)
            return len(calls)

        result = time_call(fn, repeats=3)
        assert len(calls) == 3
        assert result.value == 3

    def test_kwargs_forwarded(self):
        result = time_call(lambda *, a: a + 1, a=1, repeats=1)
        assert result.value == 2

    def test_all_seconds_keeps_every_repetition(self):
        result = time_call(lambda: None, repeats=4)
        assert len(result.all_seconds) == 4
        assert result.seconds == min(result.all_seconds)
        assert all(s >= 0.0 for s in result.all_seconds)

    def test_spread_statistics(self):
        result = TimedResult("v", 1.0, [1.0, 3.0, 2.0])
        assert result.mean_seconds == pytest.approx(2.0)
        assert result.max_seconds == 3.0
        assert result.spread_seconds == pytest.approx(2.0)

    def test_all_seconds_defaults_to_single_sample(self):
        result = TimedResult("v", 0.5)
        assert result.all_seconds == [0.5]

    def test_repetitions_recorded_as_spans(self):
        from repro import obs

        with obs.record() as rec:
            time_call(lambda: None, repeats=2, label="bench.unit")
        names = [s.name for s in rec.root.children]
        assert names == ["bench.unit", "bench.unit"]
        assert [s.attrs["repeat"] for s in rec.root.children] == [0, 1]


class TestPhaseRows:
    def test_rows_match_headers(self):
        summary = {
            "seconds": 2.0,
            "counters": {"flow_solves": 10},
            "phases": [
                {"name": "build", "seconds": 1.5, "counters": {"flow_solves": 10}},
                {"name": "accumulate", "seconds": 0.5, "counters": {}},
            ],
        }
        rows = phase_rows(summary)
        assert len(rows) == 2
        assert all(len(row) == len(PHASE_HEADERS) for row in rows)
        assert rows[0] == ["build", 1.5, "75.0%", 10]
        assert rows[1] == ["accumulate", 0.5, "25.0%", 0]

    def test_zero_total_has_no_share(self):
        summary = {
            "seconds": 0.0,
            "phases": [{"name": "p", "seconds": 0.0, "counters": {}}],
        }
        assert phase_rows(summary)[0][2] == "-"

    def test_round_trips_from_traced_compute(self):
        from repro import obs
        from repro.core.api import compute_reliability
        from repro.core.demand import FlowDemand
        from repro.graph.builders import fujita_fig4

        with obs.record():
            result = compute_reliability(
                fujita_fig4(), demand=FlowDemand("s", "t", 2), method="bottleneck"
            )
        rows = phase_rows(result.details["obs"])
        assert sum(row[3] for row in rows) == result.flow_calls
        table = format_table(PHASE_HEADERS, rows, title="phases")
        assert "flow_solves" in table


class TestFormatTable:
    def test_alignment(self):
        table = format_table(["a", "bb"], [[1, 22], [333, 4]])
        lines = table.splitlines()
        assert len(lines) == 4
        widths = {len(line) for line in lines}
        assert len(widths) == 1  # all rows padded to equal width

    def test_title(self):
        assert format_table(["x"], [[1]], title="T").startswith("T\n")

    def test_float_formatting(self):
        table = format_table(["v"], [[0.123456], [1e-9], [12345.6], [0.0]])
        assert "0.1235" in table
        assert "1.000e-09" in table
        assert "1.235e+04" in table

    def test_print_table(self, capsys):
        print_table(["h"], [[1]], title="hello")
        out = capsys.readouterr().out
        assert "hello" in out and "1" in out


class TestWorkloads:
    def test_scaling_workload_shape(self):
        w = scaling_workload(10, demand=2, k=2, seed=0)
        assert w.network.num_links == 12
        assert w.demand.rate == 2
        assert w.num_links == 12
        assert w.params["total_links"] == 10

    def test_alpha_workload_bounds(self):
        w = alpha_workload(12, 0.75, seed=0)
        assert w.network.num_links >= 12
        with pytest.raises(ValueError):
            alpha_workload(12, 0.4)
        with pytest.raises(ValueError):
            alpha_workload(12, 1.0)

    def test_dk_workload(self):
        w = dk_workload(3, 2, side_links=5, seed=0)
        assert w.demand.rate == 3
        assert w.params["k"] == 2

    def test_chain_workload(self):
        w = chain_workload(3, 4, demand=1, cut_size=2, seed=0)
        assert len(w.network._chain_cut_indices) == 2

    def test_workloads_are_solvable(self):
        w = scaling_workload(8, demand=2, k=2, seed=1)
        result = naive_reliability(w.network, w.demand)
        assert 0 <= result.value <= 1


class TestExceptionHierarchy:
    def test_all_derive_from_repro_error(self):
        for exc_type in (
            GraphError,
            NodeNotFoundError,
            LinkNotFoundError,
            ValidationError,
            DecompositionError,
            SolverError,
            IntractableError,
        ):
            assert issubclass(exc_type, ReproError)

    def test_node_not_found_payload(self):
        exc = NodeNotFoundError("x")
        assert exc.node == "x"
        assert "x" in str(exc)

    def test_link_not_found_payload(self):
        exc = LinkNotFoundError(7)
        assert exc.link == 7

    def test_intractable_payload(self):
        exc = IntractableError("too big", required=30, limit=24)
        assert exc.required == 30
        assert exc.limit == 24

    def test_graph_errors_are_graph_errors(self):
        assert issubclass(NodeNotFoundError, GraphError)
        assert issubclass(ValidationError, GraphError)
