"""Unit tests for the compensated accumulator backing RR102."""

from __future__ import annotations

import math

import pytest

from repro.core.summation import KahanSum, prob_fsum


class TestKahanSum:
    def test_empty_is_zero(self):
        acc = KahanSum()
        assert acc.value == 0.0
        assert acc.count == 0

    def test_recovers_cancelled_small_term(self):
        # Naive left-to-right float addition loses the 1.0 entirely.
        terms = [1e16, 1.0, -1e16]
        naive = 0.0
        for t in terms:
            naive += t
        assert naive == 0.0
        acc = KahanSum()
        acc.extend(terms)
        assert acc.value == 1.0

    def test_matches_fsum_on_probability_masses(self):
        pmf = [0.1] * 10
        acc = KahanSum()
        acc.extend(pmf)
        assert acc.value == math.fsum(pmf) == 1.0

    def test_iadd_and_float(self):
        acc = KahanSum()
        acc += 0.25
        acc += 0.5
        assert float(acc) == 0.75
        assert acc.count == 2

    def test_extend_counts(self):
        acc = KahanSum()
        acc.extend([0.5, 0.25, 0.125])
        assert acc.count == 3
        assert acc.value == pytest.approx(0.875)

    def test_repr_shows_state(self):
        acc = KahanSum()
        acc.add(0.5)
        assert "KahanSum" in repr(acc)

    def test_alternating_series_stability(self):
        # sum_{k=1}^{n} (-1)^k / k converges to -ln 2; compensation keeps
        # the running error at the ulp scale.
        n = 100_000
        terms = [(-1.0) ** k / k for k in range(1, n + 1)]
        acc = KahanSum()
        acc.extend(terms)
        assert acc.value == pytest.approx(math.fsum(terms), abs=1e-15)


class TestProbFsum:
    def test_exact_on_adversarial_terms(self):
        assert prob_fsum([1e16, 1.0, -1e16]) == 1.0

    def test_accepts_generators(self):
        assert prob_fsum(0.25 for _ in range(4)) == 1.0

    def test_empty(self):
        assert prob_fsum([]) == 0.0
