"""Unit tests for the feasibility oracle and the naive algorithm."""

import numpy as np
import pytest

from repro.core.demand import FlowDemand
from repro.core.feasibility import FeasibilityOracle
from repro.core.naive import feasibility_table, naive_reliability
from repro.exceptions import IntractableError, SolverError
from repro.graph.builders import diamond, parallel_links, series_chain, two_paths
from repro.graph.network import FlowNetwork
from repro.probability.bitset import popcount


class TestFeasibilityOracle:
    def test_feasible_all_alive(self):
        oracle = FeasibilityOracle(diamond(), "s", "t", 2)
        assert oracle.feasible(None)

    def test_infeasible_subset(self):
        oracle = FeasibilityOracle(diamond(), "s", "t", 2)
        assert not oracle.feasible(0b0111)  # one branch broken

    def test_mask_and_iterable_agree(self):
        oracle = FeasibilityOracle(diamond(), "s", "t", 1)
        assert oracle.feasible(0b0101) == oracle.feasible([0, 2])

    def test_call_counter(self):
        oracle = FeasibilityOracle(diamond(), "s", "t", 1)
        oracle.feasible(0)
        oracle.feasible(1)
        assert oracle.calls == 2

    def test_zero_demand_always_feasible(self):
        oracle = FeasibilityOracle(diamond(), "s", "t", 0)
        assert oracle.feasible(0)
        assert oracle.calls == 0

    def test_flow_value(self):
        oracle = FeasibilityOracle(two_paths(2, 1), "s", "t", 1)
        assert oracle.flow_value(None) == 3

    def test_used_links(self):
        oracle = FeasibilityOracle(series_chain(2), "s", "t", 1)
        assert oracle.used_links(None) == [0, 1]

    def test_negative_demand_rejected(self):
        with pytest.raises(SolverError):
            FeasibilityOracle(diamond(), "s", "t", -1)

    def test_unknown_terminal(self):
        with pytest.raises(SolverError):
            FeasibilityOracle(diamond(), "s", "zzz", 1)


class TestFeasibilityTable:
    def test_monotone(self):
        table, _ = feasibility_table(diamond(), FlowDemand("s", "t", 1))
        m = 4
        for mask in range(1 << m):
            if table[mask]:
                for j in range(m):
                    assert table[mask | (1 << j)]

    def test_pruned_equals_unpruned(self):
        demand = FlowDemand("s", "t", 2)
        for net in (diamond(), two_paths(2, 1), parallel_links(3)):
            pruned, _ = feasibility_table(net, demand, prune=True)
            plain, _ = feasibility_table(net, demand, prune=False)
            assert np.array_equal(pruned, plain)

    def test_pruning_saves_calls(self):
        demand = FlowDemand("s", "t", 2)
        net = diamond()
        _, oracle_pruned = feasibility_table(net, demand, prune=True, incremental=False)
        _, oracle_plain = feasibility_table(
            net, demand, prune=False, incremental=False
        )
        assert oracle_pruned.calls < oracle_plain.calls
        assert oracle_plain.calls == 16

    def test_known_table_parallel(self):
        # parallel 3 links, d=2: feasible iff >= 2 links alive
        table, _ = feasibility_table(parallel_links(3), FlowDemand("s", "t", 2))
        for mask in range(8):
            assert table[mask] == (popcount(mask) >= 2)


class TestNaiveReliability:
    def test_series_is_product(self):
        net = series_chain(3, capacity=1, failure_probability=0.1)
        result = naive_reliability(net, FlowDemand("s", "t", 1))
        assert result.value == pytest.approx(0.9**3)

    def test_parallel_closed_form(self):
        net = parallel_links(3, 1, 0.1)
        result = naive_reliability(net, FlowDemand("s", "t", 2))
        expected = 3 * 0.9**2 * 0.1 + 0.9**3
        assert result.value == pytest.approx(expected)

    def test_diamond_closed_form(self):
        # two independent 2-hop paths, each up with prob 0.81
        result = naive_reliability(diamond(), FlowDemand("s", "t", 1))
        assert result.value == pytest.approx(1 - (1 - 0.81) ** 2)

    def test_impossible_demand_is_zero(self):
        result = naive_reliability(diamond(capacity=1), FlowDemand("s", "t", 3))
        assert result.value == 0.0

    def test_sure_network(self):
        net = series_chain(2, capacity=2, failure_probability=0.0)
        assert naive_reliability(net, FlowDemand("s", "t", 1)).value == pytest.approx(1.0)

    def test_metadata(self):
        result = naive_reliability(diamond(), FlowDemand("s", "t", 1))
        assert result.method == "naive"
        assert result.configurations == 16
        assert result.flow_calls > 0
        assert 0 < result.details["feasible_configurations"] < 16

    def test_unpruned_method_name(self):
        result = naive_reliability(diamond(), FlowDemand("s", "t", 1), prune=False)
        assert result.method == "naive-unpruned"

    def test_size_guard(self):
        net = parallel_links(25)
        with pytest.raises(IntractableError):
            naive_reliability(net, FlowDemand("s", "t", 1))

    def test_demand_terminal_validation(self):
        from repro.exceptions import DemandError

        with pytest.raises(DemandError):
            naive_reliability(diamond(), FlowDemand("s", "zzz", 1))

    def test_solver_choice_does_not_change_value(self):
        demand = FlowDemand("s", "t", 2)
        values = {
            solver: naive_reliability(two_paths(2, 1), demand, solver=solver).value
            for solver in ("dinic", "edmonds_karp", "push_relabel", "capacity_scaling")
        }
        assert len({round(v, 12) for v in values.values()}) == 1
