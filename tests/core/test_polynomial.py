"""Unit tests for the reliability polynomial."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.polynomial import reliability_polynomial
from repro.exceptions import EstimationError
from repro.graph.builders import diamond, fujita_fig4, parallel_links, series_chain
from repro.graph.network import FlowNetwork

UNIT = FlowDemand("s", "t", 1)


class TestCoefficients:
    def test_series_chain_counts(self):
        # only the all-alive configuration delivers
        poly = reliability_polynomial(series_chain(3), UNIT)
        assert poly.counts == (0, 0, 0, 1)

    def test_parallel_counts(self):
        # any non-empty subset of 3 parallel links delivers
        poly = reliability_polynomial(parallel_links(3), UNIT)
        assert poly.counts == (0, 3, 3, 1)

    def test_parallel_demand_two(self):
        poly = reliability_polynomial(parallel_links(3), FlowDemand("s", "t", 2))
        assert poly.counts == (0, 0, 3, 1)

    def test_diamond_counts(self):
        # feasible sets: supersets of {0,2} or {1,3}
        poly = reliability_polynomial(diamond(), UNIT)
        assert poly.counts == (0, 0, 2, 4, 1)

    def test_min_feasible_links(self):
        assert reliability_polynomial(diamond(), UNIT).min_feasible_links == 2
        assert reliability_polynomial(series_chain(4), UNIT).min_feasible_links == 4

    def test_infeasible_network(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1)
        poly = reliability_polynomial(net, UNIT)
        assert poly.min_feasible_links is None
        assert poly(0.1) == 0.0

    def test_coefficient_bounds(self):
        for net in (diamond(), fujita_fig4(), parallel_links(4)):
            assert reliability_polynomial(net, UNIT).coefficient_bounds_hold()

    def test_feasible_configuration_count_matches_table(self):
        poly = reliability_polynomial(fujita_fig4(), FlowDemand("s", "t", 2))
        naive = naive_reliability(fujita_fig4(), FlowDemand("s", "t", 2))
        assert poly.feasible_configurations == naive.details["feasible_configurations"]


class TestEvaluation:
    @pytest.mark.parametrize("p", [0.0, 0.05, 0.1, 0.3, 0.5, 0.8, 1.0])
    def test_matches_naive_at_any_p(self, p):
        net = fujita_fig4()
        poly = reliability_polynomial(net, FlowDemand("s", "t", 2))
        if p < 1.0:
            direct = naive_reliability(
                net.with_failure_probabilities([p] * net.num_links),
                FlowDemand("s", "t", 2),
            ).value
        else:
            direct = 0.0
        assert poly(p) == pytest.approx(direct, abs=1e-12)

    def test_endpoints(self):
        poly = reliability_polynomial(diamond(), UNIT)
        assert poly(0.0) == 1.0
        assert poly(1.0) == 0.0

    def test_monotone_decreasing(self):
        poly = reliability_polynomial(fujita_fig4(), FlowDemand("s", "t", 2))
        values = poly.curve([0.0, 0.1, 0.2, 0.4, 0.6, 0.8, 1.0])
        for a, b in zip(values, values[1:]):
            assert b <= a + 1e-12

    def test_derivative_sign_and_value(self):
        poly = reliability_polynomial(diamond(), UNIT)
        for p in (0.1, 0.5, 0.9):
            d = poly.derivative(p)
            assert d <= 0
            eps = 1e-7
            fd = (poly(p + eps) - poly(p - eps)) / (2 * eps)
            assert d == pytest.approx(fd, abs=1e-5)

    def test_curve_crossover_between_topologies(self):
        """Two parallel links beat one fat link at every p — structure
        comparisons with no repeated enumeration."""
        redundant = reliability_polynomial(parallel_links(2, 1, 0.0), UNIT)
        single = reliability_polynomial(parallel_links(1, 2, 0.0), UNIT)
        for p in (0.05, 0.2, 0.5, 0.9):
            assert redundant(p) >= single(p)

    def test_validation(self):
        poly = reliability_polynomial(diamond(), UNIT)
        with pytest.raises(EstimationError):
            poly(1.5)
        with pytest.raises(EstimationError):
            poly.derivative(0.0)
