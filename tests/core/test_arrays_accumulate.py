"""Unit tests for the §III-C realization arrays and §IV ACCUMULATION —
including Example 2 (array semantics), Example 6 / Table I (the worked
accumulation) and the Fig. 5 configurations."""

import numpy as np
import pytest

from repro.core.accumulate import (
    accumulate,
    restrict_masks,
    side_class_probabilities,
)
from repro.core.arrays import RealizationArray, build_side_array
from repro.core.assignments import enumerate_assignments
from repro.exceptions import SolverError
from repro.graph.builders import fujita_fig4
from repro.graph.transforms import split_on_cut
from repro.probability.bitset import mask_from_indices


def fig4_split():
    net = fujita_fig4()
    return net, split_on_cut(net, "s", "t", [0, 1])


def fig4_source_array(prune=True):
    net, split = fig4_split()
    assignments = enumerate_assignments([2, 2], 2)  # [(0,2), (1,1), (2,0)]
    return (
        assignments,
        build_side_array(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            prune=prune,
        ),
    )


class TestBuildSideArray:
    def test_dimensions(self):
        assignments, array = fig4_source_array()
        assert len(array.masks) == 2**4
        assert array.num_assignments == 3
        assert array.probabilities.sum() == pytest.approx(1.0)

    def test_fig5_configurations(self):
        """The three Fig. 5 failure configurations of G_s.

        Source side links (side-local order): e3, e4, e5, e6.
        Assignment order: [(0,2), (1,1), (2,0)].
        """
        assignments, array = fig4_source_array()
        j = {a: i for i, a in enumerate(assignments)}
        all_alive = 0b1111
        assert set(array.realized_indices(all_alive)) == {j[(0, 2)], j[(1, 1)], j[(2, 0)]}
        no_e4 = 0b1101  # kill side link 1 (= e4)
        assert set(array.realized_indices(no_e4)) == {j[(0, 2)], j[(1, 1)]}
        no_e4_e6 = 0b0101  # kill e4 and e6
        assert set(array.realized_indices(no_e4_e6)) == {j[(1, 1)]}

    def test_empty_configuration_realizes_nothing(self):
        _, array = fig4_source_array()
        assert array.realized_indices(0) == []

    def test_monotone_in_alive_set(self):
        _, array = fig4_source_array()
        for mask in range(16):
            for b in range(4):
                sup = mask | (1 << b)
                assert int(array.masks[mask]) & ~int(array.masks[sup]) == 0

    def test_prune_equals_noprune(self):
        _, pruned = fig4_source_array(prune=True)
        _, plain = fig4_source_array(prune=False)
        assert np.array_equal(pruned.masks, plain.masks)
        assert pruned.flow_calls <= plain.flow_calls

    def test_sink_side(self):
        net, split = fig4_split()
        assignments = enumerate_assignments([2, 2], 2)
        array = build_side_array(
            split.sink_side,
            role="sink",
            terminal="t",
            ports=split.sink_ports,
            assignments=assignments,
            demand=2,
        )
        # all alive: every assignment deliverable (Fig. 4 design)
        assert set(array.realized_indices((1 << 3) - 1)) == {0, 1, 2}

    def test_realizes_accessor(self):
        _, array = fig4_source_array()
        assert array.realizes(0b1111, 0)
        assert not array.realizes(0, 0)

    def test_role_validation(self):
        net, split = fig4_split()
        with pytest.raises(SolverError):
            build_side_array(
                split.source_side,
                role="middle",
                terminal="s",
                ports=split.source_ports,
                assignments=[(2, 0)],
                demand=2,
            )

    def test_arity_validation(self):
        net, split = fig4_split()
        with pytest.raises(SolverError):
            build_side_array(
                split.source_side,
                role="source",
                terminal="s",
                ports=split.source_ports,
                assignments=[(2,)],
                demand=2,
            )

    def test_sum_validation(self):
        net, split = fig4_split()
        with pytest.raises(SolverError):
            build_side_array(
                split.source_side,
                role="source",
                terminal="s",
                ports=split.source_ports,
                assignments=[(1, 0)],
                demand=2,
            )

    def test_unknown_port(self):
        net, split = fig4_split()
        with pytest.raises(SolverError):
            build_side_array(
                split.source_side,
                role="source",
                terminal="s",
                ports=("x1", "nope"),
                assignments=[(1, 1)],
                demand=2,
            )


def toy_array(masks, probs, num_assignments):
    return RealizationArray(
        masks=np.asarray(masks, dtype=np.uint64),
        probabilities=np.asarray(probs, dtype=np.float64),
        num_assignments=num_assignments,
        flow_calls=0,
    )


class TestRestrictMasks:
    def test_projection(self):
        masks = np.array([0b101, 0b011, 0b110], dtype=np.uint64)
        out = restrict_masks(masks, [0, 2])
        assert out.tolist() == [0b11, 0b01, 0b10]

    def test_reordering(self):
        masks = np.array([0b01], dtype=np.uint64)
        assert restrict_masks(masks, [1, 0]).tolist() == [0b10]

    def test_empty_selection(self):
        masks = np.array([0b111], dtype=np.uint64)
        assert restrict_masks(masks, []).tolist() == [0]


class TestExample6TableI:
    """Paper Example 6 / Table I, with symbolic configuration weights.

    G_s configurations c1..c4 realize {b1}, {b2}, {b1,b2}, {b2};
    G_t configurations c5..c8 realize {b1,b2}, {b2}, {b1}, {}.
    """

    S_MASKS = [0b01, 0b10, 0b11, 0b10]
    T_MASKS = [0b11, 0b10, 0b01, 0b00]

    def arrays(self, ps, pt):
        return (
            toy_array(self.S_MASKS, ps, 2),
            toy_array(self.T_MASKS, pt, 2),
        )

    def expected(self, ps, pt):
        p_b1 = (ps[0] + ps[2]) * (pt[0] + pt[2])
        p_b2 = (ps[1] + ps[2] + ps[3]) * (pt[0] + pt[1])
        p_b12 = ps[2] * pt[0]
        return p_b1 + p_b2 - p_b12

    @pytest.mark.parametrize("strategy", ["zeta", "pairs"])
    def test_uniform_weights(self, strategy):
        ps = [0.25] * 4
        pt = [0.25] * 4
        source, sink = self.arrays(ps, pt)
        value = accumulate(source, sink, [0, 1], strategy=strategy)
        assert value == pytest.approx(self.expected(ps, pt))

    @pytest.mark.parametrize("strategy", ["zeta", "pairs"])
    def test_skewed_weights(self, strategy):
        ps = [0.1, 0.2, 0.3, 0.4]
        pt = [0.4, 0.3, 0.2, 0.1]
        source, sink = self.arrays(ps, pt)
        value = accumulate(source, sink, [0, 1], strategy=strategy)
        assert value == pytest.approx(self.expected(ps, pt))

    def test_single_assignment_class(self):
        ps = [0.1, 0.2, 0.3, 0.4]
        pt = [0.4, 0.3, 0.2, 0.1]
        source, sink = self.arrays(ps, pt)
        # class {b1}: P_s(b1) * P_t(b1)
        value = accumulate(source, sink, [0])
        assert value == pytest.approx((0.1 + 0.3) * (0.4 + 0.2))


class TestAccumulateGeneral:
    def test_strategies_agree_random(self):
        rng = np.random.default_rng(0)
        for _ in range(20):
            n_s, n_t, q = 8, 8, 4
            ps = rng.random(n_s)
            ps /= ps.sum()
            pt = rng.random(n_t)
            pt /= pt.sum()
            source = toy_array(rng.integers(0, 1 << q, n_s), ps, q)
            sink = toy_array(rng.integers(0, 1 << q, n_t), pt, q)
            idx = [0, 1, 2, 3]
            a = accumulate(source, sink, idx, strategy="zeta")
            b = accumulate(source, sink, idx, strategy="pairs")
            assert a == pytest.approx(b)

    def test_empty_class_is_zero(self):
        source = toy_array([0b1], [1.0], 1)
        sink = toy_array([0b1], [1.0], 1)
        assert accumulate(source, sink, []) == 0.0

    def test_bruteforce_cross_check(self):
        rng = np.random.default_rng(7)
        n_s, n_t, q = 6, 5, 3
        ps = rng.random(n_s)
        ps /= ps.sum()
        pt = rng.random(n_t)
        pt /= pt.sum()
        s_masks = rng.integers(0, 1 << q, n_s)
        t_masks = rng.integers(0, 1 << q, n_t)
        source = toy_array(s_masks, ps, q)
        sink = toy_array(t_masks, pt, q)
        expected = sum(
            ps[i] * pt[j]
            for i in range(n_s)
            for j in range(n_t)
            if int(s_masks[i]) & int(t_masks[j])
        )
        assert accumulate(source, sink, [0, 1, 2]) == pytest.approx(expected)

    def test_mismatched_arrays_rejected(self):
        source = toy_array([0], [1.0], 1)
        sink = toy_array([0], [1.0], 2)
        with pytest.raises(ValueError):
            accumulate(source, sink, [0])

    def test_out_of_range_index_rejected(self):
        source = toy_array([0], [1.0], 1)
        sink = toy_array([0], [1.0], 1)
        with pytest.raises(ValueError):
            accumulate(source, sink, [3])

    def test_unknown_strategy_rejected(self):
        source = toy_array([0], [1.0], 1)
        sink = toy_array([0], [1.0], 1)
        with pytest.raises(ValueError):
            accumulate(source, sink, [0], strategy="quantum")

    def test_side_class_probabilities_sum(self):
        source = toy_array([0b01, 0b10, 0b11], [0.2, 0.3, 0.5], 2)
        table = side_class_probabilities(source, [0, 1])
        assert table.sum() == pytest.approx(1.0)
        assert table[0b01] == pytest.approx(0.2)


class TestBudgetGuards:
    def test_zeta_refuses_huge_assignment_classes(self):
        from repro.exceptions import IntractableError

        source = toy_array([0], [1.0], 40)
        with pytest.raises(IntractableError):
            side_class_probabilities(source, list(range(25)))

    def test_accumulate_pairs_handles_large_classes(self):
        # the pairs strategy has no 2^q table, so q = 25 is fine
        source = toy_array([0b1, 0b10], [0.5, 0.5], 40)
        sink = toy_array([0b1, 0b11], [0.5, 0.5], 40)
        value = accumulate(source, sink, list(range(25)), strategy="pairs")
        assert 0.0 <= value <= 1.0

    def test_auto_switches_to_pairs_for_large_classes(self):
        source = toy_array([0b1], [1.0], 40)
        sink = toy_array([0b1], [1.0], 40)
        # auto must not raise (zeta would): 15 assignments > the 12 cutoff
        value = accumulate(source, sink, list(range(15)))
        assert value == pytest.approx(1.0)
