"""Unit tests for the chain-decomposition extension."""

import pytest

from repro.core.bottleneck import bottleneck_reliability
from repro.core.chain import analyze_chain, chain_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.exceptions import DecompositionError
from repro.graph.builders import fujita_fig2_bridge, fujita_fig4, series_chain
from repro.graph.generators import chained_network
from repro.graph.network import FlowNetwork


class TestAnalyzeChain:
    def test_single_cut(self):
        structure = analyze_chain(fujita_fig4(), "s", "t", [[0, 1]])
        assert structure.num_segments == 2
        assert structure.out_ports == [("x1", "x2")]
        assert structure.in_ports == [("y1", "y2")]

    def test_series_chain_cuts(self):
        net = series_chain(3)
        structure = analyze_chain(net, "s", "t", [[0], [1], [2]])
        assert structure.num_segments == 4
        assert structure.largest_segment_links == 0

    def test_generated_chain(self):
        net = chained_network([4, 4, 4], cut_sizes=2, demand=1, seed=0)
        structure = analyze_chain(net, "s", "t", net._chain_cut_indices)
        assert structure.num_segments == 3

    def test_overlapping_cuts_rejected(self):
        with pytest.raises(DecompositionError):
            analyze_chain(series_chain(3), "s", "t", [[0], [0]])

    def test_wrong_order_rejected(self):
        net = series_chain(3)
        with pytest.raises(DecompositionError):
            analyze_chain(net, "s", "t", [[1], [0]])

    def test_non_separating_rejected(self):
        net = fujita_fig4()
        with pytest.raises(DecompositionError):
            analyze_chain(net, "s", "t", [[0]])

    def test_backwards_cut_link_rejected(self):
        net = FlowNetwork()
        net.add_link("s", "a", 1)
        net.add_link("b", "a", 1)  # backwards across the cut
        net.add_link("b", "t", 1)
        with pytest.raises(DecompositionError):
            analyze_chain(net, "s", "t", [[1]])

    def test_empty_cut_list_rejected(self):
        with pytest.raises(DecompositionError):
            analyze_chain(series_chain(2), "s", "t", [])


class TestChainReliability:
    def test_single_cut_equals_bottleneck(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        chain = chain_reliability(net, demand, [[0, 1]])
        bneck = bottleneck_reliability(net, demand, cut=[0, 1])
        assert chain.value == pytest.approx(bneck.value, abs=1e-12)

    def test_bridge_chain(self):
        net = fujita_fig2_bridge()
        demand = FlowDemand("s", "t", 2)
        assert chain_reliability(net, demand, [[8]]).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-12
        )

    def test_series_chain_full_decomposition(self):
        net = series_chain(4, capacity=1, failure_probability=0.2)
        demand = FlowDemand("s", "t", 1)
        result = chain_reliability(net, demand, [[0], [1], [2], [3]])
        assert result.value == pytest.approx(0.8**4)

    @pytest.mark.parametrize("seed", range(4))
    def test_two_cut_chain_matches_naive(self, seed):
        net = chained_network([4, 4, 4], cut_sizes=2, demand=1, seed=seed)
        demand = FlowDemand("s", "t", 1)
        assert chain_reliability(net, demand, net._chain_cut_indices).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    @pytest.mark.parametrize("seed", range(3))
    def test_demand_two_chain(self, seed):
        net = chained_network([4, 5, 4], cut_sizes=2, demand=2, seed=seed)
        demand = FlowDemand("s", "t", 2)
        assert chain_reliability(net, demand, net._chain_cut_indices).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    def test_three_cuts(self):
        net = chained_network([3, 4, 4, 3], cut_sizes=[1, 2, 1], demand=1, seed=5)
        demand = FlowDemand("s", "t", 1)
        assert chain_reliability(net, demand, net._chain_cut_indices).value == pytest.approx(
            naive_reliability(net, demand).value, abs=1e-10
        )

    def test_undersized_cut_gives_zero(self):
        net = series_chain(2, capacity=1)
        result = chain_reliability(net, FlowDemand("s", "t", 2), [[0], [1]])
        assert result.value == 0.0
        assert "cut" in result.details["reason"]

    def test_flow_calls_far_below_naive(self):
        net = chained_network([4, 5, 4], cut_sizes=2, demand=2, seed=7)
        demand = FlowDemand("s", "t", 2)
        chain = chain_reliability(net, demand, net._chain_cut_indices)
        naive = naive_reliability(net, demand, prune=False)
        assert chain.flow_calls < naive.flow_calls / 10

    def test_details(self):
        net = chained_network([4, 4, 4], cut_sizes=2, demand=1, seed=0)
        result = chain_reliability(net, FlowDemand("s", "t", 1), net._chain_cut_indices)
        assert result.details["num_cuts"] == 2
        assert len(result.details["interface_sizes"]) == 2


class TestChainGuards:
    def test_interface_assignment_budget(self):
        from repro.exceptions import DecompositionError
        from repro.graph.generators import chained_network

        # d=4 over 4-link cuts: |A| = C(7,3) = 35 > the DP budget of 16
        net = chained_network([8, 8], cut_sizes=4, demand=4, seed=0)
        demand = FlowDemand("s", "t", 4)
        with pytest.raises(DecompositionError):
            chain_reliability(net, demand, net._chain_cut_indices)
