"""Unit tests for minimal-path enumeration and the minpath method."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.paths import minimal_paths, minpath_reliability
from repro.exceptions import IntractableError, ReproError
from repro.graph.builders import diamond, parallel_links, series_chain, two_paths
from repro.graph.network import FlowNetwork
from tests.conftest import random_small_network

UNIT = FlowDemand("s", "t", 1)


class TestMinimalPaths:
    def test_series_chain_single_path(self):
        paths = minimal_paths(series_chain(3), "s", "t")
        assert paths == [(0, 1, 2)]

    def test_parallel_links_one_path_each(self):
        paths = minimal_paths(parallel_links(3), "s", "t")
        assert sorted(paths) == [(0,), (1,), (2,)]

    def test_diamond_two_paths(self):
        paths = minimal_paths(diamond(), "s", "t")
        assert sorted(paths) == [(0, 2), (1, 3)]

    def test_bridge_network_four_paths(self):
        paths = minimal_paths(diamond(cross_link=True), "s", "t")
        # s-a-t, s-b-t, s-a-b-t (via cross link)
        assert len(paths) == 3

    def test_direction_respected(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1)
        assert minimal_paths(net, "s", "t") == []

    def test_undirected_traversable_both_ways(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1, directed=False)
        assert minimal_paths(net, "s", "t") == [(0,)]

    def test_zero_capacity_excluded(self):
        net = FlowNetwork()
        net.add_link("s", "t", 0)
        net.add_link("s", "t", 1)
        assert minimal_paths(net, "s", "t") == [(1,)]

    def test_simple_paths_only(self):
        # a cycle must not generate infinitely many paths
        net = FlowNetwork()
        net.add_link("s", "a", 1)
        net.add_link("a", "b", 1)
        net.add_link("b", "a", 1)  # cycle
        net.add_link("a", "t", 1)
        paths = minimal_paths(net, "s", "t")
        assert paths == [(0, 3)]

    def test_max_paths_guard(self):
        net = parallel_links(5)
        with pytest.raises(IntractableError):
            minimal_paths(net, "s", "t", max_paths=3)

    def test_deterministic_order(self):
        a = minimal_paths(diamond(), "s", "t")
        b = minimal_paths(diamond(), "s", "t")
        assert a == b


class TestMinpathReliability:
    def test_series(self):
        net = series_chain(3, 1, 0.1)
        assert minpath_reliability(net, UNIT).value == pytest.approx(0.9**3)

    def test_parallel(self):
        net = parallel_links(3, 1, 0.2)
        assert minpath_reliability(net, UNIT).value == pytest.approx(1 - 0.2**3)

    def test_diamond(self):
        assert minpath_reliability(diamond(), UNIT).value == pytest.approx(
            1 - (1 - 0.81) ** 2
        )

    def test_wheatstone_bridge(self):
        net = diamond(cross_link=True)
        expected = naive_reliability(net, UNIT).value
        assert minpath_reliability(net, UNIT).value == pytest.approx(expected, abs=1e-12)

    @pytest.mark.parametrize("seed", range(10))
    def test_matches_naive_on_random(self, seed):
        net = random_small_network(seed)
        try:
            value = minpath_reliability(net, UNIT, max_paths=18).value
        except IntractableError:
            return
        expected = naive_reliability(net, UNIT).value
        assert value == pytest.approx(expected, abs=1e-10), seed

    def test_no_path_zero(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1, 0.1)
        result = minpath_reliability(net, UNIT)
        assert result.value == 0.0
        assert result.details["num_paths"] == 0

    def test_rate_two_rejected(self):
        with pytest.raises(ReproError):
            minpath_reliability(two_paths(2, 1), FlowDemand("s", "t", 2))

    def test_details(self):
        result = minpath_reliability(diamond(), UNIT)
        assert result.details["num_paths"] == 2
        assert result.details["longest_path"] == 2
