"""Unit tests for FlowDemand, ReliabilityResult and EstimateResult."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.result import EstimateResult, ReliabilityResult
from repro.exceptions import DemandError
from repro.graph.builders import diamond


class TestFlowDemand:
    def test_basic(self):
        demand = FlowDemand("s", "t", 3)
        assert demand.rate == 3

    def test_rejects_zero_rate(self):
        with pytest.raises(DemandError):
            FlowDemand("s", "t", 0)

    def test_rejects_negative(self):
        with pytest.raises(DemandError):
            FlowDemand("s", "t", -1)

    def test_rejects_fractional(self):
        with pytest.raises(DemandError):
            FlowDemand("s", "t", 1.5)

    def test_rejects_equal_terminals(self):
        with pytest.raises(DemandError):
            FlowDemand("s", "s", 1)

    def test_validate_against(self):
        FlowDemand("s", "t", 1).validate_against(diamond())

    def test_validate_against_missing(self):
        with pytest.raises(DemandError):
            FlowDemand("s", "nope", 1).validate_against(diamond())

    def test_frozen(self):
        demand = FlowDemand("s", "t", 1)
        with pytest.raises(AttributeError):
            demand.rate = 2

    def test_str(self):
        assert "d=2" in str(FlowDemand("s", "t", 2))


class TestReliabilityResult:
    def test_float_protocol(self):
        assert float(ReliabilityResult(value=0.5, method="x")) == 0.5

    def test_clamps_tiny_negative(self):
        assert ReliabilityResult(value=-1e-12, method="x").value == 0.0

    def test_clamps_tiny_overshoot(self):
        assert ReliabilityResult(value=1.0 + 1e-12, method="x").value == 1.0

    def test_rejects_real_violation(self):
        with pytest.raises(ValueError):
            ReliabilityResult(value=1.5, method="x")
        with pytest.raises(ValueError):
            ReliabilityResult(value=-0.5, method="x")

    def test_details_default(self):
        assert ReliabilityResult(value=0.1, method="x").details == {}


class TestEstimateResult:
    def make(self):
        return EstimateResult(
            value=0.5, low=0.45, high=0.56, confidence=0.95, num_samples=100, hits=50
        )

    def test_half_width(self):
        assert self.make().half_width == pytest.approx(0.055)

    def test_contains(self):
        est = self.make()
        assert est.contains(0.5)
        assert not est.contains(0.6)

    def test_float_protocol(self):
        assert float(self.make()) == 0.5
