"""Unit tests for stratified Monte-Carlo estimation."""

import numpy as np
import pytest

from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.core.stratified import (
    poisson_binomial,
    poisson_binomial_suffix,
    sample_with_alive_count,
    stratified_montecarlo_reliability,
    validate_probabilities,
)
from repro.exceptions import EstimationError, ReproValueError
from repro.graph.builders import diamond, fujita_fig4, parallel_links
from repro.probability.bitset import popcount


class TestPoissonBinomial:
    def test_sums_to_one(self):
        dist = poisson_binomial([0.1, 0.2, 0.3, 0.4])
        assert dist.sum() == pytest.approx(1.0)

    def test_uniform_half_is_binomial(self):
        dist = poisson_binomial([0.5] * 4)
        assert dist.tolist() == pytest.approx([1 / 16, 4 / 16, 6 / 16, 4 / 16, 1 / 16])

    def test_matches_enumeration(self):
        probs = [0.1, 0.35, 0.6]
        from repro.probability.enumeration import configuration_probabilities

        table = configuration_probabilities(probs)
        dist = poisson_binomial(probs)
        for j in range(4):
            expected = sum(table[m] for m in range(8) if popcount(m) == j)
            assert dist[j] == pytest.approx(expected)

    def test_empty(self):
        assert poisson_binomial([]).tolist() == [1.0]


class TestValidateProbabilities:
    def test_passes_through_valid_vectors(self):
        out = validate_probabilities([0.0, 0.5, 1.0])
        assert out.dtype == np.float64
        assert out.tolist() == [0.0, 0.5, 1.0]
        assert validate_probabilities([]).shape == (0,)

    @pytest.mark.parametrize("bad", [[1.5], [-0.1], [0.2, float("nan")], [2.0, 0.5]])
    def test_rejects_out_of_domain(self, bad):
        with pytest.raises(ReproValueError, match=r"outside \[0, 1\]"):
            validate_probabilities(bad)

    def test_rejects_non_vector(self):
        with pytest.raises(ReproValueError, match="one-dimensional"):
            validate_probabilities([[0.1, 0.2]])

    @pytest.mark.parametrize("func", [poisson_binomial, poisson_binomial_suffix])
    def test_machinery_shares_the_gate(self, func):
        with pytest.raises(ReproValueError):
            func([0.1, 1.0001])


class TestPoissonBinomialSuffix:
    def test_row_zero_is_the_full_distribution(self):
        probs = [0.1, 0.35, 0.6, 0.25]
        table = poisson_binomial_suffix(probs)
        np.testing.assert_allclose(table[0, : len(probs) + 1], poisson_binomial(probs))

    def test_rows_are_distributions(self):
        probs = [0.3, 0.7, 0.2]
        table = poisson_binomial_suffix(probs)
        for i in range(len(probs) + 1):
            assert table[i].sum() == pytest.approx(1.0)


class TestConditionalSampling:
    def test_popcount_always_matches(self):
        rng = np.random.default_rng(0)
        probs = [0.1, 0.5, 0.8, 0.3]
        for count in range(5):
            for _ in range(50):
                mask = sample_with_alive_count(probs, count, rng)
                assert popcount(mask) == count

    def test_conditional_distribution_correct(self):
        """Empirical conditional frequencies match the exact conditional
        probabilities."""
        probs = [0.2, 0.6]
        rng = np.random.default_rng(1)
        # condition on exactly 1 alive: P(mask=01|N=1) ∝ 0.8*0.6, P(10|N=1) ∝ 0.2*0.4
        w01 = 0.8 * 0.6
        w10 = 0.2 * 0.4
        draws = [sample_with_alive_count(probs, 1, rng) for _ in range(20_000)]
        freq01 = sum(1 for d in draws if d == 0b01) / len(draws)
        assert freq01 == pytest.approx(w01 / (w01 + w10), abs=0.01)

    def test_count_validation(self):
        rng = np.random.default_rng(0)
        with pytest.raises(EstimationError):
            sample_with_alive_count([0.5], 2, rng)


class TestStratifiedEstimator:
    def test_close_to_exact(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(net, demand).value
        est = stratified_montecarlo_reliability(net, demand, num_samples=20_000, seed=0)
        assert abs(est.value - exact) < 0.01
        assert est.low <= est.value <= est.high

    def test_deterministic(self):
        demand = FlowDemand("s", "t", 1)
        a = stratified_montecarlo_reliability(diamond(), demand, num_samples=2000, seed=7)
        b = stratified_montecarlo_reliability(diamond(), demand, num_samples=2000, seed=7)
        assert a.value == b.value

    def test_all_alive_stratum_exact(self):
        # With p=0 links the only stratum is j=m, resolved without sampling.
        net = parallel_links(3, 1, 0.0)
        demand = FlowDemand("s", "t", 2)
        est = stratified_montecarlo_reliability(net, demand, num_samples=100, seed=0)
        assert est.value == 1.0
        assert est.details["sampled_configurations"] == 0

    def test_hopeless_strata_skipped(self):
        # d=3 over 3 unit links: strata j<3 contribute exactly 0 and are
        # never sampled.
        net = parallel_links(3, 1, 0.1)
        demand = FlowDemand("s", "t", 3)
        est = stratified_montecarlo_reliability(net, demand, num_samples=1000, seed=0)
        assert est.value == pytest.approx(0.9**3)
        assert est.details["sampled_configurations"] == 0

    def test_lower_error_than_plain_mc_on_extreme_reliability(self):
        from repro.core.montecarlo import montecarlo_reliability

        net = parallel_links(6, 1, 0.02)  # reliability ~ 1 - tiny
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(net, demand).value
        errors_plain = []
        errors_strat = []
        for seed in range(5):
            plain = montecarlo_reliability(net, demand, num_samples=400, seed=seed)
            strat = stratified_montecarlo_reliability(net, demand, num_samples=400, seed=seed)
            errors_plain.append(abs(plain.value - exact))
            errors_strat.append(abs(strat.value - exact))
        assert sum(errors_strat) <= sum(errors_plain) + 1e-9

    def test_validation(self):
        with pytest.raises(EstimationError):
            stratified_montecarlo_reliability(
                diamond(), FlowDemand("s", "t", 1), num_samples=0
            )
