"""Unit tests for the rare-event estimation engine (`repro.core.rare`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.core.montecarlo import montecarlo_reliability, z_quantile
from repro.core.naive import naive_reliability
from repro.core.rare import (
    STREAM_NAMES,
    destruction_spectrum,
    permutation_montecarlo_reliability,
    rare_reliability,
    sample_failure_orders,
    spawn_streams,
    splitting_reliability,
)
from repro.core.result import EstimateResult
from repro.exceptions import EstimationError
from repro.graph.builders import fujita_fig4, parallel_links
from repro.graph.network import FlowNetwork


class TestSpawnStreams:
    def test_streams_named_and_deterministic(self):
        streams, entropy = spawn_streams(42)
        again, entropy2 = spawn_streams(42)
        assert tuple(streams) == STREAM_NAMES
        assert entropy == entropy2 == 42
        for name in STREAM_NAMES:
            assert streams[name].random() == again[name].random()

    def test_streams_are_independent(self):
        streams, _ = spawn_streams(0)
        draws = {name: streams[name].random() for name in STREAM_NAMES}
        assert len(set(draws.values())) == len(STREAM_NAMES)

    def test_none_seed_records_replayable_entropy(self):
        streams, entropy = spawn_streams(None)
        replay, _ = spawn_streams(entropy)
        name = STREAM_NAMES[0]
        assert streams[name].random() == replay[name].random()


class TestFailureOrders:
    def test_shape_and_permutation(self):
        rng = np.random.default_rng(3)
        orders = sample_failure_orders(7, 50, rng)
        assert orders.shape == (50, 7)
        expected = np.arange(7)
        for row in np.sort(orders, axis=1):
            assert np.array_equal(row, expected)

    def test_rejects_degenerate_inputs(self):
        rng = np.random.default_rng(0)
        with pytest.raises(EstimationError):
            sample_failure_orders(0, 10, rng)
        with pytest.raises(EstimationError):
            sample_failure_orders(5, 0, rng)


class TestDestructionSpectrum:
    def test_pmf_sums_to_one_and_cdf_monotone(self, fig4_net):
        spec = destruction_spectrum(
            fig4_net, FlowDemand("s", "t", 2), num_permutations=400, seed=11
        )
        assert spec.pmf().sum() == pytest.approx(1.0)
        cdf = spec.cdf()
        assert np.all(np.diff(cdf) >= -1e-12)
        assert cdf[-1] == pytest.approx(1.0)

    def test_spectrum_is_probability_free(self, fig4_net):
        """The spectrum is combinatorial: changing link probabilities
        must not change it (same topology, same seed)."""
        demand = FlowDemand("s", "t", 2)
        a = destruction_spectrum(fig4_net, demand, num_permutations=200, seed=5)
        hi = fujita_fig4(failure_probability=1e-5)
        b = destruction_spectrum(hi, demand, num_permutations=200, seed=5)
        assert np.array_equal(a.counts, b.counts)

    def test_critical_numbers_at_least_min_cut(self):
        """parallel_links(3) with demand 1 dies only after all 3 links
        fail: every critical number is exactly 3."""
        net = parallel_links(3, capacity=1, failure_probability=0.3)
        spec = destruction_spectrum(
            net, FlowDemand("s", "t", 1), num_permutations=100, seed=2
        )
        assert spec.counts[3] == 100
        assert spec.counts[:3].sum() == 0


class TestPermutationEstimator:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_matches_exact_within_interval(self, fig4_net, seed):
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(fig4_net, demand).value
        est = permutation_montecarlo_reliability(
            fig4_net, demand, num_samples=4000, seed=seed
        )
        assert est.low <= exact <= est.high
        assert est.method == "rare-permutation"

    def test_heterogeneous_probabilities_unbiased(self):
        """The IS-weighted estimator stays correct when links are not
        identically distributed (the PB-tail fast path must not fire)."""
        net = FlowNetwork()
        net.add_link("s", "a", 1, 0.05)
        net.add_link("s", "b", 1, 0.2)
        net.add_link("a", "t", 1, 0.1)
        net.add_link("b", "t", 1, 0.3)
        demand = FlowDemand("s", "t", 1)
        exact = naive_reliability(net, demand).value
        est = permutation_montecarlo_reliability(net, demand, num_samples=6000, seed=1)
        assert est.details["homogeneous"] is False
        assert est.low <= exact <= est.high

    def test_five_nines_relative_error(self):
        """The headline: bounded relative error where crude MC sees
        nothing at all."""
        net = fujita_fig4(failure_probability=1e-5)
        demand = FlowDemand("s", "t", 2)
        exact_u = 1.0 - naive_reliability(net, demand).value
        est = permutation_montecarlo_reliability(net, demand, num_samples=4000, seed=7)
        u = est.details["unreliability"]
        assert abs(u - exact_u) / exact_u < 0.10
        assert est.details["relative_error"] < 0.10

    def test_replay_is_bit_identical(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        a = permutation_montecarlo_reliability(fig4_net, demand, num_samples=1500, seed=9)
        b = permutation_montecarlo_reliability(fig4_net, demand, num_samples=1500, seed=9)
        assert a.value == b.value
        assert a.low == b.low and a.high == b.high
        assert a.details == b.details

    def test_target_relative_error_stops_early(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        est = permutation_montecarlo_reliability(
            fig4_net,
            demand,
            num_samples=50_000,
            target_relative_error=0.25,
            batch_size=512,
            seed=3,
        )
        assert est.details["stopped_early"] is True
        assert est.num_samples < 50_000
        assert est.details["relative_error"] <= 0.25

    def test_infeasible_demand_short_circuits(self):
        net = parallel_links(2, capacity=1, failure_probability=0.1)
        est = permutation_montecarlo_reliability(
            net, FlowDemand("s", "t", 3), num_samples=100, seed=0
        )
        assert est.value == 0.0
        assert est.details["degenerate"] == "infeasible-at-full-capacity"

    def test_input_validation(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        with pytest.raises(EstimationError):
            permutation_montecarlo_reliability(fig4_net, demand, num_samples=0)
        with pytest.raises(EstimationError):
            permutation_montecarlo_reliability(
                fig4_net, demand, target_relative_error=-0.1
            )
        with pytest.raises(EstimationError):
            permutation_montecarlo_reliability(fig4_net, demand, batch_size=0)


class TestSplittingEstimator:
    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_matches_exact_within_interval(self, fig4_net, seed):
        demand = FlowDemand("s", "t", 2)
        exact = naive_reliability(fig4_net, demand).value
        est = splitting_reliability(fig4_net, demand, num_samples=800, seed=seed)
        assert est.method == "rare-splitting"
        assert est.low <= exact <= est.high

    def test_five_nines_reaches_the_event(self):
        net = fujita_fig4(failure_probability=1e-5)
        demand = FlowDemand("s", "t", 2)
        exact_u = 1.0 - naive_reliability(net, demand).value
        est = splitting_reliability(net, demand, num_samples=1500, seed=4)
        u = est.details["unreliability"]
        assert u > 0.0  # crude MC at this budget would see nothing
        assert est.details["unreliability_low"] <= exact_u
        assert exact_u <= est.details["unreliability_high"]

    def test_replay_is_bit_identical(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        a = splitting_reliability(fig4_net, demand, num_samples=400, seed=8)
        b = splitting_reliability(fig4_net, demand, num_samples=400, seed=8)
        assert a.value == b.value
        assert a.details == b.details

    def test_level_conditionals_multiply_to_estimate(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        est = splitting_reliability(fig4_net, demand, num_samples=500, seed=6)
        product = 1.0
        for level in est.details["levels"]:
            product *= level["conditional"]
        assert est.details["unreliability"] == pytest.approx(product)

    def test_explicit_level_count(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        est = splitting_reliability(
            fujita_fig4(failure_probability=1e-4), demand, num_samples=400,
            num_levels=5, seed=2,
        )
        assert len(est.details["levels"]) <= 6  # L+1 evaluations, early stop allowed


class TestFrontDoor:
    def test_variant_aliases(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        perm = rare_reliability(fig4_net, demand, num_samples=300, seed=1)
        spec = rare_reliability(
            fig4_net, demand, variant="spectrum", num_samples=300, seed=1
        )
        assert perm.value == spec.value
        split = rare_reliability(
            fig4_net, demand, variant="splitting", num_samples=300, seed=1
        )
        assert split.method == "rare-splitting"

    def test_unknown_variant_rejected(self, fig4_net):
        with pytest.raises(EstimationError, match="variant"):
            rare_reliability(fig4_net, FlowDemand("s", "t", 2), variant="quantum")

    def test_splitting_rejects_target_relative_error(self, fig4_net):
        with pytest.raises(EstimationError, match="permutation-variant"):
            rare_reliability(
                fig4_net,
                FlowDemand("s", "t", 2),
                variant="splitting",
                target_relative_error=0.1,
            )

    def test_too_many_links_rejected(self):
        net = parallel_links(64, capacity=1, failure_probability=0.1)
        with pytest.raises(EstimationError, match="at most 63"):
            rare_reliability(net, FlowDemand("s", "t", 1), num_samples=10)


class TestApiDispatch:
    def test_explicit_method_rare(self, fig4_net):
        result = compute_reliability(
            fig4_net, "s", "t", 2, method="rare", num_samples=500, seed=3
        )
        assert isinstance(result, EstimateResult)
        assert result.method == "rare-permutation"

    def test_rare_listed_in_available_methods(self):
        from repro.core.api import available_methods

        assert "rare" in available_methods()

    def test_auto_escalates_to_rare_beyond_enumeration_guard(self):
        """30 parallel links: no admissible bottleneck cut, past the
        naive guard — auto must estimate rather than grind factoring."""
        net = parallel_links(30, capacity=1, failure_probability=0.05)
        result = compute_reliability(net, "s", "t", 1, num_samples=400, seed=5)
        assert isinstance(result, EstimateResult)
        assert result.method == "rare-permutation"
        # All 30 links must fail: U = 0.05^30 ~ 1e-39; the estimate is
        # exact here because every permutation has critical number 30.
        assert result.details["unreliability"] == pytest.approx(0.05**30, rel=1e-9)

    def test_auto_still_exact_on_small_networks(self, fig4_net):
        result = compute_reliability(fig4_net, "s", "t", 2)
        assert result.method != "rare-permutation"


class TestMonteCarloDedup:
    def test_hit_count_identical_to_per_sample_loop(self, fig4_net):
        """The np.unique dedup is pure mechanics: same masks, same
        verdicts, same Wilson interval for a fixed seed."""
        from repro.core.feasibility import FeasibilityOracle
        from repro.probability.sampling import sample_alive_masks

        demand = FlowDemand("s", "t", 2)
        est = montecarlo_reliability(fig4_net, demand, num_samples=3000, seed=17)

        rng = np.random.default_rng(17)
        oracle = FeasibilityOracle(fig4_net, "s", "t", 2)
        cache: dict[int, bool] = {}
        hits = 0
        drawn = 0
        while drawn < 3000:
            batch = min(4096, 3000 - drawn)
            masks = sample_alive_masks(fig4_net, batch, rng=rng)
            for mask_np in masks:  # the reference per-sample loop
                mask = int(mask_np)
                verdict = cache.get(mask)
                if verdict is None:
                    verdict = oracle.feasible(mask)
                    cache[mask] = verdict
                if verdict:
                    hits += 1
            drawn += batch
        assert est.hits == hits
        assert est.details["distinct_configurations"] == len(cache)

    def test_solves_bounded_by_distinct_masks(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        est = montecarlo_reliability(fig4_net, demand, num_samples=5000, seed=1)
        assert est.details["flow_calls"] == est.details["distinct_configurations"]
        assert est.details["flow_calls"] < 5000


class TestZQuantile:
    def test_known_value(self):
        assert z_quantile(0.95) == pytest.approx(1.959963984540054)

    def test_unsupported_confidence(self):
        with pytest.raises(EstimationError, match="unsupported confidence"):
            z_quantile(0.5)


class TestObservability:
    def test_counters_and_spans_recorded(self, fig4_net):
        from repro.obs import record

        demand = FlowDemand("s", "t", 2)
        with record() as rec:
            est = permutation_montecarlo_reliability(
                fig4_net, demand, num_samples=600, seed=0
            )
        totals = rec.counter_totals()
        assert totals["mc_samples"] == 600
        assert totals["samples_vectorized"] == 600
        assert totals["spectrum_solves"] == est.details["spectrum_solves"]
        assert any(child.name == "rare.spectrum" for child in rec.root.children)

    def test_split_span_recorded(self, fig4_net):
        from repro.obs import record

        demand = FlowDemand("s", "t", 2)
        with record() as rec:
            splitting_reliability(fig4_net, demand, num_samples=300, seed=0)
        assert any(child.name == "rare.split" for child in rec.root.children)

    def test_flow_calls_match_oracle_accounting(self, fig4_net):
        demand = FlowDemand("s", "t", 2)
        est = permutation_montecarlo_reliability(
            fig4_net, demand, num_samples=400, seed=0, incremental=False
        )
        # Cold oracle: one solve per critical-point query, +1 for the
        # feasible-at-full-capacity pre-check.  (The incremental oracle
        # counts repair-engine solver invocations instead, which can
        # exceed or undercut the query count.)
        assert est.details["flow_calls"] == est.details["spectrum_solves"] + 1
