"""Unit tests for §III-B assignments — including the paper's Examples
1, 4 and 5 verbatim."""

import pytest

from repro.core.assignments import (
    classify_by_support,
    count_assignments,
    describe_assignment,
    enumerate_assignments,
    iter_support_classes,
    support_mask,
    supported_assignment_indices,
    supports,
)
from repro.exceptions import DemandError


class TestExample1:
    """Paper Example 1: d=5, E* = {e1,e2,e3}, c = (3,3,3) -> 12 tuples."""

    EXPECTED = [
        (0, 2, 3),
        (0, 3, 2),
        (1, 1, 3),
        (1, 2, 2),
        (1, 3, 1),
        (2, 0, 3),
        (2, 1, 2),
        (2, 2, 1),
        (2, 3, 0),
        (3, 0, 2),
        (3, 1, 1),
        (3, 2, 0),
    ]

    def test_exact_set_and_order(self):
        assert enumerate_assignments([3, 3, 3], 5) == self.EXPECTED

    def test_count_matches(self):
        assert count_assignments([3, 3, 3], 5) == 12


class TestEnumeration:
    def test_single_link(self):
        assert enumerate_assignments([5], 3) == [(3,)]

    def test_insufficient_capacity(self):
        assert enumerate_assignments([1, 1], 3) == []

    def test_capacity_capped_at_demand(self):
        # capacity above d contributes only d
        assert enumerate_assignments([10, 10], 2) == [(0, 2), (1, 1), (2, 0)]

    def test_zero_demand(self):
        assert enumerate_assignments([2, 2], 0) == [(0, 0)]

    def test_empty_links(self):
        assert enumerate_assignments([], 0) == [()]
        assert enumerate_assignments([], 1) == []

    def test_zero_capacity_link(self):
        assert enumerate_assignments([0, 2], 2) == [(0, 2)]

    def test_negative_demand_rejected(self):
        with pytest.raises(DemandError):
            enumerate_assignments([1], -1)

    def test_every_assignment_sums_to_demand(self):
        for a in enumerate_assignments([2, 3, 1], 4):
            assert sum(a) == 4

    def test_every_assignment_respects_caps(self):
        for a in enumerate_assignments([2, 3, 1], 4):
            assert a[0] <= 2 and a[1] <= 3 and a[2] <= 1

    def test_lexicographic_order(self):
        result = enumerate_assignments([2, 2, 2], 3)
        assert result == sorted(result)

    @pytest.mark.parametrize("caps,d", [([2, 2], 3), ([1, 2, 3], 4), ([4], 2), ([2, 2, 2, 2], 5)])
    def test_count_agrees_with_enumeration(self, caps, d):
        assert count_assignments(caps, d) == len(enumerate_assignments(caps, d))

    def test_paper_bound(self):
        # |D| <= (d+1)^k always; the paper states d^k for its setting
        for caps, d in [([3, 3, 3], 5), ([2, 2], 2)]:
            assert count_assignments(caps, d) <= (d + 1) ** len(caps)


class TestSupport:
    def test_example4_supports(self):
        """Paper Example 4: {e1,e3} supports (2,0,1) and (3,0,4) but not (1,1,0)."""
        subset = 0b101  # {e1, e3}
        assert supports(subset, (2, 0, 1))
        assert supports(subset, (3, 0, 4))
        assert not supports(subset, (1, 1, 0))

    def test_support_mask(self):
        assert support_mask((1, 0, 2)) == 0b101
        assert support_mask((0, 0, 0)) == 0

    def test_negative_component_rejected(self):
        with pytest.raises(DemandError):
            support_mask((1, -1))

    def test_full_set_supports_everything(self):
        assignments = enumerate_assignments([2, 2, 2], 3)
        for a in assignments:
            assert supports(0b111, a)

    def test_empty_set_supports_nothing_positive(self):
        assert not supports(0, (1, 0))
        assert supports(0, (0, 0))


class TestExample5:
    """Paper Example 5: classification of a 5-assignment set."""

    ASSIGNMENTS = [(1, 2, 0), (2, 1, 0), (1, 1, 1), (0, 2, 1), (2, 0, 1)]

    def test_classification(self):
        table = classify_by_support(self.ASSIGNMENTS, 3)
        by_subset = {
            mask: {self.ASSIGNMENTS[i] for i in idxs} for mask, idxs in table.items()
        }
        assert by_subset[0b111] == set(self.ASSIGNMENTS)
        assert by_subset[0b011] == {(1, 2, 0), (2, 1, 0)}  # {e1, e2}
        assert by_subset[0b110] == {(0, 2, 1)}  # {e2, e3}
        assert by_subset[0b101] == {(2, 0, 1)}  # {e1, e3}
        for size_one in (0b001, 0b010, 0b100, 0):
            assert by_subset[size_one] == set()

    def test_supported_indices_function(self):
        idxs = supported_assignment_indices(self.ASSIGNMENTS, 0b011)
        assert idxs == [0, 1]

    def test_iter_matches_classify(self):
        table = classify_by_support(self.ASSIGNMENTS, 3)
        assert dict(iter_support_classes(self.ASSIGNMENTS, 3)) == table

    def test_monotone_in_subset(self):
        table = classify_by_support(self.ASSIGNMENTS, 3)
        for mask, idxs in table.items():
            for other, other_idxs in table.items():
                if mask & ~other == 0:  # mask ⊆ other
                    assert set(idxs) <= set(other_idxs)


class TestDescribe:
    def test_mentions_support_links(self):
        text = describe_assignment((2, 0, 1))
        assert "e1" in text and "e3" in text and "e2" not in text

    def test_zero_assignment(self):
        assert "-" in describe_assignment((0, 0))
