"""Unit tests for the directed frontier sweep."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.frontier import directed_frontier_reliability, frontier_reliability
from repro.core.naive import naive_reliability
from repro.exceptions import ReproError
from repro.graph.builders import diamond, series_chain, two_paths
from repro.graph.network import FlowNetwork
from tests.conftest import random_small_network
from tests.core.test_frontier import undirected_random

UNIT = FlowDemand("s", "t", 1)


class TestDirectedFrontier:
    def test_single_directed_link(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.25)
        assert directed_frontier_reliability(net, UNIT).value == pytest.approx(0.75)

    def test_wrong_direction_is_zero(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1, 0.25)
        assert directed_frontier_reliability(net, UNIT).value == 0.0

    def test_series_chain(self):
        net = series_chain(4, 1, 0.1)
        assert directed_frontier_reliability(net, UNIT).value == pytest.approx(0.9**4)

    def test_diamond(self):
        expected = naive_reliability(diamond(), UNIT).value
        assert directed_frontier_reliability(diamond(), UNIT).value == pytest.approx(
            expected, abs=1e-12
        )

    def test_antiparallel_pair(self):
        # a -> b and b -> a: only the forward one matters for s -> t
        net = FlowNetwork()
        net.add_link("s", "a", 1, 0.1)
        net.add_link("a", "b", 1, 0.2)
        net.add_link("b", "a", 1, 0.2)  # useless for delivery
        net.add_link("b", "t", 1, 0.1)
        expected = naive_reliability(net, UNIT).value
        assert directed_frontier_reliability(net, UNIT).value == pytest.approx(
            expected, abs=1e-12
        )
        assert expected == pytest.approx(0.9 * 0.8 * 0.9)

    @pytest.mark.parametrize("seed", range(15))
    def test_matches_naive_on_random_directed(self, seed):
        net = random_small_network(seed)
        expected = naive_reliability(net, UNIT).value
        assert directed_frontier_reliability(net, UNIT).value == pytest.approx(
            expected, abs=1e-10
        )

    @pytest.mark.parametrize("seed", range(6))
    def test_matches_partition_variant_on_undirected(self, seed):
        net = undirected_random(seed)
        a = frontier_reliability(net, UNIT).value
        b = directed_frontier_reliability(net, UNIT).value
        assert a == pytest.approx(b, abs=1e-10)

    def test_mixed_directed_undirected(self):
        net = FlowNetwork()
        net.add_link("s", "a", 1, 0.1)
        net.add_link("a", "t", 1, 0.1, directed=False)
        net.add_link("t", "s", 1, 0.1, directed=False)  # helps nothing... or does it?
        expected = naive_reliability(net, UNIT).value
        assert directed_frontier_reliability(net, UNIT).value == pytest.approx(
            expected, abs=1e-12
        )

    def test_long_directed_diamond_chain(self):
        net = FlowNetwork()
        prev = "s"
        sections = 30
        for i in range(sections):
            nxt = f"c{i}" if i < sections - 1 else "t"
            net.add_link(prev, f"a{i}", 1, 0.1)
            net.add_link(prev, f"b{i}", 1, 0.1)
            net.add_link(f"a{i}", nxt, 1, 0.1)
            net.add_link(f"b{i}", nxt, 1, 0.1)
            prev = nxt
        result = directed_frontier_reliability(net, UNIT)
        assert result.value == pytest.approx((1 - (1 - 0.81) ** 2) ** sections, abs=1e-12)
        assert result.details["peak_states"] <= 8

    def test_rate_two_rejected(self):
        with pytest.raises(ReproError):
            directed_frontier_reliability(two_paths(2, 1), FlowDemand("s", "t", 2))

    def test_state_budget_guard(self):
        net = random_small_network(2)
        with pytest.raises(ReproError):
            directed_frontier_reliability(net, UNIT, max_states=1)

    def test_disconnected_terminal(self):
        net = FlowNetwork()
        net.add_node("t")
        net.add_link("s", "a", 1, 0.1)
        assert directed_frontier_reliability(net, UNIT).value == 0.0

    def test_custom_order(self):
        net = random_small_network(4)
        expected = directed_frontier_reliability(net, UNIT).value
        reverse = list(range(net.num_links))[::-1]
        assert directed_frontier_reliability(net, UNIT, order=reverse).value == pytest.approx(
            expected, abs=1e-10
        )
