"""Unit tests for the flow-value distribution."""

import pytest

from repro.core.demand import FlowDemand
from repro.core.distribution import (
    flow_value_distribution,
    sampled_flow_value_distribution,
)
from repro.core.naive import naive_reliability
from repro.exceptions import EstimationError, IntractableError
from repro.graph.builders import diamond, fujita_fig4, parallel_links, series_chain
from repro.graph.network import FlowNetwork


class TestExactDistribution:
    def test_pmf_sums_to_one(self):
        dist = flow_value_distribution(fujita_fig4(), "s", "t")
        assert sum(dist.pmf) == pytest.approx(1.0)

    def test_tail_equals_naive_reliability(self):
        net = fujita_fig4()
        dist = flow_value_distribution(net, "s", "t")
        for rate in (1, 2, 3):
            expected = naive_reliability(net, FlowDemand("s", "t", rate)).value
            assert dist.reliability(rate) == pytest.approx(expected, abs=1e-12)

    def test_zero_demand_reliability_is_one(self):
        dist = flow_value_distribution(diamond(), "s", "t")
        assert dist.reliability(0) == 1.0
        assert dist.reliability(-1) == 1.0

    def test_beyond_max_value_is_zero(self):
        dist = flow_value_distribution(diamond(capacity=1), "s", "t")
        assert dist.reliability(10) == 0.0

    def test_parallel_links_closed_form(self):
        # 3 unit links, p = 0.1: maxflow ~ Binomial(3, 0.9)
        dist = flow_value_distribution(parallel_links(3, 1, 0.1), "s", "t")
        assert dist.pmf[0] == pytest.approx(0.1**3)
        assert dist.pmf[1] == pytest.approx(3 * 0.9 * 0.01)
        assert dist.pmf[2] == pytest.approx(3 * 0.81 * 0.1)
        assert dist.pmf[3] == pytest.approx(0.9**3)

    def test_expected_value(self):
        dist = flow_value_distribution(parallel_links(2, 1, 0.5), "s", "t")
        assert dist.expected_value == pytest.approx(1.0)

    def test_series_chain(self):
        dist = flow_value_distribution(series_chain(2, 3, 0.2), "s", "t")
        assert dist.pmf[3] == pytest.approx(0.64)
        assert dist.pmf[0] == pytest.approx(0.36)
        assert dist.expected_value == pytest.approx(3 * 0.64)

    def test_quantile_rate(self):
        dist = flow_value_distribution(parallel_links(3, 1, 0.1), "s", "t")
        # R(1) = 0.999, R(2) = 0.972, R(3) = 0.729
        assert dist.quantile_rate(0.99) == 1
        assert dist.quantile_rate(0.97) == 2
        assert dist.quantile_rate(0.70) == 3
        assert dist.quantile_rate(1.0) == 0

    def test_quantile_validation(self):
        dist = flow_value_distribution(diamond(), "s", "t")
        with pytest.raises(EstimationError):
            dist.quantile_rate(0.0)

    def test_disconnected_all_mass_at_zero(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1, 0.1)
        dist = flow_value_distribution(net, "s", "t")
        assert dist.pmf == (1.0,)

    def test_size_guard(self):
        with pytest.raises(IntractableError):
            flow_value_distribution(parallel_links(23), "s", "t")

    def test_flow_calls_reported(self):
        dist = flow_value_distribution(diamond(), "s", "t")
        assert 0 < dist.flow_calls <= 16


class TestSampledDistribution:
    def test_converges_to_exact(self):
        net = fujita_fig4()
        exact = flow_value_distribution(net, "s", "t")
        sampled = sampled_flow_value_distribution(net, "s", "t", num_samples=30_000, seed=0)
        for v in range(min(len(exact.pmf), len(sampled.pmf))):
            assert sampled.pmf[v] == pytest.approx(exact.pmf[v], abs=0.02)

    def test_deterministic(self):
        a = sampled_flow_value_distribution(diamond(), "s", "t", num_samples=500, seed=3)
        b = sampled_flow_value_distribution(diamond(), "s", "t", num_samples=500, seed=3)
        assert a.pmf == b.pmf

    def test_not_exact_flag(self):
        dist = sampled_flow_value_distribution(diamond(), "s", "t", num_samples=10, seed=0)
        assert not dist.exact

    def test_cache_bounds_calls(self):
        dist = sampled_flow_value_distribution(diamond(), "s", "t", num_samples=5000, seed=0)
        assert dist.flow_calls <= 16

    def test_validation(self):
        with pytest.raises(EstimationError):
            sampled_flow_value_distribution(diamond(), "s", "t", num_samples=0)
