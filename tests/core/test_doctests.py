"""Run the doctest examples embedded in the public docstrings."""

import doctest

import pytest

import repro
import repro.core.api
import repro.core.summation
import repro.graph.network


@pytest.mark.parametrize(
    "module",
    [repro, repro.core.api, repro.core.summation, repro.graph.network],
    ids=lambda m: m.__name__,
)
def test_module_doctests(module):
    results = doctest.testmod(module, verbose=False)
    assert results.failed == 0, f"{results.failed} doctest failures in {module.__name__}"


def test_package_docstring_has_examples():
    results = doctest.testmod(repro, verbose=False)
    assert results.attempted > 0
