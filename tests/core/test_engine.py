"""The parallel realization-array engine (``repro.core.engine``).

The contract under test: for every worker count the engine's masks are
**bit-identical** to the serial §III-C builder, screens only remove
max-flow solves (never change a mask), and the flow-solve accounting
still partitions ``ReliabilityResult.flow_calls`` exactly.
"""

import numpy as np
import pytest

from repro import obs
from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.engine import (
    LatticePlan,
    RealizationScreens,
    build_realization_arrays,
    build_side_array_parallel,
    partition_lattice,
    run_chunked,
)
from repro.exceptions import ReproValueError
from repro.graph.builders import fujita_fig4
from repro.graph.cuts import find_bottleneck


def _fig4_split():
    net = fujita_fig4()
    split = find_bottleneck(net, "s", "t", max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    assignments = enumerate_assignments(capacities, 2)
    return net, split, assignments


class TestPartitionLattice:
    def test_one_worker_is_one_chunk(self):
        plan = partition_lattice(10, 1)
        assert plan == LatticePlan(num_bits=10, high_bits=0)
        assert plan.chunks == 1 and plan.chunk_size == 1024

    def test_chunks_smallest_power_of_two_covering_workers(self):
        assert partition_lattice(10, 2).chunks == 2
        assert partition_lattice(10, 3).chunks == 4
        assert partition_lattice(10, 4).chunks == 4
        assert partition_lattice(10, 5).chunks == 8

    def test_high_bits_capped_at_num_bits(self):
        plan = partition_lattice(2, 64)
        assert plan.high_bits == 2 and plan.low_bits == 0

    def test_chunks_times_chunk_size_covers_lattice(self):
        for workers in (1, 2, 3, 7, 16):
            plan = partition_lattice(9, workers)
            assert plan.chunks * plan.chunk_size == 1 << 9

    @pytest.mark.parametrize("workers", [0, -1])
    def test_workers_validation(self, workers):
        with pytest.raises(ReproValueError):
            partition_lattice(4, workers)

    def test_negative_bits_rejected(self):
        with pytest.raises(ReproValueError):
            partition_lattice(-1, 2)


def _square(x: int) -> int:
    return x * x


class TestRunChunked:
    def test_serial_path_preserves_task_order(self):
        assert run_chunked(_square, [(i,) for i in range(5)], workers=1) == [
            0,
            1,
            4,
            9,
            16,
        ]

    def test_single_task_stays_in_process(self):
        marker = []

        def local_worker(x):  # unpicklable on purpose: must not reach a pool
            marker.append(x)
            return x

        assert run_chunked(local_worker, [(7,)], workers=8) == [7]
        assert marker == [7]

    def test_process_pool_path(self):
        assert run_chunked(_square, [(i,) for i in range(4)], workers=2) == [
            0,
            1,
            4,
            9,
        ]

    def test_workers_validation(self):
        with pytest.raises(ReproValueError):
            run_chunked(_square, [(1,)], workers=0)


class TestRealizationScreens:
    def test_budget_screen_rejects_starved_assignment(self):
        net, split, assignments = _fig4_split()
        screens = RealizationScreens(
            split.source_side.network,
            role="source",
            terminal="s",
            ports=split.source_ports,
            demand=2,
        )
        # With no side links alive every non-terminal port has budget 0.
        budgets = screens.port_budgets(0)
        reachable = screens.reachable_ports(0)
        assert any(
            screens.screened(a, budgets, reachable) for a in assignments
        )

    def test_full_alive_configuration_passes(self):
        net, split, assignments = _fig4_split()
        side_net = split.source_side.network
        screens = RealizationScreens(
            side_net,
            role="source",
            terminal="s",
            ports=split.source_ports,
            demand=2,
        )
        full = (1 << side_net.num_links) - 1
        budgets = screens.port_budgets(full)
        reachable = screens.reachable_ports(full)
        # fig4's assignments are all realizable fully-alive, so the
        # certain-negative screens must pass every one of them.
        assert all(
            not screens.screened(a, budgets, reachable) for a in assignments
        )

    def test_terminal_port_is_unbounded(self):
        net, split, assignments = _fig4_split()
        side_net = split.source_side.network
        ports = ["s" for _ in split.source_ports]
        screens = RealizationScreens(
            side_net, role="source", terminal="s", ports=ports, demand=2
        )
        budgets = screens.port_budgets(0)
        reachable = screens.reachable_ports(0)
        assert all(b is None for b in budgets)
        assert all(not screens.screened(a, budgets, reachable) for a in assignments)

    def test_screens_never_flip_a_mask(self):
        _, split, assignments = _fig4_split()
        kwargs = dict(
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            workers=1,
        )
        screened = build_side_array_parallel(split.source_side, **kwargs)
        unscreened = build_side_array_parallel(
            split.source_side, screen=False, **kwargs
        )
        np.testing.assert_array_equal(screened.masks, unscreened.masks)
        assert screened.flow_calls < unscreened.flow_calls


class TestSideArrayEquivalence:
    @pytest.mark.parametrize("role", ["source", "sink"])
    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_masks_bit_identical_to_serial(self, role, workers):
        _, split, assignments = _fig4_split()
        side = split.source_side if role == "source" else split.sink_side
        terminal = "s" if role == "source" else "t"
        ports = split.source_ports if role == "source" else split.sink_ports
        serial = build_side_array(
            side,
            role=role,
            terminal=terminal,
            ports=ports,
            assignments=assignments,
            demand=2,
        )
        parallel = build_side_array_parallel(
            side,
            role=role,
            terminal=terminal,
            ports=ports,
            assignments=assignments,
            demand=2,
            workers=workers,
        )
        assert parallel.masks.dtype == np.uint64
        np.testing.assert_array_equal(serial.masks, parallel.masks)
        np.testing.assert_allclose(
            serial.probabilities, parallel.probabilities, rtol=0, atol=0
        )

    def test_workers_one_no_screen_matches_serial_flow_calls(self):
        """One chunk + no screens must replay the serial solve set exactly.

        A cold-path accounting property: the incremental engines walk
        chunk-local Gray lattices, so both sides pin ``incremental=False``.
        """
        _, split, assignments = _fig4_split()
        serial = build_side_array(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            incremental=False,
        )
        engine = build_side_array_parallel(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
            workers=1,
            screen=False,
            incremental=False,
        )
        assert engine.flow_calls == serial.flow_calls

    def test_workers_validation(self):
        _, split, assignments = _fig4_split()
        with pytest.raises(ReproValueError):
            build_side_array_parallel(
                split.source_side,
                role="source",
                terminal="s",
                ports=split.source_ports,
                assignments=assignments,
                demand=2,
                workers=0,
            )


class TestBuildRealizationArrays:
    def test_both_sides_match_serial_and_report_stats(self):
        _, split, assignments = _fig4_split()
        source_serial = build_side_array(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
        )
        sink_serial = build_side_array(
            split.sink_side,
            role="sink",
            terminal="t",
            ports=split.sink_ports,
            assignments=assignments,
            demand=2,
        )
        source_arr, sink_arr, stats = build_realization_arrays(
            split, source="s", sink="t", assignments=assignments, demand=2, workers=2
        )
        np.testing.assert_array_equal(source_serial.masks, source_arr.masks)
        np.testing.assert_array_equal(sink_serial.masks, sink_arr.masks)
        assert stats["workers"] == 2
        assert stats["screened_solves"] > 0
        assert stats["source_chunks"] == stats["sink_chunks"] == 2


class TestBottleneckEngineDispatch:
    def test_default_is_serial_with_historical_flow_calls(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        result = bottleneck_reliability(net, demand, prune=False, incremental=False)
        # The pinned serial count: |D| * (2^{|E_s|} + 2^{|E_t|}).
        assert result.flow_calls == 3 * (2**4 + 2**3)
        assert "engine" not in result.details

    @pytest.mark.parametrize("workers", [1, 2])
    def test_engine_value_matches_serial(self, workers):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        serial = bottleneck_reliability(net, demand)
        engine = bottleneck_reliability(net, demand, workers=workers)
        assert engine.value == pytest.approx(serial.value, abs=1e-12)
        assert engine.details["engine"]["workers"] == workers

    def test_screens_reduce_flow_calls(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        unscreened = bottleneck_reliability(net, demand, workers=1, screen=False)
        screened = bottleneck_reliability(net, demand, workers=1)
        assert screened.value == pytest.approx(unscreened.value, abs=1e-12)
        assert screened.flow_calls < unscreened.flow_calls
        assert screened.details["engine"]["screened_solves"] > 0

    def test_flow_calls_partition_exactly_through_obs(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        with obs.record() as rec:
            result = bottleneck_reliability(net, demand, workers=2)
        assert rec.counter_total(obs.FLOW_SOLVES) == result.flow_calls
        assert (
            rec.counter_total(obs.SCREENED_SOLVES)
            == result.details["engine"]["screened_solves"]
        )
        # Per-phase subtree totals must partition flow_calls too.
        summary = obs.phase_summary(rec)
        per_phase = sum(
            p["counters"].get("flow_solves", 0) for p in summary["phases"]
        )
        assert per_phase == result.flow_calls

    def test_workers_validation(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        with pytest.raises(ReproValueError):
            bottleneck_reliability(net, demand, workers=0)
