"""Unit tests for the sweep engine: the content-addressed ArrayCache,
the cache-aware side-array builder and the vectorized multi-point
accumulation (`repro.core.sweep`)."""

import os

import numpy as np
import pytest

from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.sweep import (
    ArrayCache,
    SweepSpec,
    cached_side_array,
    compute_reliability_sweep,
    probability_grid,
    side_fingerprint,
)
from repro.exceptions import ReproValueError
from repro.graph.builders import fujita_fig4
from repro.graph.transforms import split_on_cut
from repro.probability.enumeration import configuration_probabilities
from repro.probability.zeta import superset_zeta, superset_zeta_rows

DEMAND = FlowDemand("s", "t", 2)


def fig4_split(**kwargs):
    net = fujita_fig4(**kwargs)
    return net, split_on_cut(net, "s", "t", [0, 1])


def source_kwargs(split, assignments):
    return dict(
        role="source",
        terminal="s",
        ports=split.source_ports,
        assignments=assignments,
        demand=2,
    )


class TestSideFingerprint:
    def test_excludes_failure_probabilities(self):
        _, lossy = fig4_split(failure_probability=0.3)
        _, robust = fig4_split(failure_probability=0.01)
        args = dict(role="source", terminal="s", ports=lossy.source_ports)
        assert side_fingerprint(lossy.source_side.network, **args) == side_fingerprint(
            robust.source_side.network, **args
        )

    def test_sensitive_to_capacity(self):
        def tiny(capacity):
            from repro.graph.network import FlowNetwork

            net = FlowNetwork()
            net.add_link("s", "a", capacity, 0.1)
            net.add_link("a", "t", 2, 0.1)
            return net

        args = dict(role="source", terminal="s", ports=["t"])
        assert side_fingerprint(tiny(2), **args) != side_fingerprint(
            tiny(3), **args
        )

    def test_sensitive_to_role_terminal_ports(self):
        _, split = fig4_split()
        net = split.source_side.network
        base = side_fingerprint(
            net, role="source", terminal="s", ports=split.source_ports
        )
        assert base != side_fingerprint(
            net, role="sink", terminal="s", ports=split.source_ports
        )
        assert base != side_fingerprint(
            net, role="source", terminal="a", ports=split.source_ports
        )
        assert base != side_fingerprint(
            net,
            role="source",
            terminal="s",
            ports=list(reversed(list(split.source_ports))),
        )


class TestArrayCache:
    def test_memory_round_trip(self):
        cache = ArrayCache()
        column = np.array([True, False, True, True, False], dtype=bool)
        cache.put("k", column)
        assert len(cache) == 1
        got = cache.get("k", 5)
        assert got is not None and got.dtype == bool
        assert np.array_equal(got, column)

    def test_miss_counts(self):
        cache = ArrayCache()
        assert cache.get("absent", 4) is None
        stats = cache.stats()
        assert stats["misses"] == 1 and stats["hits"] == 0

    def test_disk_persistence_across_instances(self, tmp_path):
        column = np.arange(16) % 3 == 0
        first = ArrayCache(tmp_path)
        first.put("k", column)
        assert first.bytes_written > 0
        # a brand-new instance (fresh process stand-in) starts warm
        second = ArrayCache(tmp_path)
        assert len(second) == 0
        got = second.get("k", 16)
        assert got is not None and np.array_equal(got, column)
        assert second.stats()["hits"] == 1 and second.bytes_read > 0

    def test_disk_files_are_content_addressed(self, tmp_path):
        cache = ArrayCache(tmp_path)
        cache.put("deadbeef", np.ones(4, dtype=bool))
        assert (tmp_path / "deadbeef.npy").is_file()
        assert not list(tmp_path.glob("*.tmp"))

    def test_cold_hit_is_read_only(self):
        # An in-place store into a cache hit must raise instead of
        # silently poisoning the buffer the next sweep point reads.
        cache = ArrayCache()
        cache.put("k", np.array([True, False, True, False], dtype=bool))
        got = cache.get("k", 4)
        assert got is not None and not got.flags.writeable
        with pytest.raises(ValueError, match="read-only"):
            got[0] = False
        again = cache.get("k", 4)
        assert again is not None
        assert np.array_equal(again, [True, False, True, False])

    def test_warm_disk_hit_is_read_only(self, tmp_path):
        column = np.arange(8) % 2 == 0
        ArrayCache(tmp_path).put("k", column)
        warm = ArrayCache(tmp_path)  # fresh instance: served from disk
        got = warm.get("k", 8)
        assert got is not None and not got.flags.writeable
        with pytest.raises(ValueError, match="read-only"):
            got[:2] = False
        again = warm.get("k", 8)
        assert again is not None and np.array_equal(again, column)


def _column(packed_bytes: int, phase: int = 0) -> np.ndarray:
    """A bool column whose packbits payload is exactly ``packed_bytes``."""
    return (np.arange(packed_bytes * 8) + phase) % 3 == 0


class TestArrayCacheBound:
    def test_max_bytes_must_be_positive(self):
        with pytest.raises(ReproValueError):
            ArrayCache(max_bytes=0)
        with pytest.raises(ReproValueError):
            ArrayCache(max_bytes=-1)

    def test_unbounded_cache_never_evicts(self):
        cache = ArrayCache()
        for i in range(8):
            cache.put(f"k{i}", _column(16, i))
        assert cache.stats()["evictions"] == 0
        assert cache.total_bytes == 0  # accounting only runs when bounded

    def test_lru_eviction_prefers_least_recently_used(self):
        cache = ArrayCache(max_bytes=32)
        cache.put("a", _column(16))
        cache.put("b", _column(16, 1))
        assert cache.get("a", 128) is not None  # a becomes most recent
        cache.put("c", _column(16, 2))  # 48 bytes tracked: evict b, not a
        assert cache.get("b", 128) is None
        assert cache.get("a", 128) is not None
        assert cache.get("c", 128) is not None
        stats = cache.stats()
        assert stats["evictions"] == 1 and stats["evicted_bytes"] == 16
        assert cache.total_bytes <= 32

    def test_eviction_unlinks_the_disk_file(self, tmp_path):
        cache = ArrayCache(tmp_path, max_bytes=32)
        cache.put("a", _column(16))
        cache.put("b", _column(16, 1))
        cache.put("c", _column(16, 2))
        assert not (tmp_path / "a.npy").exists()
        assert (tmp_path / "b.npy").is_file() and (tmp_path / "c.npy").is_file()

    def test_adopts_preexisting_disk_tier_oldest_first(self, tmp_path):
        unbounded = ArrayCache(tmp_path)
        for i, key in enumerate(("old", "mid", "new")):
            unbounded.put(key, _column(16, i))
        sizes = {p.stem: p.stat().st_size for p in tmp_path.glob("*.npy")}
        for i, key in enumerate(("old", "mid", "new")):
            os.utime(tmp_path / f"{key}.npy", (1000 + i, 1000 + i))
        bound = sizes["mid"] + sizes["new"]
        bounded = ArrayCache(tmp_path, max_bytes=bound)
        assert not (tmp_path / "old.npy").exists()
        assert (tmp_path / "new.npy").is_file()
        assert bounded.stats()["evictions"] == 1

    def test_claimed_keys_are_never_evicted(self, tmp_path):
        cache = ArrayCache(tmp_path, max_bytes=32)
        cache.put("claimed", _column(16))
        assert cache.try_claim("claimed")
        cache.put("b", _column(16, 1))
        cache.put("c", _column(16, 2))  # over budget; claimed is immune
        assert (tmp_path / "claimed.npy").is_file()
        assert not (tmp_path / "b.npy").exists()
        cache.release_claim("claimed")
        cache.put("d", _column(16, 3))  # claim released: now evictable
        assert not (tmp_path / "claimed.npy").exists()

    def test_single_oversized_column_still_serves(self):
        # The just-touched key is protected: a column larger than the
        # bound degrades the cache to one entry, it never thrashes it.
        cache = ArrayCache(max_bytes=8)
        cache.put("big", _column(16))
        assert cache.get("big", 128) is not None
        assert cache.stats()["evictions"] == 0

    def test_evicted_key_rebuilds_on_demand(self, tmp_path):
        cache = ArrayCache(tmp_path, max_bytes=16)
        cache.put("a", _column(16))
        cache.put("b", _column(16, 1))  # evicts a
        assert cache.get("a", 128) is None
        cache.put("a", _column(16))  # rebuild and re-publish
        assert cache.get("a", 128) is not None


class TestCachedSideArray:
    def test_no_cache_matches_direct_builder(self):
        _, split = fig4_split()
        assignments = enumerate_assignments([2, 2], 2)
        kwargs = source_kwargs(split, assignments)
        direct = build_side_array(split.source_side, **kwargs)
        dispatched = cached_side_array(split.source_side, **kwargs)
        assert np.array_equal(direct.masks, dispatched.masks)
        assert direct.flow_calls == dispatched.flow_calls

    def test_cold_then_warm_bit_identity(self):
        _, split = fig4_split()
        assignments = enumerate_assignments([2, 2], 2)
        kwargs = source_kwargs(split, assignments)
        direct = build_side_array(split.source_side, **kwargs)
        cache = ArrayCache()
        cold = cached_side_array(split.source_side, cache=cache, **kwargs)
        warm = cached_side_array(split.source_side, cache=cache, **kwargs)
        for built in (cold, warm):
            assert np.array_equal(built.masks, direct.masks)
            assert np.array_equal(built.probabilities, direct.probabilities)
            assert built.num_assignments == direct.num_assignments
        assert cold.flow_calls > 0
        assert warm.flow_calls == 0
        assert cache.stats()["hits"] == len(assignments)

    def test_partial_warm_builds_only_missing_columns(self):
        _, split = fig4_split()
        assignments = enumerate_assignments([2, 2], 2)
        kwargs = source_kwargs(split, assignments)
        cache = ArrayCache()
        cached_side_array(
            split.source_side,
            cache=cache,
            **{**kwargs, "assignments": assignments[:1]},
        )
        full = cached_side_array(split.source_side, cache=cache, **kwargs)
        direct = build_side_array(split.source_side, **kwargs)
        assert np.array_equal(full.masks, direct.masks)
        assert cache.stats()["hits"] == 1
        assert cache.stats()["stores"] == len(assignments)

    def test_cache_shared_between_serial_and_parallel_paths(self):
        _, split = fig4_split()
        assignments = enumerate_assignments([2, 2], 2)
        kwargs = source_kwargs(split, assignments)
        cache = ArrayCache()
        serial = cached_side_array(split.source_side, cache=cache, **kwargs)
        parallel = cached_side_array(
            split.source_side, cache=cache, workers=2, **kwargs
        )
        assert np.array_equal(serial.masks, parallel.masks)
        assert parallel.flow_calls == 0


class TestProbabilityGrid:
    def test_rows_match_scalar_tables(self):
        rng = np.random.default_rng(7)
        grid = rng.uniform(0.0, 0.6, size=(5, 4))
        table = probability_grid(grid)
        assert table.shape == (5, 16)
        for s in range(5):
            scalar = configuration_probabilities(list(grid[s]))
            assert np.array_equal(table[s], scalar)

    def test_rejects_non_2d(self):
        with pytest.raises(ReproValueError, match="two-dimensional"):
            probability_grid(np.array([0.1, 0.2]))

    def test_rejects_out_of_range(self):
        with pytest.raises(ReproValueError, match=r"\[0, 1\)"):
            probability_grid(np.array([[0.1, 1.0]]))
        with pytest.raises(ReproValueError, match=r"\[0, 1\)"):
            probability_grid(np.array([[-0.1, 0.5]]))


class TestSupersetZetaRows:
    def test_matches_scalar_per_row(self):
        rng = np.random.default_rng(11)
        values = rng.uniform(size=(6, 8))
        rows = superset_zeta_rows(values)
        for s in range(6):
            assert np.array_equal(rows[s], superset_zeta(values[s]))

    def test_rejects_bad_shapes(self):
        with pytest.raises(ReproValueError):
            superset_zeta_rows(np.ones(8))
        with pytest.raises(ReproValueError):
            superset_zeta_rows(np.ones((2, 3)))

    def test_inplace(self):
        values = np.ones((2, 4))
        out = superset_zeta_rows(values, inplace=True)
        assert out is values


class TestSweepSpec:
    def test_empty_rejected(self):
        for factory in (
            SweepSpec.availability,
            SweepSpec.failure_scale,
            SweepSpec.overrides,
            SweepSpec.demand_rates,
        ):
            with pytest.raises(ReproValueError, match="at least one point"):
                factory([])

    def test_availability_bounds(self):
        with pytest.raises(ReproValueError, match="outside"):
            SweepSpec.availability([0.9, 0.0])
        with pytest.raises(ReproValueError, match="outside"):
            SweepSpec.availability([1.5])

    def test_scale_validation(self):
        with pytest.raises(ReproValueError, match="negative"):
            SweepSpec.failure_scale([-0.5])
        net = fujita_fig4(failure_probability=0.4)
        spec = SweepSpec.failure_scale([3.0])
        with pytest.raises(ReproValueError, match="pushes a link"):
            spec.failure_matrix(net)

    def test_override_validation(self):
        net = fujita_fig4()
        with pytest.raises(ReproValueError, match="out of range"):
            SweepSpec.overrides([{99: 0.5}]).failure_matrix(net)
        with pytest.raises(ReproValueError, match=r"outside \[0, 1\)"):
            SweepSpec.overrides([{0: 1.0}]).failure_matrix(net)

    def test_demand_sweep_has_no_failure_matrix(self):
        with pytest.raises(ReproValueError, match="do not define"):
            SweepSpec.demand_rates([1, 2]).failure_matrix(fujita_fig4())

    def test_point_network_applies_rows(self):
        net = fujita_fig4(failure_probability=0.1)
        spec = SweepSpec.availability([0.8, 0.95])
        point = spec.point_network(net, 1)
        assert point.failure_probabilities() == pytest.approx(
            [0.05] * net.num_links
        )
        matrix = spec.failure_matrix(net)
        assert matrix.shape == (2, net.num_links)
        assert np.array_equal(matrix[0], np.full(net.num_links, 1.0 - 0.8))


class TestComputeReliabilitySweep:
    def pointwise(self, net, spec, index, **kwargs):
        return bottleneck_reliability(
            spec.point_network(net, index), DEMAND, **kwargs
        )

    def test_availability_sweep_bit_identical_to_pointwise(self):
        net = fujita_fig4(failure_probability=0.1)
        spec = SweepSpec.availability(list(np.linspace(0.7, 0.99, 7)))
        swept = compute_reliability_sweep(net, DEMAND, sweep=spec)
        assert len(swept) == 7
        for i, result in enumerate(swept):
            point = self.pointwise(net, spec, i)
            assert result.value == point.value  # bit-equal, not approx
            assert result.method == point.method
            assert result.configurations == point.configurations
            assert result.details == point.details

    def test_warm_cache_sweep_zero_solves(self):
        net = fujita_fig4(failure_probability=0.1)
        spec = SweepSpec.availability([0.8, 0.9, 0.97])
        cache = ArrayCache()
        cold = compute_reliability_sweep(net, DEMAND, sweep=spec, cache=cache)
        warm = compute_reliability_sweep(net, DEMAND, sweep=spec, cache=cache)
        assert cold.flow_calls > 0
        assert warm.flow_calls == 0
        assert warm.cache_stats["misses"] == 0
        assert warm.cache_stats["hits"] == cold.cache_stats["stores"]
        assert warm.values == cold.values

    def test_disk_cache_carries_between_sweeps(self, tmp_path):
        net = fujita_fig4(failure_probability=0.1)
        spec = SweepSpec.availability([0.8, 0.9])
        first = compute_reliability_sweep(
            net, DEMAND, sweep=spec, cache=ArrayCache(tmp_path)
        )
        second = compute_reliability_sweep(
            net, DEMAND, sweep=spec, cache=ArrayCache(tmp_path)
        )
        assert first.flow_calls > 0
        assert second.flow_calls == 0
        assert second.values == first.values

    def test_failure_scale_and_override_kinds(self):
        net = fujita_fig4(failure_probability=0.1)
        for spec in (
            SweepSpec.failure_scale([0.5, 1.0, 2.0]),
            SweepSpec.overrides([{0: 0.3}, {5: 0.0}, {}]),
        ):
            swept = compute_reliability_sweep(net, DEMAND, sweep=spec)
            for i, result in enumerate(swept):
                assert result.value == self.pointwise(net, spec, i).value

    @pytest.mark.parametrize("strategy", ["zeta", "pairs"])
    def test_explicit_strategies_match_pointwise(self, strategy):
        net = fujita_fig4(failure_probability=0.15)
        spec = SweepSpec.availability([0.8, 0.92])
        swept = compute_reliability_sweep(
            net, DEMAND, sweep=spec, strategy=strategy
        )
        for i, result in enumerate(swept):
            point = self.pointwise(net, spec, i, strategy=strategy)
            assert result.value == point.value
            assert result.details["accumulation_strategy"] == strategy

    def test_unknown_strategy_rejected(self):
        net = fujita_fig4()
        with pytest.raises(ReproValueError, match="unknown accumulation strategy"):
            compute_reliability_sweep(
                net,
                DEMAND,
                sweep=SweepSpec.availability([0.9]),
                strategy="magic",
            )

    def test_demand_above_cut_capacity_all_zero(self):
        net = fujita_fig4()
        swept = compute_reliability_sweep(
            net,
            FlowDemand("s", "t", 5),
            sweep=SweepSpec.availability([0.8, 0.9]),
        )
        assert swept.flow_calls == 0
        for result in swept:
            assert result.value == 0.0
            assert result.details["reason"] == "cut capacity below demand"

    def test_demand_sweep_matches_pointwise(self):
        net = fujita_fig4(failure_probability=0.1)
        spec = SweepSpec.demand_rates([1, 2, 3, 4])
        swept = compute_reliability_sweep(net, DEMAND, sweep=spec)
        assert swept.kind == "demand"
        for rate, result in zip(spec.values, swept):
            point = bottleneck_reliability(net, FlowDemand("s", "t", rate))
            assert result.value == point.value

    def test_demand_sweep_shares_columns_across_rates(self):
        # Rates 2 and 3 over a capacity-2 pair share the assignment
        # tuples (0,2)/(2,0) etc. only partially; a repeated sweep with
        # the same cache must be fully warm either way.
        net = fujita_fig4(failure_probability=0.1)
        spec = SweepSpec.demand_rates([1, 2, 3])
        cache = ArrayCache()
        compute_reliability_sweep(net, DEMAND, sweep=spec, cache=cache)
        warm = compute_reliability_sweep(net, DEMAND, sweep=spec, cache=cache)
        assert warm.flow_calls == 0

    def test_cached_pointwise_call_reports_cache_delta(self):
        net = fujita_fig4(failure_probability=0.1)
        cache = ArrayCache()
        cold = bottleneck_reliability(net, DEMAND, cache=cache)
        warm = bottleneck_reliability(net, DEMAND, cache=cache)
        assert warm.value == cold.value
        assert cold.flow_calls > 0
        assert warm.flow_calls == 0
        assert warm.details["array_cache"]["misses"] == 0
        assert warm.details["array_cache"]["hits"] > 0
