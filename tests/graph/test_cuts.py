"""Unit tests for repro.graph.cuts."""

import pytest

from repro.exceptions import DecompositionError
from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    parallel_links,
    series_chain,
)
from repro.graph.cuts import (
    bridges_between,
    find_bottleneck,
    is_disconnecting,
    is_minimal_cut,
    minimal_st_cuts,
    minimum_cardinality_cut,
    verify_bottleneck,
)
from repro.graph.generators import bottlenecked_network
from repro.graph.network import FlowNetwork


class TestIsDisconnecting:
    def test_chain_single_link(self):
        net = series_chain(3)
        assert is_disconnecting(net, "s", "t", [1])

    def test_diamond_needs_two(self):
        net = diamond()
        assert not is_disconnecting(net, "s", "t", [0])
        assert is_disconnecting(net, "s", "t", [0, 1])
        assert is_disconnecting(net, "s", "t", [2, 3])

    def test_mixed_pair(self):
        # one link per path also separates
        assert is_disconnecting(diamond(), "s", "t", [0, 3])

    def test_undirected_semantics(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1)  # wrong direction but still connects
        assert not is_disconnecting(net, "s", "t", [])
        assert is_disconnecting(net, "s", "t", [0])


class TestIsMinimalCut:
    def test_minimal(self):
        assert is_minimal_cut(diamond(), "s", "t", [0, 1])

    def test_superset_not_minimal(self):
        assert not is_minimal_cut(diamond(), "s", "t", [0, 1, 2])

    def test_non_disconnecting_not_minimal(self):
        assert not is_minimal_cut(diamond(), "s", "t", [0])

    def test_duplicates_rejected(self):
        assert not is_minimal_cut(series_chain(2), "s", "t", [0, 0])


class TestBridgesBetween:
    def test_chain(self):
        assert bridges_between(series_chain(3), "s", "t") == [0, 1, 2]

    def test_bridge_not_separating_terminals(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1)
        net.add_link("s", "t", 1)
        net.add_link("t", "appendix", 1)  # bridge, but s-t unaffected
        assert bridges_between(net, "s", "t") == []

    def test_fig2(self):
        assert bridges_between(fujita_fig2_bridge(), "s", "t") == [8]


class TestMinimumCardinalityCut:
    def test_parallel_links(self):
        cut = minimum_cardinality_cut(parallel_links(3), "s", "t")
        assert sorted(cut) == [0, 1, 2]

    def test_bridge_graph(self):
        assert minimum_cardinality_cut(fujita_fig2_bridge(), "s", "t") == [8]

    def test_fig4(self):
        assert minimum_cardinality_cut(fujita_fig4(), "s", "t") == [0, 1]

    def test_disconnected_returns_none(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        assert minimum_cardinality_cut(net, "s", "t") is None

    def test_result_is_minimal(self):
        net = bottlenecked_network(
            source_side_links=6, sink_side_links=6, num_bottlenecks=2, seed=9
        )
        cut = minimum_cardinality_cut(net, "s", "t")
        assert is_minimal_cut(net, "s", "t", cut)


class TestMinimalStCuts:
    def test_diamond_size_two(self):
        cuts = {frozenset(c) for c in minimal_st_cuts(diamond(), "s", "t", 2)}
        assert cuts == {
            frozenset({0, 1}),
            frozenset({2, 3}),
            frozenset({0, 3}),
            frozenset({1, 2}),
        }

    def test_size_bound_respected(self):
        assert minimal_st_cuts(diamond(), "s", "t", 1) == []

    def test_chain_bridges(self):
        cuts = minimal_st_cuts(series_chain(3), "s", "t", 1)
        assert sorted(cuts) == [(0,), (1,), (2,)]

    def test_no_superset_of_smaller_cut(self):
        cuts = minimal_st_cuts(series_chain(3), "s", "t", 2)
        assert all(len(c) == 1 for c in cuts)

    def test_limit(self):
        cuts = minimal_st_cuts(diamond(), "s", "t", 2, limit=2)
        assert len(cuts) == 2

    def test_every_returned_cut_is_minimal(self):
        net = fujita_fig4()
        for cut in minimal_st_cuts(net, "s", "t", 3):
            assert is_minimal_cut(net, "s", "t", list(cut))


class TestVerifyBottleneck:
    def test_accepts_fig4_cut(self):
        split = verify_bottleneck(fujita_fig4(), "s", "t", [0, 1])
        assert split.cut == (0, 1)

    def test_rejects_non_minimal(self):
        with pytest.raises(DecompositionError):
            verify_bottleneck(fujita_fig4(), "s", "t", [0, 1, 2])

    def test_rejects_non_separating(self):
        with pytest.raises(DecompositionError):
            verify_bottleneck(fujita_fig4(), "s", "t", [0])


class TestFindBottleneck:
    def test_fig2_finds_bridge(self):
        split = find_bottleneck(fujita_fig2_bridge(), "s", "t")
        assert split.cut == (8,)

    def test_fig4_finds_pair(self):
        split = find_bottleneck(fujita_fig4(), "s", "t")
        assert split.cut == (0, 1)

    def test_minimizes_alpha(self):
        # an unbalanced graph: the best cut is the one near the middle
        net = bottlenecked_network(
            source_side_links=8, sink_side_links=8, num_bottlenecks=2, seed=4
        )
        split = find_bottleneck(net, "s", "t")
        assert split is not None
        assert split.alpha <= 0.75

    def test_none_when_no_small_cut(self):
        assert find_bottleneck(parallel_links(5), "s", "t", max_size=3) is None

    def test_designed_bottleneck_recovered(self):
        for seed in range(3):
            net = bottlenecked_network(
                source_side_links=6,
                sink_side_links=6,
                num_bottlenecks=2,
                demand=2,
                seed=seed,
            )
            split = find_bottleneck(net, "s", "t")
            assert split is not None
            assert set(split.cut) == {0, 1}
