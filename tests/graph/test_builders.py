"""Unit tests for the named paper-graph builders."""

import pytest

from repro.graph.builders import (
    diamond,
    fujita_fig2_bridge,
    fujita_fig4,
    grid_network,
    parallel_links,
    series_chain,
    two_paths,
)
from repro.graph.connectivity import bridges, has_directed_path
from repro.flow.base import max_flow_value


class TestDiamond:
    def test_shape(self):
        net = diamond()
        assert net.num_nodes == 4
        assert net.num_links == 4

    def test_cross_link(self):
        net = diamond(cross_link=True)
        assert net.num_links == 5
        assert net.link(4).endpoints == ("a", "b")

    def test_max_flow(self):
        assert max_flow_value(diamond(capacity=1), "s", "t") == 2


class TestParallelLinks:
    def test_count(self):
        assert parallel_links(5).num_links == 5

    def test_terminals_only(self):
        assert parallel_links(3).num_nodes == 2

    def test_max_flow_adds_up(self):
        assert max_flow_value(parallel_links(4, capacity=2), "s", "t") == 8


class TestSeriesChain:
    def test_length(self):
        net = series_chain(5)
        assert net.num_links == 5
        assert net.num_nodes == 6

    def test_all_links_are_bridges(self):
        assert bridges(series_chain(4)) == [0, 1, 2, 3]

    def test_length_one(self):
        net = series_chain(1)
        assert has_directed_path(net, "s", "t")

    def test_rejects_zero_length(self):
        with pytest.raises(ValueError):
            series_chain(0)


class TestTwoPaths:
    def test_max_flow_is_sum(self):
        net = two_paths(upper_capacity=2, lower_capacity=1)
        assert max_flow_value(net, "s", "t") == 3


class TestFig2Bridge:
    def test_nine_links_bridge_last(self):
        net = fujita_fig2_bridge()
        assert net.num_links == 9
        assert net.link(8).endpoints == ("x", "y")

    def test_bridge_is_detected(self):
        assert bridges(fujita_fig2_bridge()) == [8]

    def test_admits_demand_two(self):
        assert max_flow_value(fujita_fig2_bridge(), "s", "t") == 2

    def test_custom_bridge_probability(self):
        net = fujita_fig2_bridge(bridge_failure_probability=0.42)
        assert net.link(8).failure_probability == pytest.approx(0.42)


class TestFig4:
    def test_nine_links(self):
        assert fujita_fig4().num_links == 9

    def test_bottlenecks_first(self):
        net = fujita_fig4()
        assert net.link(0).endpoints == ("x1", "y1")
        assert net.link(1).endpoints == ("x2", "y2")
        assert net.link(0).capacity == 2
        assert net.link(1).capacity == 2

    def test_admits_demand_two(self):
        # the sink side tops out at 3 (e7 + e8 constrained by e9), so the
        # graph admits the Example 3 demand of 2 with slack
        assert max_flow_value(fujita_fig4(), "s", "t") == 3


class TestGrid:
    def test_shape(self):
        net = grid_network(2, 3)
        # 2 source feeders + 2 sink drains + horizontal 2*2 + vertical 1*3
        assert net.num_links == 2 + 2 + 4 + 3

    def test_max_flow_bounded_by_rows(self):
        assert max_flow_value(grid_network(2, 3), "s", "t") == 2

    def test_rejects_empty(self):
        with pytest.raises(ValueError):
            grid_network(0, 3)
