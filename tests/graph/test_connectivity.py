"""Unit tests for repro.graph.connectivity."""

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.builders import diamond, series_chain
from repro.graph.connectivity import (
    articulation_points,
    bridges,
    component_of,
    connected_components,
    directed_reachable_from,
    has_directed_path,
    has_path,
    is_connected,
    reachable_from,
)
from repro.graph.network import FlowNetwork


def two_islands():
    net = FlowNetwork()
    net.add_link("a", "b", 1)
    net.add_link("c", "d", 1)
    return net


class TestComponents:
    def test_single_component(self):
        assert len(connected_components(diamond())) == 1

    def test_two_components(self):
        comps = connected_components(two_islands())
        assert sorted(sorted(c) for c in comps) == [["a", "b"], ["c", "d"]]

    def test_isolated_node_is_own_component(self):
        net = FlowNetwork()
        net.add_node("lonely")
        net.add_link("a", "b", 1)
        comps = connected_components(net)
        assert {"lonely"} in comps

    def test_alive_filter_splits(self):
        net = series_chain(3)  # s - v1 - v2 - t
        comps = connected_components(net, alive=[0, 2])
        assert len(comps) == 2

    def test_direction_ignored(self):
        net = FlowNetwork()
        net.add_link("a", "b", 1)
        net.add_link("c", "b", 1)  # points into b
        assert len(connected_components(net)) == 1

    def test_component_of(self):
        net = two_islands()
        assert component_of(net, "a") == {"a", "b"}

    def test_component_of_unknown_node(self):
        with pytest.raises(NodeNotFoundError):
            component_of(two_islands(), "zz")

    def test_empty_network_is_connected(self):
        assert is_connected(FlowNetwork())

    def test_is_connected_false(self):
        assert not is_connected(two_islands())


class TestReachability:
    def test_undirected_reachability_ignores_direction(self):
        net = FlowNetwork()
        net.add_link("b", "a", 1)
        assert reachable_from(net, "a") == {"a", "b"}

    def test_directed_reachability_respects_direction(self):
        net = FlowNetwork()
        net.add_link("b", "a", 1)
        assert directed_reachable_from(net, "a") == {"a"}
        assert directed_reachable_from(net, "b") == {"a", "b"}

    def test_directed_traverses_undirected_links(self):
        net = FlowNetwork()
        net.add_link("b", "a", 1, directed=False)
        assert directed_reachable_from(net, "a") == {"a", "b"}

    def test_has_path(self):
        net = series_chain(3)
        assert has_path(net, "s", "t")
        assert not has_path(net, "s", "t", alive=[0, 1])

    def test_has_directed_path(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1)
        assert not has_directed_path(net, "s", "t")
        assert has_path(net, "s", "t")

    def test_alive_filter_on_directed(self):
        net = FlowNetwork()
        net.add_link("s", "m", 1)
        net.add_link("m", "t", 1)
        assert has_directed_path(net, "s", "t", alive=[0, 1])
        assert not has_directed_path(net, "s", "t", alive=[0])

    def test_unknown_target_raises(self):
        with pytest.raises(NodeNotFoundError):
            has_path(series_chain(2), "s", "zzz")


class TestBridges:
    def test_chain_all_bridges(self):
        net = series_chain(4)
        assert bridges(net) == [0, 1, 2, 3]

    def test_diamond_has_no_bridges(self):
        assert bridges(diamond()) == []

    def test_parallel_pair_not_bridge(self):
        net = FlowNetwork()
        net.add_link("a", "b", 1)
        net.add_link("a", "b", 1)
        assert bridges(net) == []

    def test_bridge_between_cycles(self):
        net = FlowNetwork()
        # triangle a-b-c, bridge c-d, triangle d-e-f
        net.add_link("a", "b", 1)
        net.add_link("b", "c", 1)
        net.add_link("c", "a", 1)
        bridge = net.add_link("c", "d", 1)
        net.add_link("d", "e", 1)
        net.add_link("e", "f", 1)
        net.add_link("f", "d", 1)
        assert bridges(net) == [bridge]

    def test_bridges_respect_alive_filter(self):
        net = FlowNetwork()
        net.add_link("a", "b", 1)
        net.add_link("a", "b", 1)
        # killing one parallel link makes the survivor a bridge
        assert bridges(net, alive=[0]) == [0]

    def test_disconnected_graph(self):
        net = two_islands()
        assert bridges(net) == [0, 1]

    def test_direction_irrelevant(self):
        net = FlowNetwork()
        net.add_link("b", "a", 1)
        net.add_link("b", "c", 1)
        assert bridges(net) == [0, 1]


class TestArticulationPoints:
    def test_chain_internal_nodes(self):
        net = series_chain(3)
        assert articulation_points(net) == {"v1", "v2"}

    def test_diamond_none(self):
        assert articulation_points(diamond()) == set()

    def test_shared_hub(self):
        net = FlowNetwork()
        net.add_link("a", "hub", 1)
        net.add_link("hub", "b", 1)
        net.add_link("a", "hub", 1)  # parallel does not protect the hub
        assert articulation_points(net) == {"hub"}

    def test_two_triangles_sharing_a_node(self):
        net = FlowNetwork()
        for u, v in [("a", "b"), ("b", "c"), ("c", "a"), ("c", "d"), ("d", "e"), ("e", "c")]:
            net.add_link(u, v, 1)
        assert articulation_points(net) == {"c"}
