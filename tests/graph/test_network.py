"""Unit tests for repro.graph.network."""

import pytest

from repro.exceptions import LinkNotFoundError, NodeNotFoundError, ValidationError
from repro.graph.network import FlowNetwork, Link


class TestLink:
    def test_availability_complements_failure(self):
        link = Link(0, "a", "b", 3, 0.25)
        assert link.availability == pytest.approx(0.75)

    def test_endpoints(self):
        link = Link(0, "a", "b", 1, 0.0)
        assert link.endpoints == ("a", "b")

    def test_other_endpoint(self):
        link = Link(0, "a", "b", 1, 0.0)
        assert link.other_endpoint("a") == "b"
        assert link.other_endpoint("b") == "a"

    def test_other_endpoint_rejects_stranger(self):
        link = Link(0, "a", "b", 1, 0.0)
        with pytest.raises(ValueError):
            link.other_endpoint("c")

    def test_other_endpoint_self_loop(self):
        link = Link(0, "a", "a", 1, 0.0)
        assert link.other_endpoint("a") == "a"

    def test_reversed_swaps_endpoints(self):
        link = Link(3, "a", "b", 2, 0.1)
        rev = link.reversed()
        assert (rev.tail, rev.head) == ("b", "a")
        assert rev.index == 3 and rev.capacity == 2


class TestFlowNetworkConstruction:
    def test_empty(self):
        net = FlowNetwork()
        assert net.num_nodes == 0
        assert net.num_links == 0

    def test_add_node_idempotent(self):
        net = FlowNetwork()
        net.add_node("a")
        net.add_node("a")
        assert net.num_nodes == 1

    def test_add_link_creates_endpoints(self):
        net = FlowNetwork()
        index = net.add_link("u", "v", 2, 0.1)
        assert index == 0
        assert net.has_node("u") and net.has_node("v")

    def test_link_indices_sequential(self):
        net = FlowNetwork()
        assert net.add_link("a", "b", 1) == 0
        assert net.add_link("b", "c", 1) == 1
        assert net.add_link("a", "c", 1) == 2

    def test_parallel_links_allowed(self):
        net = FlowNetwork()
        net.add_link("a", "b", 1)
        net.add_link("a", "b", 2)
        assert net.num_links == 2

    def test_negative_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValidationError):
            net.add_link("a", "b", -1)

    def test_fractional_capacity_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValidationError):
            net.add_link("a", "b", 1.5)

    def test_probability_one_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValidationError):
            net.add_link("a", "b", 1, 1.0)

    def test_negative_probability_rejected(self):
        net = FlowNetwork()
        with pytest.raises(ValidationError):
            net.add_link("a", "b", 1, -0.1)

    def test_node_ordering_is_insertion_order(self):
        net = FlowNetwork()
        net.add_link("z", "a", 1)
        net.add_link("m", "z", 1)
        assert net.nodes() == ["z", "a", "m"]

    def test_add_nodes_bulk(self):
        net = FlowNetwork()
        net.add_nodes(["a", "b", "c"])
        assert net.num_nodes == 3


class TestFlowNetworkAccess:
    @pytest.fixture
    def net(self):
        net = FlowNetwork(name="fixture")
        net.add_link("s", "a", 2, 0.1)
        net.add_link("a", "t", 3, 0.2)
        net.add_link("s", "t", 1, 0.3, directed=False)
        return net

    def test_link_lookup(self, net):
        assert net.link(1).capacity == 3

    def test_link_lookup_missing(self, net):
        with pytest.raises(LinkNotFoundError):
            net.link(99)

    def test_contains(self, net):
        assert "s" in net
        assert "x" not in net

    def test_iteration_yields_nodes(self, net):
        assert set(net) == {"s", "a", "t"}

    def test_out_links_directed(self, net):
        assert [l.index for l in net.out_links("a")] == [1]

    def test_out_links_undirected_both_sides(self, net):
        # the undirected s-t link is usable leaving t as well
        assert 2 in [l.index for l in net.out_links("t")]

    def test_in_links(self, net):
        assert [l.index for l in net.in_links("t")] == [1, 2]

    def test_incident_links_deduplicated(self, net):
        incident = net.incident_links("s")
        assert sorted(l.index for l in incident) == [0, 2]

    def test_neighbors(self, net):
        assert set(net.neighbors("s")) == {"a", "t"}

    def test_degree(self, net):
        assert net.degree("s") == 2

    def test_unknown_node_raises(self, net):
        with pytest.raises(NodeNotFoundError):
            net.out_links("nope")

    def test_capacities_order(self, net):
        assert net.capacities() == [2, 3, 1]

    def test_failure_probabilities_order(self, net):
        assert net.failure_probabilities() == pytest.approx([0.1, 0.2, 0.3])

    def test_total_capacity_all(self, net):
        assert net.total_capacity() == 6

    def test_total_capacity_subset(self, net):
        assert net.total_capacity([0, 2]) == 3


class TestFlowNetworkCopies:
    def test_copy_preserves_structure(self):
        net = FlowNetwork()
        net.add_link("a", "b", 2, 0.1, directed=False)
        clone = net.copy()
        assert clone.num_links == 1
        assert clone.link(0).directed is False
        assert clone.link(0).failure_probability == pytest.approx(0.1)

    def test_copy_is_independent(self):
        net = FlowNetwork()
        net.add_link("a", "b", 2, 0.1)
        clone = net.copy()
        clone.add_link("b", "c", 1)
        assert net.num_links == 1

    def test_with_failure_probabilities_mapping(self):
        net = FlowNetwork()
        net.add_link("a", "b", 2, 0.1)
        net.add_link("b", "c", 2, 0.2)
        out = net.with_failure_probabilities({1: 0.5})
        assert out.link(0).failure_probability == pytest.approx(0.1)
        assert out.link(1).failure_probability == pytest.approx(0.5)

    def test_with_failure_probabilities_sequence(self):
        net = FlowNetwork()
        net.add_link("a", "b", 2, 0.1)
        net.add_link("b", "c", 2, 0.2)
        out = net.with_failure_probabilities([0.3, 0.4])
        assert out.failure_probabilities() == pytest.approx([0.3, 0.4])

    def test_with_failure_probabilities_wrong_length(self):
        net = FlowNetwork()
        net.add_link("a", "b", 2, 0.1)
        with pytest.raises(ValidationError):
            net.with_failure_probabilities([0.1, 0.2])

    def test_describe_mentions_every_link(self):
        net = FlowNetwork(name="x")
        net.add_link("a", "b", 2, 0.1)
        net.add_link("b", "c", 1, 0.2)
        text = net.describe()
        assert "e0" in text and "e1" in text
