"""Unit tests for repro.graph.transforms."""

import pytest

from repro.exceptions import DecompositionError
from repro.graph.builders import diamond, fujita_fig2_bridge, fujita_fig4
from repro.graph.network import FlowNetwork
from repro.graph.transforms import (
    alive_subnetwork,
    induced_subnetwork,
    split_on_cut,
)


class TestAliveSubnetwork:
    def test_keeps_all_nodes(self):
        view = alive_subnetwork(diamond(), [0])
        assert view.network.num_nodes == 4

    def test_keeps_only_selected_links(self):
        view = alive_subnetwork(diamond(), [1, 3])
        assert view.network.num_links == 2
        assert view.link_map == (1, 3)

    def test_link_map_translates(self):
        view = alive_subnetwork(diamond(), [2])
        assert view.parent_index(0) == 2

    def test_duplicates_collapsed(self):
        view = alive_subnetwork(diamond(), [1, 1, 0])
        assert view.link_map == (0, 1)

    def test_attributes_preserved(self):
        net = FlowNetwork()
        net.add_link("a", "b", 5, 0.25, directed=False)
        view = alive_subnetwork(net, [0])
        link = view.network.link(0)
        assert link.capacity == 5
        assert link.failure_probability == pytest.approx(0.25)
        assert not link.directed


class TestInducedSubnetwork:
    def test_induced_links(self):
        view = induced_subnetwork(diamond(), ["s", "a", "t"])
        # keeps s->a and a->t only
        assert sorted(view.link_map) == [0, 2]

    def test_nodes_restricted(self):
        view = induced_subnetwork(diamond(), ["s", "a"])
        assert set(view.network.nodes()) == {"s", "a"}

    def test_empty_selection(self):
        view = induced_subnetwork(diamond(), [])
        assert view.network.num_nodes == 0
        assert view.network.num_links == 0


class TestSplitOnCut:
    def test_fig2_bridge_split(self):
        net = fujita_fig2_bridge()
        split = split_on_cut(net, "s", "t", [8])
        assert len(split.source_side.link_map) == 4
        assert len(split.sink_side.link_map) == 4
        assert split.source_ports == ("x",)
        assert split.sink_ports == ("y",)

    def test_fig4_split(self):
        net = fujita_fig4()
        split = split_on_cut(net, "s", "t", [0, 1])
        assert split.source_ports == ("x1", "x2")
        assert split.sink_ports == ("y1", "y2")
        assert sorted(split.source_side.link_map) == [2, 3, 4, 5]
        assert sorted(split.sink_side.link_map) == [6, 7, 8]

    def test_alpha(self):
        split = split_on_cut(fujita_fig4(), "s", "t", [0, 1])
        assert split.alpha == pytest.approx(4 / 9)

    def test_non_separating_cut_rejected(self):
        with pytest.raises(DecompositionError):
            split_on_cut(diamond(), "s", "t", [0])

    def test_duplicate_cut_rejected(self):
        with pytest.raises(DecompositionError):
            split_on_cut(fujita_fig2_bridge(), "s", "t", [8, 8])

    def test_backwards_directed_cut_link_rejected(self):
        net = FlowNetwork()
        net.add_link("s", "a", 1)
        net.add_link("t", "a", 1)  # points from sink side into source side
        net.add_link("b", "t", 1)
        net.add_link("a", "b", 1)
        # cut {1, 3} separates {s,a} from {b,t}; link 1 points backwards
        with pytest.raises(DecompositionError):
            split_on_cut(net, "s", "t", [1, 3])

    def test_undirected_backwards_cut_link_allowed(self):
        net = FlowNetwork()
        net.add_link("s", "a", 1)
        net.add_link("t", "a", 1, directed=False)
        net.add_link("b", "t", 1)
        net.add_link("a", "b", 1)
        split = split_on_cut(net, "s", "t", [1, 3])
        assert split.source_ports == ("a", "a")
        assert split.sink_ports == ("t", "b")

    def test_extra_component_rejected(self):
        net = FlowNetwork()
        net.add_link("s", "a", 1)  # 0
        net.add_link("a", "m", 1)  # 1 (cut)
        net.add_link("m", "b", 1)  # 2 (cut) -- removing 1,2 isolates m
        net.add_link("b", "t", 1)  # 3
        with pytest.raises(DecompositionError):
            split_on_cut(net, "s", "t", [1, 2])

    def test_cut_inside_one_side_rejected(self):
        net = fujita_fig2_bridge()
        # link 0 lives inside G_s; adding it to the cut leaves it not
        # joining the two sides
        with pytest.raises(DecompositionError):
            split_on_cut(net, "s", "t", [8, 0])
