"""Unit tests for the node-splitting transformation."""

import pytest

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.exceptions import ValidationError
from repro.flow.base import max_flow_value
from repro.graph.builders import diamond, series_chain
from repro.graph.network import FlowNetwork
from repro.graph.nodesplit import split_nodes


class TestSplitNodes:
    def test_identity_without_failures(self):
        net = diamond()
        split = split_nodes(net, {})
        assert split.network.num_links == net.num_links
        assert split.node_link == {}
        assert split.entry["s"] == "s"

    def test_structure_of_split(self):
        net = series_chain(2, capacity=3)
        split = split_nodes(net, {"v1": 0.2})
        # one internal link + the two original links
        assert split.network.num_links == 3
        internal = split.network.link(split.node_link["v1"])
        assert internal.tail == ("v1", "in")
        assert internal.head == ("v1", "out")
        assert internal.failure_probability == pytest.approx(0.2)

    def test_max_flow_preserved_when_all_alive(self):
        net = diamond(capacity=2)
        split = split_nodes(net, {"a": 0.1, "b": 0.1})
        assert max_flow_value(split.network, "s", "t") == max_flow_value(net, "s", "t")

    def test_internal_capacity_default_not_a_bottleneck(self):
        net = FlowNetwork()
        net.add_link("s", "m", 5, 0.0)
        net.add_link("m", "t", 5, 0.0)
        split = split_nodes(net, {"m": 0.3})
        assert max_flow_value(split.network, "s", "t") == 5

    def test_internal_capacity_override(self):
        net = series_chain(2, capacity=5)
        split = split_nodes(net, {"v1": 0.1}, internal_capacity=2)
        assert max_flow_value(split.network, "s", "t") == 2

    def test_original_link_map(self):
        net = series_chain(2)
        split = split_nodes(net, {"v1": 0.1})
        originals = sorted(split.original_link_map.values())
        assert originals == [0, 1]
        assert split.node_link["v1"] not in split.original_link_map

    def test_relay_failure_probability_exact(self):
        """One fallible relay: reliability = its availability."""
        net = series_chain(2, capacity=1, failure_probability=0.0)
        split = split_nodes(net, {"v1": 0.25})
        demand = FlowDemand("s", "t", 1)
        value = naive_reliability(split.network, demand).value
        assert value == pytest.approx(0.75)

    def test_combined_node_and_link_failures(self):
        """Links keep their own probabilities; all independent."""
        net = series_chain(2, capacity=1, failure_probability=0.1)
        split = split_nodes(net, {"v1": 0.2})
        value = naive_reliability(split.network, FlowDemand("s", "t", 1)).value
        assert value == pytest.approx(0.9 * 0.8 * 0.9)

    def test_parallel_relays(self):
        """Two fallible relays in parallel: 1 - (1 - a)^2 with a = 0.8."""
        net = FlowNetwork()
        net.add_link("s", "u", 1, 0.0)
        net.add_link("u", "t", 1, 0.0)
        net.add_link("s", "v", 1, 0.0)
        net.add_link("v", "t", 1, 0.0)
        split = split_nodes(net, {"u": 0.2, "v": 0.2})
        value = naive_reliability(split.network, FlowDemand("s", "t", 1)).value
        assert value == pytest.approx(1 - (1 - 0.8) ** 2)

    def test_terminal_failure_counts(self):
        net = series_chain(1, capacity=1, failure_probability=0.0)
        split = split_nodes(net, {"t": 0.3})
        demand = FlowDemand("s", split.entry["t"], 1)
        # reaching t's entry does not require t's internal link
        assert naive_reliability(split.network, demand).value == pytest.approx(1.0)
        demand_through = FlowDemand("s", split.exit["t"], 1)
        assert naive_reliability(split.network, demand_through).value == pytest.approx(0.7)

    def test_undirected_rejected(self):
        net = FlowNetwork()
        net.add_link("s", "t", 1, 0.1, directed=False)
        with pytest.raises(ValidationError):
            split_nodes(net, {"s": 0.1})

    def test_unknown_node_rejected(self):
        with pytest.raises(ValidationError):
            split_nodes(diamond(), {"zzz": 0.1})

    def test_bad_probability_rejected(self):
        with pytest.raises(ValidationError):
            split_nodes(diamond(), {"a": 1.0})

    def test_terminal_helper(self):
        split = split_nodes(series_chain(2), {"v1": 0.1})
        assert split.terminal("s", role="source") == "s"
        assert split.terminal("v1", role="source") == ("v1", "out")
        assert split.terminal("v1", role="sink") == ("v1", "in")
        with pytest.raises(ValidationError):
            split.terminal("s", role="middle")

    def test_compute_reliability_integration(self):
        net = diamond(capacity=1, failure_probability=0.0)
        split = split_nodes(net, {"a": 0.1, "b": 0.1})
        result = compute_reliability(split.network, "s", "t", 1)
        # two disjoint relays with availability 0.9
        assert result.value == pytest.approx(1 - 0.01)
