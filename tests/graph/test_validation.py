"""Unit tests for repro.graph.validation."""

import pytest

from repro.exceptions import ValidationError
from repro.graph.builders import diamond
from repro.graph.network import FlowNetwork
from repro.graph.validation import validate_network, validate_terminals


class TestValidateNetwork:
    def test_clean_network(self):
        assert validate_network(diamond()) == []

    def test_self_loop_flagged(self):
        net = FlowNetwork()
        net.add_link("a", "a", 1)
        problems = validate_network(net)
        assert any("self-loop" in p for p in problems)

    def test_zero_capacity_flagged(self):
        net = FlowNetwork()
        net.add_link("a", "b", 0)
        problems = validate_network(net)
        assert any("zero capacity" in p for p in problems)

    def test_strict_raises(self):
        net = FlowNetwork()
        net.add_link("a", "a", 1)
        with pytest.raises(ValidationError):
            validate_network(net, strict=True)

    def test_multiple_problems_collected(self):
        net = FlowNetwork()
        net.add_link("a", "a", 0)
        assert len(validate_network(net)) == 2


class TestValidateTerminals:
    def test_ok(self):
        validate_terminals(diamond(), "s", "t")

    def test_missing_source(self):
        with pytest.raises(ValidationError):
            validate_terminals(diamond(), "nope", "t")

    def test_missing_sink(self):
        with pytest.raises(ValidationError):
            validate_terminals(diamond(), "s", "nope")

    def test_equal_terminals(self):
        with pytest.raises(ValidationError):
            validate_terminals(diamond(), "s", "s")

    def test_require_path(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1)  # only wrong-direction connectivity
        with pytest.raises(ValidationError):
            validate_terminals(net, "s", "t", require_path=True)

    def test_require_path_ok(self):
        validate_terminals(diamond(), "s", "t", require_path=True)
