"""Unit tests for repro.graph.io."""

import pytest

from repro.exceptions import ValidationError
from repro.graph.builders import diamond, fujita_fig4, grid_network
from repro.graph.io import dumps, from_dict, load, loads, save, to_dict


class TestRoundTrip:
    def test_dict_round_trip(self):
        net = fujita_fig4()
        clone = from_dict(to_dict(net))
        assert clone.num_nodes == net.num_nodes
        assert clone.num_links == net.num_links
        for a, b in zip(net.links(), clone.links()):
            assert a.endpoints == b.endpoints
            assert a.capacity == b.capacity
            assert a.failure_probability == pytest.approx(b.failure_probability)
            assert a.directed == b.directed

    def test_json_round_trip(self):
        net = diamond(cross_link=True)
        clone = loads(dumps(net))
        assert [l.endpoints for l in clone.links()] == [l.endpoints for l in net.links()]

    def test_tuple_nodes_round_trip(self):
        net = grid_network(2, 2)
        clone = loads(dumps(net))
        assert set(clone.nodes()) == set(net.nodes())

    def test_name_preserved(self):
        assert from_dict(to_dict(diamond())).name == "diamond"

    def test_file_round_trip(self, tmp_path):
        path = tmp_path / "net.json"
        net = fujita_fig4()
        save(net, path)
        clone = load(path)
        assert clone.num_links == net.num_links

    def test_undirected_flag_round_trip(self):
        from repro.graph.network import FlowNetwork

        net = FlowNetwork()
        net.add_link("a", "b", 1, 0.1, directed=False)
        clone = from_dict(to_dict(net))
        assert clone.link(0).directed is False


class TestErrors:
    def test_missing_links_key(self):
        with pytest.raises(ValidationError):
            from_dict({"nodes": []})

    def test_link_missing_fields(self):
        with pytest.raises(ValidationError):
            from_dict({"links": [{"tail": "a"}]})

    def test_defaults_applied(self):
        net = from_dict({"links": [{"tail": "a", "head": "b", "capacity": 2}]})
        assert net.link(0).failure_probability == 0.0
        assert net.link(0).directed is True

    def test_isolated_nodes_preserved(self):
        net = from_dict({"nodes": ["x"], "links": []})
        assert net.has_node("x")
