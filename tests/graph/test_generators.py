"""Unit tests for the random network generators."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.flow.base import max_flow_value
from repro.graph.connectivity import is_connected
from repro.graph.generators import (
    as_rng,
    bottlenecked_network,
    chained_network,
    layered_network,
    random_network,
)
from repro.graph.cuts import is_disconnecting


class TestAsRng:
    def test_int_seed(self):
        assert isinstance(as_rng(7), np.random.Generator)

    def test_passthrough(self):
        gen = np.random.default_rng(1)
        assert as_rng(gen) is gen

    def test_determinism(self):
        assert as_rng(3).integers(1000) == as_rng(3).integers(1000)


class TestRandomNetwork:
    def test_connected(self):
        for seed in range(5):
            assert is_connected(random_network(6, 10, seed=seed))

    def test_link_count(self):
        assert random_network(5, 9, seed=1).num_links == 9

    def test_reproducible(self):
        a = random_network(6, 10, seed=42)
        b = random_network(6, 10, seed=42)
        assert [l.endpoints for l in a.links()] == [l.endpoints for l in b.links()]
        assert a.failure_probabilities() == b.failure_probabilities()

    def test_different_seeds_differ(self):
        a = random_network(6, 10, seed=1)
        b = random_network(6, 10, seed=2)
        assert a.failure_probabilities() != b.failure_probabilities()

    def test_too_few_links_rejected(self):
        with pytest.raises(ValidationError):
            random_network(6, 2, seed=0)

    def test_too_few_nodes_rejected(self):
        with pytest.raises(ValidationError):
            random_network(1, 2)

    def test_probability_range_respected(self):
        net = random_network(6, 12, seed=3, p_range=(0.2, 0.25))
        for p in net.failure_probabilities():
            assert 0.2 <= p <= 0.25

    def test_capacity_cap_respected(self):
        net = random_network(6, 12, seed=3, max_capacity=2)
        assert all(1 <= c <= 2 for c in net.capacities())


class TestBottleneckedNetwork:
    def test_bottlenecks_are_first_indices(self):
        net = bottlenecked_network(
            source_side_links=6, sink_side_links=5, num_bottlenecks=3, demand=2, seed=0
        )
        for i in range(3):
            link = net.link(i)
            assert link.tail == f"x{i}" and link.head == f"y{i}"

    def test_bottlenecks_disconnect(self):
        net = bottlenecked_network(
            source_side_links=6, sink_side_links=5, num_bottlenecks=2, seed=1
        )
        assert is_disconnecting(net, "s", "t", [0, 1])

    def test_all_alive_feasible(self):
        for seed in range(4):
            net = bottlenecked_network(
                source_side_links=6, sink_side_links=6, num_bottlenecks=2, demand=2, seed=seed
            )
            assert max_flow_value(net, "s", "t") >= 2

    def test_link_budgets(self):
        net = bottlenecked_network(
            source_side_links=7, sink_side_links=5, num_bottlenecks=2, seed=2
        )
        assert net.num_links == 7 + 5 + 2

    def test_rejects_tiny_budget(self):
        with pytest.raises(ValidationError):
            bottlenecked_network(
                source_side_links=1, sink_side_links=5, num_bottlenecks=3, seed=0
            )

    def test_rejects_zero_bottlenecks(self):
        with pytest.raises(ValidationError):
            bottlenecked_network(
                source_side_links=4, sink_side_links=4, num_bottlenecks=0
            )


class TestChainedNetwork:
    def test_cut_indices_recorded(self):
        net = chained_network([4, 5, 4], cut_sizes=2, demand=1, seed=0)
        cuts = net._chain_cut_indices
        assert len(cuts) == 2
        assert all(len(c) == 2 for c in cuts)

    def test_each_cut_disconnects(self):
        net = chained_network([4, 4, 4], cut_sizes=2, demand=1, seed=1)
        for cut in net._chain_cut_indices:
            assert is_disconnecting(net, "s", "t", cut)

    def test_all_alive_feasible(self):
        net = chained_network([4, 5, 4], cut_sizes=2, demand=2, seed=3)
        assert max_flow_value(net, "s", "t") >= 2

    def test_needs_two_segments(self):
        with pytest.raises(ValidationError):
            chained_network([4], cut_sizes=1)

    def test_cut_size_list_length_checked(self):
        with pytest.raises(ValidationError):
            chained_network([4, 4, 4], cut_sizes=[1])

    def test_budget_too_small_rejected(self):
        with pytest.raises(ValidationError):
            chained_network([0, 4], cut_sizes=2, seed=0)


class TestLayeredNetwork:
    def test_st_flow_positive(self):
        net = layered_network([3, 3], seed=0)
        assert max_flow_value(net, "s", "t") >= 1

    def test_connected(self):
        assert is_connected(layered_network([2, 4, 2], seed=5))

    def test_density_one_is_complete_bipartite(self):
        net = layered_network([2, 3], seed=0, density=1.0)
        # s->2 + 2*3 + 3->t
        assert net.num_links == 2 + 6 + 3

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            layered_network([])
