"""Unit tests for the four max-flow solvers, cross-checked on shared
instances and against networkx as an independent oracle."""

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import SolverError
from repro.flow.base import (
    available_solvers,
    get_solver,
    is_feasible,
    max_flow,
    max_flow_value,
)
from repro.graph.builders import diamond, grid_network, parallel_links, series_chain, two_paths
from repro.graph.generators import layered_network, random_network
from repro.graph.network import FlowNetwork

SOLVERS = ["dinic", "edmonds_karp", "push_relabel", "capacity_scaling"]


def networkx_max_flow(net: FlowNetwork, source, sink, alive=None) -> int:
    """Independent oracle via networkx (never used by the library)."""
    g = nx.DiGraph()
    g.add_nodes_from(net.nodes())
    for link in net.links():
        if alive is not None and link.index not in alive:
            continue
        if link.tail == link.head:
            continue
        pairs = [(link.tail, link.head)]
        if not link.directed:
            pairs.append((link.head, link.tail))
        for u, v in pairs:
            if g.has_edge(u, v):
                g[u][v]["capacity"] += link.capacity
            else:
                g.add_edge(u, v, capacity=link.capacity)
    return nx.maximum_flow_value(g, source, sink)


class TestRegistry:
    def test_all_registered(self):
        assert set(SOLVERS) <= set(available_solvers())

    def test_default_is_dinic(self):
        assert get_solver().name == "dinic"

    def test_instance_passthrough(self):
        solver = get_solver("dinic")
        assert get_solver(solver) is solver

    def test_unknown_name(self):
        with pytest.raises(SolverError):
            get_solver("simplex")


@pytest.mark.parametrize("solver", SOLVERS)
class TestKnownValues:
    def test_chain(self, solver):
        assert max_flow_value(series_chain(4, capacity=3), "s", "t", solver=solver) == 3

    def test_parallel(self, solver):
        assert max_flow_value(parallel_links(4, capacity=2), "s", "t", solver=solver) == 8

    def test_diamond(self, solver):
        assert max_flow_value(diamond(capacity=2), "s", "t", solver=solver) == 4

    def test_two_paths(self, solver):
        assert max_flow_value(two_paths(2, 1), "s", "t", solver=solver) == 3

    def test_grid(self, solver):
        assert max_flow_value(grid_network(3, 3), "s", "t", solver=solver) == 3

    def test_disconnected(self, solver):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        net.add_link("s", "m", 5)
        assert max_flow_value(net, "s", "t", solver=solver) == 0

    def test_wrong_direction_is_zero(self, solver):
        net = FlowNetwork()
        net.add_link("t", "s", 5)
        assert max_flow_value(net, "s", "t", solver=solver) == 0

    def test_undirected_counts_both_ways(self, solver):
        net = FlowNetwork()
        net.add_link("t", "s", 5, directed=False)
        assert max_flow_value(net, "s", "t", solver=solver) == 5

    def test_alive_mask(self, solver):
        net = diamond(capacity=1)
        assert max_flow_value(net, "s", "t", alive=0b0101, solver=solver) == 1

    def test_classic_antiparallel_augmentation(self, solver):
        # the textbook case requiring flow cancellation along a reverse arc
        net = FlowNetwork()
        net.add_link("s", "a", 1)
        net.add_link("s", "b", 1)
        net.add_link("a", "b", 1)
        net.add_link("a", "t", 1)
        net.add_link("b", "t", 1)
        assert max_flow_value(net, "s", "t", solver=solver) == 2


@pytest.mark.parametrize("solver", SOLVERS)
class TestAgainstNetworkx:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_networks(self, solver, seed):
        net = random_network(7, 14, seed=seed, max_capacity=4)
        expected = networkx_max_flow(net, "s", "t")
        assert max_flow_value(net, "s", "t", solver=solver) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_layered(self, solver, seed):
        net = layered_network([3, 4, 3], seed=seed)
        expected = networkx_max_flow(net, "s", "t")
        assert max_flow_value(net, "s", "t", solver=solver) == expected

    @pytest.mark.parametrize("seed", range(4))
    def test_random_alive_subsets(self, solver, seed):
        rng = np.random.default_rng(seed)
        net = random_network(6, 12, seed=seed)
        for _ in range(5):
            alive = {i for i in range(net.num_links) if rng.random() < 0.6}
            expected = networkx_max_flow(net, "s", "t", alive=alive)
            assert max_flow_value(net, "s", "t", alive=alive, solver=solver) == expected


class TestLimits:
    @pytest.mark.parametrize("solver", ["dinic", "edmonds_karp", "capacity_scaling"])
    def test_limit_truncates(self, solver):
        net = parallel_links(4, capacity=2)
        result = max_flow(net, "s", "t", limit=3, solver=solver)
        assert result.value == 3
        assert result.limited

    def test_push_relabel_limit_caps_value(self):
        net = parallel_links(4, capacity=2)
        result = max_flow(net, "s", "t", limit=3, solver="push_relabel")
        assert result.value == 3

    @pytest.mark.parametrize("solver", SOLVERS)
    def test_limit_above_max_flow(self, solver):
        net = diamond(capacity=1)
        assert max_flow(net, "s", "t", limit=10, solver=solver).value == 2

    def test_is_feasible(self):
        net = two_paths(2, 1)
        assert is_feasible(net, "s", "t", 3)
        assert not is_feasible(net, "s", "t", 4)

    def test_is_feasible_zero_demand(self):
        assert is_feasible(diamond(), "s", "t", 0)


class TestResultObject:
    def test_link_flows_conserve(self):
        net = diamond(capacity=1)
        result = max_flow(net, "s", "t")
        # both branches saturated
        assert result.link_flows == {0: 1, 1: 1, 2: 1, 3: 1}

    def test_min_cut_side_contains_source(self):
        result = max_flow(series_chain(3), "s", "t")
        assert "s" in result.min_cut_source_side
        assert "t" not in result.min_cut_source_side

    def test_source_equals_sink_rejected(self):
        with pytest.raises(SolverError):
            max_flow(diamond(), "s", "s")

    def test_unknown_terminal_rejected(self):
        with pytest.raises(SolverError):
            max_flow(diamond(), "s", "zzz")
