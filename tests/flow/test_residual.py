"""Unit tests for repro.flow.residual."""

import pytest

from repro.exceptions import SolverError
from repro.flow.dinic import DinicSolver
from repro.flow.residual import ResidualGraph, build_template
from repro.graph.network import FlowNetwork


class TestResidualGraph:
    def test_arc_pairing(self):
        g = ResidualGraph(2)
        arc = g.add_arc_pair(0, 1, 5)
        assert arc == 0
        assert g.head[arc] == 1
        assert g.head[arc ^ 1] == 0
        assert g.cap[arc] == 5
        assert g.cap[arc ^ 1] == 0

    def test_adjacency(self):
        g = ResidualGraph(3)
        g.add_arc_pair(0, 1, 1)
        g.add_arc_pair(0, 2, 1)
        assert g.adj[0] == [0, 2]
        assert g.adj[1] == [1]

    def test_out_of_range(self):
        g = ResidualGraph(2)
        with pytest.raises(SolverError):
            g.add_arc_pair(0, 5, 1)

    def test_residual_reachable(self):
        g = ResidualGraph(3)
        g.add_arc_pair(0, 1, 1)
        g.add_arc_pair(1, 2, 0)  # no residual capacity
        seen = g.residual_reachable(0)
        assert seen == [True, True, False]


class TestTemplate:
    def build(self):
        net = FlowNetwork()
        net.add_link("s", "m", 2, 0.1)
        net.add_link("m", "t", 3, 0.1)
        net.add_link("s", "t", 1, 0.1, directed=False)
        return net, build_template(net)

    def test_node_index_covers_all(self):
        net, tpl = self.build()
        assert set(tpl.node_index) == {"s", "m", "t"}

    def test_configure_all_alive(self):
        net, tpl = self.build()
        g = tpl.configure()
        # directed links: cap forward, 0 back; undirected: cap both ways
        assert g.cap[0] == 2 and g.cap[1] == 0
        assert g.cap[4] == 1 and g.cap[5] == 1

    def test_configure_mask(self):
        net, tpl = self.build()
        g = tpl.configure(alive=0b001)
        assert g.cap[0] == 2
        assert g.cap[2] == 0 and g.cap[3] == 0

    def test_configure_iterable(self):
        net, tpl = self.build()
        g = tpl.configure(alive=[1])
        assert g.cap[0] == 0 and g.cap[2] == 3

    def test_configure_resets_previous_state(self):
        net, tpl = self.build()
        g = tpl.configure()
        g.cap[0] = 0  # simulate a solve
        g = tpl.configure()
        assert g.cap[0] == 2

    def test_virtual_arc(self):
        net, tpl = self.build()
        arc = tpl.add_virtual_arc("x", tpl.node_index["s"], tpl.node_index["t"], 7)
        g = tpl.configure(virtual_capacities={"x": 4})
        assert g.cap[arc] == 4
        g = tpl.configure()
        assert g.cap[arc] == 7  # design capacity restored

    def test_unknown_virtual_name(self):
        net, tpl = self.build()
        with pytest.raises(SolverError):
            tpl.configure(virtual_capacities={"nope": 1})

    def test_virtual_node_collision(self):
        net = FlowNetwork()
        net.add_link("a", "b", 1)
        with pytest.raises(SolverError):
            build_template(net, extra_nodes=["a"])

    def test_self_loops_skipped(self):
        net = FlowNetwork()
        net.add_link("a", "a", 5)
        net.add_link("a", "b", 1)
        tpl = build_template(net)
        assert tpl.graph.num_arcs == 2  # only the a->b pair

    def test_link_flow_directed(self):
        net, tpl = self.build()
        g = tpl.configure(alive=0b011)  # only the s->m->t path
        DinicSolver().solve_residual(g, tpl.node_index["s"], tpl.node_index["t"])
        assert tpl.link_flow(0) == 2
        assert tpl.link_flow(1) == 2
        assert tpl.link_flow(2) == 0

    def test_link_flow_undirected(self):
        net, tpl = self.build()
        g = tpl.configure(alive=0b100)  # only the undirected s-t link
        DinicSolver().solve_residual(g, tpl.node_index["s"], tpl.node_index["t"])
        assert tpl.link_flow(2) == 1
