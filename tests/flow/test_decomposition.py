"""Unit tests for flow decomposition into unit-rate sub-streams."""

import pytest

from repro.flow.base import max_flow
from repro.flow.decomposition import decompose
from repro.graph.builders import diamond, parallel_links, series_chain, two_paths
from repro.graph.generators import layered_network, random_network
from repro.graph.network import FlowNetwork


def check_substreams(net, result, streams):
    """Structural validity: count, endpoints, per-link usage <= flow."""
    assert len(streams) == result.value
    usage = {}
    for stream in streams:
        assert stream.nodes[0] == result.source
        assert stream.nodes[-1] == result.sink
        assert len(stream.nodes) == len(stream.links) + 1
        for i, link_index in enumerate(stream.links):
            link = net.link(link_index)
            a, b = stream.nodes[i], stream.nodes[i + 1]
            assert {a, b} == {link.tail, link.head}
            usage[link_index] = usage.get(link_index, 0) + 1
    for link_index, used in usage.items():
        assert used <= abs(result.link_flows.get(link_index, 0))


class TestDecompose:
    def test_single_path(self):
        net = series_chain(3, capacity=1)
        result = max_flow(net, "s", "t")
        streams = decompose(net, result)
        assert len(streams) == 1
        assert streams[0].links == (0, 1, 2)
        assert streams[0].hops == 3

    def test_parallel_links_distinct(self):
        net = parallel_links(3, capacity=1)
        result = max_flow(net, "s", "t")
        streams = decompose(net, result)
        assert sorted(s.links[0] for s in streams) == [0, 1, 2]

    def test_capacity_two_link_used_twice(self):
        net = series_chain(2, capacity=2)
        result = max_flow(net, "s", "t")
        streams = decompose(net, result)
        assert len(streams) == 2
        assert streams[0].links == streams[1].links

    def test_diamond_paths_disjoint(self):
        net = diamond(capacity=1)
        result = max_flow(net, "s", "t")
        streams = decompose(net, result)
        assert len(streams) == 2
        assert set(streams[0].links).isdisjoint(streams[1].links)

    def test_two_paths(self):
        net = two_paths(2, 1)
        result = max_flow(net, "s", "t")
        check_substreams(net, result, decompose(net, result))

    def test_zero_flow(self):
        net = FlowNetwork()
        net.add_link("t", "s", 1)
        result = max_flow(net, "s", "t")
        assert decompose(net, result) == []

    @pytest.mark.parametrize("seed", range(6))
    def test_random_networks_structurally_valid(self, seed):
        net = random_network(7, 14, seed=seed, max_capacity=3)
        result = max_flow(net, "s", "t")
        check_substreams(net, result, decompose(net, result))

    @pytest.mark.parametrize("seed", range(3))
    def test_layered_networks(self, seed):
        net = layered_network([3, 3], seed=seed)
        result = max_flow(net, "s", "t")
        check_substreams(net, result, decompose(net, result))

    def test_undirected_flow(self):
        net = FlowNetwork()
        net.add_link("t", "m", 2, directed=False)
        net.add_link("m", "s", 2, directed=False)
        result = max_flow(net, "s", "t")
        streams = decompose(net, result)
        assert len(streams) == 2
        for stream in streams:
            assert stream.nodes == ("s", "m", "t")

    def test_relay_peers_property(self):
        net = series_chain(3, capacity=1)
        result = max_flow(net, "s", "t")
        (stream,) = decompose(net, result)
        assert stream.nodes[1:-1] == ("v1", "v2")
