"""Solver stress cases: the structures each algorithm finds hardest."""

import pytest

from repro.flow.base import max_flow_value
from repro.graph.generators import layered_network
from repro.graph.network import FlowNetwork

SOLVERS = ("dinic", "edmonds_karp", "push_relabel", "capacity_scaling")


def big_capacity_trap() -> FlowNetwork:
    """The classic 2-path network where naive augmenting paths zig-zag
    through the cross edge C times (C large) — capacity scaling's home
    turf."""
    net = FlowNetwork()
    c = 10_000
    net.add_link("s", "a", c)
    net.add_link("s", "b", c)
    net.add_link("a", "b", 1)
    net.add_link("a", "t", c)
    net.add_link("b", "t", c)
    return net


def gap_trigger() -> FlowNetwork:
    """A dead-end chamber that push-relabel must drain back — exercises
    the gap heuristic."""
    net = FlowNetwork()
    net.add_link("s", "a", 5)
    net.add_link("a", "dead1", 5)
    net.add_link("dead1", "dead2", 5)
    net.add_link("a", "t", 1)
    return net


def long_zigzag(depth: int) -> FlowNetwork:
    net = FlowNetwork()
    prev = "s"
    for i in range(depth):
        net.add_link(prev, f"u{i}", 2)
        net.add_link(f"u{i}", f"v{i}", 2)
        prev = f"v{i}"
    net.add_link(prev, "t", 2)
    return net


@pytest.mark.parametrize("solver", SOLVERS)
class TestStressShapes:
    def test_big_capacity_trap(self, solver):
        assert max_flow_value(big_capacity_trap(), "s", "t", solver=solver) == 20_000

    def test_gap_trigger(self, solver):
        assert max_flow_value(gap_trigger(), "s", "t", solver=solver) == 1

    def test_long_chain(self, solver):
        assert max_flow_value(long_zigzag(40), "s", "t", solver=solver) == 2

    def test_dense_layered(self, solver):
        net = layered_network([5, 6, 5], seed=3, max_capacity=7)
        reference = max_flow_value(net, "s", "t", solver="dinic")
        assert max_flow_value(net, "s", "t", solver=solver) == reference

    def test_zero_probability_structures_are_irrelevant(self, solver):
        # failure probabilities never affect max flow
        net = big_capacity_trap().with_failure_probabilities(
            [0.9, 0.1, 0.5, 0.3, 0.7]
        )
        assert max_flow_value(net, "s", "t", solver=solver) == 20_000


class TestLimitsOnStressShapes:
    @pytest.mark.parametrize("solver", ("dinic", "edmonds_karp", "capacity_scaling"))
    def test_limit_caps_work_on_trap(self, solver):
        from repro.flow.base import max_flow

        result = max_flow(big_capacity_trap(), "s", "t", limit=5, solver=solver)
        assert result.value == 5
        assert result.limited
