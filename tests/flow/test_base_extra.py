"""Additional tests for repro.flow.base: registry contracts, template
reuse and infinite-capacity arcs."""

import pytest

from repro.exceptions import SolverError
from repro.flow.base import (
    MaxFlowSolver,
    get_solver,
    max_flow,
    register_solver,
)
from repro.flow.residual import INFINITE_CAPACITY, build_template
from repro.graph.builders import diamond, two_paths
from repro.graph.network import FlowNetwork


class TestRegistryContracts:
    def test_register_rejects_non_solver(self):
        with pytest.raises(SolverError):

            @register_solver("bogus")
            class NotASolver:
                pass

    def test_custom_solver_registration(self):
        @register_solver("copycat-dinic")
        class CopycatSolver(MaxFlowSolver):
            def solve_residual(self, graph, source, sink, limit=None):
                return get_solver("dinic").solve_residual(graph, source, sink, limit)

        value = max_flow(diamond(), "s", "t", solver="copycat-dinic").value
        assert value == 2

    def test_solver_name_attribute_set(self):
        assert get_solver("edmonds_karp").name == "edmonds_karp"


class TestTemplateReuse:
    def test_repeated_solves_on_one_template(self):
        net = two_paths(2, 1)
        template = build_template(net)
        solver = get_solver()
        values = []
        for alive in (None, 0b0011, 0b1100, 0b0000):
            values.append(
                solver.max_flow(net, "s", "t", alive=alive, template=template).value
            )
        assert values == [3, 2, 1, 0]

    def test_template_state_does_not_leak(self):
        net = diamond()
        template = build_template(net)
        solver = get_solver()
        first = solver.max_flow(net, "s", "t", template=template).value
        second = solver.max_flow(net, "s", "t", template=template).value
        assert first == second == 2

    def test_interleaved_limits(self):
        net = two_paths(2, 1)
        template = build_template(net)
        solver = get_solver()
        limited = solver.max_flow(net, "s", "t", limit=1, template=template).value
        full = solver.max_flow(net, "s", "t", template=template).value
        assert (limited, full) == (1, 3)


class TestInfiniteCapacity:
    def test_virtual_arc_never_bottlenecks(self):
        net = FlowNetwork()
        net.add_link("s", "m", 1000, 0.0)
        net.add_link("m", "t", 1000, 0.0)
        template = build_template(net, extra_nodes=["virt"])
        template.add_virtual_arc(
            "boost", template.node_index["s"], template.node_index["virt"], INFINITE_CAPACITY
        )
        graph = template.configure()
        assert graph.cap[template.virtual_arcs["boost"]] == INFINITE_CAPACITY

    def test_infinite_capacity_magnitude(self):
        # large enough to never bind, small enough to sum safely
        assert INFINITE_CAPACITY > 10**9
        assert INFINITE_CAPACITY * 1000 < 2**63


class TestMaxFlowEdgeCases:
    def test_zero_capacity_network(self):
        net = FlowNetwork()
        net.add_link("s", "t", 0)
        assert max_flow(net, "s", "t").value == 0

    def test_self_loop_contributes_nothing(self):
        net = FlowNetwork()
        net.add_link("s", "s", 5)
        net.add_link("s", "t", 1)
        assert max_flow(net, "s", "t").value == 1

    def test_isolated_terminals(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        result = max_flow(net, "s", "t")
        assert result.value == 0
        assert result.link_flows == {}

    def test_limit_zero(self):
        assert max_flow(diamond(), "s", "t", limit=0).value == 0
