"""Unit tests for repro.flow.mincut."""

import pytest

from repro.flow.base import max_flow
from repro.flow.mincut import min_cut_capacity, min_cut_links, minimum_cut
from repro.graph.builders import diamond, fujita_fig2_bridge, parallel_links, series_chain, two_paths
from repro.graph.network import FlowNetwork


class TestMinCutLinks:
    def test_chain_cut_is_single_link(self):
        net = series_chain(3, capacity=2)
        result = max_flow(net, "s", "t")
        links = min_cut_links(net, result)
        assert len(links) == 1

    def test_bridge_network_cuts_at_bridge(self):
        net = fujita_fig2_bridge(bridge_capacity=1, side_capacity=5)
        result = max_flow(net, "s", "t")
        assert min_cut_links(net, result) == (8,)

    def test_undirected_crossing_counted(self):
        net = FlowNetwork()
        net.add_link("t", "s", 3, directed=False)
        result = max_flow(net, "s", "t")
        assert min_cut_links(net, result) == (0,)


class TestDuality:
    @pytest.mark.parametrize(
        "net",
        [diamond(capacity=2), two_paths(2, 1), parallel_links(3, 2), series_chain(4, 3)],
        ids=["diamond", "two-paths", "parallel", "chain"],
    )
    def test_cut_capacity_equals_flow(self, net):
        result = max_flow(net, "s", "t")
        assert min_cut_capacity(net, result) == result.value


class TestMinimumCut:
    def test_value_and_links(self):
        value, links = minimum_cut(two_paths(2, 1), "s", "t")
        assert value == 3
        assert len(links) == 2

    def test_alive_mask_filters(self):
        net = parallel_links(3, 2)
        value, links = minimum_cut(net, "s", "t", alive=0b011)
        assert value == 4
        assert set(links) == {0, 1}

    def test_disconnected(self):
        net = FlowNetwork()
        net.add_node("s")
        net.add_node("t")
        value, links = minimum_cut(net, "s", "t")
        assert value == 0
        assert links == ()
