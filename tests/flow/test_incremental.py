"""Unit tests for the incremental (Gray-walk) max-flow engine.

Ground truth throughout is the cold solve: for any alive mask the
engine's :meth:`goto` must report exactly the value a fresh
``template.configure`` + ``solver.solve`` reports.  The walks exercise
both the one-bit Gray steps the kernels use and arbitrary multi-bit
jumps (worst case for the repair logic).
"""

import random

import pytest

from repro.core.demand import FlowDemand
from repro.exceptions import SolverError
from repro.flow.base import get_solver
from repro.flow.incremental import (
    IncrementalMaxFlow,
    plan_gray_order,
    resolve_incremental,
)
from repro.flow.residual import build_template
from repro.graph.builders import diamond, fujita_fig2_bridge, fujita_fig4
from repro.graph.generators import bottlenecked_network
from repro.probability.bitset import gray_lattice

SOLVER = "dinic"


def _cold_value(template, mask, s, t, limit, caps=None):
    graph = template.configure(alive=mask, virtual_capacities=caps)
    return get_solver(SOLVER).solve(graph, s, t, limit=limit)


def _template_for(net):
    template = build_template(net)
    return template, template.node_index["s"], template.node_index["t"]


NETWORKS = [
    ("fig4", fujita_fig4(), 2),
    ("fig2", fujita_fig2_bridge(), 1),
    ("diamond", diamond(), 1),
]


class TestGotoAgainstColdSolves:
    @pytest.mark.parametrize("name,net,demand", NETWORKS)
    @pytest.mark.parametrize("limit", ["demand", None])
    def test_full_gray_walk(self, name, net, demand, limit):
        limit = demand if limit == "demand" else None
        template, s, t = _template_for(net)
        engine = IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=limit)
        m = net.num_links
        for mask in gray_lattice(m):
            got = engine.goto(mask)
            want = _cold_value(template, mask, s, t, limit)
            assert got == want, f"{name}: mask {mask:b}"
            assert engine.alive == mask

    @pytest.mark.parametrize("name,net,demand", NETWORKS)
    def test_random_jumps(self, name, net, demand):
        template, s, t = _template_for(net)
        engine = IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=demand)
        rng = random.Random(17)
        m = net.num_links
        for _ in range(200):
            mask = rng.randrange(1 << m)
            assert engine.goto(mask) == _cold_value(template, mask, s, t, demand)

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_random_networks(self, seed):
        net = bottlenecked_network(
            source_side_links=4, sink_side_links=3, num_bottlenecks=2, demand=2, seed=seed
        )
        template, s, t = _template_for(net)
        engine = IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=2)
        rng = random.Random(seed)
        for _ in range(150):
            mask = rng.randrange(1 << net.num_links)
            assert engine.goto(mask) == _cold_value(template, mask, s, t, 2)


class TestDeltaOperations:
    def test_kill_and_revive_are_idempotent(self):
        net = fujita_fig4()
        template, s, t = _template_for(net)
        full = (1 << net.num_links) - 1
        engine = IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=2, alive=full)
        value = engine.flow_value()
        calls = engine.solver_calls
        engine.kill(0)
        engine.kill(0)  # second kill of a dead link: no-op
        after_kill = engine.solver_calls
        engine.revive(0)
        engine.revive(0)  # second revive of an alive link: no-op
        assert engine.flow_value() == value
        assert engine.solver_calls >= calls
        assert after_kill == engine.solver_calls - (1 if engine.solver_calls > after_kill else 0)

    def test_zero_flow_kill_costs_no_solve(self):
        net = fujita_fig4()
        template, s, t = _template_for(net)
        full = (1 << net.num_links) - 1
        engine = IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=2, alive=full)
        engine.flow_value()
        idle = [i for i in range(net.num_links) if engine.link_flow(i) == 0]
        assert idle, "fixture should leave some link unused at demand 2"
        calls = engine.solver_calls
        engine.kill(idle[0])
        assert engine.flow_value() == 2
        assert engine.solver_calls == calls

    def test_counters_accrue(self):
        net = fujita_fig4()
        template, s, t = _template_for(net)
        engine = IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=2)
        for mask in gray_lattice(net.num_links):
            engine.goto(mask)
        assert engine.solver_calls > 0
        assert engine.repairs > 0
        assert engine.paths_saved > 0

    def test_retarget_matches_cold(self):
        net = fujita_fig4()
        template = build_template(net, extra_nodes=["__virt__"])
        s = template.node_index["s"]
        virt = template.node_index["__virt__"]
        # Two virtual drain arcs mimic the §III-C port arcs.
        template.add_virtual_arc("p0", template.node_index["t"], virt, 2)
        template.add_virtual_arc("p1", template.node_index["y1"], virt, 2)
        full = (1 << net.num_links) - 1
        engine = IncrementalMaxFlow(
            template, s, virt, solver=SOLVER, limit=2,
            alive=full, virtual_capacities={"p0": 0, "p1": 0},
        )
        rng = random.Random(5)
        for _ in range(60):
            caps = {"p0": rng.randrange(3), "p1": rng.randrange(3)}
            mask = rng.randrange(1 << net.num_links)
            engine.retarget(caps)
            got = engine.goto(mask)
            assert got == _cold_value(template, mask, s, virt, 2, caps=caps)

    def test_retarget_rejects_bad_input(self):
        net = diamond()
        template = build_template(net, extra_nodes=["__virt__"])
        template.add_virtual_arc("p0", template.node_index["t"], template.node_index["__virt__"], 1)
        engine = IncrementalMaxFlow(
            template, template.node_index["s"], template.node_index["__virt__"],
            solver=SOLVER, limit=1,
        )
        with pytest.raises(SolverError):
            engine.retarget({"nope": 1})
        with pytest.raises(SolverError):
            engine.retarget({"p0": -1})


class TestValidation:
    def test_source_equals_sink_rejected(self):
        template, s, _ = _template_for(diamond())
        with pytest.raises(SolverError):
            IncrementalMaxFlow(template, s, s, solver=SOLVER)

    def test_negative_limit_rejected(self):
        template, s, t = _template_for(diamond())
        with pytest.raises(SolverError):
            IncrementalMaxFlow(template, s, t, solver=SOLVER, limit=-1)

    def test_push_relabel_rejected(self):
        template, s, t = _template_for(diamond())
        with pytest.raises(SolverError):
            IncrementalMaxFlow(template, s, t, solver="push_relabel")

    def test_resolve_incremental(self):
        assert resolve_incremental("dinic", None) is True
        assert resolve_incremental("edmonds_karp", None) is True
        assert resolve_incremental("push_relabel", None) is False
        assert resolve_incremental("push_relabel", False) is False
        assert resolve_incremental("dinic", False) is False
        assert resolve_incremental("dinic", True) is True
        with pytest.raises(SolverError):
            resolve_incremental("push_relabel", True)


class TestPlanGrayOrder:
    def test_returns_a_permutation(self):
        net = fujita_fig4()
        template, s, t = _template_for(net)
        order = plan_gray_order(template, s, t, net.num_links, solver=SOLVER, limit=2)
        assert sorted(order) == list(range(net.num_links))

    def test_flow_carrying_links_parked_high(self):
        net = fujita_fig4()
        template, s, t = _template_for(net)
        order = plan_gray_order(template, s, t, net.num_links, solver=SOLVER, limit=None)
        # A true max flow on fig4 uses some links; the walk must place at
        # least one zero-flow link before every flow-carrying one.
        graph = template.configure(alive=None, graph=template.graph.copy())
        get_solver(SOLVER).solve_residual(graph, s, t, limit=None)
        flows = {}
        for link in template.link_indices():
            total = 0
            for record in template.link_arcs(link):
                a = record.arc
                if record.directed:
                    total += graph.cap[a ^ 1]
                else:
                    total += abs(graph.cap[a ^ 1] - graph.cap[a]) // 2
            flows[link] = abs(total)
        carrying = [b for b in order if flows[b] > 0]
        idle = [b for b in order if flows[b] == 0]
        assert carrying and idle
        assert max(order.index(b) for b in idle) < min(order.index(b) for b in carrying) + len(idle) + len(carrying)
        # The strongest invariant: all idle bits come first.
        assert order[: len(idle)] == sorted(order[: len(idle)], key=order.index)
        assert set(order[: len(idle)]) == set(idle)

    def test_zero_bits(self):
        template, s, t = _template_for(diamond())
        assert plan_gray_order(template, s, t, 0, solver=SOLVER) == []

    def test_link_of_bit_must_match_width(self):
        template, s, t = _template_for(diamond())
        with pytest.raises(SolverError):
            plan_gray_order(template, s, t, 2, solver=SOLVER, link_of_bit=[0])
