"""Property-based tests for the CFG builder.

Hypothesis generates small but adversarial function bodies (nested
branches, loops with ``break``/``continue``, ``try``/``finally``,
``with``, ``match``) and checks the structural invariants every
dataflow analysis relies on: exactly one entry, a reachable exit, and
an edge set consistent with the adjacency maps.
"""

from __future__ import annotations

import ast

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.dataflow import build_cfg
from repro.analysis.dataflow.cfg import ENTRY, EXIT

SIMPLE_STATEMENTS = [
    "x = f()",
    "y = x + 1",
    "pass",
    "x = y",
    "use(x, y)",
    "return x",
    "raise ValueError(x)",
]

#: Extra statements that are only legal inside a loop body.
LOOP_ONLY = ["break", "continue"]


def _indent(lines: list[str]) -> list[str]:
    return ["    " + line for line in lines]


def _statement(depth: int, in_loop: bool) -> st.SearchStrategy[list[str]]:
    pool = SIMPLE_STATEMENTS + (LOOP_ONLY if in_loop else [])
    simple = st.sampled_from(pool).map(lambda s: [s])
    if depth <= 0:
        return simple
    return st.one_of(
        simple,
        _if_stmt(depth, in_loop),
        _while_stmt(depth),
        _for_stmt(depth),
        _with_stmt(depth, in_loop),
        _try_stmt(depth, in_loop),
        _match_stmt(depth, in_loop),
    )


def _suite(depth: int, in_loop: bool) -> st.SearchStrategy[list[str]]:
    return st.lists(_statement(depth, in_loop), min_size=1, max_size=3).map(
        lambda blocks: [line for block in blocks for line in block]
    )


@st.composite
def _if_stmt(draw, depth: int, in_loop: bool) -> list[str]:
    lines = ["if cond(x):"] + _indent(draw(_suite(depth - 1, in_loop)))
    if draw(st.booleans()):
        lines += ["else:"] + _indent(draw(_suite(depth - 1, in_loop)))
    return lines


@st.composite
def _while_stmt(draw, depth: int) -> list[str]:
    lines = ["while cond(x):"] + _indent(draw(_suite(depth - 1, True)))
    if draw(st.booleans()):
        lines += ["else:"] + _indent(draw(_suite(depth - 1, False)))
    return lines


@st.composite
def _for_stmt(draw, depth: int) -> list[str]:
    lines = ["for item in items:"] + _indent(draw(_suite(depth - 1, True)))
    if draw(st.booleans()):
        lines += ["else:"] + _indent(draw(_suite(depth - 1, False)))
    return lines


@st.composite
def _with_stmt(draw, depth: int, in_loop: bool) -> list[str]:
    return ["with ctx() as c:"] + _indent(draw(_suite(depth - 1, in_loop)))


@st.composite
def _try_stmt(draw, depth: int, in_loop: bool) -> list[str]:
    lines = ["try:"] + _indent(draw(_suite(depth - 1, in_loop)))
    has_handler = draw(st.booleans())
    if has_handler:
        lines += ["except ValueError:"] + _indent(draw(_suite(depth - 1, in_loop)))
    if not has_handler or draw(st.booleans()):
        lines += ["finally:"] + _indent(draw(_suite(depth - 1, in_loop)))
    return lines


@st.composite
def _match_stmt(draw, depth: int, in_loop: bool) -> list[str]:
    lines = ["match x:"]
    for pattern in draw(
        st.lists(st.sampled_from(['case "a":', "case _:"]), min_size=1, max_size=2)
    ):
        lines += _indent([pattern] + _indent(draw(_suite(depth - 1, in_loop))))
    return lines


function_bodies = _suite(depth=2, in_loop=False)


def _build(lines: list[str]):
    source = "def f(x, y, items):\n" + "\n".join(_indent(lines)) + "\n"
    func = ast.parse(source).body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func.body)


@settings(max_examples=200, deadline=None)
@given(function_bodies)
def test_single_entry_and_exit(lines):
    cfg = _build(lines)
    assert cfg.nodes[ENTRY].stmt is None and cfg.nodes[ENTRY].label == "entry"
    assert cfg.nodes[EXIT].stmt is None and cfg.nodes[EXIT].label == "exit"
    assert sum(n.label == "entry" for n in cfg.nodes) == 1
    assert sum(n.label == "exit" for n in cfg.nodes) == 1
    # The entry is a pure source, the exit a pure sink.
    assert not cfg.preds[ENTRY]
    assert not cfg.succs[EXIT]


@settings(max_examples=200, deadline=None)
@given(function_bodies)
def test_exit_reachable_from_entry(lines):
    cfg = _build(lines)
    assert cfg.reaches_exit(ENTRY)


@settings(max_examples=200, deadline=None)
@given(function_bodies)
def test_edges_consistent_with_degrees(lines):
    cfg = _build(lines)
    # Deduplicated and bounded by the node set.
    keys = [(e.src, e.dst, e.kind) for e in cfg.edges]
    assert len(keys) == len(set(keys))
    indices = {n.index for n in cfg.nodes}
    assert all(e.src in indices and e.dst in indices for e in cfg.edges)
    # The adjacency maps partition the edge set exactly.
    assert sum(len(v) for v in cfg.succs.values()) == len(cfg.edges)
    assert sum(len(v) for v in cfg.preds.values()) == len(cfg.edges)
    for index, out_edges in cfg.succs.items():
        assert all(e.src == index for e in out_edges)
    for index, in_edges in cfg.preds.items():
        assert all(e.dst == index for e in in_edges)


@settings(max_examples=100, deadline=None)
@given(function_bodies)
def test_build_is_deterministic(lines):
    assert _build(lines).render() == _build(lines).render()


@settings(max_examples=100, deadline=None)
@given(function_bodies)
def test_reachable_statement_nodes_reach_exit(lines):
    """No reachable black holes: any node the entry reaches can itself
    reach the exit (loops keep their not-taken edge by design)."""
    cfg = _build(lines)
    for index in cfg.reachable(ENTRY):
        assert cfg.reaches_exit(index)
