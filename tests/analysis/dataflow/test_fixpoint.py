"""Unit tests for the monotone worklist solver and the shared taint
analysis (``NameTaint``) driving the dataflow rules."""

from __future__ import annotations

import ast

import pytest

from repro.analysis.dataflow import (
    DataflowAnalysis,
    build_cfg,
    solve_fixpoint,
)
from repro.analysis.dataflow.cfg import ENTRY, EXIT
from repro.analysis.dataflow.reaching import NameTaint, call_name
from repro.exceptions import AnalysisError


def _cfg(source: str):
    func = ast.parse(source).body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func.body)


def _is_rng(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and call_name(node) == "default_rng"


def _state_at_return(cfg, states):
    (node,) = [n for n in cfg.nodes if isinstance(n.stmt, ast.Return)]
    return states[node.index][0]


class TestNameTaint:
    def test_source_taints_and_propagates(self):
        cfg = _cfg(
            "def f():\n"
            "    rng = default_rng()\n"
            "    value = rng.normal()\n"
            "    return value\n"
        )
        states = solve_fixpoint(cfg, NameTaint(_is_rng))
        assert {"rng", "value"} <= _state_at_return(cfg, states)

    def test_clean_rebinding_kills(self):
        cfg = _cfg(
            "def f():\n"
            "    value = default_rng().normal()\n"
            "    value = 0.5\n"
            "    return value\n"
        )
        states = solve_fixpoint(cfg, NameTaint(_is_rng))
        assert "value" not in _state_at_return(cfg, states)

    def test_join_is_union_over_branches(self):
        cfg = _cfg(
            "def f(flag):\n"
            "    if flag:\n"
            "        value = default_rng().normal()\n"
            "    else:\n"
            "        value = 0.5\n"
            "    return value\n"
        )
        states = solve_fixpoint(cfg, NameTaint(_is_rng))
        # May-analysis: tainted on one branch means tainted at the join.
        assert "value" in _state_at_return(cfg, states)

    def test_loop_reaches_fixpoint(self):
        cfg = _cfg(
            "def f(n):\n"
            "    total = 0\n"
            "    for _ in range(n):\n"
            "        total = total + default_rng().normal()\n"
            "    return total\n"
        )
        states = solve_fixpoint(cfg, NameTaint(_is_rng))
        assert "total" in _state_at_return(cfg, states)

    def test_seeded_parameters_start_tainted(self):
        cfg = _cfg("def f(p):\n    q = p\n    return q\n")
        states = solve_fixpoint(
            cfg, NameTaint(lambda node: False, seed=frozenset({"p"}))
        )
        assert {"p", "q"} <= _state_at_return(cfg, states)

    def test_compound_header_does_not_apply_body_assignments(self):
        """The regression behind ``own_exprs``: an ``if`` header node
        carries its whole subtree, but the body's assignments must not
        take effect at the header."""
        cfg = _cfg(
            "def f(flag):\n"
            "    value = 0.5\n"
            "    if flag:\n"
            "        value = default_rng().normal()\n"
            "    else:\n"
            "        pass\n"
            "    return value\n"
        )
        states = solve_fixpoint(cfg, NameTaint(_is_rng))
        (header,) = [n for n in cfg.nodes if isinstance(n.stmt, ast.If)]
        # At the header's own output the clean binding still holds …
        assert "value" not in states[header.index][1]
        # … and only the join after the branches carries the taint.
        assert "value" in _state_at_return(cfg, states)


class _Backward(DataflowAnalysis[frozenset]):
    """A liveness-shaped backward analysis: names read later."""

    direction = "backward"

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return state
        result = set(state)
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                if isinstance(target, ast.Name):
                    result.discard(target.id)
            reads = stmt.value
        else:
            reads = stmt
        for sub in ast.walk(reads):
            if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load):
                result.add(sub.id)
        return frozenset(result)


class TestSolver:
    def test_backward_direction(self):
        cfg = _cfg("def f():\n    a = source()\n    b = a\n    return b\n")
        states = solve_fixpoint(cfg, _Backward())
        # Before ``a = source()`` nothing is live-in except what the
        # statement itself reads; after it, ``a`` is live.
        (assign_a,) = [
            n
            for n in cfg.nodes
            if isinstance(n.stmt, ast.Assign) and n.stmt.targets[0].id == "a"
        ]
        state_in, state_out = states[assign_a.index]
        # Backward: state_in is the post-state here, state_out the pre-state.
        assert "a" in state_in
        assert "a" not in state_out

    def test_entry_and_exit_present_in_result(self):
        cfg = _cfg("def f():\n    return 1\n")
        states = solve_fixpoint(cfg, NameTaint(_is_rng))
        assert ENTRY in states and EXIT in states
        assert set(states) == {n.index for n in cfg.nodes}

    def test_unknown_direction_rejected(self):
        class Sideways(NameTaint):
            direction = "sideways"

        cfg = _cfg("def f():\n    return 1\n")
        with pytest.raises(AnalysisError):
            solve_fixpoint(cfg, Sideways(_is_rng))

    def test_diverging_transfer_raises_instead_of_hanging(self):
        class Counter(DataflowAnalysis[frozenset]):
            """An infinite ascending chain: the state strictly grows on
            every trip around the loop, so no fixpoint exists."""

            direction = "forward"

            def bottom(self):
                return frozenset()

            def initial(self):
                return frozenset({0})

            def join(self, a, b):
                return a | b

            def transfer(self, node, state):
                return frozenset(x + 1 for x in state) | {0}

        cfg = _cfg("def f(n):\n    while cond(n):\n        n = step(n)\n    return n\n")
        with pytest.raises(AnalysisError, match="converge"):
            solve_fixpoint(cfg, Counter(), max_iterations=50)
