"""Golden-snapshot tests for the CFG builder.

Each snippet exercises one control-flow construct the dataflow rules
depend on; the rendered graph is compared byte-for-byte against the
checked-in snapshot.  A deliberate builder change regenerates with::

    PYTHONPATH=src python tests/analysis/dataflow/test_cfg_golden.py
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

from repro.analysis.dataflow import build_cfg
from repro.analysis.dataflow.cfg import ENTRY, EXIT

SNAPSHOTS = Path(__file__).parent / "snapshots"

SNIPPETS = {
    "try_finally": (
        "def f(x):\n"
        "    t = acquire(x)\n"
        "    try:\n"
        "        use(t)\n"
        "    except ValueError:\n"
        "        handle(t)\n"
        "    finally:\n"
        "        t.close()\n"
        "    return t\n"
    ),
    "while_else": (
        "def f(n):\n"
        "    i = 0\n"
        "    while i < n:\n"
        "        if found(i):\n"
        "            break\n"
        "        i = i + 1\n"
        "    else:\n"
        '        log("exhausted")\n'
        "    return i\n"
    ),
    "nested_with": (
        "def f(net, size):\n"
        '    with span("outer"):\n'
        '        with progress_ticker("scan", total=size) as t:\n'
        "            for mask in range(size):\n"
        "                t.tick()\n"
        "    return size\n"
    ),
    "match": (
        "def f(cmd):\n"
        "    match cmd.kind:\n"
        '        case "solve":\n'
        "            run(cmd)\n"
        '        case "sweep" if cmd.ready:\n'
        "            sweep(cmd)\n"
        "        case _:\n"
        "            fallback(cmd)\n"
        "    return cmd\n"
    ),
}


def _cfg_of(source: str):
    func = ast.parse(source).body[0]
    assert isinstance(func, ast.FunctionDef)
    return build_cfg(func.body)


@pytest.mark.parametrize("name", sorted(SNIPPETS))
def test_golden_cfg(name):
    rendered = _cfg_of(SNIPPETS[name]).render() + "\n"
    expected = (SNAPSHOTS / f"{name}.txt").read_text()
    assert rendered == expected, (
        f"CFG for {name!r} drifted from its snapshot; if the builder "
        "change is deliberate, regenerate (see module docstring)"
    )


def test_try_finally_structure():
    """The properties the RR203 rule relies on, independent of layout:
    the body's exception path runs the handler *and* the finally, and
    the finally re-raises toward the exit."""
    cfg = _cfg_of(SNIPPETS["try_finally"])
    by_label = {}
    for node in cfg.nodes:
        by_label.setdefault(node.label, []).append(node.index)
    (finally_node,) = [
        n.index for n in cfg.nodes if n.label == "Expr" and n.line == 8
    ]
    (handler,) = by_label["ExceptHandler"]
    (body_use,) = [n.index for n in cfg.nodes if n.line == 4]
    kinds = {(e.src, e.dst, e.kind) for e in cfg.edges}
    assert (body_use, handler, "exception") in kinds
    assert (body_use, finally_node, "exception") in kinds  # unmatched type
    assert (finally_node, EXIT, "exception") in kinds  # re-raise


def test_while_else_structure():
    cfg = _cfg_of(SNIPPETS["while_else"])
    (while_node,) = [n.index for n in cfg.nodes if n.label == "While"]
    (break_node,) = [n.index for n in cfg.nodes if n.label == "Break"]
    (else_node,) = [n.index for n in cfg.nodes if n.line == 8]
    (return_node,) = [n.index for n in cfg.nodes if n.label == "Return"]
    kinds = {(e.src, e.dst, e.kind) for e in cfg.edges}
    assert (while_node, else_node, "false") in kinds  # normal exhaustion
    assert (break_node, return_node, "break") in kinds  # break skips else
    assert any(e.kind == "loop" and e.dst == while_node for e in cfg.edges)


def test_match_with_wildcard_has_no_nomatch_edge():
    cfg = _cfg_of(SNIPPETS["match"])
    assert not any(e.kind == "nomatch" for e in cfg.edges)
    assert sum(e.kind == "case" for e in cfg.edges) == 3


def test_match_without_wildcard_keeps_fallthrough():
    source = (
        "def f(cmd):\n"
        "    match cmd:\n"
        '        case "solve":\n'
        "            run(cmd)\n"
        "    return cmd\n"
    )
    cfg = _cfg_of(source)
    assert any(e.kind == "nomatch" for e in cfg.edges)


def test_entry_and_exit_are_fixed_indices():
    for source in SNIPPETS.values():
        cfg = _cfg_of(source)
        assert cfg.nodes[ENTRY].label == "entry"
        assert cfg.nodes[EXIT].label == "exit"
        assert cfg.reaches_exit(ENTRY)


if __name__ == "__main__":  # pragma: no cover - snapshot regeneration
    for name, source in SNIPPETS.items():
        path = SNAPSHOTS / f"{name}.txt"
        path.write_text(_cfg_of(source).render() + "\n")
        print(f"regenerated {path}")
