"""Shared helpers for the static-analysis test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURES = Path(__file__).parent / "fixtures" / "repro" / "core"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


def fixture_findings(rule_code: str):
    """Run exactly one rule over its fixture module."""
    from repro.analysis import analyze_paths

    path = FIXTURES / f"{rule_code.lower()}.py"
    assert path.is_file(), f"missing fixture {path}"
    report = analyze_paths([str(path)], select=[rule_code])
    assert not report.parse_errors, report.parse_errors
    return report.findings


def flagged_functions(findings, source_path: Path) -> set[str]:
    """Names of the fixture functions containing each finding's line."""
    import ast

    tree = ast.parse(source_path.read_text())
    names: set[str] = set()
    for finding in findings:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                end = node.end_lineno or node.lineno
                if node.lineno <= finding.line <= end:
                    names.add(node.name)
    return names
