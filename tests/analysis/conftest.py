"""Shared helpers for the static-analysis test suite."""

from __future__ import annotations

from pathlib import Path

import pytest

FIXTURE_ROOT = Path(__file__).parent / "fixtures" / "repro"
FIXTURES = FIXTURE_ROOT / "core"
REPO_ROOT = Path(__file__).resolve().parents[2]
SRC_REPRO = REPO_ROOT / "src" / "repro"

#: Rules whose fixtures must live under a different package component
#: because their ``applies_to`` scoping demands it (RR113 only fires on
#: ``serve`` paths).  Everything else defaults to ``core``.
_FIXTURE_PACKAGE = {"RR113": "serve"}


def fixture_path(rule_code: str) -> Path:
    """The fixture module for ``rule_code`` (package-scoped per rule)."""
    package = _FIXTURE_PACKAGE.get(rule_code, "core")
    return FIXTURE_ROOT / package / f"{rule_code.lower()}.py"


@pytest.fixture
def fixtures_dir() -> Path:
    return FIXTURES


def fixture_findings(rule_code: str):
    """Run exactly one rule over its fixture module."""
    from repro.analysis import analyze_paths

    path = fixture_path(rule_code)
    assert path.is_file(), f"missing fixture {path}"
    report = analyze_paths([str(path)], select=[rule_code])
    assert not report.parse_errors, report.parse_errors
    return report.findings


def flagged_functions(findings, source_path: Path) -> set[str]:
    """Names of the fixture functions containing each finding's line."""
    import ast

    tree = ast.parse(source_path.read_text())
    names: set[str] = set()
    for finding in findings:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                end = node.end_lineno or node.lineno
                if node.lineno <= finding.line <= end:
                    names.add(node.name)
    return names
