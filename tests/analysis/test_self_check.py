"""Meta-test: the shipped source tree passes its own static-analysis gate."""

from __future__ import annotations

import os
import subprocess
import sys

from repro.analysis import analyze_paths

from tests.analysis.conftest import REPO_ROOT, SRC_REPRO


def test_src_repro_is_clean_in_process():
    report = analyze_paths([str(SRC_REPRO)])
    assert not report.parse_errors, report.parse_errors
    offenders = "\n".join(f.render() for f in report.findings)
    assert report.clean, f"repro.analysis findings in src/repro:\n{offenders}"
    assert report.files_checked > 50  # the whole package, not a stray subset


def test_module_entry_point_exits_zero():
    """Acceptance criterion: ``python -m repro.analysis src/repro`` exits 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "src/repro"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_dataflow_tier_entry_point_exits_zero():
    """Acceptance criterion: the flow-sensitive tier alone is clean on
    ``src/repro`` (the CI ``analysis-dataflow`` job runs exactly this)."""
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    proc = subprocess.run(
        [sys.executable, "-m", "repro.analysis", "--tier", "dataflow", "src/repro"],
        cwd=REPO_ROOT,
        env=env,
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
    assert "clean" in proc.stdout


def test_fixture_tree_is_deliberately_dirty():
    """The seeded fixtures must keep violating every rule so the suite
    can detect a rule that silently stops firing."""
    fixtures = REPO_ROOT / "tests" / "analysis" / "fixtures"
    report = analyze_paths([str(fixtures)])
    codes = {f.code for f in report.findings}
    assert codes == {
        "RR101",
        "RR102",
        "RR103",
        "RR104",
        "RR105",
        "RR106",
        "RR107",
        "RR108",
        "RR109",
        "RR110",
        "RR111",
        "RR112",
        "RR113",
        "RR114",
        "RR201",
        "RR202",
        "RR203",
        "RR204",
        "RR205",
    }
