"""RR111 clean fixture — realistic instrumented code the rule must not flag."""

from repro.obs import count, gauge, span
from repro.obs.progress import progress_ticker
from repro.obs.recorder import FLOW_SOLVES, SCREENED_SOLVES


def accumulate_side(entries):
    with span("sweep.accumulate", points=len(entries), strategy="grid"):
        realized = 0
        for entry in entries:
            count(FLOW_SOLVES)
            if entry:
                realized += 1
        count(SCREENED_SOLVES, len(entries) - realized)
        return realized


def walk_configurations(size):
    with span("naive.enumerate", links=size.bit_length(), prune=True):
        with progress_ticker("naive.configurations", total=size) as ticker:
            for _ in range(size):
                ticker.tick()


def set_progress_gauge(done):
    gauge("sweep.points_done", done)


class _ChunkAccounting:
    """Bound dynamic family, formatted once at construction."""

    def __init__(self, solver_name):
        self._metric_solves = f"solver.{solver_name}.solves"

    def record(self, recorder):
        recorder.count(self._metric_solves)


def popcounts(masks):
    return [bin(mask).count("1") for mask in masks]
