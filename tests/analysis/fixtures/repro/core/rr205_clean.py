"""RR205 clean fixture: every worker dispatched to processes is a
module-level callable (the run_chunked contract)."""


def chunked_sweep(payloads):
    return run_chunked(solve_chunk, payloads, chunk_size=64)


def explicit_pool(payloads):
    with ProcessPoolExecutor(max_workers=2) as pool:
        results = list(pool.map(solve_chunk, payloads))
    return results


def registry_name_payload(net, masks):
    payloads = [(net_to_dict(net), "gray", mask) for mask in masks]
    return run_chunked(solve_chunk, payloads)
