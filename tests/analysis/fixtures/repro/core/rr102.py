"""RR102 fixture: bare probability accumulation — positives, negatives, noqa."""

from math import fsum


def bad_builtin_sum(probabilities: list[float]) -> float:
    return sum(probabilities)


def bad_sum_of_weights(weights: list[float]) -> float:
    return sum(w * 2.0 for w in weights)


def bad_augmented(weights: list[float]) -> float:
    total = 0.0
    for weight in weights:
        total += weight
    return total


def ok_fsum(probabilities: list[float]) -> float:
    return fsum(probabilities)


def ok_integer_counts(counts: list[int]) -> int:
    return sum(counts)


def ok_plain_accumulator(values: list[float]) -> float:
    total = 0.0
    for v in values:
        total += v
    return total


def suppressed(probabilities: list[float]) -> float:
    return sum(probabilities)  # repro: noqa[RR102]
