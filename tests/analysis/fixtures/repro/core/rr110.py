"""RR110 fixture: realization-array rebuilds in loops — positives, negatives, noqa."""


def bad_rebuild_per_point(split, points):
    arrays = []
    for _point in points:
        arrays.append(build_side_array(split.source_side, role="source"))
    return arrays


def bad_engine_rebuild(split, queue):
    results = []
    while queue:
        queue.pop()
        results.append(build_realization_arrays(split))
    return results


def bad_comprehension_rebuild(side, xs):
    return [build_side_array_parallel(side, workers=2) for _x in xs]


def ok_single_build(split):
    source = build_side_array(split.source_side, role="source")
    sink = build_side_array(split.sink_side, role="sink")
    return source, sink


def ok_cached_in_loop(split, points, cache):
    curves = []
    for _point in points:
        curves.append(cached_side_array(split.source_side, cache=cache))
    return curves


def suppressed(split, segments):
    relations = []
    for segment in segments:
        # Each segment is a different subnetwork: the rebuild is real work.
        relations.append(build_side_array(segment))  # repro: noqa[RR110] per-segment topology
    return relations
