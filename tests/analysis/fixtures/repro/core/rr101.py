"""RR101 fixture: unseeded randomness — positives, negatives, noqa.

Never imported at runtime; the lint engine parses it as text.  The path
deliberately contains ``repro``/``core`` components so package-scoped
rules treat it like library source.
"""

import random

import numpy as np
from numpy.random import default_rng


def bad_stdlib_call() -> float:
    return random.random()


def bad_stdlib_choice(items: list[int]) -> int:
    return random.choice(items)


def bad_legacy_numpy() -> object:
    return np.random.rand(3)


def bad_legacy_seed() -> None:
    np.random.seed(42)


def ok_generator(seed: int) -> object:
    rng = np.random.default_rng(seed)
    return rng.random(3)


def ok_imported_constructor(seed: int) -> object:
    return default_rng(seed)


def ok_method_on_injected(rng: np.random.Generator) -> float:
    # ``rng`` is an injected Generator; method calls on it are the point.
    return float(rng.random())


def suppressed() -> float:
    return random.random()  # repro: noqa[RR101]
