"""RR104 fixture: builtin exceptions raised — positives, negatives, noqa."""

from repro.exceptions import ReproError, ReproValueError


def bad_value_error(x: int) -> int:
    if x < 0:
        raise ValueError("negative")
    return x


def bad_runtime_error() -> None:
    raise RuntimeError("boom")


def bad_bare_type_error() -> None:
    raise TypeError


def ok_repro_value_error(x: int) -> int:
    if x < 0:
        raise ReproValueError("negative")
    return x


def ok_reraise() -> None:
    try:
        pass
    except ReproError:
        raise


def ok_not_implemented() -> None:
    raise NotImplementedError


def suppressed() -> None:
    raise KeyError("legacy")  # repro: noqa[RR104]
