"""RR109 fixture: raw exponential loops — positives, negatives, noqa."""


def bad_inline_shift(m: int) -> int:
    total = 0
    for mask in range(1 << m):
        total += mask
    return total


def bad_inline_pow(n_bits: int) -> int:
    total = 0
    for mask in range(2**n_bits):
        total += mask
    return total


def bad_bound_size(m: int) -> int:
    size = 1 << m
    total = 0
    for mask in range(size):
        total += mask
    return total


def ok_two_arg_range(m: int) -> int:
    total = 0
    for mask in range(1, 1 << m):
        total += mask
    return total


def ok_constant_width() -> int:
    total = 0
    for mask in range(1 << 8):
        total += mask
    return total


def ok_chunk_count(chunks: int) -> list[int]:
    return [c for c in range(chunks)]


def ok_gray_walk(m: int) -> list[int]:
    return list(gray_lattice(m))


def suppressed(m: int) -> int:
    total = 0
    for mask in range(1 << m):  # repro: noqa[RR109] fixture: justified raw scan
        total += mask
    return total


def gray_lattice(m: int) -> list[int]:
    """Stand-in so the fixture parses plausibly; never executed."""
    return []
