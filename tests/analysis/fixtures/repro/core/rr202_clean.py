"""RR202 clean fixture: cache-owned arrays used read-only or copied."""

import numpy as np


def accumulate_from_hits(cache, keys, size):
    total = np.zeros(size, dtype=np.int64)
    for key in keys:
        column = cache.get(key, size)
        if column is not None:
            total = total + column
    return total


def private_writable_copy(cache, key, size):
    column = cache.get(key, size)
    scratch = column.copy()
    scratch[0] = False
    return scratch


def weights_from_table(n_bits):
    counts = popcount_array(n_bits)
    return np.float64(2.0) ** counts
