"""RR112 clean fixture: mask arrays consumed array-at-a-time.

A realistic accumulation module: every mask-array consumer below goes
through the vectorized bitset vocabulary or whole-array numpy; the only
Python loops run over *bits* or over derived scalar tables.
"""

import numpy as np


def class_probabilities(realization, weights):
    counts = np.bitwise_count(realization.masks)
    return weights[counts]


def gather_columns(masks, support, table):
    restricted = restrict_masks(masks, support)
    realized = (restricted >> np.uint64(0)) & np.uint64(1)
    return table * realized.astype(np.float64)


def transpose_to_planes(masks, n_bits):
    planes = np.empty((n_bits, len(masks)), dtype=np.uint64)
    for bit in range(n_bits):
        planes[bit] = (masks >> np.uint64(bit)) & np.uint64(1)
    return planes


def sample_hit_rate(rng, probabilities, num_samples, threshold):
    alive = sample_alive_masks(rng, probabilities, num_samples)
    hits = np.bitwise_count(alive) >= threshold
    return float(hits.mean())


def weight_table(n_bits, probability):
    weights = []
    for popcount in range(n_bits + 1):
        weights.append(probability**popcount)
    return np.asarray(weights, dtype=np.float64)
