"""RR103 fixture: unguarded width shifts — positives, negatives, noqa."""

import numpy as np

MAX_FIXTURE_BITS = 10


def bad_table(m: int) -> object:
    return np.zeros(1 << m)


def bad_enumeration(n_bits: int) -> list[int]:
    return list(range(2**n_bits))


def bad_size_assignment(m: int) -> int:
    size = 1 << m
    return size


def ok_guarded_by_max(m: int) -> object:
    if m > MAX_FIXTURE_BITS:
        raise OverflowError("table too large")
    return np.zeros(1 << m)


def ok_guarded_by_call(m: int) -> list[int]:
    check_enumerable(m)
    return list(range(1 << m))


def ok_constant_width() -> list[int]:
    return list(range(1 << 8))


def ok_non_allocation(mask: int, i: int) -> int:
    return mask | (1 << i)


def suppressed(m: int) -> object:
    return np.zeros(1 << m)  # repro: noqa[RR103]


def check_enumerable(m: int) -> None:
    """Stand-in so the fixture parses plausibly; never executed."""
