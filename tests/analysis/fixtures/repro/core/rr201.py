"""RR201 fixture: unseeded randomness flowing into results — positives,
negatives, noqa."""

import numpy as np


def bad_return_sample(n):
    rng = np.random.default_rng()
    samples = rng.random(n)
    return samples.mean()


def bad_result_payload(masks):
    rng = np.random.default_rng()
    noise = rng.normal(size=len(masks))
    ReliabilityResult(value=float(noise.sum()), details={})


def bad_cache_write(cache, key, size):
    rng = np.random.default_rng()
    column = rng.random(size) < 0.5
    cache.put(key, column)


def ok_seeded(seed, n):
    rng = np.random.default_rng(seed)
    return rng.random(n).mean()


def ok_taint_never_escapes(n):
    rng = np.random.default_rng()
    probe = rng.random(n)
    float(probe.max())
    return n


def ok_taint_killed_by_rebinding(n):
    samples = np.random.default_rng().random(n)
    samples = np.zeros(n)
    return samples


def suppressed(n):
    rng = np.random.default_rng()
    return rng.random(n).mean()  # repro: noqa[RR201] entropy smoke probe, value unchecked
