"""RR202 fixture: in-place mutation of cache-owned arrays — positives,
negatives, noqa."""

import numpy as np


def bad_store_into_hit(cache, key, size):
    column = cache.get(key, size)
    column[0] = True
    return column


def bad_mutation_through_view(n_bits):
    counts = popcount_array(n_bits)
    view = counts[1:]
    view += 1
    return counts


def bad_inplace_sort(cache, key, size):
    data = cache.get(key, size)
    data.sort()
    return data


def bad_out_kwarg(cache, key, size, other):
    hit = cache.get(key, size)
    np.logical_and(hit, other, out=hit)
    return hit


def bad_cached_side_array_fill(split, point_cache):
    arr = cached_side_array(split.source_side, cache=point_cache)
    arr.fill(0)
    return arr


def ok_copy_then_mutate(cache, key, size):
    column = cache.get(key, size).copy()
    column[0] = True
    return column


def ok_fresh_derived_array(n_bits):
    signs = -popcount_array(n_bits).astype(np.float64)
    signs[0] = 0.0
    return signs


def ok_read_only_use(cache, key, size, realized, j):
    column = cache.get(key, size)
    realized[:, j] = column
    return realized


def suppressed(cache, key, size):
    column = cache.get(key, size)
    column[0] = True  # repro: noqa[RR202] cache instance private to this scope
    return column
