"""RR111 fixture — dynamically built / uncatalogued metric names."""

from repro.obs import count, gauge, span
from repro.obs.progress import progress_ticker


def bad_fstring_span(side):
    with span(f"engine.{side}_array", links=3):
        return None


def bad_concat_count(kind):
    count("flow_" + kind, 2)


def bad_format_gauge(i):
    gauge("queue.{}".format(i), 1.0)


def bad_percent_ticker(role):
    with progress_ticker("arrays.%s" % role, total=10) as ticker:
        ticker.tick()


def bad_unknown_span_literal():
    with span("engine.quantum_array"):
        return None


def bad_unknown_ticker_label():
    with progress_ticker("warp.items", total=3) as ticker:
        ticker.tick()


def bad_recorder_attribute_fstring(recorder, name):
    recorder.count(f"solver.{name}.solves")


def ok_literal_span():
    with span("bottleneck.arrays", cached=True):
        return None


def ok_catalogued_count():
    count("flow_solves", 3)


def ok_bound_metric_name(recorder, solver):
    # The sanctioned dynamic-family shape: the name was formatted once
    # at construction; the call site passes the bound attribute.
    recorder.count(solver._metric_solves)


def ok_unrelated_count_methods(mask, xs):
    return bin(mask).count("1") + xs.count(0)


def suppressed(side):
    with span(f"engine.{side}_array"):  # repro: noqa[RR111] exercised by the suppression test
        return None
