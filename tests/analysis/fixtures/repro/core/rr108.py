"""RR108 fixture — process-pool use outside the sanctioned modules."""


def bad_import_multiprocessing():
    import multiprocessing

    return multiprocessing.cpu_count()


def bad_from_multiprocessing():
    from multiprocessing import Pool

    return Pool


def bad_process_pool_import():
    from concurrent.futures import ProcessPoolExecutor

    return ProcessPoolExecutor


def bad_attribute_pool():
    import concurrent.futures

    with concurrent.futures.ProcessPoolExecutor(max_workers=2) as pool:
        return pool


def ok_thread_pool():
    from concurrent.futures import ThreadPoolExecutor

    return ThreadPoolExecutor


def ok_futures_plumbing():
    from concurrent.futures import as_completed

    return as_completed


def suppressed():
    from multiprocessing import Pool  # repro: noqa[RR108]

    return Pool
