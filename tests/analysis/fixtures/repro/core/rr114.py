"""RR114 fixture: scalar per-sample RNG draws — positives, negatives, noqa."""


def bad_scalar_random(rng, n: int) -> float:
    total = 0.0
    for _ in range(n):
        total += rng.random()
    return total


def bad_scalar_integers_while(rng, n: int) -> int:
    total = 0
    drawn = 0
    while drawn < n:
        total += rng.integers(0, 10)
        drawn += 1
    return total


def bad_scalar_choice(rng, items: list, n: int) -> list:
    picks = []
    for _ in range(n):
        picks.append(rng.choice(items))
    return picks


def bad_named_stream(refresh_rng, n: int) -> float:
    total = 0.0
    for _ in range(n):
        total += refresh_rng.standard_exponential()
    return total


def bad_nested_loop(rng, n: int, m: int) -> float:
    total = 0.0
    for _ in range(n):
        for _ in range(m):
            total += rng.random()
    return total


def ok_batched_size_kw(rng, n: int) -> list:
    out = []
    for _ in range(n):
        out.append(rng.integers(0, 10, size=64))
    return out


def ok_batched_positional_shape(rng, n: int, m: int):
    rows = []
    for _ in range(n):
        rows.append(rng.standard_exponential((64, m)))
    return rows


def ok_hoisted_draw(rng, n: int) -> float:
    draws = rng.random(n)
    total = 0.0
    for value in draws:
        total += value
    return total


def ok_not_an_rng(counter, n: int) -> float:
    total = 0.0
    for _ in range(n):
        total += counter.random()  # receiver is not RNG-named
    return total


def ok_outside_loop(rng) -> float:
    return rng.random()


def suppressed(rng, probs: list, n: int) -> int:
    mask = 0
    for i in range(n):
        if rng.random() < probs[i]:  # repro: noqa[RR114] fixture: sequential DP
            mask |= 1 << i
    return mask
