"""RR203 clean fixture: instrumentation handles managed by ``with``."""


def scan_with_ticker(net, size):
    with progress_ticker("fixture.scan", total=size) as ticker:
        for mask in range(size):
            ticker.tick()
            solve(net, mask)
    return size


def nested_span_and_ticker(net, size):
    with span("fixture.region", links=size):
        with progress_ticker("fixture.scan", total=size) as ticker:
            for mask in range(size):
                ticker.tick()
                solve(net, mask)
    return size


def try_finally_close(net, size):
    ticker = progress_ticker("fixture.scan", total=size)
    try:
        solve(net, size)
    finally:
        ticker.finish()
    return size
