"""RR204 fixture: unvalidated probability parameters reaching Eq.2/Eq.3
accumulation — positives, negatives, noqa."""


def bad_raw_parameter(probs):
    return configuration_probabilities(probs)


def bad_kwarg_flow(net, p_values):
    table = conditional_configuration_probabilities(net, probs=p_values)
    return table


def bad_partially_guarded(probs, flag):
    if flag:
        if min(probs) < 0.0:
            raise ReproValueError("negative probability")
        return configuration_probabilities(probs)
    return configuration_probabilities(probs)


def ok_range_guard(probs):
    if min(probs) < 0.0 or max(probs) >= 1.0:
        raise ReproValueError("probabilities must lie in [0, 1)")
    return configuration_probabilities(probs)


def ok_assert_guard(p):
    assert 0.0 <= p <= 1.0
    return pattern_probability(p)


def ok_validator_call(probs):
    validate_probabilities(probs)
    return configuration_probabilities(probs)


def ok_derived_not_raw(net, probs):
    table = configuration_probabilities(net)
    return table


def suppressed(probs):
    return configuration_probabilities(probs)  # repro: noqa[RR204] caller validates at the API boundary
