"""RR107 fixture — direct wall-clock reads outside repro.obs."""


def bad_perf_counter():
    import time

    start = time.perf_counter()
    return start


def bad_wall_time():
    import time

    return time.time()


def bad_monotonic_alias():
    import time as clock

    return clock.monotonic()


def bad_from_import():
    from time import perf_counter

    return perf_counter


def ok_sleep_is_not_a_clock_read():
    import time

    time.sleep(0)


def ok_wallclock_through_obs():
    from repro.obs import wallclock

    return wallclock()


def suppressed():
    import time

    return time.perf_counter()  # repro: noqa[RR107]
