"""RR205 fixture: spawn-unsafe worker payloads — positives, negatives,
noqa."""


def bad_lambda_to_run_chunked(net, payloads):
    return run_chunked(lambda payload: solve(net, payload), payloads)


def bad_nested_def_submitted(net, items):
    def worker(item):
        return solve(net, item)

    with ProcessPoolExecutor() as pool:
        futures = [pool.submit(worker, item) for item in items]
    return futures


def bad_partial_over_local(net, chunks):
    def helper(graph, chunk):
        return solve(graph, chunk)

    with ProcessPoolExecutor() as pool:
        results = list(pool.map(partial(helper, net), chunks))
    return results


def bad_executor_variable(items):
    pool = ProcessPoolExecutor()
    future = pool.submit(lambda: len(items))
    pool.shutdown()
    return future


def ok_module_level_worker(payloads):
    return run_chunked(solve_chunk, payloads)


def ok_submit_module_worker(payload):
    with ProcessPoolExecutor() as pool:
        future = pool.submit(solve_chunk, payload)
    return future


def ok_partial_over_module(net, chunks):
    with ProcessPoolExecutor() as pool:
        results = list(pool.map(partial(solve_chunk, net), chunks))
    return results


def ok_non_executor_map(recorder, items):
    return recorder.map(lambda x: x, items)


def ok_local_callable_stays_local(net, items):
    def score(item):
        return solve(net, item)

    return [score(item) for item in items]


def suppressed(net, payloads):
    return run_chunked(lambda payload: solve(net, payload), payloads)  # repro: noqa[RR205] single-process test harness
