"""RR106 fixture: missing annotations — positives, negatives, noqa."""


def bad_unannotated(x, y):
    return x + y


def bad_missing_return(x: int):
    return x


def ok_fully_annotated(x: int, y: float = 0.0, *rest: int, flag: bool = False) -> float:
    return x + y + len(rest) + flag


def _private_is_exempt(x):
    return x


class PublicThing:
    def bad_method(self, value) -> int:
        return int(value)

    def ok_method(self, value: int) -> int:
        return value

    def _private_method(self, value):
        return value

    def __len__(self):
        # dunders are exempt (underscore prefix).
        return 0


class _PrivateThing:
    def anything_goes(self, value):
        return value


def suppressed(x):  # repro: noqa[RR106]
    return x
