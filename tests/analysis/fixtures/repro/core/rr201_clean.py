"""RR201 clean fixture: the sanctioned seeded-randomness shapes."""

import numpy as np


def seeded_samples(seed, n):
    rng = np.random.default_rng(seed)
    return rng.random(n)


def threaded_generator(rng, n):
    return rng.normal(size=n).mean()


def seeded_result(seed, cache, key, size):
    rng = np.random.default_rng(seed)
    column = rng.random(size) < 0.5
    cache.put(key, column)
    return column
