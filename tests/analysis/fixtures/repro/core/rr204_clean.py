"""RR204 clean fixture: every probability parameter is validated before
reaching Eq.2/Eq.3 accumulation."""


def guarded_sweep(net, probs):
    if min(probs) < 0.0 or max(probs) >= 1.0:
        raise ReproValueError("probabilities must lie in [0, 1)")
    return configuration_probabilities(probs)


def validator_first(net, p_values):
    validate_probabilities(p_values)
    return conditional_configuration_probabilities(net, probs=p_values)


def asserted_scalar(p):
    assert 0.0 <= p <= 1.0
    return pattern_probability(p)


def derived_vector(net, availability):
    failures = [1.0 - a for a in availability]
    return union_probability(net, failures)
