"""RR105 fixture: mutable default arguments — positives, negatives, noqa."""


def bad_list_literal(items=[]) -> list:
    return items


def bad_dict_factory(mapping=dict()) -> dict:
    return mapping


def bad_keyword_only(*, seen=set()) -> set:
    return seen


def ok_none_sentinel(items=None) -> list:
    return list(items or ())


def ok_immutable_defaults(pair=(), label="x", count=0) -> tuple:
    return (pair, label, count)


def suppressed(cache={}) -> dict:  # repro: noqa[RR105]
    return cache
