"""RR112 fixture: per-element loops over uint64 mask arrays — positives,
negatives, noqa."""

import numpy as np


def bad_direct_loop(realization, probabilities):
    masks = realization.masks
    total = 0.0
    for mask in masks:
        total += probabilities[int(mask) & 1]
    return total


def bad_enumerate_loop(planes, n_bits, realized):
    packed = pack_bitplanes(planes, n_bits)
    for j, mask in enumerate(packed):
        realized[j] = int(mask).bit_count()
    return realized


def bad_index_loop(rng, probabilities, num_samples):
    alive = sample_alive_masks(rng, probabilities, num_samples)
    hits = 0
    for i in range(len(alive)):
        hits += int(alive[i]).bit_count()
    return hits


def bad_comprehension(masks, support):
    restricted = restrict_masks(masks, support)
    return [int(mask).bit_count() for mask in restricted]


def bad_cast_loop(values):
    words = np.asarray(values).astype(np.uint64)
    weights = []
    for word in words >> np.uint64(1):
        weights.append(float(word))
    return weights


def ok_vectorized(realization, weights):
    counts = np.bitwise_count(realization.masks)
    return float(weights[counts].sum())


def ok_per_bit_loop(masks, n_bits):
    planes = []
    for bit in range(n_bits):
        planes.append((masks >> np.uint64(bit)) & np.uint64(1))
    return planes


def ok_rebound_name(realization, labels):
    masks = realization.masks
    realized = int(np.bitwise_count(masks).sum())
    masks = [label for label in labels if label]
    for label in masks:
        realized += len(label)
    return realized


def ok_derived_scalars(masks, support):
    counts = np.bitwise_count(restrict_masks(masks, support))
    total = 0
    for count in counts.tolist():
        total += count
    return total


def suppressed(realization):
    total = 0
    for mask in realization.masks:  # repro: noqa[RR112] doctest-sized array
        total += int(mask)
    return total
