"""RR203 fixture: span/ticker handles leaking on some path — positives,
negatives, noqa."""


def bad_leak_on_exception_path(net, size):
    ticker = progress_ticker("fixture.scan", total=size)
    for mask in range(size):
        ticker.tick()
        solve(net, mask)
    ticker.finish()
    return size


def bad_early_return_skips_finish(size):
    ticker = progress_ticker("fixture.scan", total=size)
    if size == 0:
        return 0
    ticker.tick(size)
    ticker.finish()
    return size


def bad_span_handle_never_closed(net):
    handle = span("fixture.region")
    configure(net)
    return net


def ok_with_block(net, size):
    with progress_ticker("fixture.scan", total=size) as ticker:
        for mask in range(size):
            ticker.tick()
            solve(net, mask)
    return size


def ok_handle_entered_as_context(net):
    handle = span("fixture.region")
    with handle:
        configure(net)
    return net


def ok_ownership_handed_off(recorder):
    ticker = ProgressTicker("fixture.scan", total=4)
    recorder.adopt(ticker)
    return recorder


def ok_returned_to_caller(size):
    ticker = progress_ticker("fixture.scan", total=size)
    return ticker


def suppressed(size):
    ticker = progress_ticker("fixture.scan", total=size)  # repro: noqa[RR203] process exits immediately after
    ticker.tick(size)
    return size
