"""RR114 clean fixture: the batched idioms the rule must not flag."""


def estimate(rng, n: int, m: int) -> float:
    clocks = rng.standard_exponential((n, m))
    uniforms = rng.random(size=(n, m))
    picks = rng.integers(0, n, size=n)
    total = 0.0
    for row in range(n):
        total += float(clocks[row].sum() + uniforms[row].sum()) + picks[row]
    return total


def resample(resample_rng, population: int) -> list:
    rounds = []
    for _ in range(4):
        rounds.append(resample_rng.integers(0, population, size=population))
    return rounds
