"""RR113 fixture — blocking calls inside repro.serve handler paths.

This file lives under a ``serve`` path component on purpose: the rule
scopes by package exactly like the real ``src/repro/serve`` tree.  It
is *not* ``server.py`` or ``client.py``, so the socket-op exemption
does not apply here.
"""


def bad_sleep_in_handler(queries):
    import time

    time.sleep(0.01)
    return queries


def bad_sleep_from_import():
    from time import sleep

    return sleep


def bad_subprocess_import(cmd):
    import subprocess

    return subprocess.run(cmd)


def bad_subprocess_from_import():
    from subprocess import check_output

    return check_output


def bad_os_system(cmd):
    import os

    return os.system(cmd)


def bad_blocking_recv(sock):
    return sock.recv(65536)


def bad_blocking_accept(listener):
    conn, _ = listener.accept()
    return conn


def ok_select_timeout(loop, interval):
    # Pacing belongs in the select() timeout, not in a handler.
    return loop.step(timeout=interval)


def ok_nonblocking_send(conn, payload):
    # .send() on a select-ready non-blocking socket does not block.
    return conn.sock.send(payload)


def ok_time_formatting():
    import time

    return time.strftime("%H:%M")


def suppressed(sock):
    return sock.recv(65536)  # repro: noqa[RR113]
