"""One fixture-backed test per rule: positives flagged, negatives not,
noqa suppression honoured."""

from __future__ import annotations

import pytest

from tests.analysis.conftest import (
    FIXTURES,
    fixture_findings,
    fixture_path,
    flagged_functions,
)

ALL_CODES = (
    "RR101",
    "RR102",
    "RR103",
    "RR104",
    "RR105",
    "RR106",
    "RR107",
    "RR108",
    "RR109",
    "RR110",
    "RR111",
    "RR112",
    "RR113",
    "RR114",
    "RR201",
    "RR202",
    "RR203",
    "RR204",
    "RR205",
)

#: Dataflow-tier rules ship a second, entirely clean fixture module.
DATAFLOW_CODES = ("RR112", "RR201", "RR202", "RR203", "RR204", "RR205")


@pytest.mark.parametrize("code", ALL_CODES)
def test_every_rule_catches_its_seeded_violations(code):
    """Acceptance: each rule fires on its fixture (and only inside the
    ``bad_*`` functions), and the ``# repro: noqa`` line stays silent."""
    findings = fixture_findings(code)
    assert findings, f"{code} caught nothing in its fixture"
    assert all(f.code == code for f in findings)

    names = flagged_functions(findings, fixture_path(code))
    assert names, f"{code} findings did not land inside any fixture function"
    offenders = {n for n in names if not n.startswith("bad_")}
    assert not offenders, f"{code} flagged non-positive fixtures: {sorted(offenders)}"
    assert "suppressed" not in names, f"{code} ignored its noqa suppression"


@pytest.mark.parametrize("code", DATAFLOW_CODES)
def test_dataflow_clean_fixtures_stay_silent(code):
    """Each dataflow rule ships a realistic clean module it must not flag."""
    from repro.analysis import analyze_paths

    path = FIXTURES / f"{code.lower()}_clean.py"
    assert path.is_file(), f"missing clean fixture {path}"
    report = analyze_paths([str(path)], select=[code])
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, [f.render() for f in report.findings]


def test_rr101_counts_and_messages():
    findings = fixture_findings("RR101")
    assert len(findings) == 4
    assert any("stdlib random" in f.message for f in findings)
    assert any("numpy.random.rand" in f.message for f in findings)
    assert any("numpy.random.seed" in f.message for f in findings)


def test_rr102_counts():
    findings = fixture_findings("RR102")
    # two bad sum() calls + one bad += accumulation
    assert len(findings) == 3
    assert sum("sum()" in f.message for f in findings) == 2
    assert sum("+=" in f.message for f in findings) == 1


def test_rr103_counts():
    findings = fixture_findings("RR103")
    # bad_table, bad_enumeration (2 ** n), bad_size_assignment
    assert len(findings) == 3
    assert any("2 **" in f.message for f in findings)
    assert any("assigned to 'size'" in f.message for f in findings)


def test_rr104_counts():
    findings = fixture_findings("RR104")
    assert len(findings) == 3
    assert sum("builtin ValueError" in f.message for f in findings) == 1
    assert sum("builtin RuntimeError" in f.message for f in findings) == 1
    assert sum("builtin TypeError" in f.message for f in findings) == 1


def test_rr105_counts():
    findings = fixture_findings("RR105")
    assert len(findings) == 3


def test_rr106_counts():
    findings = fixture_findings("RR106")
    # bad_unannotated: params + return; bad_missing_return: return;
    # PublicThing.bad_method: param.
    assert len(findings) == 4
    assert any("PublicThing.bad_method" in f.message for f in findings)
    assert sum("no return annotation" in f.message for f in findings) == 2


def test_rr107_counts_and_messages():
    findings = fixture_findings("RR107")
    # bad_perf_counter, bad_wall_time, bad_monotonic_alias (aliased
    # module), bad_from_import (flagged at the import).
    assert len(findings) == 4
    assert sum("time.perf_counter()" in f.message for f in findings) == 1
    assert sum("time.time()" in f.message for f in findings) == 1
    assert sum("time.monotonic()" in f.message for f in findings) == 1
    assert sum("import of perf_counter" in f.message for f in findings) == 1


def test_rr108_counts_and_messages():
    findings = fixture_findings("RR108")
    # bad_import_multiprocessing, bad_from_multiprocessing,
    # bad_process_pool_import (ImportFrom), bad_attribute_pool (Attribute).
    assert len(findings) == 4
    assert sum("import of multiprocessing" in f.message for f in findings) == 1
    assert sum("import from multiprocessing" in f.message for f in findings) == 1
    assert sum("import of ProcessPoolExecutor" in f.message for f in findings) == 1
    assert sum("attribute access" in f.message for f in findings) == 1


def test_rr109_counts_and_messages():
    findings = fixture_findings("RR109")
    # bad_inline_shift, bad_inline_pow, bad_bound_size.
    assert len(findings) == 3
    assert sum("range(1 << m)" in f.message for f in findings) == 1
    assert sum("range(2 ** n_bits)" in f.message for f in findings) == 1
    assert sum("size = 1 << m" in f.message for f in findings) == 1


def test_rr110_counts_and_messages():
    findings = fixture_findings("RR110")
    # bad_rebuild_per_point (for), bad_engine_rebuild (while),
    # bad_comprehension_rebuild (listcomp).
    assert len(findings) == 3
    assert sum("build_side_array()" in f.message for f in findings) == 1
    assert sum("build_realization_arrays()" in f.message for f in findings) == 1
    assert sum("build_side_array_parallel()" in f.message for f in findings) == 1
    assert all("cached_side_array" in f.message for f in findings)


def test_rr111_counts_and_messages():
    findings = fixture_findings("RR111")
    # bad_fstring_span, bad_concat_count, bad_format_gauge,
    # bad_percent_ticker, bad_unknown_span_literal,
    # bad_unknown_ticker_label, bad_recorder_attribute_fstring.
    assert len(findings) == 7
    assert sum("an f-string" in f.message for f in findings) == 2
    assert sum("string concatenation" in f.message for f in findings) == 1
    assert sum(".format() call" in f.message for f in findings) == 1
    assert sum("%-formatting" in f.message for f in findings) == 1
    assert sum("KNOWN_SPANS" in f.message for f in findings) == 1
    assert sum("KNOWN_TICKER_LABELS" in f.message for f in findings) == 1


def test_rr111_clean_fixture_stays_silent():
    """Realistic catalogued instrumentation must pass untouched."""
    from repro.analysis import analyze_paths

    path = FIXTURES / "rr111_clean.py"
    report = analyze_paths([str(path)], select=["RR111"])
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, [f.render() for f in report.findings]


def test_rr111_exempts_obs_itself(tmp_path):
    """repro.obs derives ticker gauge names from catalogued labels."""
    from repro.analysis import analyze_source

    source = (
        "from repro.obs.recorder import gauge, span\n"
        "def f(label, done):\n"
        "    with span(f'{label}.window'):\n"
        "        gauge(f'{label}.items', done)\n"
    )
    inside = analyze_source(source, str(tmp_path / "repro" / "obs" / "progress.py"))
    assert not [f for f in inside if f.code == "RR111"]

    outside = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert [f for f in outside if f.code == "RR111"]


def test_rr110_scoped_to_core(tmp_path):
    """Outside repro.core a loop of builds is some caller's business."""
    from repro.analysis import analyze_source

    source = (
        "def f(split, points):\n"
        "    return [build_side_array(split) for _ in points]\n"
    )
    outside = analyze_source(source, str(tmp_path / "repro" / "p2p" / "mod.py"))
    assert not [f for f in outside if f.code == "RR110"]

    inside = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert [f for f in inside if f.code == "RR110"]


def test_rr110_ignores_straight_line_builds(tmp_path):
    from repro.analysis import analyze_source

    source = (
        "def f(split):\n"
        "    source = build_side_array(split.source_side)\n"
        "    for x in range(3):\n"
        "        use(source, x)\n"
        "    return source\n"
    )
    findings = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert not [f for f in findings if f.code == "RR110"]


def test_rr109_scoped_to_core(tmp_path):
    """Probability-layer table builders iterate their own ranges freely."""
    from repro.analysis import analyze_source

    source = "def f(m):\n    for mask in range(1 << m):\n        pass\n"
    outside = analyze_source(
        source, str(tmp_path / "repro" / "probability" / "mod.py")
    )
    assert not [f for f in outside if f.code == "RR109"]

    inside = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert [f for f in inside if f.code == "RR109"]


def test_rr108_exempts_engine_and_parallel(tmp_path):
    """The sanctioned modules are where the pools are supposed to live."""
    from repro.analysis import analyze_source

    source = "from concurrent.futures import ProcessPoolExecutor\n"
    for sanctioned in ("engine.py", "parallel.py"):
        path = str(tmp_path / "repro" / "core" / sanctioned)
        assert not [f for f in analyze_source(source, path) if f.code == "RR108"]

    elsewhere = analyze_source(
        source, str(tmp_path / "repro" / "core" / "montecarlo.py")
    )
    assert [f for f in elsewhere if f.code == "RR108"]
    # "engine.py" outside a core package is NOT sanctioned.
    stray = analyze_source(source, str(tmp_path / "repro" / "graph" / "engine.py"))
    assert [f for f in stray if f.code == "RR108"]


def test_rr107_exempts_the_obs_package(tmp_path):
    """The clock rule must not flag repro.obs itself — that is where the
    sanctioned wallclock lives."""
    from repro.analysis import analyze_source

    source = "import time\n\ndef f():\n    return time.perf_counter()\n"
    inside_obs = analyze_source(source, str(tmp_path / "repro" / "obs" / "recorder.py"))
    assert not [f for f in inside_obs if f.code == "RR107"]

    elsewhere = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert [f for f in elsewhere if f.code == "RR107"]


def test_rule_scoping_by_package(tmp_path):
    """RR102/RR106 stay quiet outside core/flow/probability paths."""
    from repro.analysis import analyze_source

    source = "def f(probabilities):\n    return sum(probabilities)\n"
    outside = analyze_source(source, str(tmp_path / "elsewhere" / "mod.py"))
    assert not [f for f in outside if f.code in ("RR102", "RR106")]

    inside = analyze_source(source, str(tmp_path / "core" / "mod.py"))
    assert {f.code for f in inside} == {"RR102", "RR106"}


def test_rr104_scoped_to_repro_tree(tmp_path):
    from repro.analysis import analyze_source

    source = "def f():\n    raise ValueError('x')\n"
    outside = analyze_source(source, str(tmp_path / "scripts" / "tool.py"))
    assert not [f for f in outside if f.code == "RR104"]

    inside = analyze_source(source, str(tmp_path / "repro" / "tool.py"))
    assert [f for f in inside if f.code == "RR104"]


def test_rr112_counts_and_messages():
    findings = fixture_findings("RR112")
    # bad_direct_loop, bad_enumerate_loop, bad_index_loop,
    # bad_comprehension, bad_cast_loop.
    assert len(findings) == 5
    assert sum("for loop over" in f.message for f in findings) == 2
    assert sum("enumerate() over" in f.message for f in findings) == 1
    assert sum("range(len()) over" in f.message for f in findings) == 1
    assert sum("comprehension over" in f.message for f in findings) == 1
    assert all("bitset primitives" in f.message for f in findings)


def test_rr112_kills_rebound_names(tmp_path):
    """Rebinding a tracked name to a non-mask value ends the track."""
    from repro.analysis import analyze_source

    source = (
        "def f(realization, items):\n"
        "    masks = realization.masks\n"
        "    masks = sorted(items)\n"
        "    return [len(m) for m in masks]\n"
    )
    path = str(tmp_path / "repro" / "core" / "mod.py")
    assert not [f for f in analyze_source(source, path) if f.code == "RR112"]


def test_rr112_exempts_bitset_itself(tmp_path):
    """The bitset module's own per-bit assembly loops are the vocabulary."""
    from repro.analysis import analyze_source

    source = (
        "def f(realization):\n"
        "    return [int(m) for m in realization.masks]\n"
    )
    inside = analyze_source(
        source, str(tmp_path / "repro" / "probability" / "bitset.py")
    )
    assert not [f for f in inside if f.code == "RR112"]

    outside = analyze_source(
        source, str(tmp_path / "repro" / "probability" / "sampling.py")
    )
    assert [f for f in outside if f.code == "RR112"]


def test_rr113_counts_and_messages():
    findings = fixture_findings("RR113")
    # bad_sleep_in_handler, bad_sleep_from_import, bad_subprocess_import,
    # bad_subprocess_from_import, bad_os_system, bad_blocking_recv,
    # bad_blocking_accept.
    assert len(findings) == 7
    assert sum("time.sleep()" in f.message for f in findings) == 1
    assert sum("import of sleep" in f.message for f in findings) == 1
    assert sum("import of subprocess" in f.message for f in findings) == 1
    assert sum("import from subprocess" in f.message for f in findings) == 1
    assert sum("os.system()" in f.message for f in findings) == 1
    assert sum(".recv()" in f.message for f in findings) == 1
    assert sum(".accept()" in f.message for f in findings) == 1


def test_rr113_scoped_to_serve(tmp_path):
    """Outside a ``serve`` package, blocking reads are other rules'
    business (or nobody's)."""
    from repro.analysis import analyze_source

    source = "def f(sock):\n    return sock.recv(4096)\n"
    outside = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert not [f for f in outside if f.code == "RR113"]

    inside = analyze_source(source, str(tmp_path / "repro" / "serve" / "mod.py"))
    assert [f for f in inside if f.code == "RR113"]


def test_rr113_exempts_the_loop_and_the_client(tmp_path):
    """server.py owns the select() loop, client.py runs out-of-process —
    their socket calls are the sanctioned vocabulary.  time.sleep stays
    banned even there."""
    from repro.analysis import analyze_source

    socket_source = "def f(sock):\n    return sock.recv(4096)\n"
    for sanctioned in ("server.py", "client.py"):
        path = str(tmp_path / "repro" / "serve" / sanctioned)
        assert not [
            f for f in analyze_source(socket_source, path) if f.code == "RR113"
        ]

    sleep_source = "import time\n\ndef f():\n    time.sleep(1)\n"
    path = str(tmp_path / "repro" / "serve" / "server.py")
    assert [f for f in analyze_source(sleep_source, path) if f.code == "RR113"]


def test_rr114_counts_and_messages():
    findings = fixture_findings("RR114")
    # bad_scalar_random, bad_scalar_integers_while, bad_scalar_choice,
    # bad_named_stream, bad_nested_loop (deduped across the two loops).
    assert len(findings) == 5
    assert sum("rng.random()" in f.message for f in findings) == 2
    assert sum("rng.integers()" in f.message for f in findings) == 1
    assert sum("rng.choice()" in f.message for f in findings) == 1
    assert sum("rng.standard_exponential()" in f.message for f in findings) == 1


def test_rr114_clean_fixture_stays_silent():
    """The batched idioms of the estimator tier must not be flagged."""
    from repro.analysis import analyze_paths

    path = FIXTURES / "rr114_clean.py"
    report = analyze_paths([str(path)], select=["RR114"])
    assert not report.parse_errors, report.parse_errors
    assert not report.findings, [f.render() for f in report.findings]


def test_rr114_scoped_to_core(tmp_path):
    """Outside ``repro.core`` (e.g. the p2p simulator) scalar draws are
    legitimate sequential logic."""
    from repro.analysis import analyze_source

    source = "def f(rng, n):\n    for _ in range(n):\n        rng.random()\n"
    outside = analyze_source(source, str(tmp_path / "repro" / "p2p" / "mod.py"))
    assert not [f for f in outside if f.code == "RR114"]

    inside = analyze_source(source, str(tmp_path / "repro" / "core" / "mod.py"))
    assert [f for f in inside if f.code == "RR114"]


def test_rr201_counts_and_messages():
    findings = fixture_findings("RR201")
    # bad_return_sample (return), bad_result_payload (ReliabilityResult),
    # bad_cache_write (cache .put).
    assert len(findings) == 3
    assert sum("returns a value" in f.message for f in findings) == 1
    assert sum("a ReliabilityResult" in f.message for f in findings) == 1
    assert sum("a cache write" in f.message for f in findings) == 1


def test_rr202_counts_and_messages():
    findings = fixture_findings("RR202")
    # subscript store, view augmented-assign, .sort(), out=, .fill().
    assert len(findings) == 5
    assert sum("subscript store" in f.message for f in findings) == 1
    assert sum("augmented assignment" in f.message for f in findings) == 1
    assert sum(".sort()" in f.message for f in findings) == 1
    assert sum("out= write" in f.message for f in findings) == 1
    assert sum(".fill()" in f.message for f in findings) == 1


def test_rr203_anchors_on_the_acquire_line():
    findings = fixture_findings("RR203")
    assert len(findings) == 3
    # Every finding points at the ``x = progress_ticker(...)`` / ``span``
    # acquisition so the `with` fix-it lands on the right line.
    import re

    source = (FIXTURES / "rr203.py").read_text().splitlines()
    for finding in findings:
        line = source[finding.line - 1]
        assert re.search(r"=\s*(progress_ticker|ProgressTicker|span)\(", line), line


def test_rr204_is_flow_sensitive():
    """The partially-guarded fixture is the point of the CFG: the guarded
    branch's sink is clean, the unguarded branch's sink is flagged."""
    findings = fixture_findings("RR204")
    assert len(findings) == 3
    source = (FIXTURES / "rr204.py").read_text().splitlines()
    partial = [
        f for f in findings
        if "bad_partially_guarded" in source[f.line - 1]
        or f.line in range(15, 20)
    ]
    guarded_sink_lines = [
        i + 1 for i, text in enumerate(source[:20]) if "raise" in text
    ]
    flagged_lines = {f.line for f in findings}
    assert not flagged_lines.intersection(guarded_sink_lines)


def test_rr205_counts_and_messages():
    findings = fixture_findings("RR205")
    # lambda→run_chunked, nested def→submit, partial(local)→map,
    # lambda→submit on an assigned executor.
    assert len(findings) == 4
    assert sum("a lambda" in f.message for f in findings) == 2
    assert sum("locally-defined callable 'worker'" in f.message for f in findings) == 1
    assert sum("partial over a local callable" in f.message for f in findings) == 1
