"""Strict-typing gate: run mypy over the numerical kernel when available.

mypy is a dev-only dependency (``pip install -e '.[dev]'``); environments
without it skip this module rather than fail, so the tier-1 suite stays
runnable from the runtime deps alone.  CI installs the dev extra and runs
the gate for real (see .github/workflows/ci.yml).
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys

import pytest

from tests.analysis.conftest import REPO_ROOT

pytestmark = pytest.mark.skipif(
    importlib.util.find_spec("mypy") is None,
    reason="mypy not installed (dev extra)",
)


def test_mypy_clean_on_strict_packages():
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "--no-error-summary"],
        cwd=REPO_ROOT,
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert proc.returncode == 0, proc.stdout + proc.stderr
