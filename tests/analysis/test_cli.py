"""CLI contract tests for ``python -m repro.analysis``."""

from __future__ import annotations

import json

import pytest

from repro.analysis.cli import main


def _write(tmp_path, name, source):
    path = tmp_path / name
    path.write_text(source)
    return path


class TestExitCodes:
    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_one(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "def f(xs=[]):\n    return xs\n")
        assert main([str(tmp_path)]) == 1
        out = capsys.readouterr().out
        assert "RR105" in out

    def test_parse_error_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "broken.py", "def broken(:\n")
        assert main([str(tmp_path)]) == 2

    def test_missing_path_exits_two(self, tmp_path, capsys):
        assert main([str(tmp_path / "nowhere")]) == 2
        assert "nowhere" in capsys.readouterr().err

    def test_empty_directory_exits_two(self, tmp_path, capsys):
        (tmp_path / "empty").mkdir()
        assert main([str(tmp_path / "empty")]) == 2
        assert "no Python files" in capsys.readouterr().err

    def test_unknown_select_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "clean.py", "x = 1\n")
        assert main([str(tmp_path), "--select", "RR777"]) == 2
        assert "RR777" in capsys.readouterr().err

    def test_empty_select_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "def f(xs=[]):\n    return xs\n")
        assert main([str(tmp_path), "--select", ""]) == 2
        assert "no rule codes" in capsys.readouterr().err

    def test_cancelled_selection_exits_two(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "def f(xs=[]):\n    return xs\n")
        assert main([str(tmp_path), "--select", "RR105", "--ignore", "RR105"]) == 2
        assert "no rules to run" in capsys.readouterr().err


class TestOptions:
    def test_select_narrows_rules(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "import random\n\ndef f(xs=[]):\n    return random.random()\n")
        assert main([str(tmp_path), "--select", "RR101"]) == 1
        out = capsys.readouterr().out
        assert "RR101" in out and "RR105" not in out

    def test_ignore_drops_rules(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "def f(xs=[]):\n    return xs\n")
        assert main([str(tmp_path), "--ignore", "RR105"]) == 0

    def test_comma_separated_select(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "def f(xs=[]):\n    return xs\n")
        assert main([str(tmp_path), "--select", "RR101,RR105"]) == 1

    def test_json_format(self, tmp_path, capsys):
        _write(tmp_path, "dirty.py", "def f(xs=[]):\n    return xs\n")
        assert main([str(tmp_path), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["exit_code"] == 1
        assert payload["counts_by_code"] == {"RR105": 1}

    def test_list_rules(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for code in ("RR101", "RR102", "RR103", "RR104", "RR105", "RR106"):
            assert code in out

    def test_bad_format_rejected(self, tmp_path):
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--format", "yaml"])
        assert excinfo.value.code == 2


class TestTiers:
    DIRTY_BOTH = (
        "def f(xs=[], probs=()):\n"
        "    return configuration_probabilities(probs)\n"
    )

    def test_syntax_tier_skips_dataflow_rules(self, tmp_path, capsys):
        _write(tmp_path, "mod.py", self.DIRTY_BOTH)
        assert main([str(tmp_path), "--tier", "syntax"]) == 1
        out = capsys.readouterr().out
        assert "RR105" in out and "RR204" not in out

    def test_dataflow_tier_skips_syntax_rules(self, tmp_path, capsys):
        _write(tmp_path, "mod.py", self.DIRTY_BOTH)
        assert main([str(tmp_path), "--tier", "dataflow"]) == 1
        out = capsys.readouterr().out
        assert "RR204" in out and "RR105" not in out

    def test_bad_tier_rejected(self, tmp_path):
        _write(tmp_path, "clean.py", "x = 1\n")
        with pytest.raises(SystemExit) as excinfo:
            main([str(tmp_path), "--tier", "psychic"])
        assert excinfo.value.code == 2

    def test_rule_is_an_alias_for_select(self, tmp_path, capsys):
        _write(
            tmp_path,
            "dirty.py",
            "import random\n\ndef f(xs=[]):\n    return random.random()\n",
        )
        assert main([str(tmp_path), "--rule", "RR101"]) == 1
        out = capsys.readouterr().out
        assert "RR101" in out and "RR105" not in out

    def test_rule_and_select_combine(self, tmp_path, capsys):
        _write(
            tmp_path,
            "dirty.py",
            "import random\n\ndef f(xs=[]):\n    return random.random()\n",
        )
        assert main([str(tmp_path), "--select", "RR105", "--rule", "RR101"]) == 1
        out = capsys.readouterr().out
        assert "RR101" in out and "RR105" in out

    def test_list_rules_shows_tiers(self, capsys):
        assert main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "[syntax]" in out and "[dataflow]" in out
        for code in ("RR201", "RR202", "RR203", "RR204", "RR205"):
            assert code in out

    def test_list_rules_filters_by_tier(self, capsys):
        assert main(["--list-rules", "--tier", "dataflow"]) == 0
        out = capsys.readouterr().out
        assert "RR201" in out and "RR101" not in out
