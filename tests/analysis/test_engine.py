"""Engine-level tests: suppressions, selection, reporters, registry."""

from __future__ import annotations

import json

import pytest

from repro.analysis import analyze_paths, analyze_source, all_rules, get_rule
from repro.analysis.engine import AnalysisReport, iter_python_files
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.analysis.reporters import render_json, render_report, render_text
from repro.analysis.suppressions import SuppressionIndex
from repro.exceptions import AnalysisError, ReproError, ReproValueError

EXPECTED_CODES = [
    "RR101",
    "RR102",
    "RR103",
    "RR104",
    "RR105",
    "RR106",
    "RR107",
    "RR108",
    "RR109",
    "RR110",
    "RR111",
    "RR112",
    "RR113",
    "RR114",
    "RR201",
    "RR202",
    "RR203",
    "RR204",
    "RR205",
]


class TestRegistry:
    def test_all_rules_sorted_codes(self):
        assert [r.code for r in all_rules()] == EXPECTED_CODES

    def test_get_rule(self):
        rule = get_rule("RR104")
        assert rule.name == "builtin-exception-raised"

    def test_get_rule_unknown(self):
        with pytest.raises(AnalysisError):
            get_rule("RR999")

    def test_analysis_error_is_repro_error(self):
        assert issubclass(AnalysisError, ReproError)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(AnalysisError, match="duplicate"):

            @register_rule
            class Clone(Rule):  # pragma: no cover - never instantiated
                code = "RR101"
                name = "clone"

    def test_malformed_code_rejected(self):
        with pytest.raises(AnalysisError, match="malformed"):

            @register_rule
            class Bad(Rule):  # pragma: no cover - never instantiated
                code = "XX1"
                name = "bad"

    def test_every_rule_has_rationale(self):
        for rule in all_rules():
            assert rule.rationale, rule.code
            assert rule.name, rule.code


class TestSuppressions:
    def test_bare_noqa_suppresses_everything(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa\n")
        finding = Finding("f.py", 1, 1, "RR105", "m")
        assert index.suppresses(finding)

    def test_coded_noqa_is_selective(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa[RR101, RR103]\n")
        assert index.suppresses(Finding("f.py", 1, 1, "RR101", "m"))
        assert index.suppresses(Finding("f.py", 1, 1, "RR103", "m"))
        assert not index.suppresses(Finding("f.py", 1, 1, "RR104", "m"))

    def test_wrong_line_does_not_suppress(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa\ny = 2\n")
        assert not index.suppresses(Finding("f.py", 2, 1, "RR105", "m"))

    def test_plain_noqa_is_not_honoured(self):
        index = SuppressionIndex.from_source("x = 1  # noqa\n")
        assert not index.suppresses(Finding("f.py", 1, 1, "RR105", "m"))

    def test_empty_bracket_suppresses_nothing(self):
        index = SuppressionIndex.from_source("x = 1  # repro: noqa[]\n")
        assert not index.suppresses(Finding("f.py", 1, 1, "RR105", "m"))


class TestAnalyzeSource:
    SOURCE = "def f(xs=[]):\n    return xs\n"

    def test_findings_returned(self):
        findings = analyze_source(self.SOURCE, "mod.py")
        assert [f.code for f in findings] == ["RR105"]

    def test_syntax_error_raises(self):
        with pytest.raises(AnalysisError, match="cannot parse"):
            analyze_source("def broken(:\n", "mod.py")

    def test_findings_sorted_by_location(self):
        source = "a = {}\n\ndef f(xs=[], ys={}):\n    return xs, ys\n"
        findings = analyze_source(source, "mod.py")
        assert findings == sorted(findings)


class TestAnalyzePaths:
    def test_select_and_ignore(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random\n\ndef f(xs=[]):\n    return random.random()\n")
        both = analyze_paths([str(tmp_path)])
        assert {f.code for f in both.findings} == {"RR101", "RR105"}
        only = analyze_paths([str(tmp_path)], select=["RR105"])
        assert {f.code for f in only.findings} == {"RR105"}
        without = analyze_paths([str(tmp_path)], ignore=["RR105"])
        assert {f.code for f in without.findings} == {"RR101"}

    def test_unknown_select_code(self, tmp_path):
        with pytest.raises(AnalysisError, match="unknown rule"):
            analyze_paths([str(tmp_path)], select=["RR777"])

    def test_empty_effective_rule_set_rejected(self, tmp_path):
        # A typo'd selection must not masquerade as a clean run.
        with pytest.raises(AnalysisError, match="no rules to run"):
            analyze_paths([str(tmp_path)], select=["RR102"], ignore=["RR102"])

    def test_missing_path_raises(self, tmp_path):
        with pytest.raises(ReproValueError, match="does not exist"):
            iter_python_files([str(tmp_path / "nope")])

    def test_empty_scan_raises(self, tmp_path):
        # Zero matched files would make a CI gate vacuously green.
        with pytest.raises(ReproValueError, match="no Python files"):
            iter_python_files([str(tmp_path)])

    def test_tier_filter(self, tmp_path):
        mod = tmp_path / "mod.py"
        mod.write_text("import random\n\ndef f(xs=[]):\n    return random.random()\n")
        syntax = analyze_paths([str(tmp_path)], tier="syntax")
        assert {f.code for f in syntax.findings} == {"RR101", "RR105"}
        dataflow = analyze_paths([str(tmp_path)], tier="dataflow")
        assert dataflow.clean
        with pytest.raises(AnalysisError, match="unknown tier"):
            analyze_paths([str(tmp_path)], tier="quantum")

    def test_parse_error_collected(self, tmp_path):
        (tmp_path / "broken.py").write_text("def broken(:\n")
        report = analyze_paths([str(tmp_path)])
        assert report.parse_errors and report.exit_code() == 2

    def test_exit_codes(self, tmp_path):
        clean = tmp_path / "clean.py"
        clean.write_text("x = 1\n")
        assert analyze_paths([str(clean)]).exit_code() == 0
        dirty = tmp_path / "dirty.py"
        dirty.write_text("def f(xs=[]):\n    return xs\n")
        assert analyze_paths([str(dirty)]).exit_code() == 1

    def test_pycache_skipped(self, tmp_path):
        cache = tmp_path / "__pycache__"
        cache.mkdir()
        (cache / "junk.py").write_text("def f(xs=[]):\n    return xs\n")
        (tmp_path / "real.py").write_text("x = 1\n")
        report = analyze_paths([str(tmp_path)])
        assert report.files_checked == 1 and report.clean


class TestReporters:
    def _dirty_report(self, tmp_path) -> AnalysisReport:
        mod = tmp_path / "mod.py"
        mod.write_text("def f(xs=[]):\n    return xs\n")
        return analyze_paths([str(tmp_path)])

    def test_text_clean(self):
        report = AnalysisReport(files_checked=3)
        assert "clean" in render_text(report)

    def test_text_lists_findings(self, tmp_path):
        rendered = render_text(self._dirty_report(tmp_path))
        assert "RR105" in rendered and "mod.py:1:" in rendered
        assert "1 finding(s)" in rendered

    def test_json_round_trip(self, tmp_path):
        payload = json.loads(render_json(self._dirty_report(tmp_path)))
        assert payload["version"] == 1
        assert payload["counts_by_code"] == {"RR105": 1}
        assert payload["exit_code"] == 1
        (finding,) = payload["findings"]
        assert finding["code"] == "RR105" and finding["line"] == 1

    def test_unknown_format(self):
        with pytest.raises(AnalysisError):
            render_report(AnalysisReport(), "yaml")
