"""Unit tests for repro.probability.bitset."""

import numpy as np
import pytest

from repro.probability.bitset import (
    gray_code,
    gray_flip_position,
    indices_from_mask,
    iter_submasks,
    iter_supermasks,
    mask_from_indices,
    parity_array,
    popcount,
    popcount_array,
)


class TestMaskConversion:
    def test_round_trip(self):
        for mask in [0, 1, 0b1010, 0b11111, 1 << 40]:
            assert mask_from_indices(indices_from_mask(mask)) == mask

    def test_mask_from_indices(self):
        assert mask_from_indices([0, 2, 5]) == 0b100101

    def test_indices_sorted(self):
        assert indices_from_mask(0b110010) == [1, 4, 5]

    def test_negative_bit_rejected(self):
        with pytest.raises(ValueError):
            mask_from_indices([-1])

    def test_negative_mask_rejected(self):
        with pytest.raises(ValueError):
            indices_from_mask(-1)


class TestPopcount:
    def test_values(self):
        assert popcount(0) == 0
        assert popcount(0b1011) == 3
        assert popcount((1 << 100) - 1) == 100

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            popcount(-1)

    def test_array_matches_scalar(self):
        table = popcount_array(8)
        for mask in range(256):
            assert table[mask] == popcount(mask)

    def test_array_zero_bits(self):
        assert popcount_array(0).tolist() == [0]

    def test_parity_array(self):
        signs = parity_array(4)
        for mask in range(16):
            assert signs[mask] == (-1) ** popcount(mask)


class TestSubmaskIteration:
    def test_counts(self):
        subs = list(iter_submasks(0b1011))
        assert len(subs) == 8
        assert set(subs) == {
            0,
            0b0001,
            0b0010,
            0b0011,
            0b1000,
            0b1001,
            0b1010,
            0b1011,
        }

    def test_without_empty(self):
        assert 0 not in list(iter_submasks(0b101, include_empty=False))

    def test_zero_mask(self):
        assert list(iter_submasks(0)) == [0]

    def test_decreasing_order(self):
        subs = [s for s in iter_submasks(0b110) if s]
        assert subs == sorted(subs, reverse=True)


class TestSupermaskIteration:
    def test_counts(self):
        sups = list(iter_supermasks(0b001, 0b111))
        assert set(sups) == {0b001, 0b011, 0b101, 0b111}

    def test_outside_universe_rejected(self):
        with pytest.raises(ValueError):
            list(iter_supermasks(0b1000, 0b111))

    def test_full_mask_single(self):
        assert list(iter_supermasks(0b111, 0b111)) == [0b111]

    def test_empty_mask_gives_all(self):
        assert sorted(iter_supermasks(0, 0b11)) == [0, 1, 2, 3]


class TestGrayCodes:
    def test_successive_codes_differ_by_one_bit(self):
        for i in range(1, 64):
            diff = gray_code(i) ^ gray_code(i - 1)
            assert popcount(diff) == 1
            assert diff == 1 << gray_flip_position(i)

    def test_gray_code_is_permutation(self):
        codes = {gray_code(i) for i in range(32)}
        assert codes == set(range(32))

    def test_flip_position_rejects_zero(self):
        with pytest.raises(ValueError):
            gray_flip_position(0)
