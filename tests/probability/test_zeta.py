"""Unit tests for subset-lattice transforms."""

import numpy as np
import pytest

from repro.probability.bitset import iter_submasks, iter_supermasks
from repro.probability.zeta import (
    subset_moebius,
    subset_zeta,
    superset_moebius,
    superset_zeta,
)


def brute_subset_zeta(values):
    n = len(values).bit_length() - 1
    out = np.zeros_like(values)
    for s in range(len(values)):
        out[s] = sum(values[t] for t in iter_submasks(s))
    return out


def brute_superset_zeta(values):
    full = len(values) - 1
    out = np.zeros_like(values)
    for s in range(len(values)):
        out[s] = sum(values[t] for t in iter_supermasks(s, full))
    return out


class TestTransforms:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_subset_zeta_matches_bruteforce(self, n):
        rng = np.random.default_rng(n)
        values = rng.random(1 << n)
        assert np.allclose(subset_zeta(values), brute_subset_zeta(values))

    @pytest.mark.parametrize("n", [0, 1, 2, 3, 4])
    def test_superset_zeta_matches_bruteforce(self, n):
        rng = np.random.default_rng(10 + n)
        values = rng.random(1 << n)
        assert np.allclose(superset_zeta(values), brute_superset_zeta(values))

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_subset_roundtrip(self, n):
        rng = np.random.default_rng(20 + n)
        values = rng.random(1 << n)
        assert np.allclose(subset_moebius(subset_zeta(values)), values)

    @pytest.mark.parametrize("n", [1, 3, 5])
    def test_superset_roundtrip(self, n):
        rng = np.random.default_rng(30 + n)
        values = rng.random(1 << n)
        assert np.allclose(superset_moebius(superset_zeta(values)), values)

    def test_inplace_mutates(self):
        values = np.ones(4)
        out = subset_zeta(values, inplace=True)
        assert out is values

    def test_not_inplace_preserves(self):
        values = np.ones(4)
        subset_zeta(values)
        assert values.tolist() == [1, 1, 1, 1]

    def test_full_mask_subset_zeta_is_total(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        assert subset_zeta(values)[3] == pytest.approx(1.0)

    def test_empty_mask_superset_zeta_is_total(self):
        values = np.array([0.1, 0.2, 0.3, 0.4])
        assert superset_zeta(values)[0] == pytest.approx(1.0)

    def test_rejects_non_power_of_two(self):
        with pytest.raises(ValueError):
            subset_zeta(np.ones(3))

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            superset_zeta(np.ones((2, 2)))
