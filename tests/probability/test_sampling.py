"""Unit tests for Bernoulli configuration sampling."""

import numpy as np
import pytest

from repro.graph.builders import diamond
from repro.probability.sampling import sample_alive_masks, sample_alive_matrix


class TestSampleMatrix:
    def test_shape(self):
        matrix = sample_alive_matrix([0.5, 0.5, 0.5], 100, rng=0)
        assert matrix.shape == (100, 3)
        assert matrix.dtype == bool

    def test_deterministic(self):
        a = sample_alive_matrix([0.3, 0.7], 50, rng=42)
        b = sample_alive_matrix([0.3, 0.7], 50, rng=42)
        assert np.array_equal(a, b)

    def test_always_dead_link(self):
        matrix = sample_alive_matrix([0.0], 20, rng=0)
        assert matrix.all()  # p=0 means never fails => always alive

    def test_empirical_rate(self):
        matrix = sample_alive_matrix([0.25], 20_000, rng=1)
        assert matrix.mean() == pytest.approx(0.75, abs=0.02)

    def test_network_input(self):
        matrix = sample_alive_matrix(diamond(failure_probability=0.5), 10, rng=0)
        assert matrix.shape == (10, 4)


class TestSampleMasks:
    def test_dtype_and_range(self):
        masks = sample_alive_masks([0.5, 0.5], 100, rng=0)
        assert masks.dtype == np.uint64
        assert masks.max() < 4

    def test_matches_matrix_packing(self):
        rng_a = np.random.default_rng(7)
        rng_b = np.random.default_rng(7)
        matrix = sample_alive_matrix([0.2, 0.4, 0.6], 30, rng=rng_a)
        masks = sample_alive_masks([0.2, 0.4, 0.6], 30, rng=rng_b)
        for row, mask in zip(matrix, masks):
            expected = sum(1 << i for i, bit in enumerate(row) if bit)
            assert int(mask) == expected

    def test_width_limit(self):
        with pytest.raises(ValueError):
            sample_alive_masks([0.5] * 64, 1, rng=0)

    def test_empirical_distribution(self):
        # single link p=0.5: mask 1 about half the time
        masks = sample_alive_masks([0.5], 10_000, rng=3)
        assert (masks == 1).mean() == pytest.approx(0.5, abs=0.02)
