"""Unit tests for the inclusion–exclusion engine."""

import numpy as np
import pytest

from repro.probability.inclusion_exclusion import (
    union_probability,
    union_probability_from_intersections,
)


class TestUnionFromIntersections:
    def test_two_events(self):
        # P(A)=0.5, P(B)=0.4, P(AB)=0.2 -> union 0.7
        table = np.array([0.0, 0.5, 0.4, 0.2])
        assert union_probability_from_intersections(table) == pytest.approx(0.7)

    def test_single_event(self):
        table = np.array([0.0, 0.35])
        assert union_probability_from_intersections(table) == pytest.approx(0.35)

    def test_three_events_disjoint(self):
        table = np.zeros(8)
        table[0b001] = 0.1
        table[0b010] = 0.2
        table[0b100] = 0.3
        assert union_probability_from_intersections(table) == pytest.approx(0.6)

    def test_identical_events(self):
        # A = B: all intersections 0.3 -> union 0.3
        table = np.full(4, 0.3)
        assert union_probability_from_intersections(table) == pytest.approx(0.3)

    def test_empty_table(self):
        assert union_probability_from_intersections(np.array([1.0])) == 0.0

    def test_rejects_bad_length(self):
        with pytest.raises(ValueError):
            union_probability_from_intersections(np.zeros(6))

    def test_matches_direct_summation(self):
        # random outcome space over 3 events
        rng = np.random.default_rng(5)
        outcome_masks = rng.integers(0, 8, size=40)
        weights = rng.random(40)
        weights /= weights.sum()
        # intersections: P(all events in X) = sum of outcomes whose mask ⊇ X
        table = np.zeros(8)
        for x in range(8):
            table[x] = sum(w for m, w in zip(outcome_masks, weights) if (m & x) == x)
        expected = union_probability(outcome_masks.tolist(), weights.tolist())
        assert union_probability_from_intersections(table) == pytest.approx(expected)


class TestUnionDirect:
    def test_zero_mask_contributes_nothing(self):
        assert union_probability([0, 1], [0.7, 0.3]) == pytest.approx(0.3)

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            union_probability([1], [0.2, 0.3])

    def test_all_hit(self):
        assert union_probability([1, 2, 3], [0.2, 0.3, 0.5]) == pytest.approx(1.0)
