"""Unit tests for configuration-probability enumeration."""

import numpy as np
import pytest

from repro.exceptions import IntractableError
from repro.graph.builders import diamond
from repro.probability.enumeration import (
    check_enumerable,
    conditional_configuration_probabilities,
    configuration_probabilities,
    configuration_probability,
)


class TestConfigurationProbabilities:
    def test_single_link(self):
        table = configuration_probabilities([0.3])
        assert table.tolist() == pytest.approx([0.3, 0.7])

    def test_two_links_layout(self):
        # bit 0 = link 0, bit 1 = link 1
        table = configuration_probabilities([0.1, 0.2])
        assert table[0b00] == pytest.approx(0.1 * 0.2)
        assert table[0b01] == pytest.approx(0.9 * 0.2)
        assert table[0b10] == pytest.approx(0.1 * 0.8)
        assert table[0b11] == pytest.approx(0.9 * 0.8)

    def test_sums_to_one(self):
        table = configuration_probabilities([0.1, 0.25, 0.6, 0.05])
        assert table.sum() == pytest.approx(1.0)

    def test_network_input(self):
        table = configuration_probabilities(diamond(failure_probability=0.5))
        assert len(table) == 16
        assert np.allclose(table, 1 / 16)

    def test_zero_probability_links(self):
        table = configuration_probabilities([0.0, 0.5])
        assert table[0b00] == 0.0
        assert table[0b01] == pytest.approx(0.5)

    def test_empty(self):
        assert configuration_probabilities([]).tolist() == [1.0]

    def test_matches_scalar_function(self):
        probs = [0.1, 0.3, 0.45]
        table = configuration_probabilities(probs)
        for mask in range(8):
            assert table[mask] == pytest.approx(configuration_probability(probs, mask))

    def test_rejects_bad_probability(self):
        with pytest.raises(ValueError):
            configuration_probabilities([1.0])
        with pytest.raises(ValueError):
            configuration_probabilities([-0.1])

    def test_rejects_matrix(self):
        with pytest.raises(ValueError):
            configuration_probabilities(np.zeros((2, 2)))


class TestCheckEnumerable:
    def test_within_budget(self):
        check_enumerable(10)

    def test_over_budget(self):
        with pytest.raises(IntractableError) as info:
            check_enumerable(30)
        assert info.value.required == 30

    def test_custom_limit(self):
        with pytest.raises(IntractableError):
            check_enumerable(11, limit=10)


class TestConditionalProbabilities:
    def test_forced_alive(self):
        table = conditional_configuration_probabilities([0.5, 0.5], forced_alive=[0])
        assert table[0b00] == 0.0
        assert table[0b01] == pytest.approx(0.5)
        assert table[0b11] == pytest.approx(0.5)

    def test_forced_dead(self):
        table = conditional_configuration_probabilities([0.5, 0.5], forced_dead=[1])
        assert table[0b10] == 0.0
        assert table[0b11] == 0.0
        assert table[0b00] == pytest.approx(0.5)

    def test_sums_to_one(self):
        table = conditional_configuration_probabilities(
            [0.2, 0.3, 0.4], forced_alive=[0], forced_dead=[2]
        )
        assert table.sum() == pytest.approx(1.0)

    def test_conflicting_conditioning_rejected(self):
        with pytest.raises(ValueError):
            conditional_configuration_probabilities([0.5], forced_alive=[0], forced_dead=[0])

    def test_no_conditioning_matches_plain(self):
        probs = [0.1, 0.4]
        a = conditional_configuration_probabilities(probs)
        b = configuration_probabilities(probs)
        assert np.allclose(a, b)
