"""Unit tests for the durable telemetry stream (sink + events/v1)."""

import json
import threading

import pytest

from repro import obs
from repro.exceptions import ReproValueError
from repro.obs import (
    EVENTS_SCHEMA,
    JsonlSink,
    TelemetryRecorder,
    current_spool_dir,
    merge_spool,
    read_events,
    spool_chunk_events,
    telemetry_session,
)
from repro.obs.recorder import FLOW_SOLVES
from repro.obs.sink import PARENT_SPOOL_NAME, SpoolTailer


class TestJsonlSink:
    def test_emits_one_json_line_per_event(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlSink(path, capacity=1) as sink:
            sink.emit({"ev": "a", "n": 1})
            sink.emit({"ev": "b", "n": 2})
        lines = path.read_text().splitlines()
        assert [json.loads(line)["ev"] for line in lines] == ["a", "b"]

    def test_buffers_until_capacity(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(path, capacity=3)
        sink.emit({"ev": "a"})
        sink.emit({"ev": "b"})
        assert not path.exists()  # lazy open: nothing flushed yet
        sink.emit({"ev": "c"})  # hits capacity -> auto-flush
        assert len(path.read_text().splitlines()) == 3
        sink.close()

    def test_never_emitting_leaves_no_file(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlSink(path):
            pass
        assert not path.exists()

    def test_close_flushes_and_is_idempotent(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(path, capacity=100)
        sink.emit({"ev": "a"})
        sink.close()
        sink.close()
        assert len(path.read_text().splitlines()) == 1
        with pytest.raises(ReproValueError):
            sink.emit({"ev": "late"})

    def test_append_mode_extends_existing_stream(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        with JsonlSink(path, capacity=1) as sink:
            sink.emit({"ev": "a"})
        with JsonlSink(path, capacity=1, mode="a") as sink:
            sink.emit({"ev": "b"})
        assert len(path.read_text().splitlines()) == 2

    def test_rejects_bad_capacity_and_mode(self, tmp_path):
        with pytest.raises(ReproValueError):
            JsonlSink(tmp_path / "x", capacity=0)
        with pytest.raises(ReproValueError):
            JsonlSink(tmp_path / "x", mode="r")

    def test_concurrent_emits_stay_line_atomic(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        sink = JsonlSink(path, capacity=7)

        def hammer(tag):
            for i in range(200):
                sink.emit({"ev": "tick", "tag": tag, "i": i})

        threads = [threading.Thread(target=hammer, args=(t,)) for t in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        sink.close()
        events = read_events(path)
        assert len(events) == 800
        assert all(e["ev"] == "tick" for e in events)


class TestReadEvents:
    def test_tolerates_truncated_final_line(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"ev":"a"}\n{"ev":"b"}\n{"ev":"c","trunc')
        events = read_events(path)
        assert [e["ev"] for e in events] == ["a", "b"]

    def test_interior_corruption_raises(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"ev":"a"}\nNOT JSON\n{"ev":"c"}\n')
        with pytest.raises(ReproValueError, match="interior line 2"):
            read_events(path)

    def test_blank_lines_are_skipped(self, tmp_path):
        path = tmp_path / "ev.jsonl"
        path.write_text('{"ev":"a"}\n\n{"ev":"b"}\n')
        assert len(read_events(path)) == 2


class TestTelemetryRecorder:
    def _events(self, tmp_path, body):
        path = tmp_path / "main.jsonl"
        sink = JsonlSink(path, capacity=1)
        rec = TelemetryRecorder(sink, meta={"command": "test"})
        with obs.record(rec):
            body(rec)
        sink.close()
        return read_events(path), rec

    def test_start_event_carries_schema_and_meta(self, tmp_path):
        events, _ = self._events(tmp_path, lambda rec: None)
        assert events[0]["ev"] == "start"
        assert events[0]["schema"] == EVENTS_SCHEMA
        assert events[0]["meta"] == {"command": "test"}

    def test_span_open_close_pairing(self, tmp_path):
        def body(rec):
            with obs.span("sweep.run", points=3):
                with obs.span("sweep.arrays"):
                    pass

        events, _ = self._events(tmp_path, body)
        kinds = [(e["ev"], e.get("name")) for e in events]
        assert ("span_open", "sweep.run") in kinds
        assert ("span_open", "sweep.arrays") in kinds
        # Children close before their parents.
        closes = [e["name"] for e in events if e["ev"] == "span_close"]
        assert closes.index("sweep.arrays") < closes.index("sweep.run")

    def test_span_close_carries_own_counters_only(self, tmp_path):
        def body(rec):
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 2)
                with obs.span("sweep.arrays"):
                    obs.count(FLOW_SOLVES, 5)

        events, rec = self._events(tmp_path, body)
        by_name = {e["name"]: e for e in events if e["ev"] == "span_close"}
        assert by_name["sweep.arrays"]["counters"][FLOW_SOLVES] == 5
        assert by_name["sweep.run"]["counters"][FLOW_SOLVES] == 2
        # Summing span_close counters reproduces the recorder totals.
        summed = sum(
            e["counters"].get(FLOW_SOLVES, 0)
            for e in events
            if e["ev"] == "span_close"
        )
        assert summed == rec.counter_totals()[FLOW_SOLVES] == 7

    def test_phase_boundary_emits_cumulative_snapshot(self, tmp_path):
        def body(rec):
            with obs.span("sweep.run"):  # a phase: direct child of root
                obs.count(FLOW_SOLVES, 3)

        events, _ = self._events(tmp_path, body)
        snapshots = [e for e in events if e["ev"] == "counters"]
        assert snapshots and snapshots[-1]["counters"][FLOW_SOLVES] == 3

    def test_finish_event_emitted_once(self, tmp_path):
        path = tmp_path / "main.jsonl"
        sink = JsonlSink(path, capacity=1)
        rec = TelemetryRecorder(sink)
        with obs.record(rec):
            obs.count(FLOW_SOLVES)
        rec.finish()  # second finish: no duplicate event
        sink.close()
        events = read_events(path)
        finishes = [e for e in events if e["ev"] == "finish"]
        assert len(finishes) == 1
        assert finishes[0]["counters"][FLOW_SOLVES] == 1


class TestTelemetrySession:
    def test_session_writes_parent_stream_and_publishes_dir(self, tmp_path):
        spool = tmp_path / "ev"
        assert current_spool_dir() is None
        with telemetry_session(spool, meta={"command": "t"}) as rec:
            assert current_spool_dir() == spool
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 4)
            assert rec.counter_totals()[FLOW_SOLVES] == 4
        assert current_spool_dir() is None
        events = read_events(spool / PARENT_SPOOL_NAME)
        assert events[0]["ev"] == "start"
        assert events[-1]["ev"] == "finish"

    def test_session_flushes_on_exception(self, tmp_path):
        spool = tmp_path / "ev"
        with pytest.raises(RuntimeError):
            with telemetry_session(spool):
                with obs.span("sweep.run"):
                    obs.count(FLOW_SOLVES, 2)
                raise RuntimeError("killed")
        events = read_events(spool / PARENT_SPOOL_NAME)
        # The phase closed before the raise, so its span_close and the
        # cumulative snapshot are on disk — but no clean ``finish``
        # event: its absence marks the run as interrupted.
        assert any(e["ev"] == "counters" for e in events)
        assert not any(e["ev"] == "finish" for e in events)

    def test_fresh_session_clears_stale_worker_spools(self, tmp_path):
        spool = tmp_path / "ev"
        spool.mkdir()
        stale = spool / "worker-999-000000.jsonl"
        stale.write_text('{"ev":"span_close","name":"x","counters":{"flow_solves":9}}\n')
        with telemetry_session(spool):
            pass
        assert not stale.exists()
        assert merge_spool(spool).worker_totals == {}


class TestSpoolChunkEvents:
    def test_written_file_round_trips(self, tmp_path):
        path = spool_chunk_events(
            tmp_path,
            "engine.chunk",
            attrs={"side": "source", "chunk": 3},
            seconds=0.25,
            counters={FLOW_SOLVES: 7},
        )
        events = read_events(path)
        assert events[0]["ev"] == "start"
        assert events[0]["schema"] == EVENTS_SCHEMA
        close = events[1]
        assert close["ev"] == "span_close"
        assert close["name"] == "engine.chunk"
        assert close["attrs"] == {"side": "source", "chunk": 3}
        assert close["counters"] == {FLOW_SOLVES: 7}

    def test_filenames_are_unique_per_call(self, tmp_path):
        paths = {
            spool_chunk_events(tmp_path, "engine.chunk", seconds=0.0, counters={})
            for _ in range(5)
        }
        assert len(paths) == 5


class TestMergeAndTail:
    def _spool(self, tmp_path, chunks):
        for counters in chunks:
            spool_chunk_events(
                tmp_path, "engine.chunk", seconds=0.0, counters=counters
            )

    def test_merge_sums_worker_streams(self, tmp_path):
        self._spool(
            tmp_path, [{FLOW_SOLVES: 3}, {FLOW_SOLVES: 4, "flow_repairs": 1}]
        )
        summary = merge_spool(tmp_path)
        assert summary.worker_files == 2
        assert summary.worker_totals == {FLOW_SOLVES: 7, "flow_repairs": 1}
        assert summary.parent_totals is None
        assert not summary.parent_finished

    def test_merge_missing_directory_raises(self, tmp_path):
        with pytest.raises(ReproValueError):
            merge_spool(tmp_path / "nope")

    def test_merge_reads_parent_snapshot(self, tmp_path):
        with telemetry_session(tmp_path):
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 5)
        summary = merge_spool(tmp_path)
        assert summary.parent_finished
        assert summary.parent_totals[FLOW_SOLVES] == 5

    def test_tailer_folds_new_events_incrementally(self, tmp_path):
        tailer = SpoolTailer(tmp_path)
        assert tailer.poll() == 0
        self._spool(tmp_path, [{FLOW_SOLVES: 2}])
        assert tailer.poll() == 2  # start + span_close
        assert tailer.totals == {FLOW_SOLVES: 2}
        assert tailer.poll() == 0  # nothing new
        self._spool(tmp_path, [{FLOW_SOLVES: 3}])
        tailer.poll()
        assert tailer.totals == {FLOW_SOLVES: 5}
        assert tailer.files_seen == 2

    def test_tailer_holds_partial_lines_until_complete(self, tmp_path):
        path = tmp_path / "worker-1-000000.jsonl"
        path.write_text('{"ev":"span_close","name":"x","counters":{"flow_solves":1}}\n{"ev":"span_cl')
        tailer = SpoolTailer(tmp_path)
        assert tailer.poll() == 1  # only the complete line
        assert tailer.totals == {"flow_solves": 1}
        with open(path, "a") as handle:
            handle.write('ose","name":"y","counters":{"flow_solves":2}}\n')
        assert tailer.poll() == 1
        assert tailer.totals == {"flow_solves": 3}
