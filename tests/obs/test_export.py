"""Unit tests for the trace exporters (repro.obs.export)."""

import json

import pytest

from repro import obs
from repro.obs.export import format_tree, phase_summary, trace_to_dict, trace_to_json


@pytest.fixture
def sample_recorder():
    with obs.record() as rec:
        with obs.span("build", side="source", links=3):
            obs.count("flow_solves", 5)
            with obs.span("inner"):
                obs.count("flow_solves", 2)
        with obs.span("accumulate"):
            obs.count("terms", 8)
            obs.gauge("rate", 123.5)
    return rec


class TestFormatTree:
    def test_structure_and_annotations(self, sample_recorder):
        text = format_tree(sample_recorder)
        lines = text.splitlines()
        assert lines[0].startswith("trace  ")
        assert "flow_solves=7" in lines[0]  # trace-wide subtree total
        build = next(line for line in lines if "build" in line)
        assert build.startswith("|- ")
        assert "side=source" in build and "links=3" in build
        assert "flow_solves=7" in build  # subtree total, not own count
        inner = next(line for line in lines if "inner" in line)
        assert inner.startswith("|  ") and "flow_solves=2" in inner
        accumulate = next(line for line in lines if "accumulate" in line)
        assert accumulate.startswith("`- ")  # last sibling connector
        assert "terms=8" in accumulate and "rate=123.5" in accumulate

    def test_title_line(self, sample_recorder):
        text = format_tree(sample_recorder, title="fig4 / bottleneck")
        assert text.splitlines()[0] == "fig4 / bottleneck"

    def test_accepts_bare_span(self, sample_recorder):
        build = sample_recorder.root.children[0]
        text = format_tree(build)
        assert "inner" in text


class TestTraceToDict:
    def test_schema_and_shape(self, sample_recorder):
        payload = trace_to_dict(sample_recorder)
        assert payload["schema"] == "repro.obs/trace/v1"
        assert payload["counters"] == {"flow_solves": 7, "terms": 8}
        assert [s["name"] for s in payload["spans"]] == ["build", "accumulate"]

    def test_own_counters_round_trip_losslessly(self, sample_recorder):
        payload = trace_to_dict(sample_recorder)
        build = payload["spans"][0]
        assert build["counters"] == {"flow_solves": 5}  # own, not subtree
        assert build["children"][0]["counters"] == {"flow_solves": 2}
        own_total = build["counters"]["flow_solves"] + build["children"][0]["counters"]["flow_solves"]
        assert own_total == payload["counters"]["flow_solves"]

    def test_json_round_trip(self, sample_recorder):
        decoded = json.loads(trace_to_json(sample_recorder))
        assert decoded == json.loads(json.dumps(trace_to_dict(sample_recorder)))
        assert decoded["spans"][1]["gauges"] == {"rate": 123.5}


class TestPhaseSummary:
    def test_phases_are_top_level_spans(self, sample_recorder):
        summary = phase_summary(sample_recorder)
        assert [p["name"] for p in summary["phases"]] == ["build", "accumulate"]
        assert summary["phases"][0]["attrs"] == {"side": "source", "links": 3}

    def test_phase_counters_sum_to_trace_total(self, sample_recorder):
        summary = phase_summary(sample_recorder)
        per_phase = sum(p["counters"].get("flow_solves", 0) for p in summary["phases"])
        assert per_phase == summary["counters"]["flow_solves"] == 7

    def test_empty_trace(self):
        with obs.record() as rec:
            pass
        summary = phase_summary(rec)
        assert summary["phases"] == []
        assert summary["counters"] == {}
