"""Unit tests for the progress layer (repro.obs.progress)."""

import pytest

from repro import obs
from repro.exceptions import ReproValueError
from repro.obs.progress import NULL_TICKER, ProgressTicker
from repro.obs.recorder import Recorder


class TestProgressTicker:
    def test_counts_ticks(self):
        ticker = ProgressTicker("loop", total=10)
        ticker.tick()
        ticker.tick(4)
        assert ticker.done == 5
        update = ticker.finish()
        assert update.done == 5
        assert update.total == 10
        assert update.final is True

    def test_negative_total_rejected(self):
        with pytest.raises(ReproValueError):
            ProgressTicker("loop", total=-1)

    def test_callback_receives_heartbeats(self):
        updates = []
        rec = Recorder(progress_callback=updates.append, progress_interval=0.0)
        ticker = ProgressTicker("loop", total=3, recorder=rec)
        ticker.tick()
        ticker.tick()
        ticker.finish()
        assert len(updates) == 3
        assert [u.done for u in updates] == [1, 2, 2]
        assert updates[-1].final is True
        assert all(u.label == "loop" for u in updates)

    def test_interval_throttles_heartbeats(self):
        updates = []
        rec = Recorder(progress_callback=updates.append, progress_interval=3600.0)
        ticker = ProgressTicker("loop", total=100, recorder=rec)
        for _ in range(50):
            ticker.tick()
        assert updates == []  # interval far in the future
        ticker.finish()
        assert len(updates) == 1  # the final update always fires

    def test_rate_and_eta_shapes(self):
        updates = []
        rec = Recorder(progress_callback=updates.append, progress_interval=0.0)
        ticker = ProgressTicker("loop", total=4, recorder=rec)
        ticker.tick(2)
        mid = updates[-1]
        assert mid.rate >= 0.0
        if mid.rate > 0:
            assert mid.eta is not None and mid.eta >= 0.0
        final = ticker.finish()
        assert final.eta == 0.0
        assert final.elapsed >= 0.0

    def test_unknown_total(self):
        ticker = ProgressTicker("loop")
        ticker.tick(7)
        update = ticker.finish()
        assert update.total is None
        assert update.eta is None
        assert update.fraction is None

    def test_fraction(self):
        ticker = ProgressTicker("loop", total=8)
        ticker.tick(2)
        assert ticker._update(ticker._start, final=False).fraction == pytest.approx(0.25)

    def test_finish_leaves_gauges_on_trace(self):
        with obs.record() as rec:
            with obs.span("phase"):
                ticker = obs.progress_ticker("work.items", total=2)
                assert isinstance(ticker, ProgressTicker)
                ticker.tick(2)
                ticker.finish()
        phase = rec.root.children[0]
        assert phase.gauges["work.items.items"] == 2
        assert phase.gauges["work.items.rate"] >= 0.0

    def test_context_manager_finishes(self):
        with obs.record() as rec:
            with obs.progress_ticker("cm.loop", total=1) as ticker:
                ticker.tick()
        assert rec.root.gauges["cm.loop.items"] == 1

    def test_factory_returns_null_without_recorder(self):
        assert obs.progress_ticker("loop", total=5) is NULL_TICKER
