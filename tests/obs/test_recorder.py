"""Unit tests for the instrumentation core (repro.obs.recorder)."""

import pytest

from repro import obs
from repro.exceptions import ReproValueError
from repro.obs import recorder as recmod
from repro.obs.progress import NULL_TICKER
from repro.obs.recorder import NULL_SPAN, Recorder


class TestSpanTree:
    def test_nesting_structure(self):
        with obs.record() as rec:
            with obs.span("outer"):
                with obs.span("inner_a"):
                    pass
                with obs.span("inner_b"):
                    with obs.span("leaf"):
                        pass
        outer = rec.root.children[0]
        assert outer.name == "outer"
        assert [c.name for c in outer.children] == ["inner_a", "inner_b"]
        assert [c.name for c in outer.children[1].children] == ["leaf"]

    def test_attribute_capture(self):
        with obs.record() as rec:
            with obs.span("phase", side="source", links=7):
                pass
        phase = rec.root.children[0]
        assert phase.attrs == {"side": "source", "links": 7}

    def test_span_yields_its_record(self):
        with obs.record():
            with obs.span("x", k=1) as rec_span:
                assert rec_span.name == "x"
                assert rec_span.attrs == {"k": 1}

    def test_timing_is_monotone(self):
        with obs.record() as rec:
            with obs.span("a"):
                with obs.span("b"):
                    pass
        a = rec.root.children[0]
        b = a.children[0]
        assert a.end is not None and b.end is not None
        assert a.start <= b.start <= b.end <= a.end
        assert a.seconds >= b.seconds >= 0.0

    def test_sibling_spans_stay_siblings(self):
        with obs.record() as rec:
            for name in ("p1", "p2", "p3"):
                with obs.span(name):
                    pass
        assert [c.name for c in rec.root.children] == ["p1", "p2", "p3"]

    def test_exception_still_closes_span(self):
        with obs.record() as rec:
            with pytest.raises(RuntimeError):
                with obs.span("doomed"):
                    raise RuntimeError("boom")
        doomed = rec.root.children[0]
        assert doomed.end is not None
        assert rec.current is rec.root

    def test_finish_closes_leaked_spans(self):
        rec = Recorder()
        cm = rec.span("leaked")
        cm.__enter__()
        root = rec.finish()
        assert root.end is not None
        assert root.children[0].end is not None
        assert rec.current is rec.root

    def test_iter_spans_depth_first(self):
        with obs.record() as rec:
            with obs.span("a"):
                with obs.span("b"):
                    pass
            with obs.span("c"):
                pass
        names = [s.name for s in rec.root.iter_spans()]
        assert names == ["<root>", "a", "b", "c"]


class TestCounters:
    def test_counts_attach_to_innermost_span(self):
        with obs.record() as rec:
            with obs.span("phase1"):
                obs.count("flow_solves", 3)
            with obs.span("phase2"):
                obs.count("flow_solves", 4)
            obs.count("flow_solves")  # lands on the root
        p1, p2 = rec.root.children
        assert p1.counters == {"flow_solves": 3}
        assert p2.counters == {"flow_solves": 4}
        assert rec.root.counters == {"flow_solves": 1}
        assert rec.counter_total("flow_solves") == 8

    def test_subtree_totals(self):
        with obs.record() as rec:
            with obs.span("outer"):
                obs.count("x", 1)
                with obs.span("inner"):
                    obs.count("x", 2)
                    obs.count("y", 10)
        outer = rec.root.children[0]
        assert outer.total("x") == 3
        assert outer.total("y") == 10
        assert outer.totals() == {"x": 3, "y": 10}
        assert rec.counter_totals() == {"x": 3, "y": 10}

    def test_float_amounts_accumulate(self):
        with obs.record() as rec:
            obs.count("solver.dinic.seconds", 0.25)
            obs.count("solver.dinic.seconds", 0.5)
        assert rec.counter_total("solver.dinic.seconds") == pytest.approx(0.75)

    def test_gauges_last_value_wins(self):
        with obs.record() as rec:
            with obs.span("loop"):
                obs.gauge("rate", 10.0)
                obs.gauge("rate", 20.0)
        assert rec.root.children[0].gauges == {"rate": 20.0}

    def test_gauge_values_chronological_last_wins(self):
        # Unlike counters, gauges do not sum: gauge_values() reports the
        # last value set anywhere in the trace, across sibling spans.
        with obs.record() as rec:
            with obs.span("phase_a"):
                obs.gauge("rate", 10.0)
            with obs.span("phase_b"):
                obs.gauge("rate", 20.0)
                obs.gauge("depth", 3)
        assert rec.gauge_values() == {"rate": 20.0, "depth": 3}

    def test_gauge_values_returns_a_copy(self):
        with obs.record() as rec:
            with obs.span("phase"):
                obs.gauge("rate", 1.0)
        snapshot = rec.gauge_values()
        snapshot["rate"] = 99.0
        assert rec.gauge_values() == {"rate": 1.0}

    def test_span_gauge_values_covers_subtree(self):
        with obs.record() as rec:
            with obs.span("outer"):
                obs.gauge("outer.g", 1)
                with obs.span("inner"):
                    obs.gauge("inner.g", 2)
        outer = rec.root.children[0]
        assert outer.gauge_values() == {"outer.g": 1, "inner.g": 2}

    def test_known_counter_catalogue(self):
        assert obs.FLOW_SOLVES in obs.KNOWN_COUNTERS
        assert obs.CONFIGURATIONS_ENUMERATED in obs.KNOWN_COUNTERS
        assert obs.ASSIGNMENTS_ENUMERATED in obs.KNOWN_COUNTERS
        assert obs.ARRAY_ENTRIES_BUILT in obs.KNOWN_COUNTERS
        assert obs.MC_SAMPLES in obs.KNOWN_COUNTERS

    def test_known_span_and_ticker_catalogues(self):
        assert "sweep.run" in obs.KNOWN_SPANS
        assert "engine.source_array" in obs.KNOWN_SPANS
        assert "parallel.chunk" in obs.KNOWN_SPANS
        assert "arrays.source" in obs.KNOWN_TICKER_LABELS
        assert "naive.configurations" in obs.KNOWN_TICKER_LABELS


class TestScoping:
    def test_no_recorder_by_default(self):
        assert obs.current_recorder() is None

    def test_record_installs_and_uninstalls(self):
        with obs.record() as rec:
            assert obs.current_recorder() is rec
        assert obs.current_recorder() is None

    def test_record_uninstalls_on_error(self):
        with pytest.raises(RuntimeError):
            with obs.record():
                raise RuntimeError("boom")
        assert obs.current_recorder() is None

    def test_record_accepts_existing_recorder(self):
        rec = Recorder()
        with obs.record(rec) as installed:
            assert installed is rec

    def test_nested_recorders_restore_outer(self):
        with obs.record() as outer:
            with obs.record() as inner:
                assert obs.current_recorder() is inner
            assert obs.current_recorder() is outer

    def test_record_finishes_root(self):
        with obs.record() as rec:
            pass
        assert rec.root.end is not None

    def test_negative_progress_interval_rejected(self):
        with pytest.raises(ReproValueError):
            Recorder(progress_interval=-1.0)


class TestDisabledNoOpPath:
    """With no recorder installed the helpers must allocate nothing —
    the overhead contract the benchmark guard quantifies."""

    @pytest.fixture
    def allocation_sentinel(self, monkeypatch):
        def boom(*args, **kwargs):
            raise AssertionError("recorder machinery touched on the disabled path")

        monkeypatch.setattr(recmod.SpanRecord, "__init__", boom)
        monkeypatch.setattr(recmod.Recorder, "count", boom)
        monkeypatch.setattr(recmod.Recorder, "gauge", boom)
        monkeypatch.setattr(recmod.Recorder, "span", boom)

    def test_span_returns_shared_singleton(self, allocation_sentinel):
        s1 = obs.span("hot", attr=1)
        s2 = obs.span("other")
        assert s1 is s2 is NULL_SPAN
        with s1:
            pass

    def test_count_and_gauge_are_noops(self, allocation_sentinel):
        obs.count("flow_solves", 5)
        obs.gauge("rate", 1.0)

    def test_progress_ticker_is_shared_singleton(self, allocation_sentinel):
        t1 = obs.progress_ticker("loop", total=100)
        t2 = obs.progress_ticker("loop2")
        assert t1 is t2 is NULL_TICKER
        t1.tick()
        t1.tick(50)
        t1.finish()
        with t2:
            t2.tick()

    def test_instrumented_kernel_allocates_no_obs_objects(self, allocation_sentinel):
        """End to end: the instrumented kernels run through the no-op
        stubs when recording is off."""
        from repro.core.bottleneck import bottleneck_reliability
        from repro.core.demand import FlowDemand
        from repro.core.naive import naive_reliability
        from repro.graph.builders import fujita_fig4

        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        naive = naive_reliability(net, demand)
        bottleneck = bottleneck_reliability(net, demand)
        assert naive.value == pytest.approx(bottleneck.value)
