"""Unit tests for the run ledger (repro.obs.ledger)."""

import json

import pytest

from repro.exceptions import ReproValueError
from repro.obs import RUN_SCHEMA, RunLedger, diff_records, make_run_record
from repro.obs.ledger import canonical_json, content_hash, env_fingerprint


def _record(**overrides):
    base = dict(
        command="compute",
        input_fingerprint="abc123",
        params={"method": "bottleneck", "rate": 2},
        seconds=1.0,
        counters={"flow_solves": 69, "screened_solves": 120},
        phases=[{"name": "engine.build", "seconds": 0.8}],
        value=0.8426,
        flow_calls=69,
        solver="dinic",
    )
    base.update(overrides)
    return make_run_record(**base)


class TestContentHashing:
    def test_canonical_json_is_order_insensitive(self):
        assert canonical_json({"b": 1, "a": 2}) == canonical_json({"a": 2, "b": 1})
        assert content_hash({"b": 1, "a": 2}) == content_hash({"a": 2, "b": 1})

    def test_env_fingerprint_names_interpreter(self):
        env = env_fingerprint()
        assert set(env) >= {"python", "platform", "numpy", "repro"}


class TestMakeRunRecord:
    def test_schema_and_fields(self):
        rec = _record()
        assert rec["schema"] == RUN_SCHEMA
        assert rec["status"] == "completed"
        assert rec["env"]["solver"] == "dinic"
        assert isinstance(rec["unix"], float)

    def test_interrupted_status_allowed(self):
        assert _record(status="interrupted")["status"] == "interrupted"

    def test_unknown_status_rejected(self):
        with pytest.raises(ReproValueError):
            _record(status="exploded")


class TestRunLedger:
    def test_append_and_load_round_trip(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.append(_record())
        assert len(run_id) == 12
        loaded = ledger.load(run_id)
        assert loaded["id"] == run_id
        assert loaded["counters"]["flow_solves"] == 69

    def test_id_ignores_timestamp(self, tmp_path):
        ledger = RunLedger(tmp_path)
        a = _record()
        b = dict(a, unix=a["unix"] + 1000.0)
        assert ledger.append(a) == ledger.append(b)

    def test_index_lists_appends_oldest_first(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.append(_record(seconds=1.0))
        second = ledger.append(_record(seconds=2.0))
        entries = ledger.entries()
        assert [e["id"] for e in entries] == [first, second]

    def test_entries_tolerate_torn_final_line(self, tmp_path):
        ledger = RunLedger(tmp_path)
        run_id = ledger.append(_record())
        with open(tmp_path / "index.jsonl", "a") as handle:
            handle.write('{"id":"partial')
        assert [e["id"] for e in ledger.entries()] == [run_id]

    def test_resolve_by_prefix_negative_index_and_path(self, tmp_path):
        ledger = RunLedger(tmp_path)
        first = ledger.append(_record(seconds=1.0))
        second = ledger.append(_record(seconds=2.0))
        assert ledger.resolve(first[:6])["id"] == first
        assert ledger.resolve("-1")["id"] == second
        assert ledger.resolve("-2")["id"] == first
        assert ledger.resolve(str(tmp_path / f"{first}.json"))["id"] == first

    def test_resolve_rejects_unknown_and_out_of_range(self, tmp_path):
        ledger = RunLedger(tmp_path)
        ledger.append(_record())
        with pytest.raises(ReproValueError, match="no run matching"):
            ledger.resolve("zzzz")
        with pytest.raises(ReproValueError, match="out of range"):
            ledger.resolve("-5")

    def test_resolve_rejects_non_record_file(self, tmp_path):
        bogus = tmp_path / "bogus.json"
        bogus.write_text(json.dumps({"schema": "something/else"}))
        with pytest.raises(ReproValueError, match="not a"):
            RunLedger(tmp_path).resolve(str(bogus))


class TestDiffRecords:
    def test_identical_records_are_clean(self):
        rec = _record()
        diff = diff_records(rec, rec)
        assert diff.ok and diff.ok_strict
        assert diff.same_input
        assert diff.counter_regressions == []

    def test_injected_double_flow_solves_is_a_regression(self):
        base = _record()
        other = _record(counters={"flow_solves": 138, "screened_solves": 120})
        diff = diff_records(base, other)
        assert not diff.ok
        [reg] = diff.counter_regressions
        assert reg["name"] == "flow_solves"
        assert reg["ratio"] == pytest.approx(2.0)

    def test_growth_within_tolerance_is_not_flagged(self):
        base = _record()
        other = _record(counters={"flow_solves": 80, "screened_solves": 120})
        assert diff_records(base, other, tolerance=1.25).ok  # 80/69 < 1.25

    def test_counter_appearing_from_zero_is_a_regression(self):
        base = _record()
        other = _record(
            counters={"flow_solves": 69, "screened_solves": 120, "flow_repairs": 5}
        )
        diff = diff_records(base, other)
        assert [r["name"] for r in diff.counter_regressions] == ["flow_repairs"]

    def test_shrinking_counter_is_an_improvement_not_fatal(self):
        base = _record()
        other = _record(counters={"flow_solves": 10, "screened_solves": 120})
        diff = diff_records(base, other)
        assert diff.ok
        assert [i["name"] for i in diff.counter_improvements] == ["flow_solves"]

    def test_time_valued_counters_are_latency_not_work(self):
        # solver.<name>.seconds counters carry wallclock, which differs
        # between two "identical" runs under machine load; they must
        # never trip the hard counter gate, only the advisory one.
        base = _record(counters={"flow_solves": 69, "solver.dinic.seconds": 0.001})
        other = _record(counters={"flow_solves": 69, "solver.dinic.seconds": 0.004})
        diff = diff_records(base, other)
        assert diff.ok and diff.ok_strict  # 4x ratio but sub-50 ms delta

        slow = _record(counters={"flow_solves": 69, "solver.dinic.seconds": 0.3})
        diff = diff_records(base, slow)
        assert diff.ok  # still never a hard regression
        assert not diff.ok_strict
        assert any(
            r["name"] == "solver.dinic.seconds" for r in diff.latency_regressions
        )

    def test_latency_regression_is_advisory(self):
        base = _record(seconds=0.1)
        other = _record(seconds=1.0)
        diff = diff_records(base, other)
        assert diff.ok
        assert not diff.ok_strict
        assert any(r["name"] == "<total>" for r in diff.latency_regressions)

    def test_small_absolute_latency_jitter_is_ignored(self):
        base = _record(seconds=0.010)
        other = _record(seconds=0.040)  # 4x but only +30 ms
        assert diff_records(base, other).ok_strict

    def test_phase_latencies_accumulate_by_name(self):
        base = _record(
            phases=[
                {"name": "engine.chunk", "seconds": 0.1},
                {"name": "engine.chunk", "seconds": 0.1},
            ]
        )
        other = _record(
            phases=[{"name": "engine.chunk", "seconds": 1.0}], seconds=1.0
        )
        diff = diff_records(base, other)
        names = [r["name"] for r in diff.latency_regressions]
        assert "engine.chunk" in names

    def test_different_inputs_are_reported(self):
        diff = diff_records(_record(), _record(input_fingerprint="other"))
        assert not diff.same_input

    def test_tolerance_must_exceed_one(self):
        with pytest.raises(ReproValueError):
            diff_records(_record(), _record(), tolerance=1.0)
