"""Integration tests: ``repro profile`` and the ``--trace`` family.

The acceptance bar for the observability layer: the phase tree printed
by ``repro profile`` on ``fujita_fig4`` must report per-phase
``flow_solves`` whose sum equals ``ReliabilityResult.flow_calls``
exactly — for both exact kernels.
"""

import json
import re

import pytest

from repro import obs
from repro.cli import main
from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.graph.builders import fujita_fig4
from repro.graph.io import save

_PHASE_LINE = re.compile(r"^(?:\|- |`- )")
_FLOW_SOLVES = re.compile(r"\bflow_solves=(\d+)\b")
_FLOW_CALLS = re.compile(r"^max-flow calls: (\d+)$", re.MULTILINE)


@pytest.fixture
def net_file(tmp_path):
    path = tmp_path / "net.json"
    save(fujita_fig4(), path)
    return str(path)


def _phase_flow_solves(profile_output: str) -> list[int]:
    """flow_solves annotations on the *top-level* phase lines only."""
    totals = []
    for line in profile_output.splitlines():
        if _PHASE_LINE.match(line):
            match = _FLOW_SOLVES.search(line)
            if match:
                totals.append(int(match.group(1)))
    return totals


class TestProfileCommand:
    @pytest.mark.parametrize("method", ["naive", "bottleneck"])
    def test_phase_flow_solves_sum_to_flow_calls(self, net_file, capsys, method):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", method]
        ) == 0
        out = capsys.readouterr().out
        flow_calls = int(_FLOW_CALLS.search(out).group(1))
        per_phase = _phase_flow_solves(out)
        assert per_phase, "no flow_solves-annotated phases in the tree"
        assert sum(per_phase) == flow_calls

    def test_profile_prints_reliability_and_counters(self, net_file, capsys):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck"]
        ) == 0
        out = capsys.readouterr().out
        assert "reliability = 0.8426357910" in out
        assert "counters:" in out
        assert "configurations_enumerated" in out
        assert "assignments_enumerated" in out

    def test_profile_montecarlo_counts_samples(self, net_file, capsys):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "montecarlo", "--samples", "2048"]
        ) == 0
        out = capsys.readouterr().out
        assert "mc_samples = 2048" in out

    def test_profile_trace_json(self, net_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "bottleneck", "--trace-json", str(trace_path)]
        ) == 0
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.obs/trace/v1"
        out = capsys.readouterr().out
        flow_calls = int(_FLOW_CALLS.search(out).group(1))
        assert payload["counters"]["flow_solves"] == flow_calls

    def test_profile_progress_heartbeats(self, net_file, capsys):
        assert main(
            ["profile", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--progress"]
        ) == 0
        err = capsys.readouterr().err
        assert "naive.configurations:" in err


class TestComputeTraceFlags:
    def test_trace_prints_tree_to_stderr(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2", "--trace"]
        ) == 0
        captured = capsys.readouterr()
        assert "reliability = 0.8426357910" in captured.out
        # The run-ledger announcement may precede the tree.
        assert any(
            line.startswith("phases (") for line in captured.err.splitlines()
        )
        assert "trace  " in captured.err

    def test_trace_json_round_trips_through_json_loads(self, net_file, tmp_path, capsys):
        trace_path = tmp_path / "trace.json"
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--method", "naive", "--json", "--trace-json", str(trace_path)]
        ) == 0
        result = json.loads(capsys.readouterr().out)
        payload = json.loads(trace_path.read_text(encoding="utf-8"))
        assert payload["schema"] == "repro.obs/trace/v1"
        assert payload["counters"]["flow_solves"] == result["flow_calls"]
        assert payload["counters"]["configurations_enumerated"] == 2 ** 9
        assert payload["seconds"] > 0
        assert [s["name"] for s in payload["spans"]]

    def test_trace_json_to_stdout(self, net_file, capsys):
        assert main(
            ["compute", net_file, "-s", "s", "-t", "t", "-d", "2",
             "--trace-json", "-"]
        ) == 0
        out = capsys.readouterr().out
        payload, _ = json.JSONDecoder().raw_decode(out, out.index("{"))
        assert payload["schema"] == "repro.obs/trace/v1"

    def test_no_trace_flags_leave_no_recorder_installed(self, net_file, capsys):
        assert main(["compute", net_file, "-s", "s", "-t", "t", "-d", "2"]) == 0
        capsys.readouterr()
        assert obs.current_recorder() is None


class TestResultDetails:
    @pytest.mark.parametrize("method", ["naive", "bottleneck"])
    def test_details_obs_phase_summary(self, method):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        with obs.record():
            result = compute_reliability(net, demand=demand, method=method)
        summary = result.details["obs"]
        per_phase = sum(
            p["counters"].get("flow_solves", 0) for p in summary["phases"]
        )
        assert per_phase == summary["counters"]["flow_solves"] == result.flow_calls

    def test_details_has_no_obs_key_without_recorder(self):
        net = fujita_fig4()
        demand = FlowDemand("s", "t", 2)
        result = compute_reliability(net, demand=demand, method="bottleneck")
        assert "obs" not in result.details
