"""Unit tests for the live metrics endpoint (repro.obs.serve)."""

import json
import urllib.error
import urllib.request

import pytest

from repro import obs
from repro.obs import MetricsServer, render_prometheus, spool_chunk_events
from repro.obs.recorder import FLOW_SOLVES, Recorder
from repro.obs.serve import _format_value, _metric_name


def _get(url):
    with urllib.request.urlopen(url, timeout=5.0) as response:
        return response.status, response.headers, response.read().decode("utf-8")


class TestNameSanitisation:
    @pytest.mark.parametrize(
        "raw, expected",
        [
            ("flow_solves", "flow_solves"),
            ("solver.dinic.solves", "solver_dinic_solves"),
            ("arrays.source-rate", "arrays_source_rate"),
            ("0weird", "_0weird"),
        ],
    )
    def test_metric_name(self, raw, expected):
        assert _metric_name(raw) == expected

    def test_format_value(self):
        assert _format_value(3) == "3"
        assert _format_value(True) == "1"
        assert _format_value(2.5) == "2.5"
        assert _format_value("not a number") is None


class TestRenderPrometheus:
    def _recorder(self):
        rec = Recorder()
        with obs.record(rec):
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 9)
                obs.gauge("sweep.points_done", 4)
        return rec

    def test_counters_gauges_and_phases(self):
        text = render_prometheus(self._recorder())
        assert "# TYPE repro_flow_solves_total counter" in text
        assert "repro_flow_solves_total 9" in text
        assert "repro_sweep_points_done 4" in text
        assert 'repro_phase_seconds{phase="sweep.run"}' in text

    def test_worker_metrics_from_tailer(self, tmp_path):
        spool_chunk_events(
            tmp_path, "engine.chunk", seconds=0.0, counters={FLOW_SOLVES: 6}
        )
        with MetricsServer(self._recorder(), spool_dir=tmp_path) as server:
            text = render_prometheus(server.recorder, server.tailer)
        assert "repro_worker_flow_solves_total 6" in text
        assert "repro_worker_files 1" in text

    def test_non_numeric_gauges_are_skipped(self):
        rec = Recorder()
        with obs.record(rec):
            with obs.span("sweep.run"):
                obs.gauge("sweep.label", "fig4")
        text = render_prometheus(rec)
        assert "sweep_label" not in text


class TestMetricsServer:
    def test_serves_metrics_and_trace(self):
        rec = Recorder()
        with obs.record(rec):
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 3)
        with MetricsServer(rec) as server:
            assert server.port > 0
            status, headers, body = _get(server.url + "/metrics")
            assert status == 200
            assert headers["Content-Type"].startswith("text/plain")
            assert "repro_flow_solves_total 3" in body

            status, headers, body = _get(server.url + "/trace.json")
            assert status == 200
            payload = json.loads(body)
            assert payload["counters"][FLOW_SOLVES] == 3
            assert [s["name"] for s in payload["spans"]] == ["sweep.run"]

    def test_root_path_is_metrics(self):
        with MetricsServer(Recorder()) as server:
            _, _, body = _get(server.url + "/")
            assert body.endswith("\n")

    def test_unknown_path_is_404(self):
        with MetricsServer(Recorder()) as server:
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _get(server.url + "/nope")
            assert excinfo.value.code == 404

    def test_trace_includes_worker_snapshot(self, tmp_path):
        spool_chunk_events(
            tmp_path, "engine.chunk", seconds=0.0, counters={FLOW_SOLVES: 2}
        )
        with MetricsServer(Recorder(), spool_dir=tmp_path) as server:
            _, _, body = _get(server.url + "/trace.json")
        workers = json.loads(body)["workers"]
        assert workers["counters"] == {FLOW_SOLVES: 2}
        assert workers["files"] == 1

    def test_stop_is_idempotent_and_frees_port(self):
        server = MetricsServer(Recorder())
        url = server.url
        server.stop()
        server.stop()
        with pytest.raises((urllib.error.URLError, ConnectionError, OSError)):
            _get(url + "/metrics")

    def test_trace_reports_its_own_bound_endpoint(self):
        """The ephemeral-port contract: --metrics-port 0 must be
        discoverable from the endpoint itself, not only from stderr."""
        with MetricsServer(Recorder(), port=0) as server:
            _, _, body = _get(server.url + "/trace.json")
        endpoint = json.loads(body)["endpoint"]
        assert endpoint["port"] == server.port
        assert endpoint["host"] == "127.0.0.1"
        assert endpoint["url"] == server.url

    def test_recorder_is_swappable_after_bind(self):
        """The CLI binds the socket first (to learn the port), then swaps
        the real session recorder in; scrapes must follow the attribute."""
        server = MetricsServer(Recorder())
        try:
            real = Recorder()
            with obs.record(real):
                with obs.span("sweep.run"):
                    obs.count(FLOW_SOLVES, 7)
            server.recorder = real
            _, _, body = _get(server.url + "/metrics")
            assert "repro_flow_solves_total 7" in body
        finally:
            server.stop()

    def test_stop_waits_for_inflight_scrapes(self):
        """Graceful drain: stop() blocks until in-flight requests exit
        (daemon handler threads would otherwise be abandoned mid-reply)."""
        import threading
        import time

        server = MetricsServer(Recorder())
        server._enter_request()  # simulate a scrape that is mid-handler
        stopper = threading.Thread(target=server.stop, daemon=True)
        stopper.start()
        time.sleep(0.1)
        assert stopper.is_alive(), "stop() must wait for the in-flight scrape"
        server._exit_request()
        stopper.join(timeout=5)
        assert not stopper.is_alive()

    def test_stop_drain_timeout_bounds_the_wait(self):
        import time

        server = MetricsServer(Recorder())
        server._enter_request()  # a scrape that never finishes
        start = time.monotonic()
        server.stop(drain_timeout=0.2)
        assert time.monotonic() - start < 5.0

    def test_serves_while_recorder_still_recording(self):
        rec = Recorder()
        with obs.record(rec):
            with obs.span("sweep.run"):
                obs.count(FLOW_SOLVES, 1)
                with MetricsServer(rec) as server:
                    _, _, body = _get(server.url + "/metrics")
                    # Mid-run scrape: the open phase reports elapsed time.
                    assert "repro_flow_solves_total 1" in body
                    assert 'repro_phase_seconds{phase="sweep.run"}' in body
