"""E8 — speedup vs α: the exponent is the *larger* side.

Regenerates: at fixed |E|, sweeping the split ratio α from balanced to
lopsided.  The bottleneck algorithm costs |D| (2^{|E_s|} + 2^{|E_t|}),
so its cost should grow roughly 2^{α|E|} while naive stays flat."""

from repro.bench.harness import time_call
from repro.bench.workloads import alpha_workload
from repro.core import bottleneck_reliability, naive_reliability

TOTAL_SIDE_LINKS = 12
ALPHAS = (0.5, 0.67, 0.83)


def _alpha_rows():
    rows = []
    call_series = []
    for alpha in ALPHAS:
        workload = alpha_workload(TOTAL_SIDE_LINKS, alpha, demand=2, k=2, seed=2)
        net, demand = workload.network, workload.demand
        bneck = time_call(bottleneck_reliability, net, demand, cut=[0, 1], repeats=1)
        naive = time_call(naive_reliability, net, demand, repeats=1)
        assert abs(naive.value.value - bneck.value.value) < 1e-9
        achieved = bneck.value.details["alpha"]
        call_series.append(bneck.value.flow_calls)
        rows.append(
            [
                f"{alpha:.2f}",
                f"{achieved:.2f}",
                bneck.value.flow_calls,
                f"{bneck.seconds * 1e3:.2f}",
                naive.value.flow_calls,
                f"{naive.seconds * 1e3:.2f}",
            ]
        )
    return rows, call_series


def test_e8_alpha_series(benchmark, show):
    rows, call_series = benchmark.pedantic(_alpha_rows, rounds=1, iterations=1)
    show(
        ["target alpha", "achieved", "bneck calls", "bneck ms", "naive calls", "naive ms"],
        rows,
        title=f"E8: alpha sweep at {TOTAL_SIDE_LINKS} side links (k=2, d=2)",
    )
    # Shape: bottleneck cost strictly grows with alpha.
    assert call_series[0] < call_series[1] < call_series[2]


def test_e8_worst_alpha(benchmark):
    workload = alpha_workload(TOTAL_SIDE_LINKS, ALPHAS[-1], demand=2, k=2, seed=2)
    result = benchmark(
        bottleneck_reliability, workload.network, workload.demand, cut=[0, 1]
    )
    assert 0 <= result.value <= 1
