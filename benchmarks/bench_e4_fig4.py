"""E4 — Fig. 4 / Fig. 5 / Example 3: the two-bottleneck graph end to end.

Regenerates: the realized assignment sets of the three Fig. 5 failure
configurations and the full bottleneck-vs-naive agreement on Fig. 4."""

from repro.bench.harness import time_call
from repro.core import (
    FlowDemand,
    bottleneck_reliability,
    build_side_array,
    enumerate_assignments,
    naive_reliability,
)
from repro.graph import fujita_fig4, split_on_cut


def test_e4_fig5_realized_sets(benchmark, show):
    net = fujita_fig4()
    split = split_on_cut(net, "s", "t", [0, 1])
    assignments = enumerate_assignments([2, 2], 2)

    def build():
        return build_side_array(
            split.source_side,
            role="source",
            terminal="s",
            ports=split.source_ports,
            assignments=assignments,
            demand=2,
        )

    array = benchmark(build)
    cases = [
        ("Fig 5(a)  e4 down", 0b1101, {(1, 1), (0, 2)}),
        ("Fig 5(b)  e4,e6 down", 0b0101, {(1, 1)}),
        ("Fig 5(c)  all alive", 0b1111, {(1, 1), (2, 0), (0, 2)}),
    ]
    rows = []
    for name, mask, expected in cases:
        realized = {assignments[i] for i in array.realized_indices(mask)}
        rows.append([name, sorted(realized), sorted(expected), realized == expected])
        assert realized == expected
    show(["configuration", "realized", "paper", "match"], rows, title="E4: Fig. 5")


def test_e4_bottleneck_vs_naive(benchmark, show):
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    bneck = benchmark(bottleneck_reliability, net, demand, cut=[0, 1])
    naive = time_call(naive_reliability, net, demand).value
    show(
        ["method", "R", "flow calls", "configs"],
        [
            ["bottleneck", bneck.value, bneck.flow_calls, bneck.configurations],
            ["naive", naive.value, naive.flow_calls, naive.configurations],
        ],
        title="E4: Fig. 4 graph, d = 2",
    )
    assert abs(bneck.value - naive.value) < 1e-12
    assert bneck.configurations < naive.configurations
