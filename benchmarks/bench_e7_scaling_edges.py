"""E7 — the headline complexity claim: O(2^{|E|}) vs O(2^{α|E|}).

Regenerates: the runtime/flow-call scaling series for growing |E| at a
balanced split (α ≈ 1/2, k = 2, d = 2).  The absolute times are
machine-dependent; the *shape* — naive cost doubling per link, the
bottleneck cost doubling per two links, hence the speedup doubling per
side-link pair — is the paper's theorem."""

from repro.bench.harness import time_call
from repro.bench.workloads import scaling_workload
from repro.core import bottleneck_reliability, naive_reliability

SIZES = (8, 10, 12, 14)


def test_e7_scaling_series(benchmark, show):
    def sweep():
        rows = []
        series = []
        for size in SIZES:
            workload = scaling_workload(size, demand=2, k=2, seed=1)
            net, demand = workload.network, workload.demand
            naive = time_call(naive_reliability, net, demand, repeats=1)
            bneck = time_call(bottleneck_reliability, net, demand, cut=[0, 1], repeats=1)
            assert abs(naive.value.value - bneck.value.value) < 1e-9
            speedup_calls = naive.value.flow_calls / max(1, bneck.value.flow_calls)
            series.append(speedup_calls)
            rows.append(
                [
                    net.num_links,
                    f"{naive.seconds * 1e3:.2f}",
                    naive.value.flow_calls,
                    f"{bneck.seconds * 1e3:.2f}",
                    bneck.value.flow_calls,
                    f"{speedup_calls:.1f}x",
                ]
            )
        return rows, series

    rows, series = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["|E|", "naive ms", "naive calls", "bneck ms", "bneck calls", "call ratio"],
        rows,
        title="E7: naive vs bottleneck scaling (alpha ~ 1/2, k=2, d=2)",
    )
    # Shape check: the call-count advantage grows monotonically and by
    # at least 2x per two added side links towards the end of the series.
    assert all(b > a for a, b in zip(series, series[1:]))
    assert series[-1] / series[-2] > 1.8


def test_e7_bottleneck_largest(benchmark):
    workload = scaling_workload(SIZES[-1], demand=2, k=2, seed=1)
    result = benchmark(
        bottleneck_reliability, workload.network, workload.demand, cut=[0, 1]
    )
    assert 0 < result.value < 1


def test_e7_naive_largest(benchmark):
    workload = scaling_workload(SIZES[-1], demand=2, k=2, seed=1)
    result = benchmark.pedantic(
        naive_reliability, args=(workload.network, workload.demand), rounds=2, iterations=1
    )
    assert 0 < result.value < 1
