"""A1 — ablation: ACCUMULATION strategy (zeta-IE vs distinct-mask pairs).

Both are exact; their cost profiles differ.  zeta scales with 2^|D_E'|
(the inclusion–exclusion lattice), pairs with the number of *distinct*
realized masks per side.  The crossover this table shows motivates the
'auto' policy in repro.core.accumulate."""

import numpy as np
import pytest

from repro.bench.harness import time_call
from repro.core import RealizationArray, accumulate


def synthetic_arrays(num_assignments: int, side_bits: int, seed: int, distinct: int):
    """Arrays with a controlled number of distinct realized masks."""
    rng = np.random.default_rng(seed)
    size = 1 << side_bits
    pool = rng.integers(0, 1 << num_assignments, size=distinct, dtype=np.uint64)
    masks = pool[rng.integers(0, distinct, size=size)]
    probs = rng.random(size)
    probs /= probs.sum()
    return RealizationArray(masks.astype(np.uint64), probs, num_assignments, 0)


CASES = [
    ("small |D|, many masks", 4, 10, 12),
    ("large |D|, few masks", 14, 10, 6),
    ("large |D|, many masks", 14, 10, 200),
]


def _strategy_rows():
    rows = []
    for name, q, bits, distinct in CASES:
        src = synthetic_arrays(q, bits, 1, distinct)
        snk = synthetic_arrays(q, bits, 2, distinct)
        idx = list(range(q))
        zeta = time_call(accumulate, src, snk, idx, strategy="zeta")
        pairs = time_call(accumulate, src, snk, idx, strategy="pairs")
        assert zeta.value == pytest.approx(pairs.value, abs=1e-10)
        rows.append(
            [name, q, distinct, f"{zeta.seconds * 1e3:.3f}", f"{pairs.seconds * 1e3:.3f}"]
        )
    return rows


def test_a1_strategy_table(benchmark, show):
    rows = benchmark.pedantic(_strategy_rows, rounds=1, iterations=1)
    show(
        ["case", "|D|", "distinct masks", "zeta ms", "pairs ms"],
        rows,
        title="A1: accumulation strategies (both exact)",
    )


def test_a1_zeta(benchmark):
    src = synthetic_arrays(4, 12, 1, 12)
    snk = synthetic_arrays(4, 12, 2, 12)
    value = benchmark(accumulate, src, snk, [0, 1, 2, 3], strategy="zeta")
    assert 0 <= value <= 1


def test_a1_pairs(benchmark):
    src = synthetic_arrays(4, 12, 1, 12)
    snk = synthetic_arrays(4, 12, 2, 12)
    value = benchmark(accumulate, src, snk, [0, 1, 2, 3], strategy="pairs")
    assert 0 <= value <= 1
