"""X6 — extension: exact peer-level reliability via node splitting.

The independent-link model the paper computes vs the correlated
peer-level truth, both now exact: the node-splitting transformation
turns peer failures into link failures without approximation, so the
correlation gap E10 could only sample becomes a closed-form column."""

import pytest

from repro.bench.harness import time_call
from repro.core import FlowDemand, compute_reliability
from repro.p2p import (
    ChildChurnModel,
    MEDIA_SERVER,
    build_overlay,
    exact_peer_level_reliability,
    make_peers,
    peer_level_reliability,
    to_flow_network,
)

FAMILIES = ("single-tree", "multi-tree", "mesh", "treebone")


def test_x6_correlation_gap(benchmark, show):
    peers = make_peers(8, mean_session=300, mean_offline=100, upload_capacity=8)

    def sweep():
        rows = []
        for family in FAMILIES:
            overlay = build_overlay(family, peers, num_stripes=2, seed=0)
            independent = compute_reliability(
                to_flow_network(overlay, ChildChurnModel()),
                demand=FlowDemand(MEDIA_SERVER, "p7", 2),
            ).value
            correlated = exact_peer_level_reliability(overlay, "p7", 2).value
            sampled = peer_level_reliability(overlay, "p7", 2, num_trials=4000, seed=1)
            assert sampled == pytest.approx(correlated, abs=0.025)
            rows.append(
                [family, independent, correlated, correlated - independent, sampled]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["overlay", "independent links", "peer-level exact", "gap", "peer-level sampled"],
        rows,
        title="X6: independent-link model vs exact correlated peer churn (d = 2)",
    )
    # Correlation helps when stripes share peers (trees stack stripes on
    # the same nodes), so the gap is positive for the tree families.
    tree_rows = [r for r in rows if r[0] in ("single-tree", "multi-tree")]
    assert all(r[3] > 0 for r in tree_rows)


def test_x6_exact_computation(benchmark):
    peers = make_peers(8, mean_session=300, mean_offline=100, upload_capacity=8)
    overlay = build_overlay("multi-tree", peers, num_stripes=2, seed=0)
    result = benchmark.pedantic(
        exact_peer_level_reliability, args=(overlay, "p7", 2), rounds=2, iterations=1
    )
    assert 0 < result.value < 1
