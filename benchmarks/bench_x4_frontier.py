"""X4 — extension: frontier-sweep exact reliability.

The third exact paradigm: cost parameterized by frontier width, not
link count.  The table sweeps ladder length — enumeration cost would be
2^|E| while the frontier cost stays linear in |E| at constant width."""

import pytest

from repro.bench.harness import time_call
from repro.core import FlowDemand, frontier_reliability, naive_reliability
from repro.core.frontier import bfs_link_order, frontier_width
from repro.graph.network import FlowNetwork


def undirected_ladder(sections: int, p: float = 0.1) -> FlowNetwork:
    net = FlowNetwork(name=f"uladder-{sections}")
    nodes = ["s"] + [f"m{i}" for i in range(sections - 1)] + ["t"]
    for a, b in zip(nodes, nodes[1:]):
        net.add_link(a, b, 1, p, directed=False)
        net.add_link(a, b, 1, p, directed=False)
    return net


def undirected_grid(rows: int, cols: int, p: float = 0.1) -> FlowNetwork:
    """Undirected grid with corner terminals — frontier width = rows + 1."""
    net = FlowNetwork(name=f"ugrid-{rows}x{cols}")
    name = lambda r, c: "s" if (r, c) == (0, 0) else ("t" if (r, c) == (rows - 1, cols - 1) else f"n{r}_{c}")  # noqa: E731
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link(name(r, c), name(r, c + 1), 1, p, directed=False)
            if r + 1 < rows:
                net.add_link(name(r, c), name(r + 1, c), 1, p, directed=False)
    return net


def test_x4_ladder_scaling(benchmark, show):
    def sweep():
        rows = []
        for sections in (6, 25, 100, 400):
            net = undirected_ladder(sections)
            demand = FlowDemand("s", "t", 1)
            timed = time_call(frontier_reliability, net, demand, repeats=1)
            closed_form = (1 - 0.01) ** sections
            assert timed.value.value == pytest.approx(closed_form, abs=1e-9)
            rows.append(
                [
                    net.num_links,
                    f"{timed.seconds * 1e3:.2f}",
                    timed.value.details["peak_states"],
                    timed.value.value,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["|E|", "ms", "peak states", "R"],
        rows,
        title="X4: frontier sweep on ladders (naive would need 2^|E| solves)",
    )
    # Shape: cost grows ~linearly in |E| — under 40x for a 67x size jump.
    assert float(rows[-1][1]) < float(rows[0][1]) * 400


def test_x4_matches_naive_on_grid(benchmark, show):
    net = undirected_grid(3, 4)
    demand = FlowDemand("s", "t", 1)
    result = benchmark(frontier_reliability, net, demand)
    expected = naive_reliability(net, demand).value
    order = bfs_link_order(net, "s")
    show(
        ["graph", "|E|", "frontier width", "peak states", "R (frontier)", "R (naive)"],
        [
            [
                net.name,
                net.num_links,
                frontier_width(net, order),
                result.details["peak_states"],
                result.value,
                expected,
            ]
        ],
        title="X4: 3x4 grid cross-check",
    )
    assert result.value == pytest.approx(expected, abs=1e-10)


def test_x4_wide_grid_beyond_enumeration(benchmark, show):
    net = undirected_grid(4, 12)  # 80 links
    demand = FlowDemand("s", "t", 1)
    result = benchmark.pedantic(
        frontier_reliability, args=(net, demand), rounds=1, iterations=1
    )
    show(
        ["graph", "|E|", "peak states", "R"],
        [[net.name, net.num_links, result.details["peak_states"], result.value]],
        title="X4: 4x12 grid (2^80 configurations for naive)",
    )
    assert 0 < result.value < 1


def test_x4_directed_diamond_chain(benchmark, show):
    """The directed variant on a deep relay chain of diamonds."""
    from repro.core import directed_frontier_reliability

    net = FlowNetwork(name="directed-diamonds")
    prev = "s"
    sections = 60
    for i in range(sections):
        nxt = f"c{i}" if i < sections - 1 else "t"
        net.add_link(prev, f"a{i}", 1, 0.1)
        net.add_link(prev, f"b{i}", 1, 0.1)
        net.add_link(f"a{i}", nxt, 1, 0.1)
        net.add_link(f"b{i}", nxt, 1, 0.1)
        prev = nxt
    demand = FlowDemand("s", "t", 1)
    result = benchmark(directed_frontier_reliability, net, demand)
    closed = (1 - (1 - 0.81) ** 2) ** sections
    show(
        ["graph", "|E|", "peak states", "R", "closed form"],
        [[net.name, net.num_links, result.details["peak_states"], result.value, closed]],
        title="X4: directed frontier on a 240-link relay chain",
    )
    assert result.value == pytest.approx(closed, abs=1e-10)
