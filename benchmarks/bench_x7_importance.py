"""X7 — extension: link importance measures.

Which link should the operator upgrade?  The table ranks the quickstart
network's links by Birnbaum importance; the bottleneck links dominate —
the quantitative version of the paper's premise that bottleneck links
are where reliability is decided."""

import pytest

from repro.core import FlowDemand, link_importances, most_important_link
from repro.graph import FlowNetwork


def quickstart_network() -> FlowNetwork:
    net = FlowNetwork(name="quickstart")
    net.add_link("a", "c", 2, 0.05)  # 0: bottleneck
    net.add_link("b", "d", 2, 0.05)  # 1: bottleneck
    net.add_link("s", "a", 2, 0.10)
    net.add_link("s", "b", 2, 0.10)
    net.add_link("s", "a", 1, 0.20)
    net.add_link("a", "b", 1, 0.15)
    net.add_link("c", "t", 2, 0.10)
    net.add_link("d", "t", 2, 0.10)
    net.add_link("c", "d", 1, 0.15)
    net.add_link("d", "t", 1, 0.20)
    return net


def test_x7_importance_ranking(benchmark, show):
    net = quickstart_network()
    demand = FlowDemand("s", "t", 2)
    table = benchmark.pedantic(
        link_importances, args=(net, demand), rounds=1, iterations=1
    )
    ranked = sorted(table, key=lambda imp: -imp.birnbaum)
    rows = [
        [
            f"e{imp.link_index}",
            imp.birnbaum,
            imp.improvement_potential,
            imp.risk_achievement_worth,
            imp.fussell_vesely,
        ]
        for imp in ranked
    ]
    show(
        ["link", "Birnbaum", "improvement", "RAW", "Fussell-Vesely"],
        rows,
        title="X7: link importance on the quickstart network (d = 2)",
    )
    # the two bottleneck links must top the Birnbaum ranking
    assert {ranked[0].link_index, ranked[1].link_index} == {0, 1}


def test_x7_most_important(benchmark):
    net = quickstart_network()
    demand = FlowDemand("s", "t", 2)
    best = benchmark.pedantic(
        most_important_link, args=(net, demand), rounds=1, iterations=1
    )
    assert best.link_index in (0, 1)
    assert best.birnbaum > 0
