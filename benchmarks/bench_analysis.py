"""A1 — static-analysis gate latency: syntax tier vs dataflow tier.

The dataflow tier builds a CFG per function and runs up to five
fixpoint solves over it, so it is structurally slower than the
single-pass syntax tier; this bench pins the cost of both over the
shipped ``src/repro`` tree and asserts the CI budget: the *full*
dataflow tier (CFG construction + every RR201–RR205 solve, all ~100
files) must finish well under 30 seconds, or the ``analysis-dataflow``
CI job starts dominating the pipeline.

The committed snapshot lives in ``benchmarks/BENCH_analysis.json``.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis import analyze_paths
from repro.bench.harness import time_call

REPO_ROOT = Path(__file__).resolve().parents[1]
SRC_REPRO = REPO_ROOT / "src" / "repro"

#: The CI budget for one full dataflow-tier pass (seconds).
DATAFLOW_BUDGET_S = 30.0


def _run_tier(tier: str):
    report = analyze_paths([str(SRC_REPRO)], tier=tier)
    assert report.clean, [f.render() for f in report.findings]
    return report


def test_a1_analysis_tier_latency(benchmark, show):
    def run():
        syntax = time_call(_run_tier, "syntax", repeats=3)
        dataflow = time_call(_run_tier, "dataflow", repeats=3)
        both = time_call(_run_tier, "all", repeats=3)
        return {
            "syntax": syntax,
            "dataflow": dataflow,
            "all": both,
            "files": syntax.value.files_checked,
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    files = data["files"]
    assert files > 50  # the whole package, not a stray subset

    # The acceptance bar: a full flow-sensitive pass fits the CI budget
    # with an order of magnitude to spare.
    assert data["dataflow"].seconds < DATAFLOW_BUDGET_S

    rows = [
        [
            tier,
            f"{data[tier].seconds * 1e3:.1f}",
            f"{data[tier].seconds * 1e3 / files:.2f}",
        ]
        for tier in ("syntax", "dataflow", "all")
    ]
    show(
        ["tier", "ms (best of 3)", "ms/file"],
        rows,
        title=f"A1: repro.analysis over src/repro ({files} files)",
    )
