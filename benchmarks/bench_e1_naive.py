"""E1 — Fig. 1: the naive reliability calculation.

Regenerates: the per-configuration enumeration the paper's Fig. 1
illustrates, on the diamond and Fig. 4 graphs; reports value, number of
configurations and max-flow calls.
"""

from repro.core import FlowDemand, naive_reliability
from repro.graph import diamond, fujita_fig4


def test_e1_naive_diamond(benchmark, show):
    net = diamond(capacity=1, failure_probability=0.2)
    demand = FlowDemand("s", "t", 1)
    result = benchmark(naive_reliability, net, demand)
    show(
        ["graph", "|E|", "configs", "flow calls", "R"],
        [["diamond", net.num_links, result.configurations, result.flow_calls, result.value]],
        title="E1: naive enumeration (Fig. 1)",
    )
    assert abs(result.value - (1 - (1 - 0.8**2) ** 2)) < 1e-12


def test_e1_naive_fig4(benchmark, show):
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    result = benchmark(naive_reliability, net, demand)
    show(
        ["graph", "|E|", "configs", "flow calls", "R"],
        [["fujita-fig4", net.num_links, result.configurations, result.flow_calls, result.value]],
        title="E1: naive enumeration on the Fig. 4 graph",
    )
    assert result.configurations == 2**9
    assert abs(result.value - 0.842635791) < 1e-9
