"""X1 — extension: series-parallel reductions for d = 1.

Polynomial-time exact reliability on SP networks, and a preprocessor
shrinking everything else.  The table shows the reduction factor and
the agreement with exponential methods."""

import pytest

from repro.bench.harness import time_call
from repro.core import (
    FlowDemand,
    naive_reliability,
    reduce_for_unit_demand,
    series_parallel_reliability,
)
from repro.graph import diamond, parallel_links, series_chain
from repro.graph.network import FlowNetwork


def ladder(sections: int, p: float = 0.1) -> FlowNetwork:
    """A long series of parallel pairs — SP, so closed-form solvable."""
    net = FlowNetwork(name=f"ladder-{sections}")
    nodes = ["s"] + [f"m{i}" for i in range(sections - 1)] + ["t"]
    for a, b in zip(nodes, nodes[1:]):
        net.add_link(a, b, 1, p)
        net.add_link(a, b, 1, p)
    return net


def test_x1_sp_vs_naive(benchmark, show):
    def sweep():
        rows = []
        for name, net in (
            ("chain-6", series_chain(6, 1, 0.1)),
            ("parallel-6", parallel_links(6, 1, 0.1)),
            ("diamond", diamond()),
            ("ladder-8", ladder(8)),
        ):
            demand = FlowDemand("s", "t", 1)
            sp = time_call(series_parallel_reliability, net, demand)
            naive = time_call(naive_reliability, net, demand, repeats=1)
            assert sp.value.value == pytest.approx(naive.value.value, abs=1e-12)
            rows.append(
                [
                    name,
                    net.num_links,
                    sp.value.value,
                    f"{sp.seconds * 1e3:.3f}",
                    f"{naive.seconds * 1e3:.3f}",
                    naive.value.flow_calls,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["network", "|E|", "R", "SP ms", "naive ms", "naive calls"],
        rows,
        title="X1: polynomial SP reduction vs exponential naive (d=1)",
    )


def test_x1_ladder_beyond_naive_budget(benchmark, show):
    """A 40-link ladder: hopeless for enumeration (2^40), trivial for SP."""
    net = ladder(20)
    demand = FlowDemand("s", "t", 1)
    result = benchmark(series_parallel_reliability, net, demand)
    pair = 1 - 0.1**2
    show(
        ["|E|", "R (SP)", "closed form (1-p^2)^20"],
        [[net.num_links, result.value, pair**20]],
        title="X1: SP solves sizes enumeration cannot touch",
    )
    assert result.value == pytest.approx(pair**20, abs=1e-12)


def test_x1_reduction_as_preprocessor(benchmark, show):
    """Non-SP network: reduce first, then enumerate the smaller core."""
    net = diamond(cross_link=True)  # Wheatstone bridge, not SP
    net.add_link("t", "u1", 1, 0.1)
    net.add_link("u1", "u2", 1, 0.1)
    net.add_link("u2", "tt", 1, 0.1)
    demand = FlowDemand("s", "tt", 1)
    report = benchmark(reduce_for_unit_demand, net, demand)
    full = naive_reliability(net, demand).value
    reduced_value = naive_reliability(report.network, demand).value
    show(
        ["original |E|", "reduced |E|", "R (original)", "R (reduced)"],
        [[net.num_links, report.network.num_links, full, reduced_value]],
        title="X1: reduction as a preprocessor on a non-SP network",
    )
    assert reduced_value == pytest.approx(full, abs=1e-12)
    assert report.network.num_links < net.num_links
