"""OBS — the instrumentation layer's disabled-path overhead guard.

The `repro.obs` contract: with no recorder installed, every span /
counter / ticker call the kernels make degrades to a ContextVar read
and an early return, so tier-1 timings are unaffected.  This bench
quantifies that claim and fails if it drifts:

1. run the naive kernel on Fig. 4 under a recorder and *count* the
   instrumentation call volume it generates (spans opened, counter
   events, progress ticks);
2. time that same volume of disabled-path calls (no recorder);
3. assert the disabled-path cost is **< 5%** of the kernel's own
   best-of-N wall time.
"""

from repro import obs
from repro.bench.harness import time_call
from repro.core import FlowDemand, naive_reliability
from repro.graph import fujita_fig4

#: Acceptance threshold: disabled-path instrumentation cost as a
#: fraction of the kernel's own runtime.
MAX_OVERHEAD_FRACTION = 0.05


def _call_volume(net, demand):
    """Spans / counter events / ticks of one instrumented naive run."""
    with obs.record() as rec:
        result = naive_reliability(net, demand)
    spans = sum(1 for _ in rec.root.iter_spans()) - 1  # minus the root
    # Counter events: one per oracle solve (flow_solves), two per
    # residual solve (solver.<name>.solves + .seconds), one per
    # probability table.  Read the event multiplicities off the totals.
    totals = rec.counter_totals()
    solver_events = 2 * sum(
        int(v) for k, v in totals.items()
        if k.startswith("solver.") and k.endswith(".solves")
    )
    counter_events = int(totals.get("flow_solves", 0)) + solver_events + 1
    ticks = int(
        sum(
            s.gauges.get("naive.configurations.items", 0)
            for s in rec.root.iter_spans()
        )
    )
    return result, spans, counter_events, ticks


def _disabled_path(spans, counts, ticks):
    """The same call mix, with no recorder installed (all no-ops)."""
    ticker = obs.progress_ticker("obs.noop")  # NULL_TICKER
    for _ in range(spans):
        with obs.span("obs.noop", mask=0):
            pass
    for _ in range(counts):
        obs.count("flow_solves")
    for _ in range(ticks):
        ticker.tick()
    ticker.finish()


def test_obs_disabled_overhead_under_5_percent(benchmark, show):
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    assert obs.current_recorder() is None

    result, spans, counter_events, ticks = _call_volume(net, demand)
    assert result.flow_calls > 0

    kernel = time_call(naive_reliability, net, demand, repeats=5)
    benchmark(_disabled_path, spans, counter_events, ticks)
    noop_seconds = time_call(
        _disabled_path, spans, counter_events, ticks, repeats=5
    ).seconds

    fraction = noop_seconds / kernel.seconds
    show(
        ["quantity", "value"],
        [
            ["kernel best-of-5 (s)", kernel.seconds],
            ["spans per run", spans],
            ["counter events per run", counter_events],
            ["progress ticks per run", ticks],
            ["disabled-path cost (s)", noop_seconds],
            ["overhead fraction", fraction],
            ["budget", MAX_OVERHEAD_FRACTION],
        ],
        title="OBS: disabled-instrumentation overhead (naive on Fig. 4)",
    )
    assert fraction < MAX_OVERHEAD_FRACTION, (
        f"disabled obs path costs {fraction:.1%} of the kernel "
        f"(budget {MAX_OVERHEAD_FRACTION:.0%})"
    )


# -- enabled-sink budget ----------------------------------------------------

#: Acceptance threshold for the *enabled* durable-telemetry path: a run
#: streaming events/v1 JSONL through a telemetry session may cost at
#: most this fraction extra over the same run with a plain in-memory
#: recorder (PR 7 tentpole budget).
MAX_SINK_OVERHEAD_FRACTION = 0.10


#: Kernel runs timed inside one session: the budget polices the
#: *streaming* cost (per-event encode + bounded-buffer flush), so the
#: session's fixed setup (mkdir, stale-spool sweep, file open) is
#: amortised the way a real sweep amortises it over its whole grid.
SINK_BENCH_RUNS = 30


def test_obs_enabled_sink_overhead_under_10_percent(tmp_path, show):
    from repro.obs import telemetry_session
    from repro.obs.sink import PARENT_SPOOL_NAME, read_events

    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)

    def plain():
        with obs.record():
            for _ in range(SINK_BENCH_RUNS):
                naive_reliability(net, demand)

    def streamed(directory):
        with telemetry_session(directory):
            for _ in range(SINK_BENCH_RUNS):
                naive_reliability(net, demand)

    # Interleave best-of-N so machine drift hits both variants equally.
    plain_best = float("inf")
    streamed_best = float("inf")
    for repeat in range(5):
        plain_best = min(plain_best, time_call(plain, repeats=1).seconds)
        directory = tmp_path / f"ev-{repeat}"
        streamed_best = min(
            streamed_best, time_call(streamed, directory, repeats=1).seconds
        )

    events = read_events(tmp_path / "ev-4" / PARENT_SPOOL_NAME)
    overhead = streamed_best / plain_best - 1.0
    show(
        ["quantity", "value"],
        [
            ["kernel runs per session", SINK_BENCH_RUNS],
            ["recorder-only best-of-5 (s)", plain_best],
            ["telemetry-session best-of-5 (s)", streamed_best],
            ["events streamed per session", len(events)],
            ["sink overhead fraction", overhead],
            ["budget", MAX_SINK_OVERHEAD_FRACTION],
        ],
        title="OBS: enabled JSONL-sink overhead (naive on Fig. 4)",
    )
    assert events[0]["ev"] == "start" and events[-1]["ev"] == "finish"
    assert overhead < MAX_SINK_OVERHEAD_FRACTION, (
        f"streaming telemetry costs {overhead:.1%} extra "
        f"(budget {MAX_SINK_OVERHEAD_FRACTION:.0%})"
    )
