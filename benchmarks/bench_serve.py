"""S2 — serving: warm zero-solve throughput and burst amortization.

Two acceptance bars from the serving tier:

* **Warm throughput** — a daemon whose :class:`ArrayCache` already
  holds the §III-C realization columns for a topology must answer
  availability-grid queries at >= 1000 points/second over the real
  socket path (decode, plan, vectorized evaluate, canonical encode),
  with **zero** max-flow solves and every point bit-identical to a
  fresh :func:`bottleneck_reliability` call.

* **Burst amortization** — 32 concurrent clients querying one topology
  through the daemon must beat 32 cold ``python -m repro compute``
  invocations by >= 5x: coalescing folds the burst into one sweep
  batch and one array build, while each CLI process pays interpreter
  start-up plus a full cold decomposition.

Both bars are asserted here, so a regression fails the bench rather
than just drifting the committed ``benchmarks/BENCH_serve.json``.
"""

import subprocess
import sys
import threading
from pathlib import Path

import numpy as np

from repro.bench.harness import time_call
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.graph.builders import fujita_fig4
from repro.graph.io import save
from repro.serve.client import ReliabilityClient
from repro.serve.server import ReliabilityServer

DEMAND = FlowDemand("s", "t", 2)
GRID = [float(v) for v in np.linspace(0.7, 0.99, 33)]
ROUND_QUERIES = 16
BURST_CLIENTS = 32
REPO_SRC = str(Path(__file__).resolve().parents[1] / "src")


def _serving(server):
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    return thread


def test_s2_warm_grid_throughput(benchmark, show):
    net = fujita_fig4()
    server = ReliabilityServer()
    thread = _serving(server)
    try:
        warm_solves = server.warm(net, DEMAND)
        assert warm_solves > 0  # the cold build happened here, not below

        def round_trip():
            with ReliabilityClient("127.0.0.1", server.port) as client:
                return [
                    client.query(net, "s", "t", 2, availability=GRID)
                    for _ in range(ROUND_QUERIES)
                ]

        timing = benchmark.pedantic(
            lambda: time_call(round_trip, repeats=3), rounds=1, iterations=1
        )
        replies = timing.value
    finally:
        server.request_shutdown()
        thread.join(timeout=10)

    # Every reply is a zero-solve warm answer...
    assert all(r["warm"] and r["flow_calls"] == 0 for r in replies)
    # ...bit-identical to the pointwise reference at every grid point.
    spec_points = replies[0]["points"]
    for index, point in enumerate(spec_points):
        fresh = bottleneck_reliability(
            _point_net(net, GRID[index]), DEMAND
        )
        assert point["reliability"] == fresh.value

    points = ROUND_QUERIES * len(GRID)
    per_second = points / timing.seconds
    assert per_second >= 1000.0, f"warm throughput {per_second:.0f} pts/s < 1000"

    show(
        ["workload", "points", "ms", "points/sec", "flow calls"],
        [
            [
                f"{ROUND_QUERIES} warm grid queries x {len(GRID)} pts",
                points,
                f"{timing.seconds * 1e3:.2f}",
                f"{per_second:.0f}",
                0,
            ]
        ],
        title="S2a: warm availability-grid throughput (fig4)",
    )


def _point_net(net, availability):
    from repro.core.sweep import SweepSpec

    return SweepSpec.availability([availability]).point_network(net, 0)


def test_s2_burst_vs_cold_cli(benchmark, show, tmp_path):
    import os

    net = fujita_fig4()
    net_file = tmp_path / "net.json"
    save(net, net_file)
    env = dict(os.environ, PYTHONPATH=REPO_SRC)
    reference = bottleneck_reliability(net, DEMAND)

    def cold_cli_burst():
        outputs = []
        for _ in range(BURST_CLIENTS):
            proc = subprocess.run(
                [
                    sys.executable, "-m", "repro", "compute",
                    str(net_file), "-s", "s", "-t", "t", "-d", "2",
                ],
                capture_output=True,
                text=True,
                env=env,
                check=True,
            )
            outputs.append(proc.stdout)
        return outputs

    def serve_burst():
        server = ReliabilityServer()  # cold cache: the burst pays one build
        thread = _serving(server)
        replies = [None] * BURST_CLIENTS
        try:
            def one(slot):
                with ReliabilityClient("127.0.0.1", server.port) as client:
                    replies[slot] = client.query(net, "s", "t", 2)

            workers = [
                threading.Thread(target=one, args=(slot,))
                for slot in range(BURST_CLIENTS)
            ]
            for worker in workers:
                worker.start()
            for worker in workers:
                worker.join(timeout=60)
        finally:
            server.request_shutdown()
            thread.join(timeout=10)
        return replies, server.rounds

    def run():
        cli_timing = time_call(cold_cli_burst, repeats=1)
        serve_timing = time_call(serve_burst, repeats=1)
        return {"cli": cli_timing, "serve": serve_timing}

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    cli_outputs = data["cli"].value
    replies, rounds = data["serve"].value

    # Both paths agree with the in-process reference: the CLI to its
    # printed precision, the daemon bit for bit.
    assert all(f"reliability = {reference.value:.10f}" in out for out in cli_outputs)
    assert all(r["points"][0]["reliability"] == reference.value for r in replies)
    # Coalescing folded the burst into far fewer sweep rounds than clients.
    assert rounds < BURST_CLIENTS

    speedup = data["cli"].seconds / data["serve"].seconds
    assert speedup >= 5.0, f"burst speedup {speedup:.1f}x < 5x"

    show(
        ["configuration", "seconds", "batch rounds", "speedup"],
        [
            [f"{BURST_CLIENTS} cold CLI invocations", f"{data['cli'].seconds:.2f}", "-", "1.00x"],
            [
                f"{BURST_CLIENTS}-client daemon burst",
                f"{data['serve'].seconds:.2f}",
                rounds,
                f"{speedup:.2f}x",
            ],
        ],
        title="S2b: 32-client burst, daemon vs cold CLI",
    )
