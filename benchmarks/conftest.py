"""Benchmark-suite configuration.

Run with::

    pytest benchmarks/ --benchmark-only

Each module regenerates one row of the experiment index in DESIGN.md:
the pytest-benchmark fixture times the headline operation, and the
module prints the paper-shaped table (add ``-s`` to see them inline;
they are also asserted, so a silent run still validates the shapes).
"""

import pytest


@pytest.fixture(scope="session")
def show():
    """Print helper that works under captured output too."""
    from repro.bench.reporting import format_table

    def _show(headers, rows, title=None):
        table = format_table(headers, rows, title=title)
        print("\n" + table + "\n")
        return table

    return _show
