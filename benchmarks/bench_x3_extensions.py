"""X3 — extensions: flow-value distribution, broadcast reliability,
stratified Monte-Carlo.

The operator-facing quantities built on the paper's machinery: the PMF
of the deliverable rate (reliability at every demand at once), the
multi-subscriber simultaneous-delivery probability, and the
variance-reduced estimator."""

import pytest

from repro.bench.harness import time_call
from repro.core import (
    FlowDemand,
    broadcast_reliability,
    coverage_curve,
    flow_value_distribution,
    montecarlo_reliability,
    naive_reliability,
    stratified_montecarlo_reliability,
)
from repro.graph import fujita_fig4, parallel_links
from repro.p2p import ChildChurnModel, MEDIA_SERVER, make_peers, multi_tree, to_flow_network


def test_x3_flow_value_distribution(benchmark, show):
    net = fujita_fig4()
    dist = benchmark(flow_value_distribution, net, "s", "t")
    rows = [
        [v, dist.pmf[v], dist.reliability(v)] for v in range(len(dist.pmf))
    ]
    show(
        ["rate", "P(maxflow = rate)", "P(maxflow >= rate)"],
        rows,
        title=f"X3: deliverable-rate PMF on Fig. 4 (E[rate] = {dist.expected_value:.4f})",
    )
    for rate in (1, 2, 3):
        expected = naive_reliability(net, FlowDemand("s", "t", rate)).value
        assert dist.reliability(rate) == pytest.approx(expected, abs=1e-12)


def test_x3_broadcast_coverage(benchmark, show):
    peers = make_peers(6, mean_session=300, mean_offline=60, upload_capacity=6)
    overlay = multi_tree(peers, num_stripes=2)
    net = to_flow_network(overlay, ChildChurnModel())
    subscribers = ["p4", "p5"]

    report = benchmark.pedantic(
        coverage_curve, args=(net, MEDIA_SERVER, subscribers, 1), rounds=1, iterations=1
    )
    rows = [
        [sub, value] for sub, value in zip(report.subscribers, report.individual)
    ]
    rows.append(["broadcast (simultaneous)", report.broadcast])
    rows.append(["expected coverage", report.expected_coverage])
    show(["quantity", "probability"], rows, title="X3: multi-subscriber delivery")
    assert report.broadcast <= min(report.individual) + 1e-12


def test_x3_stratified_vs_plain(benchmark, show):
    net = parallel_links(6, 1, 0.02)  # extreme-reliability regime
    demand = FlowDemand("s", "t", 2)
    exact = naive_reliability(net, demand).value

    def sweep():
        rows = []
        for seed in range(3):
            plain = montecarlo_reliability(net, demand, num_samples=400, seed=seed)
            strat = stratified_montecarlo_reliability(
                net, demand, num_samples=400, seed=seed
            )
            rows.append(
                [seed, abs(plain.value - exact), abs(strat.value - exact)]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["seed", "plain MC abs error", "stratified abs error"],
        rows,
        title=f"X3: estimators at 400 samples, exact R = {exact:.8f}",
    )
    assert sum(r[2] for r in rows) <= sum(r[1] for r in rows) + 1e-9


def test_x3_reliability_polynomial(benchmark, show):
    """The reliability-vs-p curve of the Fig. 4 graph — the classic
    figure, exactly, from one enumeration."""
    from repro.core import reliability_polynomial

    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    poly = benchmark(reliability_polynomial, net, demand)
    grid = [0.0, 0.05, 0.1, 0.2, 0.3, 0.5, 0.7, 0.9]
    rows = [[p, poly(p)] for p in grid]
    show(
        ["p (all links)", "R(p)"],
        rows,
        title=f"X3: reliability polynomial of Fig. 4, d = 2 "
        f"(N = {poly.counts}, min feasible links = {poly.min_feasible_links})",
    )
    assert poly(0.1) == pytest.approx(0.842635791, abs=1e-9)
    values = [poly(p) for p in grid]
    assert all(b <= a + 1e-12 for a, b in zip(values, values[1:]))
