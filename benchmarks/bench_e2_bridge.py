"""E2 — Fig. 2 + Eq. (1): bridge decomposition vs naive.

Regenerates: Eq. (1)'s three-factor product on the two-diamond bridge
graph, its agreement with naive enumeration, and the configuration-count
reduction (2·2^{α|E|} vs 2^{|E|})."""

from repro.bench.harness import time_call
from repro.core import FlowDemand, bridge_reliability, naive_reliability
from repro.graph import fujita_fig2_bridge


def test_e2_bridge_equation(benchmark, show):
    net = fujita_fig2_bridge()
    demand = FlowDemand("s", "t", 2)
    bridge = benchmark(bridge_reliability, net, demand)
    naive = time_call(naive_reliability, net, demand).value
    show(
        ["method", "R", "configs", "flow calls"],
        [
            ["bridge (Eq. 1)", bridge.value, bridge.configurations, bridge.flow_calls],
            ["naive", naive.value, naive.configurations, naive.flow_calls],
        ],
        title="E2: Eq. (1) on the Fig. 2 graph",
    )
    assert abs(bridge.value - naive.value) < 1e-12
    # 2 * 2^4 side configurations vs 2^9 overall
    assert bridge.configurations == 2 * 2**4
    assert naive.configurations == 2**9


def test_e2_bridge_capacity_gate(benchmark, show):
    net = fujita_fig2_bridge(bridge_capacity=1)
    result = benchmark(bridge_reliability, net, FlowDemand("s", "t", 2))
    show(
        ["bridge capacity", "demand", "R"],
        [[1, 2, result.value]],
        title="E2: c(e') < d is trivially zero",
    )
    assert result.value == 0.0
