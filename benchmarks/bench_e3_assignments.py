"""E3/E5 — Examples 1 and 5: assignment enumeration and support
classification.

Regenerates: the 12-tuple assignment set of Example 1 and the
subset classification of Example 5, plus the |D| growth table that
underlies the paper's d^k constant."""

from repro.core import classify_by_support, count_assignments, enumerate_assignments
from repro.graph import fujita_fig4  # noqa: F401  (documents the source graph family)

EXAMPLE1 = [
    (0, 2, 3), (0, 3, 2), (1, 1, 3), (1, 2, 2), (1, 3, 1), (2, 0, 3),
    (2, 1, 2), (2, 2, 1), (2, 3, 0), (3, 0, 2), (3, 1, 1), (3, 2, 0),
]


def test_e3_example1_enumeration(benchmark, show):
    assignments = benchmark(enumerate_assignments, [3, 3, 3], 5)
    show(
        ["d", "k", "caps", "|D|"],
        [[5, 3, "(3,3,3)", len(assignments)]],
        title="E3: Example 1 assignment set",
    )
    assert assignments == EXAMPLE1


def test_e5_example5_classification(benchmark, show):
    assignments = [(1, 2, 0), (2, 1, 0), (1, 1, 1), (0, 2, 1), (2, 0, 1)]
    table = benchmark(classify_by_support, assignments, 3)
    rows = [
        [f"{mask:03b}", len(idxs), [assignments[i] for i in idxs]]
        for mask, idxs in sorted(table.items(), reverse=True)
    ]
    show(["subset E'", "|D_E'|", "members"], rows, title="E5: Example 5 classification")
    assert len(table[0b111]) == 5
    assert [assignments[i] for i in table[0b011]] == [(1, 2, 0), (2, 1, 0)]


def test_e3_cardinality_growth(benchmark, show):
    def sweep():
        rows = []
        for d in (1, 2, 3, 4, 5):
            for k in (1, 2, 3):
                rows.append([d, k, count_assignments([d] * k, d), (d + 1) ** k])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(["d", "k", "|D|", "(d+1)^k bound"], rows, title="E3: |D| growth in d and k")
    for d, k, count, bound in rows:
        assert count <= bound
