"""E9 — the constant factors: cost growth in d and k.

Regenerates: the |D| = O(d^k) assignment count and the resulting
per-side solve counts (|D| · 2^{|E_side|}), plus the Monte-Carlo
convergence cross-check used throughout the paper reproduction."""

from repro.bench.harness import time_call
from repro.bench.workloads import dk_workload
from repro.core import (
    bottleneck_reliability,
    montecarlo_reliability,
    naive_reliability,
)


def _dk_rows():
    rows = []
    for d in (1, 2, 3):
        for k in (1, 2, 3):
            workload = dk_workload(d, k, side_links=5, seed=3)
            net, demand = workload.network, workload.demand
            timed = time_call(
                bottleneck_reliability, net, demand, cut=list(range(k)), repeats=1
            )
            result = timed.value
            rows.append(
                [
                    d,
                    k,
                    result.details["num_assignments"],
                    result.flow_calls,
                    f"{timed.seconds * 1e3:.2f}",
                    result.value,
                ]
            )
    return rows


def test_e9_dk_series(benchmark, show):
    rows = benchmark.pedantic(_dk_rows, rounds=1, iterations=1)
    show(
        ["d", "k", "|D|", "flow calls", "ms", "R"],
        rows,
        title="E9: cost growth in demand d and bottleneck count k",
    )
    # |D| grows with both d and k (holding the other fixed)
    by = {(r[0], r[1]): r[2] for r in rows}
    assert by[(1, 2)] < by[(2, 2)] < by[(3, 2)]
    assert by[(2, 1)] < by[(2, 2)] < by[(2, 3)]


def test_e9_montecarlo_convergence(benchmark, show):
    workload = dk_workload(2, 2, side_links=5, seed=3)
    net, demand = workload.network, workload.demand
    exact = naive_reliability(net, demand).value

    def sweep():
        rows = []
        for samples in (500, 5_000, 50_000):
            est = montecarlo_reliability(net, demand, num_samples=samples, seed=0)
            rows.append([samples, est.value, abs(est.value - exact), est.half_width])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["samples", "estimate", "abs error", "CI half-width"],
        rows,
        title=f"E9: Monte-Carlo convergence to exact R = {exact:.6f}",
    )
    assert rows[-1][3] < rows[0][3]
    assert rows[-1][2] < 0.02


def test_e9_headline_case(benchmark):
    workload = dk_workload(3, 3, side_links=5, seed=3)
    result = benchmark(
        bottleneck_reliability, workload.network, workload.demand, cut=[0, 1, 2]
    )
    assert 0 <= result.value <= 1
