"""I1 — incremental Gray-walk flow repair vs cold lattice solves.

Cold enumeration re-derives the whole flow at every lattice entry; the
incremental engine (``repro.flow.incremental``) repairs the previous
entry's flow across the one-link Gray step instead.  The honest metric
is **augmenting-path work** — the ``solver.<name>.paths`` counter, i.e.
how many augmenting paths the solver actually traced — not solver
invocations, because repairs are many tiny solves (``flow_calls`` can
grow while the path work collapses).

Every row is asserted value-identical to the cold baseline (``==`` on
the float, not approx) before it is reported; the committed snapshot
lives in ``benchmarks/BENCH_incremental.json`` and the acceptance bar
(>= 2x path-work reduction on fig4) is asserted here so a regression
fails the bench, not just the JSON diff.
"""

import pytest

from repro.bench.harness import time_call
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.naive import naive_reliability
from repro.graph.builders import fujita_fig4
from repro.graph.generators import bottlenecked_network
from repro.obs import Recorder, record


def _measured(fn, *args, **kwargs):
    """(TimedResult, augmenting paths, counter totals) for one call."""
    recorder = Recorder()
    with record(recorder):
        timing = time_call(fn, *args, repeats=3, **kwargs)
    totals = recorder.counter_totals()
    paths = sum(
        v
        for name, v in totals.items()
        if name.startswith("solver.") and name.endswith(".paths")
    )
    # time_call ran the target three times inside one recorder; report
    # the per-call counts.
    return timing, paths // 3, totals


def _rows_for(fn, net, demand, *, variants):
    rows = []
    baseline_paths = {}
    for label, kwargs in variants:
        timing, paths, totals = _measured(fn, net, demand, **kwargs)
        result = timing.value
        key = kwargs.get("prune", True)
        if not kwargs.get("incremental"):
            baseline_paths[key] = paths
            ratio = 1.0
        else:
            ratio = baseline_paths[key] / paths if paths else float("inf")
        rows.append(
            {
                "configuration": label,
                "ms": round(timing.seconds * 1e3, 3),
                "value": result.value,
                "flow_calls": result.flow_calls,
                "augmenting_paths": paths,
                "flow_repairs": int(totals.get("flow_repairs", 0)) // 3,
                "paths_saved": int(totals.get("augmenting_paths_saved", 0)) // 3,
                "path_work_reduction": round(ratio, 2),
            }
        )
    return rows


_NAIVE_VARIANTS = [
    ("cold pruned", {"prune": True, "incremental": False}),
    ("incremental pruned", {"prune": True, "incremental": True}),
    ("cold unpruned", {"prune": False, "incremental": False}),
    ("incremental unpruned", {"prune": False, "incremental": True}),
]


def test_i1_naive_fig4(benchmark, show):
    """Fig. 4 whole-graph lattice: the acceptance workload."""
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)

    rows = benchmark.pedantic(
        lambda: _rows_for(naive_reliability, net, demand, variants=_NAIVE_VARIANTS),
        rounds=1,
        iterations=1,
    )
    cold = {r["configuration"]: r for r in rows}
    for r in rows:
        assert r["value"] == cold["cold pruned"]["value"]
    # The acceptance bar: >= 2x less augmenting-path work than cold.
    assert cold["incremental pruned"]["path_work_reduction"] >= 2.0
    assert cold["incremental unpruned"]["path_work_reduction"] >= 2.0
    show(
        ["configuration", "ms", "flow calls", "aug. paths", "repairs", "saved", "reduction"],
        [
            [
                r["configuration"],
                f"{r['ms']:.2f}",
                r["flow_calls"],
                r["augmenting_paths"],
                r["flow_repairs"],
                r["paths_saved"],
                f"{r['path_work_reduction']:.2f}x",
            ]
            for r in rows
        ],
        title="I1: naive on fujita_fig4 (2^7 configurations)",
    )


@pytest.mark.parametrize("seed", [0, 7])
def test_i1_naive_random(benchmark, show, seed):
    """Random bottlenecked instances: where the planner's ordering and
    the two-sided prune bite hardest (8-15x observed)."""
    net = bottlenecked_network(
        source_side_links=5, sink_side_links=4, num_bottlenecks=2, demand=2, seed=seed
    )
    demand = FlowDemand("s", "t", 2)
    rows = benchmark.pedantic(
        lambda: _rows_for(naive_reliability, net, demand, variants=_NAIVE_VARIANTS),
        rounds=1,
        iterations=1,
    )
    assert len({r["value"] for r in rows}) == 1
    incremental_pruned = next(r for r in rows if r["configuration"] == "incremental pruned")
    assert incremental_pruned["path_work_reduction"] >= 2.0
    show(
        ["configuration", "ms", "flow calls", "aug. paths", "reduction"],
        [
            [
                r["configuration"],
                f"{r['ms']:.2f}",
                r["flow_calls"],
                r["augmenting_paths"],
                f"{r['path_work_reduction']:.2f}x",
            ]
            for r in rows
        ],
        title=f"I1: naive on bottlenecked_network(seed={seed})",
    )


def test_i1_bottleneck_fig4(benchmark, show):
    """The paper's algorithm end-to-end: both side arrays incremental."""
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    variants = [
        ("cold serial", {"incremental": False}),
        ("incremental serial", {"incremental": True}),
        ("cold unpruned", {"prune": False, "incremental": False}),
        ("incremental unpruned", {"prune": False, "incremental": True}),
    ]

    def sweep():
        rows = []
        baseline = {}
        for label, kwargs in variants:
            timing, paths, totals = _measured(
                bottleneck_reliability, net, demand, **kwargs
            )
            key = kwargs.get("prune", True)
            if not kwargs["incremental"]:
                baseline[key] = paths
                ratio = 1.0
            else:
                ratio = baseline[key] / paths if paths else float("inf")
            rows.append(
                {
                    "configuration": label,
                    "ms": round(timing.seconds * 1e3, 3),
                    "value": timing.value.value,
                    "flow_calls": timing.value.flow_calls,
                    "augmenting_paths": paths,
                    "path_work_reduction": round(ratio, 2),
                }
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert len({r["value"] for r in rows}) == 1
    show(
        ["configuration", "ms", "flow calls", "aug. paths", "reduction"],
        [
            [
                r["configuration"],
                f"{r['ms']:.2f}",
                r["flow_calls"],
                r["augmenting_paths"],
                f"{r['path_work_reduction']:.2f}x",
            ]
            for r in rows
        ],
        title="I1: bottleneck_reliability on fujita_fig4",
    )
