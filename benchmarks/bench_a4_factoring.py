"""A4 — extension baseline: factoring (conditioning) vs naive vs
bottleneck.

Factoring is exact on any network; the table shows where the structure-
aware bottleneck algorithm pays off and how much the flow-guided
branching heuristic matters."""

import pytest

from repro.bench.harness import time_call
from repro.bench.workloads import scaling_workload
from repro.core import bottleneck_reliability, factoring_reliability, naive_reliability


def _method_rows():
    rows = []
    for size in (10, 12, 14):
        workload = scaling_workload(size, demand=2, k=2, seed=7)
        net, demand = workload.network, workload.demand
        naive = time_call(naive_reliability, net, demand, repeats=1)
        fact = time_call(factoring_reliability, net, demand, repeats=1)
        bneck = time_call(bottleneck_reliability, net, demand, cut=[0, 1], repeats=1)
        assert fact.value.value == pytest.approx(naive.value.value, abs=1e-9)
        assert bneck.value.value == pytest.approx(naive.value.value, abs=1e-9)
        rows.append(
            [
                net.num_links,
                f"{naive.seconds * 1e3:.1f}",
                f"{fact.seconds * 1e3:.1f}",
                f"{bneck.seconds * 1e3:.1f}",
                naive.value.flow_calls,
                fact.value.flow_calls,
                bneck.value.flow_calls,
            ]
        )
    return rows


def test_a4_method_table(benchmark, show):
    rows = benchmark.pedantic(_method_rows, rounds=1, iterations=1)
    show(
        ["|E|", "naive ms", "factoring ms", "bneck ms",
         "naive calls", "factoring calls", "bneck calls"],
        rows,
        title="A4: exact methods on bottlenecked networks",
    )


def test_a4_branching_heuristic(benchmark, show):
    workload = scaling_workload(12, demand=2, k=2, seed=8)
    net, demand = workload.network, workload.demand
    def sweep():
        smart = time_call(factoring_reliability, net, demand, use_flow_heuristic=True, repeats=1)
        dumb = time_call(factoring_reliability, net, demand, use_flow_heuristic=False, repeats=1)
        return smart, dumb

    smart, dumb = benchmark.pedantic(sweep, rounds=1, iterations=1)
    assert smart.value.value == pytest.approx(dumb.value.value, abs=1e-10)
    show(
        ["branching rule", "branch nodes", "flow calls", "ms"],
        [
            ["flow-guided", smart.value.details["branch_nodes"], smart.value.flow_calls,
             f"{smart.seconds * 1e3:.1f}"],
            ["lowest-index", dumb.value.details["branch_nodes"], dumb.value.flow_calls,
             f"{dumb.seconds * 1e3:.1f}"],
        ],
        title="A4: factoring branching heuristic",
    )
    assert smart.value.details["branch_nodes"] <= dumb.value.details["branch_nodes"]


def test_a4_factoring_benchmark(benchmark):
    workload = scaling_workload(12, demand=2, k=2, seed=7)
    result = benchmark(factoring_reliability, workload.network, workload.demand)
    assert 0 < result.value < 1
