"""X2 — extension: process-parallel enumeration and array building.

The owner-computes block decomposition over the configuration lattice,
in both of its uses: the naive full scan (``repro.core.parallel``) and
the bottleneck realization-array engine (``repro.core.engine``).
Speedup is measured against the single-process path at identical
results; the per-worker pruning loss (workers only see same-chunk
supersets) shows up in the call counts, and the engine sweep
additionally proves the side-array masks bit-identical at every worker
count."""

import numpy as np
import pytest

from repro.bench.harness import time_call
from repro.bench.workloads import scaling_workload
from repro.core import naive_reliability, parallel_naive_reliability
from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability
from repro.core.engine import build_realization_arrays
from repro.graph.cuts import find_bottleneck


def test_x2_worker_scaling(benchmark, show):
    workload = scaling_workload(14, demand=2, k=2, seed=11)
    net, demand = workload.network, workload.demand

    def sweep():
        rows = []
        serial = time_call(naive_reliability, net, demand, repeats=1)
        rows.append(
            ["serial", f"{serial.seconds * 1e3:.1f}", serial.value.flow_calls, serial.value.value]
        )
        for workers in (1, 2, 4):
            par = time_call(
                parallel_naive_reliability, net, demand, workers=workers, repeats=1
            )
            assert par.value.value == pytest.approx(serial.value.value, abs=1e-12)
            rows.append(
                [
                    f"{workers} worker(s)",
                    f"{par.seconds * 1e3:.1f}",
                    par.value.flow_calls,
                    par.value.value,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["configuration", "ms", "flow calls", "R"],
        rows,
        title=f"X2: parallel naive on {net.num_links} links (2^{net.num_links} configs)",
    )


def test_x2_array_engine_scaling(benchmark, show):
    """Bottleneck-side sweep: serial §III-C builder vs the chunked engine.

    14-link sides (2^14-entry realization arrays each).  Every engine
    row is checked for **bit-identical** masks against the serial
    builder and reliability equality to 1e-12; the flow-call column
    shows the chunked-pruning loss (slightly more solves as chunks
    shrink) and the screen savings (``screened`` column).
    """
    workload = scaling_workload(28, demand=2, k=2, seed=11)
    net, demand = workload.network, workload.demand
    split = find_bottleneck(net, demand.source, demand.sink, max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    assignments = enumerate_assignments(capacities, demand.rate)

    def sweep():
        serial = time_call(bottleneck_reliability, net, demand, repeats=1)
        source_serial = build_side_array(
            split.source_side,
            role="source",
            terminal=demand.source,
            ports=split.source_ports,
            assignments=assignments,
            demand=demand.rate,
        )
        sink_serial = build_side_array(
            split.sink_side,
            role="sink",
            terminal=demand.sink,
            ports=split.sink_ports,
            assignments=assignments,
            demand=demand.rate,
        )
        rows = [
            [
                "serial",
                f"{serial.seconds * 1e3:.1f}",
                "1.00x",
                serial.value.flow_calls,
                "-",
                serial.value.value,
            ]
        ]
        for workers in (1, 2, 4):
            par = time_call(
                bottleneck_reliability, net, demand, workers=workers, repeats=1
            )
            assert par.value.value == pytest.approx(serial.value.value, abs=1e-12)
            source_arr, sink_arr, stats = build_realization_arrays(
                split,
                source=demand.source,
                sink=demand.sink,
                assignments=assignments,
                demand=demand.rate,
                workers=workers,
            )
            np.testing.assert_array_equal(source_serial.masks, source_arr.masks)
            np.testing.assert_array_equal(sink_serial.masks, sink_arr.masks)
            rows.append(
                [
                    f"{workers} worker(s)",
                    f"{par.seconds * 1e3:.1f}",
                    f"{serial.seconds / par.seconds:.2f}x",
                    par.value.flow_calls,
                    stats["screened_solves"],
                    par.value.value,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    side_bits = max(
        split.source_side.network.num_links, split.sink_side.network.num_links
    )
    show(
        ["configuration", "ms", "speedup", "flow calls", "screened", "R"],
        rows,
        title=(
            f"X2: realization-array engine on 2x{side_bits}-link sides "
            f"(2^{side_bits} entries/side, masks bit-identical)"
        ),
    )


def test_x2_block_kernel_and_sharded_sweep(benchmark, show, tmp_path):
    """Bit-parallel block kernel + share-nothing sharded builds, fig4 curve.

    The 33-point fig4 availability curve (the same workload as
    ``bench_sweep.py``), built four ways at asserted bit-identical
    values: pointwise x33 (the 1.0x anchor), the cached sweep with the
    scalar kernel, the cached sweep with the ``block_bits`` kernel
    (block-level budget screens settle most entries before any solver
    runs — watch the solve count drop), and a 2-shard share-nothing
    build whose workers coordinate only through claim files in the
    cache directory.  Acceptance (asserted): the blocked cold build is
    >= 5x over pointwise, the sharded cold build still beats pointwise
    (the first multi-worker configuration in this suite that wins on a
    single-CPU host — its shards split real work instead of re-doing
    it), and a warm sharded rerun performs zero max-flow solves.
    """
    import numpy as np  # noqa: F811 - keep the bench self-contained

    from repro.core.demand import FlowDemand
    from repro.core.shard import sharded_sweep
    from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
    from repro.graph.builders import fujita_fig4

    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    spec = SweepSpec.availability([float(v) for v in np.linspace(0.7, 0.99, 33)])

    def run():
        def pointwise():
            return [
                bottleneck_reliability(spec.point_network(net, i), demand)
                for i in range(len(spec))
            ]

        pw = time_call(pointwise, repeats=3)
        scalar = time_call(
            lambda: compute_reliability_sweep(
                net, demand, sweep=spec, cache=ArrayCache()
            ),
            repeats=3,
        )
        blocked = time_call(
            lambda: compute_reliability_sweep(
                net, demand, sweep=spec, block_bits=4, cache=ArrayCache()
            ),
            repeats=3,
        )
        cache_dir = tmp_path / "shards"
        sharded = time_call(
            sharded_sweep,
            net,
            demand,
            sweep=spec,
            shards=2,
            cache_dir=str(cache_dir),
            block_bits=4,
            repeats=1,
        )
        warm = time_call(
            sharded_sweep,
            net,
            demand,
            sweep=spec,
            shards=2,
            cache_dir=str(cache_dir),
            block_bits=4,
            repeats=1,
        )
        return pw, scalar, blocked, sharded, warm

    pw, scalar, blocked, sharded, warm = benchmark.pedantic(
        run, rounds=1, iterations=1
    )

    # Bit-identity across every build path, then the speedup bars.
    curve = [r.value for r in pw.value]
    for swept in (scalar, blocked, sharded, warm):
        assert list(swept.value.values) == curve
    assert warm.value.flow_calls == 0
    assert pw.seconds / blocked.seconds >= 5.0
    assert sharded.seconds < pw.seconds

    rows = [
        ["pointwise x33", f"{pw.seconds * 1e3:.2f}",
         sum(r.flow_calls for r in pw.value), "1.00x"],
        ["sweep cold (scalar kernel)", f"{scalar.seconds * 1e3:.2f}",
         scalar.value.flow_calls, f"{pw.seconds / scalar.seconds:.2f}x"],
        ["sweep cold (block_bits=4)", f"{blocked.seconds * 1e3:.2f}",
         blocked.value.flow_calls, f"{pw.seconds / blocked.seconds:.2f}x"],
        ["sharded x2 cold (block_bits=4)", f"{sharded.seconds * 1e3:.2f}",
         sharded.value.flow_calls, f"{pw.seconds / sharded.seconds:.2f}x"],
        ["sharded x2 warm rerun", f"{warm.seconds * 1e3:.2f}",
         warm.value.flow_calls, f"{pw.seconds / warm.seconds:.2f}x"],
    ]
    show(
        ["configuration", "ms", "flow calls", "vs pointwise"],
        rows,
        title="X2: block kernel + sharded builds on the 33-point fig4 curve",
    )


def test_x2_two_workers(benchmark):
    workload = scaling_workload(12, demand=2, k=2, seed=11)
    result = benchmark.pedantic(
        parallel_naive_reliability,
        args=(workload.network, workload.demand),
        kwargs={"workers": 2},
        rounds=2,
        iterations=1,
    )
    assert 0 < result.value < 1
