"""X2 — extension: process-parallel naive enumeration.

The owner-computes block decomposition over the configuration lattice.
Speedup is measured against the single-process scan at identical
results; the per-worker pruning loss (workers only see same-chunk
supersets) shows up in the call counts."""

import pytest

from repro.bench.harness import time_call
from repro.bench.workloads import scaling_workload
from repro.core import naive_reliability, parallel_naive_reliability


def test_x2_worker_scaling(benchmark, show):
    workload = scaling_workload(14, demand=2, k=2, seed=11)
    net, demand = workload.network, workload.demand

    def sweep():
        rows = []
        serial = time_call(naive_reliability, net, demand, repeats=1)
        rows.append(
            ["serial", f"{serial.seconds * 1e3:.1f}", serial.value.flow_calls, serial.value.value]
        )
        for workers in (1, 2, 4):
            par = time_call(
                parallel_naive_reliability, net, demand, workers=workers, repeats=1
            )
            assert par.value.value == pytest.approx(serial.value.value, abs=1e-12)
            rows.append(
                [
                    f"{workers} worker(s)",
                    f"{par.seconds * 1e3:.1f}",
                    par.value.flow_calls,
                    par.value.value,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["configuration", "ms", "flow calls", "R"],
        rows,
        title=f"X2: parallel naive on {net.num_links} links (2^{net.num_links} configs)",
    )


def test_x2_two_workers(benchmark):
    workload = scaling_workload(12, demand=2, k=2, seed=11)
    result = benchmark.pedantic(
        parallel_naive_reliability,
        args=(workload.network, workload.demand),
        kwargs={"workers": 2},
        rounds=2,
        iterations=1,
    )
    assert 0 < result.value < 1
