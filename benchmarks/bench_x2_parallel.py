"""X2 — extension: process-parallel enumeration and array building.

The owner-computes block decomposition over the configuration lattice,
in both of its uses: the naive full scan (``repro.core.parallel``) and
the bottleneck realization-array engine (``repro.core.engine``).
Speedup is measured against the single-process path at identical
results; the per-worker pruning loss (workers only see same-chunk
supersets) shows up in the call counts, and the engine sweep
additionally proves the side-array masks bit-identical at every worker
count."""

import numpy as np
import pytest

from repro.bench.harness import time_call
from repro.bench.workloads import scaling_workload
from repro.core import naive_reliability, parallel_naive_reliability
from repro.core.arrays import build_side_array
from repro.core.assignments import enumerate_assignments
from repro.core.bottleneck import bottleneck_reliability
from repro.core.engine import build_realization_arrays
from repro.graph.cuts import find_bottleneck


def test_x2_worker_scaling(benchmark, show):
    workload = scaling_workload(14, demand=2, k=2, seed=11)
    net, demand = workload.network, workload.demand

    def sweep():
        rows = []
        serial = time_call(naive_reliability, net, demand, repeats=1)
        rows.append(
            ["serial", f"{serial.seconds * 1e3:.1f}", serial.value.flow_calls, serial.value.value]
        )
        for workers in (1, 2, 4):
            par = time_call(
                parallel_naive_reliability, net, demand, workers=workers, repeats=1
            )
            assert par.value.value == pytest.approx(serial.value.value, abs=1e-12)
            rows.append(
                [
                    f"{workers} worker(s)",
                    f"{par.seconds * 1e3:.1f}",
                    par.value.flow_calls,
                    par.value.value,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["configuration", "ms", "flow calls", "R"],
        rows,
        title=f"X2: parallel naive on {net.num_links} links (2^{net.num_links} configs)",
    )


def test_x2_array_engine_scaling(benchmark, show):
    """Bottleneck-side sweep: serial §III-C builder vs the chunked engine.

    14-link sides (2^14-entry realization arrays each).  Every engine
    row is checked for **bit-identical** masks against the serial
    builder and reliability equality to 1e-12; the flow-call column
    shows the chunked-pruning loss (slightly more solves as chunks
    shrink) and the screen savings (``screened`` column).
    """
    workload = scaling_workload(28, demand=2, k=2, seed=11)
    net, demand = workload.network, workload.demand
    split = find_bottleneck(net, demand.source, demand.sink, max_size=3)
    assert split is not None
    capacities = [net.link(i).capacity for i in split.cut]
    assignments = enumerate_assignments(capacities, demand.rate)

    def sweep():
        serial = time_call(bottleneck_reliability, net, demand, repeats=1)
        source_serial = build_side_array(
            split.source_side,
            role="source",
            terminal=demand.source,
            ports=split.source_ports,
            assignments=assignments,
            demand=demand.rate,
        )
        sink_serial = build_side_array(
            split.sink_side,
            role="sink",
            terminal=demand.sink,
            ports=split.sink_ports,
            assignments=assignments,
            demand=demand.rate,
        )
        rows = [
            [
                "serial",
                f"{serial.seconds * 1e3:.1f}",
                "1.00x",
                serial.value.flow_calls,
                "-",
                serial.value.value,
            ]
        ]
        for workers in (1, 2, 4):
            par = time_call(
                bottleneck_reliability, net, demand, workers=workers, repeats=1
            )
            assert par.value.value == pytest.approx(serial.value.value, abs=1e-12)
            source_arr, sink_arr, stats = build_realization_arrays(
                split,
                source=demand.source,
                sink=demand.sink,
                assignments=assignments,
                demand=demand.rate,
                workers=workers,
            )
            np.testing.assert_array_equal(source_serial.masks, source_arr.masks)
            np.testing.assert_array_equal(sink_serial.masks, sink_arr.masks)
            rows.append(
                [
                    f"{workers} worker(s)",
                    f"{par.seconds * 1e3:.1f}",
                    f"{serial.seconds / par.seconds:.2f}x",
                    par.value.flow_calls,
                    stats["screened_solves"],
                    par.value.value,
                ]
            )
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    side_bits = max(
        split.source_side.network.num_links, split.sink_side.network.num_links
    )
    show(
        ["configuration", "ms", "speedup", "flow calls", "screened", "R"],
        rows,
        title=(
            f"X2: realization-array engine on 2x{side_bits}-link sides "
            f"(2^{side_bits} entries/side, masks bit-identical)"
        ),
    )


def test_x2_two_workers(benchmark):
    workload = scaling_workload(12, demand=2, k=2, seed=11)
    result = benchmark.pedantic(
        parallel_naive_reliability,
        args=(workload.network, workload.demand),
        kwargs={"workers": 2},
        rounds=2,
        iterations=1,
    )
    assert 0 < result.value < 1
