"""X5 — extension: overlay repair and hybrid overlays.

§II notes that several systems re-route after detecting faults; this
bench quantifies how much repair buys per overlay family, and where the
mtreebone-style hybrid sits between pure trees and mesh."""

from repro.bench.harness import time_call
from repro.core import FlowDemand, compute_reliability
from repro.p2p import (
    ChildChurnModel,
    MEDIA_SERVER,
    build_overlay,
    make_peers,
    peer_level_reliability,
    repaired_reliability,
    to_flow_network,
)

FAMILIES = ("single-tree", "multi-tree", "treebone", "mesh")


def test_x5_repair_gain(benchmark, show):
    """Two regimes.  With ample aggregate upload capacity, *ideal* repair
    always restores delivery (post-repair probability 1.0 — churn's real
    cost is then the transient chunk loss the DES measures).  With a
    leech-heavy population (most peers contribute no upload), repair is
    capacity-limited and the gain is partial."""
    from repro.p2p import Peer

    rich = make_peers(8, mean_session=60, mean_offline=60, upload_capacity=3)
    poor = [
        Peer(f"p{i}", upload_capacity=3 if i < 2 else 0, mean_session=60, mean_offline=60)
        for i in range(8)
    ]

    def sweep():
        rows = []
        for label, peers in (("capacity-rich", rich), ("leech-heavy", poor)):
            for family in ("single-tree", "mesh"):
                overlay = build_overlay(family, peers, num_stripes=1, seed=0)
                static = peer_level_reliability(overlay, "p7", 1, num_trials=1200, seed=1)
                repaired = repaired_reliability(overlay, "p7", 1, num_trials=1200, seed=1)
                rows.append([label, family, static, repaired, repaired - static])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["population", "overlay", "no repair", "with repair", "gain"],
        rows,
        title="X5: route repair gain (peer-level simulation, deepest subscriber)",
    )
    for row in rows:
        assert row[3] >= row[2] - 0.03  # repair never hurts (noise margin)
    # rich population: ideal repair restores delivery outright
    assert all(row[3] == 1.0 for row in rows if row[0] == "capacity-rich")
    # leech-heavy population: repair is capacity-limited
    assert any(row[3] < 1.0 for row in rows if row[0] == "leech-heavy")


def test_x5_hybrid_position(benchmark, show):
    peers = make_peers(8, mean_session=300, mean_offline=60, upload_capacity=8)

    def sweep():
        rows = []
        values = {}
        for family in FAMILIES:
            overlay = build_overlay(family, peers, num_stripes=1, seed=0)
            net = to_flow_network(overlay, ChildChurnModel())
            demand = FlowDemand(MEDIA_SERVER, "p7", 1)
            timed = time_call(compute_reliability, net, demand=demand, repeats=1)
            values[family] = timed.value.value
            rows.append(
                [family, net.num_links, timed.value.value, timed.value.method]
            )
        return rows, values

    rows, values = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["overlay", "links", "exact R (d=1)", "method"],
        rows,
        title="X5: exact unit-rate reliability per overlay family",
    )
    # the hybrid's auxiliary links must beat the plain single tree
    assert values["treebone"] > values["single-tree"]
