"""A2 — ablation: max-flow solver choice in the reliability inner loop.

The paper charges O(|V||E|) per configuration; in practice the solver's
per-call constant on tiny graphs decides everything.  This bench runs
the full naive computation on the Fig. 4 graph under each solver and a
raw solver shoot-out on a larger layered network."""

import pytest

from repro.bench.harness import time_call
from repro.core import FlowDemand, naive_reliability
from repro.flow import available_solvers, max_flow_value
from repro.graph import fujita_fig4, layered_network

SOLVERS = ("dinic", "edmonds_karp", "push_relabel", "capacity_scaling")


def test_a2_reliability_inner_loop(benchmark, show):
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)

    def sweep():
        rows = []
        reference = None
        for solver in SOLVERS:
            timed = time_call(naive_reliability, net, demand, solver=solver, repeats=1)
            if reference is None:
                reference = timed.value.value
            assert timed.value.value == pytest.approx(reference, abs=1e-12)
            rows.append([solver, f"{timed.seconds * 1e3:.2f}", timed.value.flow_calls])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["solver", "naive total ms", "flow calls"],
        rows,
        title="A2: solver choice inside the naive loop (Fig. 4, d=2)",
    )


def test_a2_raw_shootout(benchmark, show):
    net = layered_network([6, 8, 8, 6], seed=0, max_capacity=5)

    def sweep():
        rows = []
        reference = None
        for solver in SOLVERS:
            timed = time_call(max_flow_value, net, "s", "t", solver=solver)
            if reference is None:
                reference = timed.value
            assert timed.value == reference
            rows.append([solver, f"{timed.seconds * 1e3:.3f}", timed.value])
        return rows

    rows = benchmark.pedantic(sweep, rounds=1, iterations=1)
    show(
        ["solver", "ms", "max flow"],
        rows,
        title=f"A2: one solve on layered 6-8-8-6 ({net.num_links} links)",
    )
    assert set(SOLVERS) <= set(available_solvers())


@pytest.mark.parametrize("solver", SOLVERS)
def test_a2_solver_benchmarks(benchmark, solver):
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    result = benchmark(naive_reliability, net, demand, solver=solver)
    assert 0 < result.value < 1
