"""A5 — extension: chain decomposition (multi-cut series composition).

The single-cut bottleneck algorithm's exponent is the larger side; a
series of r cuts drops it to the largest *segment*.  The table shows
flow-call counts as segments are added at (roughly) constant total
size — the chain's cost stays near-flat while naive explodes."""

import pytest

from repro.bench.harness import time_call
from repro.bench.workloads import chain_workload
from repro.core import chain_reliability, naive_reliability


def _chain_rows():
    rows = []
    for segments in (2, 3, 4):
        workload = chain_workload(segments, 4, demand=1, cut_size=2, seed=9)
        net, demand = workload.network, workload.demand
        cuts = net._chain_cut_indices
        chain = time_call(chain_reliability, net, demand, cuts, repeats=1)
        naive = time_call(naive_reliability, net, demand, repeats=1)
        assert chain.value.value == pytest.approx(naive.value.value, abs=1e-9)
        rows.append(
            [
                segments,
                net.num_links,
                len(cuts),
                chain.value.flow_calls,
                naive.value.flow_calls,
                f"{chain.seconds * 1e3:.1f}",
                f"{naive.seconds * 1e3:.1f}",
            ]
        )
    return rows


def test_a5_chain_table(benchmark, show):
    rows = benchmark.pedantic(_chain_rows, rounds=1, iterations=1)
    show(
        ["segments", "|E|", "cuts", "chain calls", "naive calls", "chain ms", "naive ms"],
        rows,
        title="A5: chain decomposition vs naive (segment size 4, cut size 2)",
    )
    # Shape: naive call count explodes with |E| while chain's stays far below.
    assert rows[-1][3] < rows[-1][4] / 10


def test_a5_chain_benchmark(benchmark):
    workload = chain_workload(3, 4, demand=1, cut_size=2, seed=9)
    cuts = workload.network._chain_cut_indices
    result = benchmark(chain_reliability, workload.network, workload.demand, cuts)
    assert 0 <= result.value <= 1
