"""R1 — rare-event estimation: permutation MC vs crude MC vs splitting.

Crude Monte-Carlo needs ``~1/U`` samples to *see* a single failure, so
at five-nines availability a realistic budget returns ``U = 0`` and a
relative error of 1.  The permutation estimator (``repro.core.rare``)
integrates the failure probability analytically per sampled failure
order, so every sample contributes; its error at the same budget is
orders of magnitude smaller.

Two workloads:

* **fig4 five-nines** — ``fujita_fig4`` at link availability 0.99999
  (``p = 1e-5``), where naive enumeration still yields the exact value.
  Asserted bar: permutation MC's observed relative error is >= 100x
  smaller than crude MC's at the *equal* budget.
* **beyond exact reach** — a 30-link chained network (the paper's
  topology: segments joined by 2-link bottleneck cuts; ``2^30``
  configurations, exact enumeration out of reach) at ``p = 1e-5``,
  with a relative-error-vs-budget curve for crude MC, permutation MC,
  and fixed-effort splitting.  Asserted bar: <= 10% CI relative error
  at the committed budget for both rare-event estimators, plus
  cross-validation that their confidence intervals overlap.

The committed snapshot lives in ``benchmarks/BENCH_rare.json``.
"""

import pytest

from repro.bench.harness import time_call
from repro.core.demand import FlowDemand
from repro.core.montecarlo import montecarlo_reliability
from repro.core.naive import naive_reliability
from repro.core.rare import (
    permutation_montecarlo_reliability,
    splitting_reliability,
)
from repro.graph.builders import fujita_fig4
from repro.graph.generators import chained_network

#: Committed budget for the fig4 acceptance point (equal for every
#: estimator — the comparison is at equal budget by construction).
FIG4_BUDGET = 4000
FIG4_SEED = 7

#: Committed budget at which the rare-event estimators must reach
#: <= 10% relative error on the beyond-exact-reach workload.
CHAIN_BUDGET = 32_000
CHAIN_CURVE = [2000, 8000, 32_000]

_ESTIMATORS = [
    ("crude MC", montecarlo_reliability),
    ("permutation MC", permutation_montecarlo_reliability),
    ("splitting", splitting_reliability),
]


def _chain_net():
    """30 links, 5 two-link bottleneck cuts, availability 0.99999."""
    return chained_network(
        [2, 4, 4, 4, 4, 2],
        cut_sizes=2,
        demand=2,
        seed=5,
        p_range=(1e-5, 1e-5),
    )


def _unreliability(estimate):
    """The rare-event estimators track U in full precision in details;
    ``1 - value`` would round it away below ~1e-12."""
    return estimate.details.get("unreliability", 1.0 - estimate.value)


def _ci_relative_error(estimate):
    """CI-based relative error on the unreliability (half-width / point)."""
    reported = estimate.details.get("relative_error")
    if reported is not None:
        return reported
    u = 1.0 - estimate.value
    if u <= 0.0:
        return 1.0  # saw nothing: the estimate carries no information
    return (estimate.high - estimate.low) / 2.0 / u


def _row(label, fn, net, demand, budget, seed):
    timing = time_call(fn, net, demand, num_samples=budget, seed=seed, repeats=1)
    est = timing.value
    return {
        "estimator": label,
        "budget": budget,
        "ms": round(timing.seconds * 1e3, 2),
        "unreliability": _unreliability(est),
        "ci_relative_error": round(_ci_relative_error(est), 6),
        "flow_calls": est.details.get("flow_calls"),
    }, est


def test_r1_five_nines_fig4(benchmark, show):
    """Fig. 4 at p=1e-5: >= 100x over crude MC at equal budget."""
    net = fujita_fig4(failure_probability=1e-5)
    demand = FlowDemand("s", "t", 2)
    exact_u = 1.0 - naive_reliability(net, demand).value

    def measure():
        rows = []
        for label, fn in _ESTIMATORS:
            row, est = _row(label, fn, net, demand, FIG4_BUDGET, FIG4_SEED)
            row["observed_error"] = round(
                abs(_unreliability(est) - exact_u) / exact_u, 6
            )
            rows.append(row)
        return rows

    rows = benchmark.pedantic(measure, rounds=1, iterations=1)
    by = {r["estimator"]: r for r in rows}

    # The acceptance point: <= 10% error at five nines at budget, and
    # >= 100x less observed error than crude MC at the same budget.
    assert by["permutation MC"]["observed_error"] <= 0.10
    assert by["permutation MC"]["ci_relative_error"] <= 0.10
    ratio = by["crude MC"]["observed_error"] / by["permutation MC"]["observed_error"]
    assert ratio >= 100.0, rows

    show(
        ["estimator", "ms", "unreliability", "obs. rel. err", "CI rel. err", "flow calls"],
        [
            [
                r["estimator"],
                f"{r['ms']:.1f}",
                f"{r['unreliability']:.3e}",
                f"{r['observed_error']:.4f}",
                f"{r['ci_relative_error']:.4f}",
                r["flow_calls"],
            ]
            for r in rows
        ],
        title=(
            f"R1: fujita_fig4 @ p=1e-5, budget {FIG4_BUDGET} "
            f"(exact U = {exact_u:.4e}, crude/perm error ratio {ratio:.0f}x)"
        ),
    )


@pytest.mark.parametrize("budget", CHAIN_CURVE)
def test_r1_beyond_exact_reach_curve(benchmark, show, budget):
    """30-link chained net: relative error vs budget, no exact value."""
    net = _chain_net()
    assert net.num_links == 30
    demand = FlowDemand("s", "t", 2)

    rows = benchmark.pedantic(
        lambda: [
            _row(label, fn, net, demand, budget, 0)[0]
            for label, fn in _ESTIMATORS
        ],
        rounds=1,
        iterations=1,
    )
    by = {r["estimator"]: r for r in rows}
    # Crude MC sees nothing at any of these budgets (U ~ 1e-9); the
    # rare estimators must resolve the event at every budget.
    assert by["crude MC"]["unreliability"] == 0.0
    assert by["permutation MC"]["unreliability"] > 0.0
    assert by["splitting"]["unreliability"] > 0.0

    show(
        ["estimator", "ms", "unreliability", "CI rel. err", "flow calls"],
        [
            [
                r["estimator"],
                f"{r['ms']:.1f}",
                f"{r['unreliability']:.3e}",
                f"{r['ci_relative_error']:.4f}",
                r["flow_calls"],
            ]
            for r in rows
        ],
        title=f"R1: chained 2-link cuts (30 links, 2^30 configs), budget {budget}",
    )


def test_r1_beyond_exact_reach_committed_budget(benchmark, show):
    """The <=10% bar on the beyond-exact-reach workload, asserted."""
    net = _chain_net()
    demand = FlowDemand("s", "t", 2)

    def measure():
        perm = permutation_montecarlo_reliability(
            net, demand, num_samples=CHAIN_BUDGET, seed=0
        )
        split = splitting_reliability(net, demand, num_samples=CHAIN_BUDGET, seed=0)
        return perm, split

    perm, split = benchmark.pedantic(measure, rounds=1, iterations=1)

    # Acceptance bar: <= 10% relative error at the committed budget.
    assert _ci_relative_error(perm) <= 0.10
    assert _ci_relative_error(split) <= 0.10
    # Cross-validation: two independent methods, overlapping intervals.
    assert perm.details["unreliability_low"] <= split.details["unreliability_high"]
    assert split.details["unreliability_low"] <= perm.details["unreliability_high"]

    show(
        ["estimator", "unreliability", "CI rel. err"],
        [
            [label, f"{_unreliability(est):.3e}", f"{_ci_relative_error(est):.4f}"]
            for label, est in [("permutation MC", perm), ("splitting", split)]
        ],
        title=f"R1: committed budget {CHAIN_BUDGET} on the 30-link chained net",
    )
