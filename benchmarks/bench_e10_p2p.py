"""E10 — the §II motivation, quantified: overlay families under churn.

Regenerates: exact reliability, Monte-Carlo estimate and correlated
peer-level simulation for single-tree / multi-tree / mesh overlays, for
the deepest subscriber.  Shape to reproduce: multi-tree > single-tree
at equal stripe count (the SplitStream argument the paper cites)."""

from repro.core import FlowDemand, compute_reliability
from repro.p2p import (
    ChildChurnModel,
    MEDIA_SERVER,
    build_overlay,
    make_peers,
    peer_level_reliability,
    run_scenario,
    to_flow_network,
)

FAMILIES = ("single-tree", "multi-tree", "mesh")


def _family_rows():
    rows = []
    values = {}
    for family in FAMILIES:
        scenario = run_scenario(
            family,
            num_peers=8,
            num_stripes=2,
            mean_session=300,
            mean_offline=60,
            upload_capacity=6,
            num_samples=8_000,
            peer_level_trials=3_000,
            seed=0,
        )
        values[family] = scenario.exact_reliability
        rows.append(
            [
                family,
                scenario.exact_reliability,
                scenario.estimate,
                scenario.peer_level,
                scenario.max_depth,
                scenario.exact_method,
            ]
        )
    return rows, values


def test_e10_overlay_family_table(benchmark, show):
    rows, values = benchmark.pedantic(_family_rows, rounds=1, iterations=1)
    show(
        ["overlay", "exact R", "monte-carlo", "peer-level", "depth", "method"],
        rows,
        title="E10: overlay reliability for the deepest subscriber",
    )
    # The paper's SII shape: striped interior-disjoint trees beat one tree.
    assert values["multi-tree"] > values["single-tree"]
    # Estimates track the exact values.
    for row in rows:
        assert abs(row[1] - row[2]) < 0.03


def test_e10_exact_computation(benchmark):
    peers = make_peers(8, upload_capacity=6, mean_session=300, mean_offline=60)
    overlay = build_overlay("multi-tree", peers, num_stripes=2)
    net = to_flow_network(overlay, ChildChurnModel())
    demand = FlowDemand(MEDIA_SERVER, "p7", 2)
    result = benchmark(compute_reliability, net, demand=demand)
    assert 0 < result.value < 1


def test_e10_peer_level_simulation(benchmark):
    peers = make_peers(8, upload_capacity=6, mean_session=300, mean_offline=60)
    overlay = build_overlay("multi-tree", peers, num_stripes=2)
    value = benchmark(
        peer_level_reliability, overlay, "p7", 2, num_trials=500, seed=0
    )
    assert 0 <= value <= 1
