"""E6 — Example 6 / Table I: the ACCUMULATION procedure.

Regenerates: p_{b1}, p_{b2}, p_{b1,b2} and the inclusion-exclusion sum
of the worked example, through the library's accumulate()."""

import numpy as np

from repro.core import RealizationArray, accumulate

S_MASKS = np.array([0b01, 0b10, 0b11, 0b10], dtype=np.uint64)  # c1..c4
T_MASKS = np.array([0b11, 0b10, 0b01, 0b00], dtype=np.uint64)  # c5..c8


def arrays():
    quarter = np.full(4, 0.25)
    return (
        RealizationArray(S_MASKS, quarter, 2, 0),
        RealizationArray(T_MASKS, quarter, 2, 0),
    )


def test_e6_table1_accumulation(benchmark, show):
    source, sink = arrays()
    value = benchmark(accumulate, source, sink, [0, 1])
    p_b1 = (0.25 + 0.25) * (0.25 + 0.25)
    p_b2 = (0.25 * 3) * (0.25 * 2)
    p_b12 = 0.25 * 0.25
    expected = p_b1 + p_b2 - p_b12
    show(
        ["term", "value"],
        [
            ["p_{b1} = (p(c1)+p(c3)) (p(c5)+p(c7))", p_b1],
            ["p_{b2} = (p(c2)+p(c3)+p(c4)) (p(c5)+p(c6))", p_b2],
            ["p_{b1,b2} = p(c3) p(c5)", p_b12],
            ["r_E' = p_b1 + p_b2 - p_b1b2", expected],
            ["ACCUMULATION", value],
        ],
        title="E6: Example 6 / Table I",
    )
    assert abs(value - expected) < 1e-12
