"""S1 — sweep engine: cached realization arrays vs pointwise rebuilds.

The fig-4 availability curve (the paper's Fig. 6 shape) evaluates the
same bottleneck decomposition at 33 per-link availabilities.  The
pointwise baseline rebuilds both §III-C realization arrays at every
point; the sweep engine builds the columns once into a
content-addressed ``ArrayCache`` and evaluates Eq. 2 / Eq. 3 for the
whole grid vectorized — a warm sweep performs **zero** max-flow solves.

Every sweep point is asserted bit-identical to the fresh pointwise call
(``==`` on the float, not approx) before timings are reported; the
committed snapshot lives in ``benchmarks/BENCH_sweep.json`` and the
acceptance bar (warm sweep >= 10x faster than the pointwise curve, with
``flow_calls == 0``) is asserted here so a regression fails the bench,
not just the JSON diff.
"""

import numpy as np

from repro.bench.harness import time_call
from repro.core.bottleneck import bottleneck_reliability
from repro.core.demand import FlowDemand
from repro.core.sweep import ArrayCache, SweepSpec, compute_reliability_sweep
from repro.obs import Recorder, record

POINTS = 33
DEMAND = FlowDemand("s", "t", 2)


def _spec():
    return SweepSpec.availability([float(v) for v in np.linspace(0.7, 0.99, POINTS)])


def _pointwise_curve(net, spec):
    results = []
    for i in range(len(spec)):
        results.append(bottleneck_reliability(spec.point_network(net, i), DEMAND))
    return results


def _measured(fn, *args, **kwargs):
    recorder = Recorder()
    with record(recorder):
        timing = time_call(fn, *args, repeats=3, **kwargs)
    return timing, recorder.counter_totals()


def test_s1_fig4_availability_curve(benchmark, show):
    from repro.graph.builders import fujita_fig4

    net = fujita_fig4()
    spec = _spec()

    def run():
        cold_timing, cold_totals = _measured(_pointwise_curve, net, spec)
        pointwise = cold_timing.value

        # Cold sweep: one array build for the whole curve (a fresh cache
        # per repetition, or repetitions 2..n would time the warm path).
        sweep_cold_timing, _ = _measured(
            lambda: compute_reliability_sweep(
                net, DEMAND, sweep=spec, cache=ArrayCache()
            )
        )
        # Warm sweep: every column served from the cache, zero solves.
        cache = ArrayCache()
        compute_reliability_sweep(net, DEMAND, sweep=spec, cache=cache)
        warm_timing, warm_totals = _measured(
            lambda: compute_reliability_sweep(net, DEMAND, sweep=spec, cache=cache)
        )
        return {
            "pointwise": cold_timing,
            "pointwise_flow_calls": sum(r.flow_calls for r in pointwise),
            "pointwise_results": pointwise,
            "sweep_cold": sweep_cold_timing,
            "sweep_warm": warm_timing,
            "warm_cache_hits": int(warm_totals.get("array_cache_hits", 0)) // 3,
            "cold_flow_solves": int(cold_totals.get("flow_solves", 0)) // 3,
        }

    data = benchmark.pedantic(run, rounds=1, iterations=1)
    pointwise = data["pointwise_results"]
    cold_sweep = data["sweep_cold"].value
    warm_sweep = data["sweep_warm"].value

    # Bit-identity at every point, cold and warm.
    assert [r.value for r in pointwise] == cold_sweep.values == warm_sweep.values
    # The acceptance bar: a warm sweep solves nothing and is >= 10x faster.
    assert warm_sweep.flow_calls == 0
    speedup = data["pointwise"].seconds / data["sweep_warm"].seconds
    assert speedup >= 10.0

    rows = [
        [
            "pointwise x33",
            f"{data['pointwise'].seconds * 1e3:.2f}",
            data["pointwise_flow_calls"],
            "1.00x",
        ],
        [
            "sweep (cold cache)",
            f"{data['sweep_cold'].seconds * 1e3:.2f}",
            cold_sweep.flow_calls,
            f"{data['pointwise'].seconds / data['sweep_cold'].seconds:.2f}x",
        ],
        [
            "sweep (warm cache)",
            f"{data['sweep_warm'].seconds * 1e3:.2f}",
            warm_sweep.flow_calls,
            f"{speedup:.2f}x",
        ],
    ]
    show(
        ["configuration", "ms", "flow calls", "speedup"],
        rows,
        title=f"S1: {POINTS}-point fig4 availability curve",
    )
