"""A3 — ablation: naive-algorithm engineering.

Two levers, both exact: (1) monotone pruning of the configuration scan,
(2) vectorized configuration probabilities (the doubling table) vs the
scalar per-configuration product."""

import numpy as np
import pytest

from repro.bench.harness import time_call
from repro.bench.workloads import scaling_workload
from repro.core import FlowDemand, naive_reliability
from repro.probability import configuration_probabilities, configuration_probability


def _pruning_rows():
    rows = []
    for size in (8, 10, 12):
        workload = scaling_workload(size, demand=2, k=2, seed=5)
        net, demand = workload.network, workload.demand
        pruned = time_call(naive_reliability, net, demand, prune=True, repeats=1)
        plain = time_call(naive_reliability, net, demand, prune=False, repeats=1)
        assert pruned.value.value == pytest.approx(plain.value.value, abs=1e-12)
        rows.append(
            [
                net.num_links,
                plain.value.flow_calls,
                pruned.value.flow_calls,
                f"{plain.seconds * 1e3:.1f}",
                f"{pruned.seconds * 1e3:.1f}",
                f"{plain.value.flow_calls / pruned.value.flow_calls:.1f}x",
            ]
        )
    return rows


def test_a3_pruning_table(benchmark, show):
    rows = benchmark.pedantic(_pruning_rows, rounds=1, iterations=1)
    show(
        ["|E|", "calls (plain)", "calls (pruned)", "plain ms", "pruned ms", "call savings"],
        rows,
        title="A3: monotone pruning of the naive scan",
    )


def test_a3_probability_vectorization(benchmark, show):
    probs = list(np.random.default_rng(0).uniform(0.05, 0.4, size=16))
    vectorized = benchmark.pedantic(
        lambda: time_call(configuration_probabilities, probs), rounds=1, iterations=1
    )

    def scalar_all():
        return [configuration_probability(probs, mask) for mask in range(1 << 16)]

    scalar = time_call(scalar_all, repeats=1)
    assert np.allclose(vectorized.value, scalar.value)
    show(
        ["variant", "ms for 2^16 configs"],
        [
            ["numpy doubling table", f"{vectorized.seconds * 1e3:.2f}"],
            ["scalar product loop", f"{scalar.seconds * 1e3:.2f}"],
        ],
        title="A3: configuration-probability construction",
    )
    assert vectorized.seconds < scalar.seconds


def test_a3_pruned_naive(benchmark):
    workload = scaling_workload(10, demand=2, k=2, seed=5)
    result = benchmark(naive_reliability, workload.network, workload.demand, prune=True)
    assert 0 < result.value < 1


def test_a3_unpruned_naive(benchmark):
    workload = scaling_workload(10, demand=2, k=2, seed=5)
    result = benchmark(naive_reliability, workload.network, workload.demand, prune=False)
    assert 0 < result.value < 1
