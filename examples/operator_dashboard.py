#!/usr/bin/env python
"""Operator dashboard: the questions a streaming operator actually asks.

Built on the paper's reliability machinery:

1. *"What bit-rate can I promise at 99%?"* — the full PMF of the
   surviving max-flow (``flow_value_distribution``).
2. *"Do BOTH premium subscribers get the stream at once?"* — broadcast
   reliability with capacity contention (``broadcast_reliability``).
3. *"My network is too big to enumerate — now what?"* — series-parallel
   reduction first, stratified sampling after.
4. *"Where does the computation spend its time?"* — a traced run and
   the per-phase accounting from ``result.details["obs"]``.

Run:  python examples/operator_dashboard.py
"""

from repro import FlowDemand, FlowNetwork, compute_reliability, obs
from repro.bench.reporting import PHASE_HEADERS, phase_rows, print_table
from repro.core import (
    coverage_curve,
    flow_value_distribution,
    montecarlo_reliability,
    naive_reliability,
    reduce_for_unit_demand,
    stratified_montecarlo_reliability,
)


def build_cdn() -> FlowNetwork:
    """A small content-delivery topology: origin, two POPs, three edges."""
    net = FlowNetwork(name="cdn")
    net.add_link("origin", "pop1", 3, 0.02)
    net.add_link("origin", "pop2", 3, 0.02)
    net.add_link("pop1", "edge_a", 2, 0.05)
    net.add_link("pop1", "edge_b", 1, 0.05)
    net.add_link("pop2", "edge_b", 1, 0.05)
    net.add_link("pop2", "edge_c", 2, 0.05)
    net.add_link("pop1", "pop2", 1, 0.03)
    net.add_link("edge_a", "sub1", 2, 0.08)
    net.add_link("edge_b", "sub1", 1, 0.08)
    net.add_link("edge_b", "sub2", 1, 0.08)
    net.add_link("edge_c", "sub2", 2, 0.08)
    return net


def main() -> None:
    net = build_cdn()
    print(net.describe())

    # 1. rate promise
    dist = flow_value_distribution(net, "origin", "sub1")
    rows = [[v, dist.pmf[v], dist.reliability(v)] for v in range(len(dist.pmf))]
    print_table(
        ["rate", "P(= rate)", "P(>= rate)"],
        rows,
        title="Deliverable rate to sub1",
    )
    for confidence in (0.99, 0.95, 0.90):
        print(f"  promise at {confidence:.0%}: {dist.quantile_rate(confidence)} sub-streams")
    print(f"  expected deliverable rate: {dist.expected_value:.4f}")

    # 2. simultaneous delivery to both subscribers
    report = coverage_curve(net, "origin", ["sub1", "sub2"], 2)
    print_table(
        ["quantity", "probability"],
        [
            ["sub1 alone (d=2)", report.individual[0]],
            ["sub2 alone (d=2)", report.individual[1]],
            ["both simultaneously", report.broadcast],
            ["expected coverage", report.expected_coverage],
        ],
        title="Premium tier: two subscribers at 2 sub-streams each",
    )
    weakest, value = report.weakest
    print(f"  weakest subscriber: {weakest} at {value:.4f}")

    # 3. shrink-then-estimate for a single subscriber at unit rate
    demand = FlowDemand("origin", "sub2", 1)
    reduced = reduce_for_unit_demand(net, demand)
    exact = naive_reliability(net, demand).value
    plain = montecarlo_reliability(net, demand, num_samples=2000, seed=0)
    strat = stratified_montecarlo_reliability(net, demand, num_samples=2000, seed=0)
    print_table(
        ["approach", "value", "abs error"],
        [
            [f"SP-reduce ({net.num_links} -> {reduced.network.num_links} links) + exact", exact, 0.0],
            ["plain Monte-Carlo (2k)", plain.value, abs(plain.value - exact)],
            ["stratified Monte-Carlo (2k)", strat.value, abs(strat.value - exact)],
        ],
        title="Unit-rate reliability to sub2, three ways",
    )

    # 4. where a run spends its time: trace the premium-tier computation
    with obs.record():
        traced = compute_reliability(net, "origin", "sub1", 2)
    summary = traced.details["obs"]
    print_table(
        PHASE_HEADERS,
        phase_rows(summary),
        title=f"Phase breakdown ({traced.method}, {summary['seconds'] * 1e3:.1f} ms total)",
    )
    print(f"  max-flow solves: {summary['counters'].get('flow_solves', 0)}"
          f" (== result.flow_calls = {traced.flow_calls})")


if __name__ == "__main__":
    main()
