#!/usr/bin/env python
"""Overlay study: single tree vs SplitStream-style multi-tree vs mesh.

For each overlay family the script computes the exact delivery
reliability for the deepest subscriber (the paper's flow-reliability
question), a Monte-Carlo estimate, the correlated peer-level simulation,
and a chunk-level streaming continuity index — the full pipeline behind
experiment E10.

Run:  python examples/p2p_overlay_study.py
"""

from repro.bench.reporting import print_table
from repro.p2p import (
    StreamingSimulator,
    build_overlay,
    make_peers,
    run_scenario,
)


def continuity(family: str, num_peers: int, num_stripes: int, seed: int) -> float:
    peers = make_peers(
        num_peers, upload_capacity=2 * num_stripes + 2, mean_session=120, mean_offline=30
    )
    overlay = build_overlay(family, peers, num_stripes=num_stripes, seed=seed)
    outs = [
        StreamingSimulator(overlay)
        .run(peers[-1].peer_id, horizon=300, seed=s)
        .continuity_index
        for s in range(3)
    ]
    return sum(outs) / len(outs)


def main() -> None:
    rows = []
    for family in ("single-tree", "multi-tree", "mesh"):
        scenario = run_scenario(
            family,
            num_peers=8,
            num_stripes=2,
            mean_session=300,
            mean_offline=60,
            upload_capacity=6,
            num_samples=20_000,
            peer_level_trials=5_000,
            seed=0,
        )
        rows.append(
            [
                family,
                scenario.exact_reliability,
                scenario.estimate,
                scenario.peer_level,
                continuity(family, 8, 2, 0),
                scenario.max_depth,
                scenario.exact_method,
            ]
        )
    print_table(
        [
            "overlay",
            "exact R",
            "monte-carlo",
            "peer-level sim",
            "continuity",
            "depth",
            "method",
        ],
        rows,
        title="Delivery reliability of the deepest subscriber (8 peers, 2 stripes)",
    )
    print(
        "Reading the table: multi-tree striping beats a single tree at equal\n"
        "stripe count (the paper's SII motivation); the peer-level simulation\n"
        "shows the correlation the independent-link model abstracts away; the\n"
        "continuity index is the time-domain counterpart of the same quantity."
    )


if __name__ == "__main__":
    main()
