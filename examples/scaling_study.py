#!/usr/bin/env python
"""Scaling study: the paper's headline claim, measured.

Naive enumeration costs O(2^|E|) max-flow calls; the bottleneck
algorithm costs O(2^{alpha |E|}).  This script grows |E| on balanced
bottlenecked networks (alpha ~ 1/2) and prints runtimes, flow-call
counts and the observed speedup — which should roughly double with
every added side-link pair.

Run:  python examples/scaling_study.py
"""

from repro.bench.harness import time_call
from repro.bench.reporting import print_table
from repro.bench.workloads import scaling_workload
from repro.core import bottleneck_reliability, naive_reliability


def main() -> None:
    rows = []
    for total_side_links in (8, 10, 12, 14, 16):
        workload = scaling_workload(total_side_links, demand=2, k=2, seed=1)
        net, demand = workload.network, workload.demand

        naive = time_call(naive_reliability, net, demand, repeats=1)
        bneck = time_call(bottleneck_reliability, net, demand, cut=[0, 1], repeats=1)
        assert abs(naive.value.value - bneck.value.value) < 1e-9

        rows.append(
            [
                net.num_links,
                f"{naive.seconds * 1e3:.1f}",
                naive.value.flow_calls,
                f"{bneck.seconds * 1e3:.1f}",
                bneck.value.flow_calls,
                f"{naive.seconds / bneck.seconds:.1f}x",
                f"{naive.value.value:.6f}",
            ]
        )
    print_table(
        ["|E|", "naive ms", "naive calls", "bneck ms", "bneck calls", "speedup", "R"],
        rows,
        title="Naive vs bottleneck, balanced split (alpha ~ 1/2, k=2, d=2)",
    )
    print(
        "The flow-call ratio tracks 2^|E| / (|D| * 2^{|E|/2}); the wall-clock\n"
        "speedup roughly doubles per added link pair, exactly the exponent\n"
        "gap the paper proves."
    )


if __name__ == "__main__":
    main()
