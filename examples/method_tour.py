#!/usr/bin/env python
"""Method tour: which algorithm for which network?

Walks one network family per exact paradigm, at a size chosen so that
the *wrong* method would be hopeless — the practical decision guide of
docs/ALGORITHMS.md as a runnable script.

Run:  python examples/method_tour.py
"""

from repro import FlowDemand, FlowNetwork
from repro.bench.harness import time_call
from repro.bench.reporting import print_table
from repro.core import (
    bottleneck_reliability,
    directed_frontier_reliability,
    factoring_reliability,
    frontier_reliability,
    series_parallel_reliability,
    stratified_montecarlo_reliability,
)
from repro.graph import bottlenecked_network


def sp_ladder(sections: int) -> FlowNetwork:
    net = FlowNetwork(name="sp-ladder")
    nodes = ["s"] + [f"m{i}" for i in range(sections - 1)] + ["t"]
    for a, b in zip(nodes, nodes[1:]):
        net.add_link(a, b, 1, 0.05)
        net.add_link(a, b, 1, 0.05)
    return net


def undirected_grid(rows: int, cols: int) -> FlowNetwork:
    net = FlowNetwork(name="grid")
    def name(r, c):
        if (r, c) == (0, 0):
            return "s"
        if (r, c) == (rows - 1, cols - 1):
            return "t"
        return f"n{r}_{c}"
    for r in range(rows):
        for c in range(cols):
            if c + 1 < cols:
                net.add_link(name(r, c), name(r, c + 1), 1, 0.08, directed=False)
            if r + 1 < rows:
                net.add_link(name(r, c), name(r + 1, c), 1, 0.08, directed=False)
    return net


def relay_chain(sections: int) -> FlowNetwork:
    net = FlowNetwork(name="relay-chain")
    prev = "s"
    for i in range(sections):
        nxt = f"c{i}" if i < sections - 1 else "t"
        net.add_link(prev, f"a{i}", 1, 0.06)
        net.add_link(prev, f"b{i}", 1, 0.06)
        net.add_link(f"a{i}", nxt, 1, 0.06)
        net.add_link(f"b{i}", nxt, 1, 0.06)
        prev = nxt
    return net


def dense_blob() -> FlowNetwork:
    """No structure to exploit: dense, no small cut, demand 2."""
    from repro.graph import layered_network

    return layered_network([3, 3], seed=7, max_capacity=2, p_range=(0.05, 0.2))


def main() -> None:
    rows = []

    # 1. series-parallel ladder: polynomial reduction
    net = sp_ladder(200)  # 400 links
    demand = FlowDemand("s", "t", 1)
    timed = time_call(series_parallel_reliability, net, demand)
    rows.append([net.name, net.num_links, "series-parallel", f"{timed.seconds * 1e3:.1f}",
                 timed.value.value])

    # 2. undirected grid: frontier sweep (partition states)
    net = undirected_grid(4, 10)
    timed = time_call(frontier_reliability, net, FlowDemand("s", "t", 1))
    rows.append([net.name, net.num_links, "frontier", f"{timed.seconds * 1e3:.1f}",
                 timed.value.value])

    # 3. directed relay chain: frontier sweep (relation states)
    net = relay_chain(50)  # 200 directed links
    timed = time_call(directed_frontier_reliability, net, FlowDemand("s", "t", 1))
    rows.append([net.name, net.num_links, "frontier-directed", f"{timed.seconds * 1e3:.1f}",
                 timed.value.value])

    # 4. bottlenecked network: the paper's algorithm
    net = bottlenecked_network(
        source_side_links=11, sink_side_links=11, num_bottlenecks=2, demand=2, seed=5
    )
    timed = time_call(bottleneck_reliability, net, FlowDemand("s", "t", 2), cut=[0, 1])
    rows.append([net.name, net.num_links, "bottleneck (paper)", f"{timed.seconds * 1e3:.1f}",
                 timed.value.value])

    # 5. dense unstructured: factoring
    net = dense_blob()
    timed = time_call(factoring_reliability, net, FlowDemand("s", "t", 2))
    rows.append([net.name, net.num_links, "factoring", f"{timed.seconds * 1e3:.1f}",
                 timed.value.value])

    # 6. too big for anything exact: stratified Monte-Carlo
    big = bottlenecked_network(
        source_side_links=30, sink_side_links=30, num_bottlenecks=3, demand=2, seed=9
    )
    timed = time_call(
        stratified_montecarlo_reliability, big, FlowDemand("s", "t", 2),
        num_samples=2000, seed=0, repeats=1,
    )
    rows.append([big.name, big.num_links, "stratified MC (estimate)",
                 f"{timed.seconds * 1e3:.1f}", timed.value.value])

    print_table(
        ["network", "|E|", "method", "ms", "R"],
        rows,
        title="One method per structure — each would be intractable elsewhere",
    )
    print(
        "Rules of thumb: series-parallel first (free when it applies), frontier\n"
        "for elongated topologies, the paper's bottleneck algorithm when a small\n"
        "cut splits the graph, factoring for everything exact, stratified\n"
        "sampling when nothing exact fits."
    )


if __name__ == "__main__":
    main()
