#!/usr/bin/env python
"""Quickstart: build a small streaming network and compute its
reliability with every method in the library.

Run:  python examples/quickstart.py
"""

from repro import FlowDemand, FlowNetwork, compute_reliability
from repro.core import (
    bottleneck_reliability,
    factoring_reliability,
    montecarlo_reliability,
    naive_reliability,
    reliability_bounds,
)
from repro.graph import find_bottleneck


def build_network() -> FlowNetwork:
    """A 10-link delivery network with a 2-link bottleneck.

    The media server ``s`` feeds two relay clusters that communicate
    with the subscriber side only through the links ``a -> c`` and
    ``b -> d`` — the bottleneck the paper's algorithm exploits.
    """
    net = FlowNetwork(name="quickstart")
    net.add_link("a", "c", 2, 0.05)  # 0: bottleneck
    net.add_link("b", "d", 2, 0.05)  # 1: bottleneck
    net.add_link("s", "a", 2, 0.10)  # 2
    net.add_link("s", "b", 2, 0.10)  # 3
    net.add_link("s", "a", 1, 0.20)  # 4: backup feeder
    net.add_link("a", "b", 1, 0.15)  # 5: cross link
    net.add_link("c", "t", 2, 0.10)  # 6
    net.add_link("d", "t", 2, 0.10)  # 7
    net.add_link("c", "d", 1, 0.15)  # 8: cross link
    net.add_link("d", "t", 1, 0.20)  # 9: backup drain
    return net


def main() -> None:
    net = build_network()
    demand = FlowDemand("s", "t", 2)  # 2 unit-rate sub-streams
    print(net.describe())
    print(f"\ndemand: {demand}\n")

    # The one-call API picks the best method automatically.
    auto = compute_reliability(net, demand=demand)
    print(f"compute_reliability(auto) -> {auto.value:.6f}  (method={auto.method})")

    # The paper's algorithm, with the discovered bottleneck cut shown.
    split = find_bottleneck(net, "s", "t")
    print(f"\ndiscovered bottleneck cut: links {split.cut}, alpha={split.alpha:.2f}")
    bneck = bottleneck_reliability(net, demand)
    print(f"bottleneck algorithm      -> {bneck.value:.6f}  ({bneck.flow_calls} max-flow calls)")

    # Exact baselines.
    naive = naive_reliability(net, demand)
    print(f"naive enumeration         -> {naive.value:.6f}  ({naive.flow_calls} max-flow calls)")
    fact = factoring_reliability(net, demand)
    print(f"factoring                 -> {fact.value:.6f}  ({fact.flow_calls} max-flow calls)")

    # Cheap bounds and a Monte-Carlo estimate.
    low, high = reliability_bounds(net, demand)
    print(f"bounds                    -> [{low:.6f}, {high:.6f}]")
    est = montecarlo_reliability(net, demand, num_samples=50_000, seed=0)
    print(
        f"monte-carlo (50k samples) -> {est.value:.6f}  "
        f"95% CI [{est.low:.6f}, {est.high:.6f}]"
    )

    assert abs(naive.value - bneck.value) < 1e-10
    assert abs(naive.value - fact.value) < 1e-10
    print("\nall exact methods agree; the estimate's CI covers them.")


if __name__ == "__main__":
    main()
