#!/usr/bin/env python
"""Walk through every worked example of the paper, printing what the
paper prints (Fujita, IPDPSW 2017).

Run:  python examples/paper_walkthrough.py
"""

from repro import FlowDemand
from repro.core import (
    accumulate,
    bottleneck_reliability,
    bridge_reliability,
    build_side_array,
    classify_by_support,
    describe_assignment,
    enumerate_assignments,
    naive_reliability,
    pattern_probability,
)
from repro.graph import fujita_fig2_bridge, fujita_fig4, split_on_cut


def section(title: str) -> None:
    print(f"\n{'=' * 68}\n{title}\n{'=' * 68}")


def example_1() -> None:
    section("Example 1 (SIII-B): assignments for d=5, E*={e1,e2,e3}, c=3 each")
    assignments = enumerate_assignments([3, 3, 3], 5)
    print(f"|D| = {len(assignments)}")
    for a in assignments:
        print(f"  {describe_assignment(a)}")


def figure_2() -> None:
    section("Fig. 2 + Eq. (1): graph with a bridge")
    net = fujita_fig2_bridge()
    demand = FlowDemand("s", "t", 2)
    result = bridge_reliability(net, demand)
    d = result.details
    print(f"bridge link: e{d['bridge'] + 1} (paper's e9)")
    print(f"r(G_s) = {d['source_side_reliability']:.6f}")
    print(f"1-p(e') = {d['bridge_availability']:.6f}")
    print(f"r(G_t) = {d['sink_side_reliability']:.6f}")
    print(f"Eq.(1) product  r = {result.value:.6f}")
    print(f"naive reference r = {naive_reliability(net, demand).value:.6f}")


def figures_4_and_5() -> None:
    section("Fig. 4 / Fig. 5 / Example 3: two bottleneck links, d = 2")
    net = fujita_fig4()
    demand = FlowDemand("s", "t", 2)
    split = split_on_cut(net, "s", "t", [0, 1])
    assignments = enumerate_assignments([2, 2], 2)
    print(f"assignment set D = {assignments}")

    array = build_side_array(
        split.source_side,
        role="source",
        terminal="s",
        ports=split.source_ports,
        assignments=assignments,
        demand=2,
    )
    label = {0b1101: "Fig 5(a): e4 failed",
             0b0101: "Fig 5(b): e4, e6 failed",
             0b1111: "Fig 5(c): all alive"}
    for mask, name in label.items():
        realized = [assignments[i] for i in array.realized_indices(mask)]
        print(f"  {name:<26} realizes {realized}")

    exact = bottleneck_reliability(net, demand, cut=[0, 1])
    print(f"\nbottleneck algorithm r = {exact.value:.6f} "
          f"({exact.flow_calls} max-flow calls)")
    ref = naive_reliability(net, demand)
    print(f"naive reference      r = {ref.value:.6f} "
          f"({ref.flow_calls} max-flow calls)")


def example_5() -> None:
    section("Example 5 (SIV-A): classification by supporting subset")
    assignments = [(1, 2, 0), (2, 1, 0), (1, 1, 1), (0, 2, 1), (2, 0, 1)]
    table = classify_by_support(assignments, 3)
    names = {
        0b111: "{e1,e2,e3}", 0b011: "{e1,e2}", 0b110: "{e2,e3}",
        0b101: "{e1,e3}", 0b001: "{e1}", 0b010: "{e2}", 0b100: "{e3}", 0: "{}",
    }
    for mask in (0b111, 0b011, 0b110, 0b101, 0b001, 0b010, 0b100, 0):
        members = [assignments[i] for i in table[mask]]
        print(f"  D_{names[mask]:<10} = {members}")


def example_6() -> None:
    section("Example 6 / Table I (SIV-B): ACCUMULATION by inclusion-exclusion")
    import numpy as np

    from repro.core import RealizationArray

    s_masks = np.array([0b01, 0b10, 0b11, 0b10], dtype=np.uint64)
    t_masks = np.array([0b11, 0b10, 0b01, 0b00], dtype=np.uint64)
    quarter = np.full(4, 0.25)
    source = RealizationArray(s_masks, quarter, 2, 0)
    sink = RealizationArray(t_masks, quarter, 2, 0)
    print("Table I realized sets (c1..c4 source side, c5..c8 sink side):")
    print("  c1:{b1}  c2:{b2}  c3:{b1,b2}  c4:{b2}")
    print("  c5:{b1,b2}  c6:{b2}  c7:{b1}  c8:{}")
    p_b1 = (0.25 + 0.25) * (0.25 + 0.25)
    p_b2 = (0.25 * 3) * (0.25 * 2)
    p_b12 = 0.25 * 0.25
    print(f"p_(b1)      = {p_b1:.6f}")
    print(f"p_(b2)      = {p_b2:.6f}")
    print(f"p_(b1,b2)   = {p_b12:.6f}")
    print(f"r_E' = p_b1 + p_b2 - p_b1b2 = {p_b1 + p_b2 - p_b12:.6f}")
    print(f"ACCUMULATION (library)      = {accumulate(source, sink, [0, 1]):.6f}")


def equations_2_and_3() -> None:
    section("Eq. (2)/(3): bottleneck survival pattern mixture on Fig. 4")
    net = fujita_fig4()
    for pattern, name in ((0b11, "{e1,e2}"), (0b01, "{e1}"), (0b10, "{e2}"), (0, "{}")):
        print(f"  p_{name:<8} = {pattern_probability(net, (0, 1), pattern):.6f}")


def main() -> None:
    example_1()
    figure_2()
    figures_4_and_5()
    example_5()
    example_6()
    equations_2_and_3()
    print()


if __name__ == "__main__":
    main()
