"""Simulators that validate the reliability computations.

Two levels of fidelity:

* :func:`peer_level_reliability` — *static snapshot* Monte Carlo at the
  **peer** level: sample each peer online/offline by its availability,
  mark overlay links dead when an endpoint is offline, and test flow
  feasibility.  This is the ground truth the independent-link model
  approximates; comparing it against the exact computation on the
  churn-model network quantifies the approximation (experiment E10).

* :class:`StreamingSimulator` — a chunk-level **discrete-event**
  simulation: peers alternate exponential online/offline periods, the
  server emits one chunk per stripe per interval, chunks propagate down
  the stripe edges with a per-hop delay, and the subscriber's
  *continuity index* (fraction of chunks received) is measured.  Under
  fast repair assumptions the long-run continuity approaches the
  snapshot availability model, which the E10 bench demonstrates.

Both are deterministic for a fixed seed.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.core.feasibility import FeasibilityOracle
from repro.exceptions import EstimationError
from repro.graph.generators import as_rng
from repro.p2p.churn import ChurnModel, EndpointChurnModel
from repro.p2p.overlay import Overlay, to_flow_network
from repro.p2p.peer import MEDIA_SERVER

__all__ = ["peer_level_reliability", "StreamingSimulator", "StreamingOutcome"]


def peer_level_reliability(
    overlay: Overlay,
    subscriber: str,
    demand_rate: int,
    *,
    num_trials: int = 2000,
    seed: int | np.random.Generator | None = 0,
    require_subscriber_online: bool = False,
) -> float:
    """Monte-Carlo delivery probability with *correlated* link failures.

    Each trial samples every peer up/down independently by its
    availability; a link is alive iff both endpoints are up (the server
    is always up; the subscriber's own state is excluded unless
    ``require_subscriber_online``).  Feasibility is then a max-flow
    check on the overlay's links with those aliveness patterns.
    """
    if num_trials < 1:
        raise EstimationError("num_trials must be positive")
    rng = as_rng(seed)
    # Capacities from the overlay; probabilities are irrelevant here
    # (aliveness is decided at the peer level), so use a neutral model.
    net = to_flow_network(overlay, EndpointChurnModel())
    oracle = FeasibilityOracle(net, MEDIA_SERVER, subscriber, demand_rate)
    peer_ids = [p.peer_id for p in overlay.peers]
    availability = np.array([p.availability for p in overlay.peers])
    cache: dict[int, bool] = {}
    hits = 0
    for _ in range(num_trials):
        up = rng.random(len(peer_ids)) < availability
        online = {pid for pid, flag in zip(peer_ids, up) if flag}
        online.add(MEDIA_SERVER)
        if not require_subscriber_online:
            online.add(subscriber)
        elif subscriber not in online:
            continue
        alive = 0
        for index, edge in enumerate(overlay.edges):
            if edge.tail in online and edge.head in online:
                alive |= 1 << index
        verdict = cache.get(alive)
        if verdict is None:
            verdict = oracle.feasible(alive)
            cache[alive] = verdict
        if verdict:
            hits += 1
    return hits / num_trials


@dataclass(frozen=True)
class StreamingOutcome:
    """Result of one discrete-event streaming run."""

    subscriber: str
    chunks_expected: int
    chunks_received: int
    per_stripe_received: tuple[int, ...]
    horizon: float
    startup_delay: float | None = None
    mean_delivery_delay: float | None = None

    @property
    def continuity_index(self) -> float:
        """Fraction of expected chunks that arrived."""
        if self.chunks_expected == 0:
            return 1.0
        return self.chunks_received / self.chunks_expected


# Event kinds, ordered so that state changes at time t apply before
# chunk hops at the same instant.
_EV_PEER_DOWN = 0
_EV_PEER_UP = 1
_EV_CHUNK = 2


@dataclass
class StreamingSimulator:
    """Chunk-level discrete-event streaming simulation.

    Parameters
    ----------
    overlay:
        The delivery topology.  Stripe edges form the forwarding rules:
        when a peer holds a chunk of stripe ``k`` it forwards it to all
        its stripe-``k`` children.
    chunk_interval:
        Seconds between consecutive chunks of each stripe.
    hop_delay:
        Forwarding latency per overlay hop.
    """

    overlay: Overlay
    chunk_interval: float = 1.0
    hop_delay: float = 0.05
    _children: dict[tuple[str, int], list[str]] = field(init=False, default_factory=dict)

    def __post_init__(self) -> None:
        if self.chunk_interval <= 0 or self.hop_delay < 0:
            raise EstimationError("chunk_interval must be > 0 and hop_delay >= 0")
        for edge in self.overlay.edges:
            self._children.setdefault((edge.tail, edge.stripe), []).append(edge.head)

    def run(
        self,
        subscriber: str,
        *,
        horizon: float = 600.0,
        seed: int | np.random.Generator | None = 0,
    ) -> StreamingOutcome:
        """Simulate ``horizon`` seconds and report the subscriber's
        continuity.

        Peers alternate exponential online/offline periods drawn from
        their ``mean_session`` / ``mean_offline``; a chunk hop succeeds
        only if the forwarding peer is online at send time and the
        receiving peer is online at arrival time.  The subscriber is
        pinned online (we measure delivery *to* it, not its own churn).
        """
        self.overlay.peer(subscriber)
        rng = as_rng(seed)
        online: dict[str, bool] = {MEDIA_SERVER: True}
        events: list[tuple[float, int, int, tuple]] = []
        counter = 0

        def push(time: float, kind: int, payload: tuple) -> None:
            nonlocal counter
            heapq.heappush(events, (time, kind, counter, payload))
            counter += 1

        for peer in self.overlay.peers:
            online[peer.peer_id] = True
            if peer.peer_id == subscriber:
                continue
            push(float(rng.exponential(peer.mean_session)), _EV_PEER_DOWN, (peer.peer_id,))

        num_stripes = self.overlay.num_stripes
        expected_per_stripe = int(horizon // self.chunk_interval)
        seen: set[tuple[int, int, str]] = set()  # (stripe, seq, peer)
        received = [0] * num_stripes
        first_arrival: float | None = None
        delay_total = 0.0
        delay_count = 0

        t = 0.0
        seq = 0
        while t < horizon:
            for stripe in range(num_stripes):
                push(t, _EV_CHUNK, (MEDIA_SERVER, stripe, seq))
            t += self.chunk_interval
            seq += 1

        peers_by_id = {p.peer_id: p for p in self.overlay.peers}
        while events:
            time, kind, _, payload = heapq.heappop(events)
            if time > horizon:
                break
            if kind == _EV_PEER_DOWN:
                (peer_id,) = payload
                online[peer_id] = False
                peer = peers_by_id[peer_id]
                push(time + float(rng.exponential(peer.mean_offline)), _EV_PEER_UP, payload)
            elif kind == _EV_PEER_UP:
                (peer_id,) = payload
                online[peer_id] = True
                peer = peers_by_id[peer_id]
                push(time + float(rng.exponential(peer.mean_session)), _EV_PEER_DOWN, payload)
            else:
                node, stripe, chunk_seq = payload
                if node != MEDIA_SERVER and not online[node] and node != subscriber:
                    continue  # chunk lost: receiver offline at arrival
                key = (stripe, chunk_seq, node)
                if key in seen:
                    continue
                seen.add(key)
                if node == subscriber:
                    if chunk_seq < expected_per_stripe:
                        received[stripe] += 1
                        emitted = chunk_seq * self.chunk_interval
                        delay_total += time - emitted
                        delay_count += 1
                        if first_arrival is None:
                            first_arrival = time
                    continue
                for child in self._children.get((node, stripe), []):
                    push(time + self.hop_delay, _EV_CHUNK, (child, stripe, chunk_seq))
        total_received = sum(received)
        return StreamingOutcome(
            subscriber=subscriber,
            chunks_expected=expected_per_stripe * num_stripes,
            chunks_received=total_received,
            per_stripe_received=tuple(received),
            horizon=horizon,
            startup_delay=first_arrival,
            mean_delivery_delay=(delay_total / delay_count) if delay_count else None,
        )
