"""Overlay repair: re-parenting orphans after peer departures.

§II of the paper notes that several tree-based systems "adjust the
route to subscribers after detecting faults".  This module models that:
given the set of departed peers, orphaned subtrees re-attach to
surviving providers that (a) already hold the stripe and (b) have
spare upload capacity.

Two consumers:

* :func:`repair_overlay` — the structural operation, usable standalone;
* :func:`repaired_reliability` — Monte-Carlo delivery probability
  *with* repair: sample departures, repair, test delivery.  Comparing
  against :func:`repro.p2p.simulation.peer_level_reliability` (no
  repair) quantifies how much route adjustment buys — the fault-
  tolerance argument the paper's related-work section makes.
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import EstimationError
from repro.graph.generators import as_rng
from repro.p2p.overlay import Overlay, OverlayEdge
from repro.p2p.peer import MEDIA_SERVER

__all__ = ["repair_overlay", "repaired_reliability"]


def _alive_edge(edge: OverlayEdge, online: set[str]) -> bool:
    return (edge.tail == MEDIA_SERVER or edge.tail in online) and edge.head in online


def repair_overlay(
    overlay: Overlay,
    offline: Iterable[str],
    *,
    server_fallback: bool = False,
) -> Overlay:
    """Rebuild delivery edges around departed peers.

    For each stripe: keep edges between online peers whose provider
    still *receives* the stripe (transitively from the server); orphaned
    online peers re-attach, in join order, to any online peer that has
    the stripe and spare upload capacity (the standard tree-repair
    policy).  The media server re-uses its own freed fanout slots (it
    served some peers directly before the departures; those slots adopt
    orphans when no peer can).  With ``server_fallback`` the server
    additionally adopts *any* otherwise-unadoptable orphan — modelling
    systems with a server of last resort.

    Returns a new overlay over the *online* peers only.
    """
    offline_set = set(offline)
    online_peers = [p for p in overlay.peers if p.peer_id not in offline_set]
    online = {p.peer_id for p in online_peers}
    repaired = Overlay(
        peers=online_peers,
        num_stripes=overlay.num_stripes,
        name=f"{overlay.name}|repaired",
    )
    budget = {p.peer_id: p.upload_capacity for p in online_peers}

    for stripe in range(overlay.num_stripes):
        # Transitive closure over ALL surviving edges (a peer may have
        # several providers — e.g. mesh redundancy or hybrid auxiliaries
        # — and holds the stripe if any of them does).
        children: dict[str, list[str]] = {}
        for edge in overlay.stripe_edges(stripe):
            if _alive_edge(edge, online):
                children.setdefault(edge.tail, []).append(edge.head)
        holders: set[str] = {MEDIA_SERVER}
        queue = deque([MEDIA_SERVER])
        while queue:
            node = queue.popleft()
            for child in children.get(node, []):
                if child not in holders:
                    holders.add(child)
                    queue.append(child)
        # Keep the surviving, connected edges; charge upload budgets.
        # The server's stripe fanout budget is what it served originally.
        server_budget = sum(
            e.capacity for e in overlay.stripe_edges(stripe) if e.tail == MEDIA_SERVER
        )
        for edge in overlay.stripe_edges(stripe):
            if _alive_edge(edge, online) and edge.tail in holders:
                repaired.add_edge(edge.tail, edge.head, stripe, edge.capacity)
                if edge.tail == MEDIA_SERVER:
                    server_budget -= edge.capacity
                else:
                    budget[edge.tail] -= edge.capacity

        # Re-attach orphans in join order (repeat until no progress:
        # an adopted orphan can itself adopt the next one).
        changed = True
        while changed:
            changed = False
            for peer in online_peers:
                pid = peer.peer_id
                if pid in holders:
                    continue
                adopter = next(
                    (
                        cand.peer_id
                        for cand in online_peers
                        if cand.peer_id in holders and budget[cand.peer_id] > 0
                    ),
                    None,
                )
                if adopter is None and server_budget > 0:
                    adopter = MEDIA_SERVER
                    server_budget -= 1
                elif adopter is None and server_fallback:
                    adopter = MEDIA_SERVER
                if adopter is None:
                    continue
                repaired.add_edge(adopter, pid, stripe)
                if adopter != MEDIA_SERVER:
                    budget[adopter] -= 1
                holders.add(pid)
                changed = True
    return repaired


def repaired_reliability(
    overlay: Overlay,
    subscriber: str,
    demand_rate: int,
    *,
    num_trials: int = 1000,
    seed: int | np.random.Generator | None = 0,
    server_fallback: bool = False,
) -> float:
    """Monte-Carlo delivery probability with repair after departures.

    Each trial samples every peer online/offline by its availability
    (subscriber pinned online), repairs the overlay, and checks whether
    the subscriber then receives every stripe.  Compare with
    :func:`repro.p2p.simulation.peer_level_reliability` for the
    no-repair baseline.
    """
    if num_trials < 1:
        raise EstimationError("num_trials must be positive")
    overlay.peer(subscriber)
    rng = as_rng(seed)
    peer_ids = [p.peer_id for p in overlay.peers]
    availability = np.array([p.availability for p in overlay.peers])
    hits = 0
    for _ in range(num_trials):
        up = rng.random(len(peer_ids)) < availability
        offline = {pid for pid, flag in zip(peer_ids, up) if not flag}
        offline.discard(subscriber)
        repaired = repair_overlay(overlay, offline, server_fallback=server_fallback)
        # Delivered iff the subscriber receives >= demand_rate distinct
        # stripes (each stripe path exists by construction of repair).
        received = {
            e.stripe for e in repaired.edges if e.head == subscriber
        }
        if len(received) >= demand_rate:
            hits += 1
    return hits / num_trials
