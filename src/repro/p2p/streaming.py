"""Sub-stream delivery paths and scheduling over an overlay.

For tree-shaped and order-based mesh overlays every (stripe, peer) pair
has a unique delivery path from the media server; this module extracts
those paths, checks schedulability against upload capacities and
reports structural quantities (depth, load) used by the experiments.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from repro.exceptions import OverlayError
from repro.p2p.overlay import Overlay, OverlayEdge
from repro.p2p.peer import MEDIA_SERVER

__all__ = ["DeliveryPath", "delivery_paths", "stripe_depth", "schedule_report", "ScheduleReport"]


@dataclass(frozen=True)
class DeliveryPath:
    """The hop sequence of one stripe from the server to one peer."""

    stripe: int
    subscriber: str
    edges: tuple[OverlayEdge, ...]

    @property
    def hops(self) -> int:
        return len(self.edges)

    @property
    def relay_peers(self) -> tuple[str, ...]:
        """Intermediate peers (excludes server and subscriber)."""
        return tuple(e.head for e in self.edges[:-1])


def delivery_paths(overlay: Overlay, subscriber: str) -> dict[int, DeliveryPath]:
    """One delivery path per stripe ending at ``subscriber``.

    Walks parent links backwards per stripe.  Raises
    :class:`OverlayError` if a stripe never reaches the subscriber or
    if a peer has several providers for one stripe (ambiguous path —
    the library's builders never produce that).
    """
    overlay.peer(subscriber)  # validates
    paths: dict[int, DeliveryPath] = {}
    for stripe in range(overlay.num_stripes):
        providers: dict[str, OverlayEdge] = {}
        for edge in overlay.stripe_edges(stripe):
            if edge.head in providers:
                raise OverlayError(
                    f"peer {edge.head!r} has multiple providers for stripe {stripe}"
                )
            providers[edge.head] = edge
        hops: list[OverlayEdge] = []
        node = subscriber
        seen = {node}
        while node != MEDIA_SERVER:
            edge = providers.get(node)
            if edge is None:
                raise OverlayError(
                    f"stripe {stripe} never reaches {subscriber!r} (stuck at {node!r})"
                )
            hops.append(edge)
            node = edge.tail
            if node in seen:
                raise OverlayError(f"stripe {stripe} contains a delivery cycle")
            seen.add(node)
        paths[stripe] = DeliveryPath(
            stripe=stripe, subscriber=subscriber, edges=tuple(reversed(hops))
        )
    return paths


def stripe_depth(overlay: Overlay, stripe: int) -> dict[str, int]:
    """Hop distance of every reachable peer from the server in a stripe."""
    children: dict[str, list[str]] = {}
    for edge in overlay.stripe_edges(stripe):
        children.setdefault(edge.tail, []).append(edge.head)
    depth = {MEDIA_SERVER: 0}
    queue = deque([MEDIA_SERVER])
    while queue:
        node = queue.popleft()
        for child in children.get(node, []):
            if child not in depth:
                depth[child] = depth[node] + 1
                queue.append(child)
    depth.pop(MEDIA_SERVER)
    return depth


@dataclass(frozen=True)
class ScheduleReport:
    """Structural health check of an overlay's delivery schedule."""

    num_peers: int
    num_stripes: int
    max_depth: int
    mean_depth: float
    upload_violations: tuple[str, ...]
    unreached: tuple[tuple[int, str], ...]  # (stripe, peer) pairs

    @property
    def fully_schedulable(self) -> bool:
        """No capacity violations and every peer gets every stripe."""
        return not self.upload_violations and not self.unreached


def schedule_report(overlay: Overlay) -> ScheduleReport:
    """Audit an overlay: coverage, depth and upload feasibility."""
    depths: list[int] = []
    unreached: list[tuple[int, str]] = []
    for stripe in range(overlay.num_stripes):
        reach = stripe_depth(overlay, stripe)
        for peer in overlay.peers:
            d = reach.get(peer.peer_id)
            if d is None:
                unreached.append((stripe, peer.peer_id))
            else:
                depths.append(d)
    return ScheduleReport(
        num_peers=len(overlay.peers),
        num_stripes=overlay.num_stripes,
        max_depth=max(depths) if depths else 0,
        mean_depth=(sum(depths) / len(depths)) if depths else 0.0,
        upload_violations=tuple(overlay.upload_violations()),
        unreached=tuple(unreached),
    )
