"""Tree-structured overlays: single tree and SplitStream-style multi-tree.

Single-tree systems (ESM, Scribe, NICE lineage) push the whole stream
down one distribution tree: simple, but every interior peer is a single
point of failure for its subtree and leaf upload capacity is wasted.

Multi-tree systems (SplitStream, CoopNet, mtreebone) split the stream
into ``k`` stripes delivered over ``k`` trees arranged so that **each
peer is interior in exactly one tree** and a leaf in the others — the
property the paper's §II highlights (citing [1], [3], [6]): one peer
departure then damages at most one stripe's subtree, and every peer's
upload capacity is used.

Both builders produce deterministic overlays from the peer order.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.exceptions import OverlayError
from repro.graph.generators import as_rng
from repro.p2p.overlay import Overlay
from repro.p2p.peer import MEDIA_SERVER, Peer

__all__ = ["single_tree", "multi_tree", "treebone"]


def _tree_edges(order: Sequence[str], fanout: int) -> list[tuple[str, str]]:
    """Edges of a complete ``fanout``-ary tree over ``order`` rooted at
    the media server: node ``i`` is child of node ``(i - 1) // fanout``."""
    edges = []
    for i, node in enumerate(order):
        if i == 0:
            parent = MEDIA_SERVER
        else:
            parent = order[(i - 1) // fanout]
        edges.append((parent, node))
    return edges


def single_tree(
    peers: Sequence[Peer],
    *,
    fanout: int = 2,
    num_stripes: int = 1,
    name: str = "single-tree",
) -> Overlay:
    """One ``fanout``-ary tree carrying every stripe.

    All ``num_stripes`` stripes follow the same edges, so each tree edge
    appears once per stripe (each at capacity 1) — losing a peer loses
    the whole stream for its subtree.
    """
    if fanout < 1:
        raise OverlayError("fanout must be >= 1")
    overlay = Overlay(peers=list(peers), num_stripes=num_stripes, name=name)
    order = [p.peer_id for p in peers]
    for parent, child in _tree_edges(order, fanout):
        for stripe in range(num_stripes):
            overlay.add_edge(parent, child, stripe)
    return overlay


def multi_tree(
    peers: Sequence[Peer],
    *,
    num_stripes: int = 2,
    fanout: int = 2,
    name: str = "multi-tree",
) -> Overlay:
    """SplitStream-style striped trees with interior-disjoint peers.

    Peers are partitioned round-robin into ``num_stripes`` groups; in
    stripe ``i``'s tree the group-``i`` peers form the interior spine
    (a ``fanout``-ary tree) and every other peer attaches as a leaf
    below a spine peer.  Consequently each peer forwards data in
    exactly one stripe — the defining multi-tree property, asserted by
    the tests via :meth:`Overlay.interior_stripes`.
    """
    if num_stripes < 1:
        raise OverlayError("need at least one stripe")
    if fanout < 1:
        raise OverlayError("fanout must be >= 1")
    if len(peers) < num_stripes:
        raise OverlayError("need at least one interior peer per stripe")
    overlay = Overlay(peers=list(peers), num_stripes=num_stripes, name=name)
    groups: list[list[str]] = [[] for _ in range(num_stripes)]
    for i, peer in enumerate(peers):
        groups[i % num_stripes].append(peer.peer_id)

    for stripe in range(num_stripes):
        spine = groups[stripe]
        leaves = [p.peer_id for p in peers if p.peer_id not in spine]
        # Spine: fanout-ary tree of the group, rooted at the server.
        for parent, child in _tree_edges(spine, fanout):
            overlay.add_edge(parent, child, stripe)
        # Leaves: attach round-robin under spine peers.
        for j, leaf in enumerate(leaves):
            parent = spine[j % len(spine)]
            overlay.add_edge(parent, leaf, stripe)
    return overlay


def treebone(
    peers: Sequence[Peer],
    *,
    num_stripes: int = 1,
    fanout: int = 2,
    backbone_fraction: float = 0.4,
    auxiliary_per_peer: int = 1,
    seed: int | np.random.Generator | None = 0,
    name: str = "treebone",
) -> Overlay:
    """An mtreebone-style hybrid: tree backbone plus mesh auxiliaries.

    The first (most stable, by convention the longest-session)
    ``backbone_fraction`` of the peers form a push tree per stripe;
    every peer — backbone or not — additionally pulls each stripe from
    ``auxiliary_per_peer`` random backbone members, so losing one
    provider leaves an alternative route (the hybrid argument of Wang,
    Xiong & Liu cited in the paper's SII).

    Peers are sorted by descending ``mean_session`` before the split, so
    the backbone really is the stable core when sessions differ.
    """
    if not peers:
        raise OverlayError("treebone needs at least one peer")
    if not 0.0 < backbone_fraction <= 1.0:
        raise OverlayError("backbone_fraction must be in (0, 1]")
    if fanout < 1:
        raise OverlayError("fanout must be >= 1")
    rng = as_rng(seed)
    ordered = sorted(peers, key=lambda p: -p.mean_session)
    core_size = max(1, round(len(ordered) * backbone_fraction))
    backbone = [p.peer_id for p in ordered[:core_size]]
    fringe = [p.peer_id for p in ordered[core_size:]]

    overlay = Overlay(peers=list(peers), num_stripes=num_stripes, name=name)
    for stripe in range(num_stripes):
        # Backbone push tree.
        for parent, child in _tree_edges(backbone, fanout):
            overlay.add_edge(parent, child, stripe)
        # Fringe peers attach below random backbone members.
        for peer_id in fringe:
            anchor = backbone[int(rng.integers(0, len(backbone)))]
            overlay.add_edge(anchor, peer_id, stripe)
        # Auxiliary pull links from additional distinct backbone members.
        for peer_id in backbone + fringe:
            existing = {
                e.tail for e in overlay.stripe_edges(stripe) if e.head == peer_id
            }
            candidates = [b for b in backbone if b != peer_id and b not in existing]
            take = min(auxiliary_per_peer, len(candidates))
            if take <= 0:
                continue
            picks = rng.choice(len(candidates), size=take, replace=False)
            for pick in picks:
                overlay.add_edge(candidates[int(pick)], peer_id, stripe)
    return overlay
