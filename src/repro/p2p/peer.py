"""Peer model.

A peer contributes upload capacity (in sub-stream units) and exhibits
churn: alternating online/offline periods.  Its long-run availability
is what the churn models convert into link failure probabilities.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.exceptions import OverlayError

__all__ = ["Peer", "MEDIA_SERVER"]

#: Reserved identifier of the media server (the stream source).
MEDIA_SERVER = "server"


@dataclass(frozen=True)
class Peer:
    """One participant of the streaming system.

    Attributes
    ----------
    peer_id:
        Unique identifier (must not collide with :data:`MEDIA_SERVER`).
    upload_capacity:
        How many unit-rate sub-streams the peer can forward
        simultaneously (its total upstream budget across all overlay
        children).
    mean_session:
        Average online duration (seconds) between departures.
    mean_offline:
        Average offline duration before rejoining.
    """

    peer_id: str
    upload_capacity: int = 2
    mean_session: float = 300.0
    mean_offline: float = 60.0

    def __post_init__(self) -> None:
        if self.peer_id == MEDIA_SERVER:
            raise OverlayError(f"peer id {MEDIA_SERVER!r} is reserved for the server")
        if self.upload_capacity < 0:
            raise OverlayError("upload capacity must be non-negative")
        if self.mean_session <= 0 or self.mean_offline < 0:
            raise OverlayError("session/offline durations must be positive")

    @property
    def availability(self) -> float:
        """Long-run fraction of time online:
        ``mean_session / (mean_session + mean_offline)``."""
        return self.mean_session / (self.mean_session + self.mean_offline)

    @property
    def failure_probability(self) -> float:
        """``1 - availability`` — probability of being offline at a
        uniformly random instant."""
        return 1.0 - self.availability


def make_peers(
    count: int,
    *,
    upload_capacity: int = 2,
    mean_session: float = 300.0,
    mean_offline: float = 60.0,
) -> list[Peer]:
    """``count`` homogeneous peers named ``p0 .. p{count-1}``."""
    if count < 0:
        raise OverlayError("peer count must be non-negative")
    return [
        Peer(
            peer_id=f"p{i}",
            upload_capacity=upload_capacity,
            mean_session=mean_session,
            mean_offline=mean_offline,
        )
        for i in range(count)
    ]
