"""Overlay networks: the delivery topology on top of the peers.

An :class:`Overlay` is a set of directed delivery edges, each belonging
to a *stripe* (sub-stream index) and carrying one unit of bit-rate per
stripe it serves.  Tree builders live in :mod:`repro.p2p.trees`; the
random mesh builder is here.  :func:`to_flow_network` converts any
overlay plus a churn model into the paper's
:class:`~repro.graph.FlowNetwork`, at which point the whole
:mod:`repro.core` toolbox applies.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

import numpy as np

from repro.exceptions import OverlayError
from repro.graph.generators import as_rng
from repro.graph.network import FlowNetwork
from repro.p2p.churn import ChurnModel
from repro.p2p.peer import MEDIA_SERVER, Peer

__all__ = ["OverlayEdge", "Overlay", "random_mesh", "to_flow_network"]


@dataclass(frozen=True)
class OverlayEdge:
    """One delivery relationship: ``tail`` forwards stripe ``stripe`` to
    ``head`` at ``capacity`` sub-stream units (usually 1)."""

    tail: str
    head: str
    stripe: int
    capacity: int = 1


@dataclass
class Overlay:
    """Peers plus directed striped delivery edges.

    The media server is implicit (node id :data:`~repro.p2p.peer.MEDIA_SERVER`).
    """

    peers: list[Peer]
    num_stripes: int
    edges: list[OverlayEdge] = field(default_factory=list)
    name: str = ""

    def __post_init__(self) -> None:
        if self.num_stripes < 1:
            raise OverlayError("an overlay needs at least one stripe")
        ids = [p.peer_id for p in self.peers]
        if len(set(ids)) != len(ids):
            raise OverlayError("duplicate peer ids")
        self._by_id = {p.peer_id: p for p in self.peers}

    def peer(self, peer_id: str) -> Peer | None:
        """The peer object, or ``None`` for the media server."""
        if peer_id == MEDIA_SERVER:
            return None
        try:
            return self._by_id[peer_id]
        except KeyError as exc:
            raise OverlayError(f"unknown peer {peer_id!r}") from exc

    def add_edge(self, tail: str, head: str, stripe: int, capacity: int = 1) -> None:
        """Append one delivery edge (validating endpoints and stripe)."""
        if not (0 <= stripe < self.num_stripes):
            raise OverlayError(f"stripe {stripe} outside [0, {self.num_stripes})")
        self.peer(tail)
        self.peer(head)
        if head == MEDIA_SERVER:
            raise OverlayError("the media server never receives a stripe")
        self.edges.append(OverlayEdge(tail, head, stripe, capacity))

    def out_degree(self, peer_id: str) -> int:
        """Total sub-stream units the node currently forwards."""
        return sum(e.capacity for e in self.edges if e.tail == peer_id)

    def upload_violations(self) -> list[str]:
        """Peers forwarding more than their upload capacity allows."""
        violations = []
        for peer in self.peers:
            if self.out_degree(peer.peer_id) > peer.upload_capacity:
                violations.append(peer.peer_id)
        return violations

    def interior_stripes(self, peer_id: str) -> set[int]:
        """Stripes in which the peer has at least one child (is interior)."""
        return {e.stripe for e in self.edges if e.tail == peer_id}

    def stripe_edges(self, stripe: int) -> list[OverlayEdge]:
        """All edges belonging to one stripe."""
        return [e for e in self.edges if e.stripe == stripe]


def random_mesh(
    peers: Sequence[Peer],
    *,
    num_stripes: int = 2,
    neighbors_per_peer: int = 3,
    providers_per_stripe: int = 1,
    server_fanout: int | None = None,
    seed: int | np.random.Generator | None = 0,
) -> Overlay:
    """A mesh-based overlay (Bullet/PRIME/CoolStreaming style).

    Each peer pulls every stripe from up to ``providers_per_stripe``
    randomly chosen partners among ``neighbors_per_peer`` candidates
    that joined earlier (plus the server for the first arrivals),
    capped by the partners' remaining upload capacity.  With more than
    one provider the subscriber survives any single provider's
    departure — the redundancy that makes mesh systems robust to churn
    (at the cost of upload budget), directly visible in the flow
    reliability.  The server pushes all stripes to ``server_fanout``
    seed peers (default: ``num_stripes``).

    The construction is order-based (peers "arrive" in list order), so
    the overlay is acyclic — delivery paths are well defined for the
    primary (first) provider of each stripe.
    """
    if not peers:
        raise OverlayError("a mesh needs at least one peer")
    if providers_per_stripe < 1:
        raise OverlayError("need at least one provider per stripe")
    rng = as_rng(seed)
    overlay = Overlay(peers=list(peers), num_stripes=num_stripes, name="mesh")
    budget = {p.peer_id: p.upload_capacity for p in peers}
    fanout = server_fanout if server_fanout is not None else num_stripes
    seeds = list(peers[: max(1, fanout)])
    for peer in seeds:
        for stripe in range(num_stripes):
            overlay.add_edge(MEDIA_SERVER, peer.peer_id, stripe)
    for position, peer in enumerate(peers):
        if peer in seeds:
            continue
        earlier = peers[:position]
        for stripe in range(num_stripes):
            candidates = [p for p in earlier if budget[p.peer_id] > 0]
            if not candidates:
                overlay.add_edge(MEDIA_SERVER, peer.peer_id, stripe)
                continue
            take = min(neighbors_per_peer, len(candidates))
            chosen = rng.choice(len(candidates), size=take, replace=False)
            providers = chosen[: min(providers_per_stripe, take)]
            for pick in providers:
                provider = candidates[int(pick)]
                if budget[provider.peer_id] <= 0:
                    continue
                overlay.add_edge(provider.peer_id, peer.peer_id, stripe)
                budget[provider.peer_id] -= 1
    return overlay


def to_flow_network(
    overlay: Overlay,
    churn: ChurnModel,
    *,
    name: str | None = None,
) -> FlowNetwork:
    """Convert an overlay into the paper's flow network.

    Every overlay edge becomes a directed link with its capacity and a
    failure probability from the churn model.  Link indices follow the
    overlay's edge order, so callers can map results back.
    """
    net = FlowNetwork(name=name or f"overlay-{overlay.name}")
    net.add_node(MEDIA_SERVER)
    for peer in overlay.peers:
        net.add_node(peer.peer_id)
    for edge in overlay.edges:
        p = churn.link_failure_probability(overlay.peer(edge.tail), overlay.peer(edge.head))
        net.add_link(edge.tail, edge.head, edge.capacity, p)
    return net
