"""Aggregate metrics over P2P experiments."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from repro.exceptions import ReproValueError

__all__ = ["summarize", "SeriesSummary"]


@dataclass(frozen=True)
class SeriesSummary:
    """Five-number-ish summary of a metric series."""

    count: int
    mean: float
    std: float
    minimum: float
    maximum: float

    @property
    def stderr(self) -> float:
        """Standard error of the mean."""
        if self.count <= 1:
            return 0.0
        return self.std / math.sqrt(self.count)


def summarize(values: Sequence[float]) -> SeriesSummary:
    """Summary statistics of a non-empty series."""
    if not values:
        raise ReproValueError("cannot summarize an empty series")
    n = len(values)
    mean = sum(values) / n
    if n > 1:
        var = sum((v - mean) ** 2 for v in values) / (n - 1)
    else:
        var = 0.0
    return SeriesSummary(
        count=n,
        mean=mean,
        std=math.sqrt(var),
        minimum=min(values),
        maximum=max(values),
    )
