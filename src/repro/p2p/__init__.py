"""P2P streaming substrate: peers, churn, overlays, simulation.

The paper's motivating domain.  Overlays (single-tree, SplitStream-
style multi-tree, mesh) convert through a churn model into the
:class:`~repro.graph.FlowNetwork` the reliability algorithms consume;
the simulators provide independent ground truth.
"""

from repro.p2p.churn import (
    ChildChurnModel,
    ChurnModel,
    EndpointChurnModel,
    StaticChurnModel,
)
from repro.p2p.metrics import SeriesSummary, summarize
from repro.p2p.overlay import Overlay, OverlayEdge, random_mesh, to_flow_network
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.exact import exact_peer_level_reliability
from repro.p2p.repair import repair_overlay, repaired_reliability
from repro.p2p.scenario import ScenarioResult, build_overlay, run_scenario
from repro.p2p.simulation import (
    StreamingOutcome,
    StreamingSimulator,
    peer_level_reliability,
)
from repro.p2p.streaming import (
    DeliveryPath,
    ScheduleReport,
    delivery_paths,
    schedule_report,
    stripe_depth,
)
from repro.p2p.trees import multi_tree, single_tree, treebone

__all__ = [
    "MEDIA_SERVER",
    "Peer",
    "make_peers",
    "ChurnModel",
    "ChildChurnModel",
    "EndpointChurnModel",
    "StaticChurnModel",
    "Overlay",
    "OverlayEdge",
    "random_mesh",
    "to_flow_network",
    "single_tree",
    "multi_tree",
    "treebone",
    "DeliveryPath",
    "ScheduleReport",
    "delivery_paths",
    "schedule_report",
    "stripe_depth",
    "StreamingSimulator",
    "StreamingOutcome",
    "peer_level_reliability",
    "exact_peer_level_reliability",
    "repair_overlay",
    "repaired_reliability",
    "ScenarioResult",
    "build_overlay",
    "run_scenario",
    "SeriesSummary",
    "summarize",
]
