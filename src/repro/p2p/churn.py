"""Churn models: peer session dynamics → link failure probabilities.

The paper's model attaches an independent failure probability to every
*link*; real P2P systems lose links because *peers* depart.  The models
here bridge the two views:

* :class:`ChildChurnModel` — a delivery link ``u -> v`` is considered
  down iff its receiving peer ``v`` is offline.  For tree overlays,
  where each peer has exactly one incoming link per stripe, this makes
  link failures of a single stripe exactly as independent as peer
  failures are, so the flow-reliability computation is *exact* for a
  single tree.
* :class:`EndpointChurnModel` — the link is down when either endpoint
  is offline: ``p = 1 - a_u a_v``.  Closer to reality for mesh/multi-
  tree overlays but introduces correlation between links sharing a
  peer, which independent-link reliability ignores.  The static
  peer-level simulator (:mod:`repro.p2p.simulation`) measures exactly
  this approximation gap — experiment E10.

The media server is always up.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.exceptions import ReproValueError
from repro.p2p.peer import MEDIA_SERVER, Peer

__all__ = ["ChurnModel", "ChildChurnModel", "EndpointChurnModel", "StaticChurnModel"]


class ChurnModel(ABC):
    """Maps overlay link endpoints to a failure probability."""

    @abstractmethod
    def link_failure_probability(self, tail: Peer | None, head: Peer | None) -> float:
        """Failure probability of a delivery link ``tail -> head``.

        ``None`` stands for the media server (never fails).
        """

    def peer_failure_probability(self, peer: Peer | None) -> float:
        """Offline probability of one peer (0 for the server)."""
        if peer is None:
            return 0.0
        return peer.failure_probability


@dataclass(frozen=True)
class ChildChurnModel(ChurnModel):
    """Link fails iff the receiving peer is offline."""

    def link_failure_probability(self, tail: Peer | None, head: Peer | None) -> float:
        return self.peer_failure_probability(head)


@dataclass(frozen=True)
class EndpointChurnModel(ChurnModel):
    """Link fails when either endpoint is offline (independent peers)."""

    def link_failure_probability(self, tail: Peer | None, head: Peer | None) -> float:
        a_tail = 1.0 - self.peer_failure_probability(tail)
        a_head = 1.0 - self.peer_failure_probability(head)
        return 1.0 - a_tail * a_head


@dataclass(frozen=True)
class StaticChurnModel(ChurnModel):
    """Every link gets the same fixed failure probability.

    The control condition for experiments: removes peer heterogeneity
    so differences between overlays are purely structural.
    """

    failure_probability: float = 0.1

    def __post_init__(self) -> None:
        if not (0.0 <= self.failure_probability < 1.0):
            raise ReproValueError("failure probability must be in [0, 1)")

    def link_failure_probability(self, tail: Peer | None, head: Peer | None) -> float:
        return self.failure_probability
