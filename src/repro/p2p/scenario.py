"""End-to-end scenario driver: overlay → flow network → reliability.

One call builds an overlay of the requested family, derives the flow
network through a churn model, computes the exact reliability for a
subscriber (choosing the method automatically), estimates it by
Monte-Carlo, and optionally cross-checks against the peer-level
(correlated-failure) simulator.  This is the pipeline behind
experiment E10 and the ``p2p_overlay_study`` example.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.core.montecarlo import montecarlo_reliability
from repro.exceptions import OverlayError
from repro.graph.network import FlowNetwork
from repro.p2p.churn import ChildChurnModel, ChurnModel
from repro.p2p.overlay import Overlay, random_mesh, to_flow_network
from repro.p2p.peer import MEDIA_SERVER, Peer, make_peers
from repro.p2p.simulation import peer_level_reliability
from repro.p2p.streaming import schedule_report
from repro.p2p.trees import multi_tree, single_tree, treebone

__all__ = ["ScenarioResult", "build_overlay", "run_scenario"]

_FAMILIES = ("single-tree", "multi-tree", "mesh", "treebone")


@dataclass(frozen=True)
class ScenarioResult:
    """Everything one scenario run produced."""

    family: str
    num_peers: int
    num_stripes: int
    subscriber: str
    exact_reliability: float
    exact_method: str
    estimate: float
    estimate_interval: tuple[float, float]
    peer_level: float | None
    max_depth: int
    details: dict[str, Any] = field(default_factory=dict)


def build_overlay(
    family: str,
    peers: list[Peer],
    *,
    num_stripes: int = 2,
    fanout: int = 2,
    seed: int = 0,
) -> Overlay:
    """Build one of the three overlay families studied in §II."""
    if family == "single-tree":
        return single_tree(peers, fanout=fanout, num_stripes=num_stripes)
    if family == "multi-tree":
        return multi_tree(peers, num_stripes=num_stripes, fanout=fanout)
    if family == "mesh":
        return random_mesh(peers, num_stripes=num_stripes, seed=seed)
    if family == "treebone":
        return treebone(peers, num_stripes=num_stripes, fanout=fanout, seed=seed)
    raise OverlayError(f"unknown overlay family {family!r}; choose from {_FAMILIES}")


def run_scenario(
    family: str,
    *,
    num_peers: int = 8,
    num_stripes: int = 2,
    fanout: int = 2,
    subscriber: str | None = None,
    churn: ChurnModel | None = None,
    mean_session: float = 300.0,
    mean_offline: float = 60.0,
    upload_capacity: int = 4,
    num_samples: int = 4000,
    peer_level_trials: int | None = 2000,
    seed: int = 0,
) -> ScenarioResult:
    """Run the full pipeline for one overlay family.

    The demand rate equals ``num_stripes`` (the subscriber needs every
    stripe).  The subscriber defaults to the last-joining peer — the
    deepest, most failure-exposed position in tree overlays.
    """
    peers = make_peers(
        num_peers,
        upload_capacity=upload_capacity,
        mean_session=mean_session,
        mean_offline=mean_offline,
    )
    overlay = build_overlay(
        family, peers, num_stripes=num_stripes, fanout=fanout, seed=seed
    )
    churn_model = churn if churn is not None else ChildChurnModel()
    net: FlowNetwork = to_flow_network(overlay, churn_model)
    chosen = subscriber if subscriber is not None else peers[-1].peer_id
    demand = FlowDemand(MEDIA_SERVER, chosen, num_stripes)

    exact = compute_reliability(net, demand=demand, method="auto")
    estimate = montecarlo_reliability(net, demand, num_samples=num_samples, seed=seed)
    peer_sim = None
    if peer_level_trials:
        peer_sim = peer_level_reliability(
            overlay, chosen, num_stripes, num_trials=peer_level_trials, seed=seed
        )
    report = schedule_report(overlay)
    return ScenarioResult(
        family=family,
        num_peers=num_peers,
        num_stripes=num_stripes,
        subscriber=chosen,
        exact_reliability=exact.value,
        exact_method=exact.method,
        estimate=estimate.value,
        estimate_interval=(estimate.low, estimate.high),
        peer_level=peer_sim,
        max_depth=report.max_depth,
        details={
            "num_links": net.num_links,
            "upload_violations": report.upload_violations,
            "unreached": report.unreached,
            "flow_calls": getattr(exact, "flow_calls", 0),
        },
    )
