"""Exact *peer-level* reliability via node splitting.

:func:`repro.p2p.simulation.peer_level_reliability` samples the
correlated model (a peer's departure kills all its links together);
this module computes the same quantity **exactly**: convert the overlay
to a flow network with reliable links, express peer churn as node
failure probabilities, apply the node-splitting transformation
(:mod:`repro.graph.nodesplit`) and run any exact algorithm.

This closes the gap experiment E10 exposed between the paper's
independent-link model and the peer-level truth — both are now exactly
computable and directly comparable (benchmark X6).
"""

from __future__ import annotations

from repro.core.api import compute_reliability
from repro.core.demand import FlowDemand
from repro.core.result import ReliabilityResult
from repro.exceptions import OverlayError
from repro.graph.nodesplit import split_nodes
from repro.p2p.churn import EndpointChurnModel
from repro.p2p.overlay import Overlay, to_flow_network
from repro.p2p.peer import MEDIA_SERVER

__all__ = ["exact_peer_level_reliability"]


def exact_peer_level_reliability(
    overlay: Overlay,
    subscriber: str,
    demand_rate: int,
    *,
    include_subscriber_churn: bool = False,
    method: str = "auto",
    **options,
) -> ReliabilityResult:
    """Exact delivery probability under peer-level (correlated) churn.

    Matches the sampling model of
    :func:`~repro.p2p.simulation.peer_level_reliability`: peers fail
    independently with their churn-derived probability, a failed peer
    takes every incident link down, links themselves are reliable, the
    media server never fails, and the subscriber is pinned online
    unless ``include_subscriber_churn`` is set (the counterpart of
    ``require_subscriber_online=True``).

    ``method`` and ``options`` forward to
    :func:`repro.core.compute_reliability` on the transformed network.
    """
    overlay.peer(subscriber)  # validates
    if demand_rate < 1:
        raise OverlayError("demand_rate must be >= 1")
    # Links reliable; capacities from the overlay.  The churn model here
    # is irrelevant (probabilities are overridden to 0).
    base = to_flow_network(overlay, EndpointChurnModel())
    base = base.with_failure_probabilities([0.0] * base.num_links)

    node_probs = {}
    for peer in overlay.peers:
        if peer.peer_id == subscriber and not include_subscriber_churn:
            continue
        if peer.failure_probability > 0.0:
            node_probs[peer.peer_id] = peer.failure_probability

    transformed = split_nodes(base, node_probs)
    # With subscriber churn included the demand must pass through the
    # subscriber's internal link (drain at its exit side); otherwise
    # reaching its entry side suffices.
    sink = (
        transformed.exit[subscriber]
        if include_subscriber_churn
        else transformed.entry[subscriber]
    )
    demand = FlowDemand(transformed.exit[MEDIA_SERVER], sink, demand_rate)
    result = compute_reliability(transformed.network, demand=demand, method=method, **options)
    details = dict(getattr(result, "details", {}))
    details["model"] = "peer-level (node-split)"
    details["split_peers"] = len(node_probs)
    return ReliabilityResult(
        value=float(result.value),
        method=f"{result.method}+nodesplit",
        flow_calls=getattr(result, "flow_calls", 0),
        configurations=getattr(result, "configurations", 0),
        details=details,
    )
