"""Flow decomposition into unit-rate sub-streams.

The paper models a bit-rate-``d`` video stream as ``d`` unit-rate
sub-streams that may travel different delivery paths.  Given a feasible
flow this module recovers such a set of paths: :func:`decompose` splits
the recorded link flows into exactly ``value`` unit-rate s-t paths
(flow-decomposition theorem; any flow cycles are cancelled rather than
reported, since a cycle delivers nothing).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.exceptions import SolverError
from repro.flow.base import MaxFlowResult
from repro.graph.network import FlowNetwork, Node

__all__ = ["SubStream", "decompose"]


@dataclass(frozen=True)
class SubStream:
    """One unit-rate delivery path.

    ``links`` are the traversed link indices in order; ``nodes`` is the
    corresponding node sequence (``len(nodes) == len(links) + 1``).
    """

    links: tuple[int, ...]
    nodes: tuple[Node, ...]

    @property
    def hops(self) -> int:
        """Number of links traversed."""
        return len(self.links)


def decompose(net: FlowNetwork, result: MaxFlowResult) -> list[SubStream]:
    """Split ``result``'s flow into ``result.value`` unit-rate paths.

    The flow on each link is consumed one unit at a time by walking from
    the source following links with remaining flow.  Revisiting a node
    means the walk closed a flow cycle; the cycle's flow is cancelled in
    place and the walk resumes, so termination is guaranteed.

    Raises :class:`SolverError` if the recorded flows are inconsistent
    (cannot happen for results produced by the library's solvers).
    """
    # remaining[link] = units of flow still to route; orientation[link]
    # tells which direction an undirected link was used.
    remaining: dict[int, int] = {}
    forward: dict[int, bool] = {}
    for index, f in result.link_flows.items():
        if f == 0:
            continue
        link = net.link(index)
        if f < 0:
            if link.directed:
                raise SolverError(f"negative flow {f} on directed link {index}")
            remaining[index] = -f
            forward[index] = False
        else:
            remaining[index] = f
            forward[index] = True

    def out_edges(node: Node) -> list[tuple[int, Node]]:
        """Links at ``node`` with remaining flow leaving it."""
        edges = []
        for link in net.incident_links(node):
            units = remaining.get(link.index, 0)
            if units <= 0:
                continue
            tail, head = link.tail, link.head
            if not forward[link.index]:
                tail, head = head, tail
            if tail == node:
                edges.append((link.index, head))
        return edges

    streams: list[SubStream] = []
    total_units = sum(remaining.values())
    for _ in range(result.value):
        path_links: list[int] = []
        path_nodes: list[Node] = [result.source]
        position: dict[Node, int] = {result.source: 0}
        node = result.source
        guard = 0
        while node != result.sink:
            guard += 1
            if guard > 2 * total_units + net.num_links + 2:
                raise SolverError("flow decomposition failed to reach the sink")
            edges = out_edges(node)
            if not edges:
                raise SolverError(
                    f"flow conservation violated at {node!r} during decomposition"
                )
            link_index, nxt = edges[0]
            # Reserve the unit immediately; a cancelled cycle's units
            # then stay consumed, which *is* the cancellation.
            remaining[link_index] -= 1
            if nxt in position:
                start = position[nxt]
                for dropped in path_nodes[start + 1 :]:
                    position.pop(dropped, None)
                del path_links[start:]
                del path_nodes[start + 1 :]
                node = nxt
                continue
            path_links.append(link_index)
            path_nodes.append(nxt)
            position[nxt] = len(path_nodes) - 1
            node = nxt
        streams.append(SubStream(links=tuple(path_links), nodes=tuple(path_nodes)))
    return streams
