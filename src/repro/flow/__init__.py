"""Max-flow substrate: solvers, residual machinery, cuts, decomposition.

Import this package (not the individual solver modules) — importing it
registers every solver with the registry in :mod:`repro.flow.base`.
"""

from repro.flow.base import (
    DEFAULT_SOLVER,
    MaxFlowResult,
    MaxFlowSolver,
    available_solvers,
    get_solver,
    is_feasible,
    max_flow,
    max_flow_value,
    register_solver,
)
from repro.flow.capacity_scaling import CapacityScalingSolver
from repro.flow.decomposition import SubStream, decompose
from repro.flow.dinic import DinicSolver
from repro.flow.edmonds_karp import EdmondsKarpSolver
from repro.flow.incremental import IncrementalMaxFlow, resolve_incremental
from repro.flow.mincut import min_cut_capacity, min_cut_links, minimum_cut
from repro.flow.push_relabel import PushRelabelSolver
from repro.flow.residual import (
    INFINITE_CAPACITY,
    ResidualGraph,
    ResidualTemplate,
    build_template,
)

__all__ = [
    "DEFAULT_SOLVER",
    "MaxFlowResult",
    "MaxFlowSolver",
    "available_solvers",
    "get_solver",
    "is_feasible",
    "max_flow",
    "max_flow_value",
    "register_solver",
    "DinicSolver",
    "EdmondsKarpSolver",
    "PushRelabelSolver",
    "CapacityScalingSolver",
    "IncrementalMaxFlow",
    "resolve_incremental",
    "SubStream",
    "decompose",
    "min_cut_capacity",
    "min_cut_links",
    "minimum_cut",
    "INFINITE_CAPACITY",
    "ResidualGraph",
    "ResidualTemplate",
    "build_template",
]
