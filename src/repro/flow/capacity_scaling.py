"""Capacity-scaling max flow.

Augments only along paths with residual capacity at least ``Δ``,
halving ``Δ`` from the largest power of two below the maximum arc
capacity down to 1: ``O(E^2 log C)``.  Shines when capacities are
large and uneven; on the unit-ish capacities of streaming networks it
degenerates gracefully to Edmonds–Karp behaviour.
"""

from __future__ import annotations

from collections import deque

from repro.flow.base import MaxFlowSolver, register_solver
from repro.flow.residual import ResidualGraph

__all__ = ["CapacityScalingSolver"]


@register_solver("capacity_scaling")
class CapacityScalingSolver(MaxFlowSolver):
    """Scaling variant of augmenting-path max flow."""

    def solve_residual(
        self, graph: ResidualGraph, source: int, sink: int, limit: int | None = None
    ) -> int:
        cap = graph.cap
        head = graph.head
        adj = graph.adj
        n = graph.num_nodes

        self.last_paths = 0
        max_cap = max((c for c in cap if c > 0), default=0)
        if max_cap == 0:
            return 0
        delta = 1
        while delta * 2 <= max_cap:
            delta *= 2

        total = 0
        parent_arc = [-1] * n
        while delta >= 1:
            while limit is None or total < limit:
                # BFS restricted to arcs with residual >= delta.
                for i in range(n):
                    parent_arc[i] = -1
                parent_arc[source] = -2
                queue = deque([source])
                found = False
                while queue and not found:
                    v = queue.popleft()
                    for a in adj[v]:
                        w = head[a]
                        if cap[a] >= delta and parent_arc[w] == -1:
                            parent_arc[w] = a
                            if w == sink:
                                found = True
                                break
                            queue.append(w)
                if not found:
                    break
                push = cap[parent_arc[sink]]
                v = sink
                while v != source:
                    a = parent_arc[v]
                    if cap[a] < push:
                        push = cap[a]
                    v = head[a ^ 1]
                if limit is not None and total + push > limit:
                    push = limit - total
                v = sink
                while v != source:
                    a = parent_arc[v]
                    cap[a] -= push
                    cap[a ^ 1] += push
                    v = head[a ^ 1]
                total += push
                self.last_paths += 1
            delta //= 2
        return total
