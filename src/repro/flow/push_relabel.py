"""FIFO push–relabel max flow (Goldberg & Tarjan).

``O(V^3)``.  Push–relabel computes a *preflow* and therefore cannot
honour an augmentation limit incrementally the way the path-based
solvers can; when a ``limit`` is given it simply caps the reported value
after running to completion (the residual state is still a genuine
max-flow state).  That makes it the wrong choice for the reliability
inner loop — the A2 ablation quantifies exactly that — but it is the
standard high-performance algorithm on big dense graphs and belongs in
the library.
"""

from __future__ import annotations

from collections import deque

from repro.flow.base import MaxFlowSolver, register_solver
from repro.flow.residual import ResidualGraph

__all__ = ["PushRelabelSolver"]


@register_solver("push_relabel")
class PushRelabelSolver(MaxFlowSolver):
    """FIFO push–relabel with the gap heuristic."""

    # A preflow solver cannot stop at a limit in-state (it only caps the
    # reported value), so it must not drive the incremental repair engine.
    supports_incremental = False

    def solve_residual(
        self, graph: ResidualGraph, source: int, sink: int, limit: int | None = None
    ) -> int:
        cap = graph.cap
        head = graph.head
        adj = graph.adj
        n = graph.num_nodes

        height = [0] * n
        excess = [0] * n
        count = [0] * (2 * n + 1)  # nodes per height, for the gap heuristic
        active: deque[int] = deque()
        in_queue = [False] * n

        height[source] = n
        count[0] = n - 1
        count[n] = 1

        # Saturate all source arcs.
        for a in adj[source]:
            delta = cap[a]
            if delta > 0:
                cap[a] -= delta
                cap[a ^ 1] += delta
                excess[head[a]] += delta
                excess[source] -= delta
                w = head[a]
                if w not in (source, sink) and not in_queue[w]:
                    active.append(w)
                    in_queue[w] = True

        cursor = [0] * n

        def relabel(v: int) -> None:
            old = height[v]
            smallest = 2 * n
            for a in adj[v]:
                if cap[a] > 0:
                    smallest = min(smallest, height[head[a]])
            height[v] = smallest + 1
            count[old] -= 1
            count[height[v]] += 1
            cursor[v] = 0
            # Gap heuristic: no node left at height `old` means every
            # node above it can never reach the sink again.
            if count[old] == 0 and 0 < old < n:
                for u in range(n):
                    if u != source and old < height[u] <= n:
                        count[height[u]] -= 1
                        height[u] = n + 1
                        count[height[u]] += 1

        while active:
            v = active.popleft()
            in_queue[v] = False
            while excess[v] > 0:
                if cursor[v] >= len(adj[v]):
                    relabel(v)
                    if height[v] > 2 * n:  # unreachable; drain stops mattering
                        break
                    continue
                a = adj[v][cursor[v]]
                w = head[a]
                if cap[a] > 0 and height[v] == height[w] + 1:
                    delta = min(excess[v], cap[a])
                    cap[a] -= delta
                    cap[a ^ 1] += delta
                    excess[v] -= delta
                    excess[w] += delta
                    if w not in (source, sink) and not in_queue[w]:
                        active.append(w)
                        in_queue[w] = True
                else:
                    cursor[v] += 1

        value = excess[sink]
        if limit is not None and value > limit:
            value = limit
        return value
