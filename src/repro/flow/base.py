"""Solver-facing API: results, the solver base class and the registry.

Every solver implements one method on residual graphs
(:meth:`MaxFlowSolver.solve_residual`) and inherits the public
:meth:`MaxFlowSolver.max_flow` convenience wrapper that accepts a
:class:`~repro.graph.FlowNetwork` directly.

The ``limit`` parameter implements *feasibility short-circuiting*: the
reliability algorithms only ever need to know whether the max flow
reaches the demand ``d``, so solvers stop augmenting once ``limit``
units have been pushed.  This turns the per-configuration check into a
bounded amount of work independent of how much extra capacity the
network has.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import Callable, Iterable

from repro.exceptions import SolverError
from repro.graph.network import FlowNetwork, Node
from repro.flow.residual import ResidualGraph, ResidualTemplate, build_template
from repro.obs.recorder import current_recorder, wallclock

__all__ = [
    "MaxFlowResult",
    "MaxFlowSolver",
    "register_solver",
    "get_solver",
    "available_solvers",
    "max_flow",
    "max_flow_value",
    "is_feasible",
    "DEFAULT_SOLVER",
]


@dataclass(frozen=True)
class MaxFlowResult:
    """Outcome of a max-flow computation on a :class:`FlowNetwork`.

    Attributes
    ----------
    value:
        The computed flow value.  When a ``limit`` was supplied this is
        ``min(limit, true max flow)``.
    limited:
        Whether a limit was supplied (if so, ``value == limit`` does not
        certify that the true max flow equals ``value``).
    link_flows:
        Net flow per original link index.  Only links carrying nonzero
        flow appear.
    min_cut_source_side:
        Source side of a minimum cut (residual-reachable nodes).  Only
        meaningful when ``limited`` is ``False`` or the flow value is
        below the limit.
    """

    value: int
    source: Node
    sink: Node
    limited: bool
    link_flows: dict[int, int]
    min_cut_source_side: frozenset[Node]


class MaxFlowSolver(ABC):
    """Base class: implement :meth:`solve_residual`, get the rest free."""

    #: Registry key, set by subclasses.
    name: str = ""

    #: Whether the solver honours the *warm-start contract* below well
    #: enough to drive :class:`repro.flow.incremental.IncrementalMaxFlow`:
    #: called on a residual graph that already carries flow, it must (a)
    #: return only the **additional** flow pushed by this call and (b)
    #: stop pushing the moment ``limit`` is reached, leaving the residual
    #: state at exactly that flow.  All augmenting-path solvers satisfy
    #: both for free; preflow solvers (push–relabel) cannot satisfy (b)
    #: — they cap the *reported* value after running to completion — and
    #: must set this to ``False``.
    supports_incremental: bool = True

    #: Augmenting paths found by the most recent :meth:`solve_residual`
    #: call (one per push).  Solvers that do not augment along paths
    #: leave it at 0.  Surfaced as the ``solver.<name>.paths`` counter —
    #: the "augmenting-path work" measure the incremental benches compare.
    last_paths: int = 0

    # The per-solver counter family, formatted once per *class* rather
    # than per solve: the sanctioned shape for dynamic metric names
    # under RR111 (call sites must pass a bound name, not build one),
    # and it keeps string formatting out of the hot solve path.
    _metric_solves: str = "solver.unnamed.solves"
    _metric_seconds: str = "solver.unnamed.seconds"
    _metric_paths: str = "solver.unnamed.paths"

    def __init_subclass__(cls, **kwargs: object) -> None:
        super().__init_subclass__(**kwargs)
        if cls.name:
            cls._metric_solves = f"solver.{cls.name}.solves"
            cls._metric_seconds = f"solver.{cls.name}.seconds"
            cls._metric_paths = f"solver.{cls.name}.paths"

    @abstractmethod
    def solve_residual(
        self, graph: ResidualGraph, source: int, sink: int, limit: int | None = None
    ) -> int:
        """Compute (possibly limited) max flow on a residual graph.

        Mutates ``graph.cap`` to the residual state and returns the flow
        value *pushed by this call*.  ``limit`` stops augmenting once
        that much flow has been pushed; implementations must never
        exceed it.

        Warm-start contract: the input graph may already be a residual
        state carrying flow (the incremental engine's repair loop calls
        solvers on warm graphs, with arbitrary node pairs as terminals).
        Implementations must treat whatever capacities they find as the
        ground truth and report only the delta they push — never the
        total flow the graph carries.
        """

    def solve(
        self, graph: ResidualGraph, source: int, sink: int, limit: int | None = None
    ) -> int:
        """:meth:`solve_residual` plus per-solver accounting.

        The preferred entry point for the reliability loops: with a
        :class:`repro.obs.Recorder` installed it adds the solve to the
        ``solver.<name>.solves`` / ``solver.<name>.seconds`` counters on
        the current span; without one it is a direct passthrough.
        """
        recorder = current_recorder()
        if recorder is None:
            return self.solve_residual(graph, source, sink, limit=limit)
        start = wallclock()
        try:
            return self.solve_residual(graph, source, sink, limit=limit)
        finally:
            recorder.count(self._metric_solves)
            recorder.count(self._metric_seconds, wallclock() - start)
            if self.last_paths:
                recorder.count(self._metric_paths, self.last_paths)

    def max_flow(
        self,
        net: FlowNetwork,
        source: Node,
        sink: Node,
        *,
        alive: int | Iterable[int] | None = None,
        limit: int | None = None,
        template: ResidualTemplate | None = None,
    ) -> MaxFlowResult:
        """Solve on a :class:`FlowNetwork` and package the result.

        ``alive`` masks failed links (bitmask or iterable of indices).
        Supplying a pre-built ``template`` (from
        :func:`repro.flow.residual.build_template`) skips per-call
        construction — the fast path used by the reliability loops.
        """
        if source == sink:
            raise SolverError("source and sink must differ")
        if template is None:
            template = build_template(net)
        try:
            s = template.node_index[source]
            t = template.node_index[sink]
        except KeyError as exc:
            raise SolverError(f"terminal {exc.args[0]!r} is not in the network") from exc
        graph = template.configure(alive=alive)
        value = self.solve(graph, s, t, limit=limit)
        flows: dict[int, int] = {}
        for link in net.links():
            f = template.link_flow(link.index)
            if f != 0:
                flows[link.index] = f
        reachable_flags = graph.residual_reachable(s)
        reverse_index = {idx: node for node, idx in template.node_index.items()}
        reachable = frozenset(
            reverse_index[i] for i, flag in enumerate(reachable_flags) if flag
        )
        return MaxFlowResult(
            value=value,
            source=source,
            sink=sink,
            limited=limit is not None,
            link_flows=flows,
            min_cut_source_side=reachable,
        )


_REGISTRY: dict[str, Callable[[], MaxFlowSolver]] = {}

DEFAULT_SOLVER = "dinic"


def register_solver(name: str) -> Callable[[type], type]:
    """Class decorator adding a solver to the registry under ``name``."""

    def decorate(cls: type) -> type:
        if not issubclass(cls, MaxFlowSolver):
            raise SolverError(f"{cls!r} is not a MaxFlowSolver")
        cls.name = name
        _REGISTRY[name] = cls
        return cls

    return decorate


def get_solver(name: str | MaxFlowSolver | None = None) -> MaxFlowSolver:
    """Instantiate a registered solver (default: Dinic).

    Passing an existing solver instance returns it unchanged, so APIs
    can accept either a name or an instance.
    """
    if isinstance(name, MaxFlowSolver):
        return name
    key = name or DEFAULT_SOLVER
    try:
        factory = _REGISTRY[key]
    except KeyError as exc:
        raise SolverError(
            f"unknown max-flow solver {key!r}; available: {sorted(_REGISTRY)}"
        ) from exc
    return factory()


def available_solvers() -> list[str]:
    """Names of all registered solvers, sorted."""
    return sorted(_REGISTRY)


def max_flow(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    alive: int | Iterable[int] | None = None,
    limit: int | None = None,
    solver: str | MaxFlowSolver | None = None,
) -> MaxFlowResult:
    """Module-level convenience: solve with a registry solver."""
    return get_solver(solver).max_flow(net, source, sink, alive=alive, limit=limit)


def max_flow_value(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    alive: int | Iterable[int] | None = None,
    solver: str | MaxFlowSolver | None = None,
) -> int:
    """Just the max-flow value."""
    return max_flow(net, source, sink, alive=alive, solver=solver).value


def is_feasible(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    demand: int,
    *,
    alive: int | Iterable[int] | None = None,
    solver: str | MaxFlowSolver | None = None,
) -> bool:
    """Whether the (alive sub)network admits an s-t flow of ``demand``.

    Uses the ``limit`` short-circuit, so the cost is bounded by the
    demand rather than the total network capacity.
    """
    if demand <= 0:
        return True
    return (
        max_flow(net, source, sink, alive=alive, limit=demand, solver=solver).value
        >= demand
    )
