"""Edmonds–Karp max-flow: BFS shortest augmenting paths.

``O(V E^2)`` worst case.  On the paper's instances — tiny graphs solved
millions of times — the simple per-call constant matters more than the
asymptotics, which is why Dinic (fewer BFS passes) is the default and
this solver exists as the textbook baseline for the A2 ablation.
"""

from __future__ import annotations

from collections import deque

from repro.flow.base import MaxFlowSolver, register_solver
from repro.flow.residual import ResidualGraph

__all__ = ["EdmondsKarpSolver"]


@register_solver("edmonds_karp")
class EdmondsKarpSolver(MaxFlowSolver):
    """Shortest-augmenting-path max flow (Edmonds & Karp, 1972)."""

    def solve_residual(
        self, graph: ResidualGraph, source: int, sink: int, limit: int | None = None
    ) -> int:
        cap = graph.cap
        head = graph.head
        adj = graph.adj
        n = graph.num_nodes
        total = 0
        self.last_paths = 0
        parent_arc = [-1] * n
        while limit is None or total < limit:
            # BFS for one shortest augmenting path.
            for i in range(n):
                parent_arc[i] = -1
            parent_arc[source] = -2
            queue = deque([source])
            found = False
            while queue and not found:
                v = queue.popleft()
                for a in adj[v]:
                    w = head[a]
                    if cap[a] > 0 and parent_arc[w] == -1:
                        parent_arc[w] = a
                        if w == sink:
                            found = True
                            break
                        queue.append(w)
            if not found:
                break
            # Bottleneck along the path.
            push = cap[parent_arc[sink]]
            v = sink
            while v != source:
                a = parent_arc[v]
                if cap[a] < push:
                    push = cap[a]
                v = head[a ^ 1]
            if limit is not None and total + push > limit:
                push = limit - total
            # Apply.
            v = sink
            while v != source:
                a = parent_arc[v]
                cap[a] -= push
                cap[a ^ 1] += push
                v = head[a ^ 1]
            total += push
            self.last_paths += 1
        return total
