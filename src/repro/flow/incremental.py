"""Incremental max-flow with flow repair (the Gray-walk engine).

The enumeration kernels ask the same residual network the same question
``2^m`` times, with consecutive configurations differing in exactly one
link once the lattice is walked in Gray-code order
(:func:`repro.probability.gray_lattice`).  Cold solving throws the
previous flow away at every step; :class:`IncrementalMaxFlow` keeps it
and *repairs* it instead:

* :meth:`revive` — restoring a link can only grow the max flow
  (monotonicity), so the carried flow stays valid and at most the
  missing ``limit - value`` units need augmenting;
* :meth:`kill` — the flow crossing the dead link is cancelled by
  rerouting it around the gap in the residual graph, with any
  unrouteable remainder pushed back to the terminals (the cancellation
  half of the path/cycle decomposition that
  :func:`repro.flow.decomposition.decompose` materialises in full);
* :meth:`retarget` — switching the assignment ``a ∈ D`` on the same
  alive set only moves virtual port-arc capacities, so only the flow
  those arcs carry is touched.

Why the repair is exact.  After a kill the remaining arcs form a valid
flow except at the dead link's endpoints: ``u`` absorbs ``x`` units it
no longer forwards, ``v`` emits ``x`` units it no longer receives.
First reroute up to ``x`` units ``u -> v`` through the residual graph.
Once no residual ``u -> v`` path remains, decompose the leftover
imbalance ``d``: the flow into ``u`` cannot originate at ``v`` (its
reversal would be a residual ``u -> v`` path), so it traces to the
source and ``d`` units can always be cancelled ``u -> s``; symmetrically
``t -> v`` cancels the sink side.  Each step leaves a maximum-or-limited
flow whose value is *measured*, never inferred: the engine snapshots the
configured "design" capacity of every arc and reads the value as the net
design-minus-residual outflow at the source, which stays correct under
arbitrary repair traffic through the terminals.

The engine requires a solver honouring the warm-start contract of
:meth:`repro.flow.base.MaxFlowSolver.solve_residual` (return only the
delta pushed; stop *in-state* at ``limit``).  All augmenting-path
solvers qualify; push–relabel does not and is rejected
(:func:`resolve_incremental`).
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.exceptions import SolverError
from repro.flow.base import MaxFlowSolver, get_solver
from repro.flow.residual import ResidualGraph, ResidualTemplate

__all__ = ["IncrementalMaxFlow", "plan_gray_order", "resolve_incremental"]


def resolve_incremental(
    solver: str | MaxFlowSolver | None, incremental: bool | None
) -> bool:
    """Resolve an ``incremental=`` option against a solver's capability.

    ``None`` (the default everywhere) auto-enables the incremental path
    exactly when the solver supports the warm-start contract; ``True``
    with an unsupporting solver is an error rather than a silent
    fallback, because the caller asked for accounting the solver cannot
    deliver.
    """
    resolved = get_solver(solver)
    if incremental is None:
        return resolved.supports_incremental
    if incremental and not resolved.supports_incremental:
        raise SolverError(
            f"solver {resolved.name!r} cannot repair flows incrementally "
            "(it does not honour augmentation limits in-state); "
            "use an augmenting-path solver or pass incremental=False"
        )
    return bool(incremental)


def plan_gray_order(
    template: ResidualTemplate,
    source: int,
    sink: int,
    n_bits: int,
    *,
    solver: str | MaxFlowSolver | None = None,
    limit: int | None = None,
    link_of_bit: Sequence[int] | None = None,
    virtual_capacities: Mapping[str, int] | None = None,
) -> list[int]:
    """Choose the bit order for a Gray walk driven by flow repair.

    Walk position ``p`` of :func:`repro.probability.gray_lattice` flips
    ``2**(n_bits - 1 - p)`` times, and a flip is only expensive when the
    flipped link carries flow.  One throwaway full-alive solve on a
    scratch capacity copy identifies the links the flow likes to use;
    they are parked at the high (rarely flipped) positions.  A pure
    heuristic: any permutation keeps the walk exact, this one just makes
    repairs rare.  ``link_of_bit`` maps walk bits to template link
    indices when they differ (the chunked engine's low bits); default
    identity.  The planning solve bypasses the solver registry
    accounting — it is not part of any kernel's cost model.
    """
    links = list(link_of_bit) if link_of_bit is not None else list(range(n_bits))
    if len(links) != n_bits:
        raise SolverError("link_of_bit must name one link per walk bit")
    if n_bits == 0:
        return []
    scratch = template.configure(
        alive=None, virtual_capacities=virtual_capacities, graph=template.graph.copy()
    )
    engine = get_solver(solver)
    engine.solve_residual(scratch, source, sink, limit=limit)
    cap = scratch.cap
    used = []
    for bit, link in enumerate(links):
        flow = 0
        for record in template.link_arcs(link):
            a = record.arc
            if record.directed:
                flow += cap[a ^ 1]
            else:
                flow += abs(cap[a ^ 1] - cap[a]) // 2
        used.append((abs(flow), bit))
    # Stable: zero-flow bits keep their relative order at the front,
    # flow-carrying bits move to the back (highest flow last).
    used.sort(key=lambda item: item[0])
    return [bit for _, bit in used]


class IncrementalMaxFlow:
    """A long-lived, repairable (possibly limited) max flow.

    Parameters
    ----------
    template:
        The :class:`~repro.flow.residual.ResidualTemplate` describing
        the network (plus any virtual arcs).  The engine configures a
        **private** capacity copy, so the template keeps serving cold
        solves unchanged.
    source, sink:
        Integer node ids (``template.node_index`` values).
    solver:
        Registry name or instance; must support the warm-start contract.
    limit:
        The feasibility short-circuit: the flow is never grown past this
        value (``None`` = true max flow).  The engines pass the demand.
    alive:
        Initial alive-link bitmask (default: everything dead).
    virtual_capacities:
        Initial named virtual-arc capacities (as for
        :meth:`ResidualTemplate.configure`).

    The constructor performs **no** solve; augmentation is lazy, so a
    batch of deltas (one :meth:`goto`) costs at most one augmenting
    solve on top of its repairs.

    Attributes
    ----------
    solver_calls:
        Max-flow solver invocations so far (augments + repairs) — the
        quantity the kernels fold into ``ReliabilityResult.flow_calls``.
    repairs:
        Flow-crossing repairs performed (one per killed/shrunk arc that
        carried flow).
    paths_saved:
        Flow units already in place when a configuration was evaluated —
        augmenting work a cold solver would have re-done from scratch.
    """

    def __init__(
        self,
        template: ResidualTemplate,
        source: int,
        sink: int,
        *,
        solver: str | MaxFlowSolver | None = None,
        limit: int | None = None,
        alive: int = 0,
        virtual_capacities: Mapping[str, int] | None = None,
    ) -> None:
        if source == sink:
            raise SolverError("source and sink must differ")
        if limit is not None and limit < 0:
            raise SolverError("limit must be non-negative")
        self.template = template
        self.solver = get_solver(solver)
        if not self.solver.supports_incremental:
            raise SolverError(
                f"solver {self.solver.name!r} does not support incremental repair"
            )
        self.source = source
        self.sink = sink
        self.limit = limit
        self.graph: ResidualGraph = template.configure(
            alive=alive, virtual_capacities=virtual_capacities, graph=template.graph.copy()
        )
        # Snapshot of the configured capacities = the zero-flow state;
        # the flow on any arc is design - cap, and the flow *value* is
        # the net design-minus-residual outflow at the source.
        self._design: list[int] = list(self.graph.cap)
        # Per-link arc records, resolved once (template.link_arcs scans
        # the record list; kills/revives are the hot path).
        self._link_records = {
            index: tuple(template.link_arcs(index))
            for index in template.link_indices()
        }
        self._alive = int(alive)
        self._dirty = True
        self.solver_calls = 0
        self.repairs = 0
        self.paths_saved = 0

    # -- measurement ------------------------------------------------------

    def measured_value(self) -> int:
        """Net flow out of the source, read off the residual state.

        Exact whatever repair traffic has passed *through* the terminals
        (a path entering and leaving the source cancels in the sum).
        Does not trigger augmentation — see :meth:`flow_value`.
        """
        cap = self.graph.cap
        design = self._design
        return sum(design[a] - cap[a] for a in self.graph.adj[self.source])

    def link_flow(self, link_index: int) -> int:
        """Net flow the engine currently routes over one original link."""
        cap = self.graph.cap
        total = 0
        for record in self._link_records.get(link_index, ()):
            a = record.arc
            if record.directed:
                total += cap[a ^ 1]
            else:
                total += (cap[a ^ 1] - cap[a]) // 2
        return total

    @property
    def alive(self) -> int:
        """The current alive-link bitmask."""
        return self._alive

    # -- the delta operations ---------------------------------------------

    def kill(self, link_index: int) -> None:
        """Remove one link, cancelling and rerouting the flow it carried.

        A link carrying zero flow costs nothing; otherwise each of its
        arcs triggers one repair.  Augmentation back up to ``limit`` is
        deferred to the next :meth:`flow_value` / :meth:`goto`.
        """
        bit = 1 << link_index
        if not self._alive & bit:
            return
        self._alive &= ~bit
        cap = self.graph.cap
        crossings: list[tuple[int, int, int]] = []
        for record in self._link_records.get(link_index, ()):
            a = record.arc
            if record.directed:
                flow = cap[a ^ 1]
            else:
                flow = (cap[a ^ 1] - cap[a]) // 2
            if flow > 0:
                crossings.append((self.graph.head[a ^ 1], self.graph.head[a], flow))
            elif flow < 0:
                crossings.append((self.graph.head[a], self.graph.head[a ^ 1], -flow))
            cap[a] = 0
            cap[a ^ 1] = 0
            self._design[a] = 0
            self._design[a ^ 1] = 0
        for u, v, flow in crossings:
            self._repair(u, v, flow)
        if crossings:
            self._dirty = True

    def revive(self, link_index: int) -> None:
        """Restore one link at its design capacity.

        The carried flow stays valid (feasibility is monotone in the
        alive set), so nothing is repaired; the deferred augment will
        pick up any newly-available paths.
        """
        bit = 1 << link_index
        if self._alive & bit:
            return
        self._alive |= bit
        cap = self.graph.cap
        for record in self._link_records.get(link_index, ()):
            a = record.arc
            cap[a] = record.capacity
            cap[a ^ 1] = 0 if record.directed else record.capacity
            self._design[a] = record.capacity
            self._design[a ^ 1] = 0 if record.directed else record.capacity
        self._dirty = True

    def retarget(self, virtual_capacities: Mapping[str, int]) -> None:
        """Move named virtual-arc capacities (assignment switch).

        Growing an arc frees residual capacity in place; shrinking one
        below the flow it carries repairs exactly the overflow, like a
        partial kill.  Only the named arcs are touched.
        """
        cap = self.graph.cap
        head = self.graph.head
        for name, raw in virtual_capacities.items():
            new_cap = int(raw)
            if new_cap < 0:
                raise SolverError(f"virtual capacity for {name!r} must be >= 0")
            try:
                a = self.template.virtual_arcs[name]
            except KeyError as exc:
                raise SolverError(f"unknown virtual arc {name!r}") from exc
            if new_cap == self._design[a]:
                continue
            flow = cap[a ^ 1]  # virtual arcs are directed with 0 reverse design
            if new_cap >= flow:
                cap[a] = new_cap - flow
                self._design[a] = new_cap
            else:
                overflow = flow - new_cap
                cap[a] = 0
                cap[a ^ 1] = new_cap
                self._design[a] = new_cap
                self._repair(head[a ^ 1], head[a], overflow)
            self._dirty = True

    def goto(self, alive: int) -> int:
        """Jump to an arbitrary alive bitmask and return the flow value.

        Applies all revives, then all kills, then (at most) one deferred
        augment — the whole point of walking the lattice in Gray order,
        where this loop body runs exactly once per step.  Revives go
        first so a kill's reroute can already use the newly restored
        capacity instead of falling back to terminal cancellation.
        """
        diff = alive ^ self._alive
        kills = diff & self._alive
        bits = diff & alive
        while bits:
            low = bits & -bits
            self.revive(low.bit_length() - 1)
            bits ^= low
        bits = kills
        while bits:
            low = bits & -bits
            self.kill(low.bit_length() - 1)
            bits ^= low
        self._alive = alive  # include any bits without residual arcs (self-loops)
        return self.flow_value()

    def goto_batch(self, masks: Sequence[int]) -> list[int]:
        """Evaluate a whole batch of alive bitmasks, returning flow values.

        The batch entry point for array-at-a-time callers (the
        bit-parallel block kernel hands over every configuration of a
        block that survived screening and pruning in one call).  Each
        step is a :meth:`goto` — revives, kills, one deferred augment —
        so consecutive batch members still repair deltas instead of
        cold-solving; all repair/saving counters accrue as usual.
        """
        return [self.goto(int(mask)) for mask in masks]

    def flow_value(self) -> int:
        """The current (limited) max-flow value, augmenting if needed.

        Runs the deferred augment: nothing at all when the carried flow
        already sits at ``limit``, otherwise one warm solve for the
        missing ``limit - value`` units (unbounded when ``limit`` is
        ``None``).  Also the point where ``paths_saved`` accrues — the
        measured carry is exactly the work a cold solve would repeat.
        """
        value = self.measured_value()
        if not self._dirty:
            return value
        self.paths_saved += value
        if self.limit is not None and value >= self.limit:
            self._dirty = False
            return value
        remaining = None if self.limit is None else self.limit - value
        pushed = self._solve(self.source, self.sink, remaining)
        self._dirty = False
        return value + pushed

    # -- internals --------------------------------------------------------

    def _solve(self, s: int, t: int, limit: int | None) -> int:
        self.solver_calls += 1
        return self.solver.solve(self.graph, s, t, limit=limit)

    def _repair(self, u: int, v: int, amount: int) -> None:
        """Cancel ``amount`` units that used to cross ``u -> v``.

        Reroute as much as possible through the residual graph; the
        unrouteable remainder is pushed back ``u -> source`` and pulled
        back ``sink -> v`` (both guaranteed exact by the decomposition
        argument in the module docstring).  Imbalance landing *on* a
        terminal simply changes the measured value and needs no push.
        """
        if amount <= 0 or u == v:
            return
        self.repairs += 1
        rerouted = self._solve(u, v, amount)
        remainder = amount - rerouted
        if remainder <= 0:
            return
        if u != self.source:
            drained = self._solve(u, self.source, remainder)
            if drained != remainder:
                raise SolverError(
                    f"flow repair failed: drained {drained}/{remainder} units "
                    f"of excess from node {u}"
                )
        if v != self.sink:
            pulled = self._solve(self.sink, v, remainder)
            if pulled != remainder:
                raise SolverError(
                    f"flow repair failed: pulled {pulled}/{remainder} units "
                    f"of deficit back from node {v}"
                )
