"""Minimum-cut extraction from max-flow results.

By max-flow/min-cut duality the nodes residual-reachable from the
source after a max-flow run form the source side of a minimum cut.
:class:`~repro.flow.base.MaxFlowResult` records that node set; the
functions here turn it into link sets and capacities against the
original network.
"""

from __future__ import annotations

from typing import Iterable

from repro.flow.base import MaxFlowResult, max_flow
from repro.graph.network import FlowNetwork, Node

__all__ = ["min_cut_links", "min_cut_capacity", "minimum_cut"]


def min_cut_links(net: FlowNetwork, result: MaxFlowResult) -> tuple[int, ...]:
    """Link indices crossing the minimum cut recorded in ``result``.

    A link crosses the cut when it can carry flow from the source side
    to the sink side: directed links leaving the source side, and
    undirected links with exactly one endpoint on each side.
    """
    side = result.min_cut_source_side
    crossing = []
    for link in net.links():
        tail_in = link.tail in side
        head_in = link.head in side
        if link.directed:
            if tail_in and not head_in:
                crossing.append(link.index)
        else:
            if tail_in != head_in:
                crossing.append(link.index)
    return tuple(crossing)


def min_cut_capacity(net: FlowNetwork, result: MaxFlowResult) -> int:
    """Total capacity of the recorded minimum cut."""
    return sum(net.link(i).capacity for i in min_cut_links(net, result))


def minimum_cut(
    net: FlowNetwork,
    source: Node,
    sink: Node,
    *,
    alive: int | Iterable[int] | None = None,
    solver: str | None = None,
) -> tuple[int, tuple[int, ...]]:
    """Compute ``(capacity, crossing link indices)`` of a minimum s-t cut.

    Runs a full (unlimited) max flow; by duality the returned capacity
    equals the max-flow value.
    """
    result = max_flow(net, source, sink, alive=alive, solver=solver)
    links = min_cut_links(net, result)
    if alive is not None:
        if isinstance(alive, int):
            links = tuple(i for i in links if (alive >> i) & 1)
        else:
            alive_set = set(alive)
            links = tuple(i for i in links if i in alive_set)
    return result.value, links
