"""Dinic's max-flow algorithm: BFS level graph + DFS blocking flow.

``O(V^2 E)`` in general and ``O(E sqrt(V))`` on unit networks — and,
more to the point here, the fastest of the pure-Python solvers on the
small dense instances the reliability loops generate, which is why it
is the registry default.
"""

from __future__ import annotations

from collections import deque

from repro.flow.base import MaxFlowSolver, register_solver
from repro.flow.residual import ResidualGraph

__all__ = ["DinicSolver"]


@register_solver("dinic")
class DinicSolver(MaxFlowSolver):
    """Blocking-flow max flow (Dinic, 1970)."""

    def solve_residual(
        self, graph: ResidualGraph, source: int, sink: int, limit: int | None = None
    ) -> int:
        cap = graph.cap
        head = graph.head
        adj = graph.adj
        n = graph.num_nodes
        total = 0
        self.last_paths = 0
        INF = float("inf")

        while limit is None or total < limit:
            # Phase 1: BFS levels on the residual graph.
            level = [-1] * n
            level[source] = 0
            queue = deque([source])
            while queue:
                v = queue.popleft()
                for a in adj[v]:
                    w = head[a]
                    if cap[a] > 0 and level[w] < 0:
                        level[w] = level[v] + 1
                        queue.append(w)
            if level[sink] < 0:
                break

            # Phase 2: blocking flow by iterative DFS with arc cursors.
            cursor = [0] * n
            while limit is None or total < limit:
                # Find one augmenting path within the level graph.
                path: list[int] = []
                v = source
                while True:
                    if v == sink:
                        break
                    advanced = False
                    while cursor[v] < len(adj[v]):
                        a = adj[v][cursor[v]]
                        w = head[a]
                        if cap[a] > 0 and level[w] == level[v] + 1:
                            path.append(a)
                            v = w
                            advanced = True
                            break
                        cursor[v] += 1
                    if advanced:
                        continue
                    # Dead end: retreat.
                    if v == source:
                        path = []
                        break
                    level[v] = -1  # prune the node for this phase
                    a = path.pop()
                    v = head[a ^ 1]
                    cursor[v] += 1
                if not path:
                    break
                push = min(cap[a] for a in path)
                if limit is not None:
                    remaining = limit - total
                    if push > remaining:
                        push = remaining
                for a in path:
                    cap[a] -= push
                    cap[a ^ 1] += push
                total += push
                self.last_paths += 1
                if limit is not None and total >= limit:
                    return total
        return total
