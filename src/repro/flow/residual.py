"""Residual-graph core shared by all max-flow solvers.

A :class:`ResidualGraph` is a compact integer-indexed arc structure:
arcs are stored in pairs (arc ``2i`` and its reverse ``2i + 1``), so a
solver augments along arc ``a`` by decreasing ``cap[a]`` and increasing
``cap[a ^ 1]``.  Node identities are integers; the mapping from
:class:`~repro.graph.FlowNetwork` nodes is handled by
:class:`ResidualTemplate`.

The reliability algorithms solve *many thousands* of max-flow instances
that differ only in which links are alive and what the virtual terminal
capacities are.  :class:`ResidualTemplate` therefore builds the arc
structure **once** and lets each instance be configured by a cheap
capacity reset (:meth:`ResidualTemplate.configure`), avoiding any
per-instance graph construction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from repro.exceptions import SolverError
from repro.graph.network import FlowNetwork, Node

__all__ = ["ResidualGraph", "ResidualTemplate", "INFINITE_CAPACITY"]

# Effectively-infinite integer capacity for virtual arcs.  Kept well
# below 2**63 so sums of many such arcs cannot overflow C-level ints if
# a numpy array ever holds them.
INFINITE_CAPACITY = 1 << 40


class ResidualGraph:
    """Mutable residual network over integer node ids.

    Attributes
    ----------
    num_nodes:
        Node count; node ids are ``0 .. num_nodes - 1``.
    head:
        ``head[a]`` is the node arc ``a`` points to.
    cap:
        Current residual capacity per arc (mutated by solvers).
    adj:
        ``adj[v]`` lists the arc ids leaving ``v``.
    """

    __slots__ = ("num_nodes", "head", "cap", "adj")

    def __init__(self, num_nodes: int) -> None:
        self.num_nodes = num_nodes
        self.head: list[int] = []
        self.cap: list[int] = []
        self.adj: list[list[int]] = [[] for _ in range(num_nodes)]

    def add_arc_pair(self, u: int, v: int, cap: int, rev_cap: int = 0) -> int:
        """Add arc ``u -> v`` with capacity ``cap`` and its reverse with
        ``rev_cap``; returns the forward arc id (reverse is ``id + 1``,
        i.e. ``id ^ 1``)."""
        if not (0 <= u < self.num_nodes and 0 <= v < self.num_nodes):
            raise SolverError(f"arc endpoints ({u}, {v}) out of range")
        arc = len(self.head)
        self.head.append(v)
        self.cap.append(cap)
        self.adj[u].append(arc)
        self.head.append(u)
        self.cap.append(rev_cap)
        self.adj[v].append(arc + 1)
        return arc

    @property
    def num_arcs(self) -> int:
        """Total directed arc count (forward + reverse)."""
        return len(self.head)

    def copy(self) -> "ResidualGraph":
        """A capacity-private clone sharing the immutable arc structure.

        ``head`` and ``adj`` never change after construction, so clones
        alias them; only ``cap`` (the per-instance mutable state) is
        copied.  This is what lets a long-lived incremental engine own
        its residual state while the template keeps serving cold solves
        from the original graph.
        """
        clone = ResidualGraph.__new__(ResidualGraph)
        clone.num_nodes = self.num_nodes
        clone.head = self.head
        clone.adj = self.adj
        clone.cap = list(self.cap)
        return clone

    def residual_reachable(self, source: int) -> list[bool]:
        """Nodes reachable from ``source`` along positive-residual arcs.

        After a max-flow run this is the source side of a minimum cut.
        """
        seen = [False] * self.num_nodes
        seen[source] = True
        stack = [source]
        cap = self.cap
        head = self.head
        adj = self.adj
        while stack:
            v = stack.pop()
            for a in adj[v]:
                if cap[a] > 0 and not seen[head[a]]:
                    seen[head[a]] = True
                    stack.append(head[a])
        return seen


@dataclass
class _ArcRecord:
    """Bookkeeping for one template arc pair."""

    arc: int  # forward arc id
    link_index: int | None  # original FlowNetwork link, None for virtual arcs
    capacity: int  # design capacity
    directed: bool


@dataclass
class ResidualTemplate:
    """A reusable residual structure for one network (plus virtual arcs).

    Build once with :func:`build_template`; then for every failure
    configuration / assignment call :meth:`configure` and hand
    :attr:`graph` to a solver.  ``configure`` rewrites every arc
    capacity in one pass, so no state leaks between instances.

    Undirected links are modelled as an arc pair with capacity ``c`` on
    *both* sides, which is the standard correct encoding for undirected
    max-flow.
    """

    graph: ResidualGraph
    node_index: dict[Node, int]
    records: list[_ArcRecord] = field(default_factory=list)
    virtual_arcs: dict[str, int] = field(default_factory=dict)
    _arcs_by_link: dict[int, list[int]] = field(default_factory=dict)

    def add_network_links(self, net: FlowNetwork) -> None:
        """Add one arc pair per network link."""
        for link in net.links():
            if link.tail == link.head:
                continue  # self-loops never carry s-t flow
            u = self.node_index[link.tail]
            v = self.node_index[link.head]
            rev = link.capacity if not link.directed else 0
            arc = self.graph.add_arc_pair(u, v, link.capacity, rev)
            self.records.append(
                _ArcRecord(arc=arc, link_index=link.index, capacity=link.capacity, directed=link.directed)
            )
            self._arcs_by_link.setdefault(link.index, []).append(arc)

    def add_virtual_arc(self, name: str, u: int, v: int, capacity: int) -> int:
        """Add a named virtual arc (e.g. super-source feeders)."""
        arc = self.graph.add_arc_pair(u, v, capacity, 0)
        self.records.append(_ArcRecord(arc=arc, link_index=None, capacity=capacity, directed=True))
        self.virtual_arcs[name] = arc
        return arc

    def configure(
        self,
        alive: int | Iterable[int] | None = None,
        virtual_capacities: Mapping[str, int] | None = None,
        *,
        graph: ResidualGraph | None = None,
    ) -> ResidualGraph:
        """Reset all arc capacities for a fresh solve.

        Parameters
        ----------
        alive:
            Which original links are up.  ``None`` means all; an ``int``
            is a bitmask over link indices (bit ``i`` set = link ``i``
            alive); any other iterable is a collection of alive link
            indices.  Dead links get capacity 0 in both directions.
        virtual_capacities:
            New capacities for named virtual arcs; unnamed virtual arcs
            keep their design capacity.
        graph:
            Write the capacities into this graph instead of the shared
            :attr:`graph` — must be a :meth:`ResidualGraph.copy` of it
            (same arc structure).  Lets an incremental engine get a
            configured private residual without disturbing the
            template's own state.
        """
        target = self.graph if graph is None else graph
        if target.num_arcs != self.graph.num_arcs:
            raise SolverError("graph is not a copy of this template's graph")
        if alive is None:
            alive_test = None
        elif isinstance(alive, int):
            mask = alive
            alive_test = lambda i: (mask >> i) & 1  # noqa: E731
        else:
            alive_set = set(alive)
            alive_test = lambda i: i in alive_set  # noqa: E731
        cap = target.cap
        for record in self.records:
            a = record.arc
            if record.link_index is not None and alive_test is not None and not alive_test(record.link_index):
                cap[a] = 0
                cap[a ^ 1] = 0
                continue
            cap[a] = record.capacity
            cap[a ^ 1] = record.capacity if (record.link_index is not None and not record.directed) else 0
        if virtual_capacities:
            for name, value in virtual_capacities.items():
                try:
                    arc = self.virtual_arcs[name]
                except KeyError as exc:
                    raise SolverError(f"unknown virtual arc {name!r}") from exc
                cap[arc] = value
                cap[arc ^ 1] = 0
        return target

    def link_arcs(self, link_index: int) -> list[_ArcRecord]:
        """The arc records modelling one original link (usually one).

        Empty for self-loops (never added to the residual structure) and
        unknown indices.  This is the delta hook the incremental engine
        uses to kill / revive exactly one link's capacities.
        """
        arcs = self._arcs_by_link.get(link_index, [])
        by_arc = {record.arc: record for record in self.records}
        return [by_arc[a] for a in arcs]

    def link_indices(self) -> list[int]:
        """Sorted indices of the original links present in the template."""
        return sorted(self._arcs_by_link)

    def link_flow(self, link_index: int) -> int:
        """Net flow currently on an original link (after a solve).

        For a directed link the reverse arc starts at 0 residual and
        gains exactly the pushed flow, so the flow is ``cap[arc ^ 1]``
        — correct whether or not the link was masked dead or its
        capacity overridden for this solve.  For an undirected link both
        sides start at the same value ``c`` (or 0 when dead) and a net
        forward flow ``f`` leaves them at ``c - f`` / ``c + f``, so the
        flow is half their difference (sign = direction along the
        stored orientation).
        """
        arcs = self._arcs_by_link.get(link_index)
        if not arcs:
            return 0
        total = 0
        cap = self.graph.cap
        for arc in arcs:
            record = next(r for r in self.records if r.arc == arc)
            if record.directed:
                total += cap[arc ^ 1]
            else:
                total += (cap[arc ^ 1] - cap[arc]) // 2
        return total


def build_template(
    net: FlowNetwork,
    *,
    extra_nodes: Sequence[str] = (),
) -> ResidualTemplate:
    """Create a :class:`ResidualTemplate` for ``net``.

    ``extra_nodes`` creates additional virtual nodes (e.g. a super
    source) addressable through the returned ``node_index`` by their
    given names; names must not collide with existing node labels.
    """
    node_index: dict[Node, int] = {}
    for node in net.nodes():
        node_index[node] = len(node_index)
    for name in extra_nodes:
        if name in node_index:
            raise SolverError(f"virtual node name {name!r} collides with a network node")
        node_index[name] = len(node_index)
    template = ResidualTemplate(graph=ResidualGraph(len(node_index)), node_index=node_index)
    template.add_network_links(net)
    return template
