"""repro — exact reliability calculation of P2P streaming flow networks
with bottleneck links.

Reproduction of Satoshi Fujita, *Reliability Calculation of P2P
Streaming Systems with Bottleneck Links*, IEEE IPDPSW 2017.

Quickstart
----------
>>> from repro import FlowNetwork, compute_reliability
>>> net = FlowNetwork()
>>> net.add_link("s", "m", 2, 0.1)
0
>>> net.add_link("m", "t", 2, 0.1)
1
>>> round(compute_reliability(net, "s", "t", 2).value, 4)
0.81

Subpackages
-----------
``repro.graph``
    The :class:`FlowNetwork` structure, builders/generators,
    connectivity, cut enumeration and bottleneck discovery.
``repro.flow``
    From-scratch max-flow solvers (Dinic default), min-cut extraction
    and flow decomposition into unit-rate sub-streams.
``repro.probability``
    Failure-configuration enumeration, subset-lattice transforms,
    inclusion–exclusion, Bernoulli sampling.
``repro.core``
    The algorithms: naive, bridge (Eq. 1), bottleneck (the paper),
    chain (multi-cut extension), factoring, Monte-Carlo, bounds.
``repro.p2p``
    The motivating substrate: peers, churn, overlay builders
    (single-tree / multi-tree / mesh), streaming simulation.
``repro.obs``
    Opt-in tracing/metrics/progress for the kernels: ``record()``,
    ``span()``, counters, ``repro profile`` (zero-cost when off).
"""

from repro import obs
from repro._version import __version__
from repro.core.api import available_methods, compute_reliability
from repro.core.demand import FlowDemand
from repro.core.result import EstimateResult, ReliabilityResult
from repro.core.sweep import ArrayCache, SweepResult, SweepSpec, compute_reliability_sweep
from repro.graph.network import FlowNetwork, Link

__all__ = [
    "__version__",
    "FlowNetwork",
    "Link",
    "FlowDemand",
    "ReliabilityResult",
    "EstimateResult",
    "compute_reliability",
    "available_methods",
    "ArrayCache",
    "SweepSpec",
    "SweepResult",
    "compute_reliability_sweep",
    "obs",
]
