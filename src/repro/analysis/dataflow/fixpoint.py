"""A generic monotone worklist fixpoint solver over a :class:`CFG`.

An analysis supplies the lattice — ``bottom``, ``join``, the boundary
``initial`` state and a per-node ``transfer`` function — and the solver
iterates to the least fixpoint.  Direction is a property of the
analysis: ``forward`` propagates entry→exit along edges, ``backward``
exit→entry against them.

States must be immutable values with a meaningful ``==`` (frozensets,
tuples, frozen dataclasses); ``join`` must be commutative, associative
and monotone, and ``transfer`` monotone in its state argument —
standard monotone-framework conditions, under which the worklist
terminates for finite-height lattices.
"""

from __future__ import annotations

from typing import Callable, Generic, TypeVar

from repro.analysis.dataflow.cfg import CFG, ENTRY, EXIT, CFGNode
from repro.exceptions import AnalysisError

__all__ = ["DataflowAnalysis", "solve_fixpoint"]

S = TypeVar("S")


class DataflowAnalysis(Generic[S]):
    """Base class for one dataflow analysis (the lattice + transfer).

    Subclasses set :attr:`direction` and implement the four hooks.
    """

    #: ``"forward"`` or ``"backward"``.
    direction: str = "forward"

    def bottom(self) -> S:
        """The least element (state of not-yet-reached nodes)."""
        raise NotImplementedError

    def initial(self) -> S:
        """The boundary state (at entry forward, at exit backward)."""
        raise NotImplementedError

    def join(self, a: S, b: S) -> S:
        """Least upper bound of two states."""
        raise NotImplementedError

    def transfer(self, node: CFGNode, state: S) -> S:
        """The effect of one node on the state flowing through it."""
        raise NotImplementedError


def solve_fixpoint(
    cfg: CFG,
    analysis: DataflowAnalysis[S],
    *,
    max_iterations: int | None = None,
) -> dict[int, tuple[S, S]]:
    """Least-fixpoint ``{node_index: (state_in, state_out)}``.

    ``state_in`` is the join over predecessor outs (successor ins for a
    backward analysis); ``state_out`` is ``transfer(node, state_in)``.
    ``max_iterations`` (default ``64 * |nodes|``) guards against a
    non-monotone transfer looping forever — exceeding it raises
    :class:`AnalysisError` instead of hanging the lint run.
    """
    if analysis.direction not in ("forward", "backward"):
        raise AnalysisError(f"unknown analysis direction {analysis.direction!r}")
    forward = analysis.direction == "forward"
    boundary = ENTRY if forward else EXIT
    into: Callable[[int], list[int]]
    outof: Callable[[int], list[int]]
    if forward:
        into = lambda i: [e.src for e in cfg.preds[i]]  # noqa: E731
        outof = lambda i: [e.dst for e in cfg.succs[i]]  # noqa: E731
    else:
        into = lambda i: [e.dst for e in cfg.succs[i]]  # noqa: E731
        outof = lambda i: [e.src for e in cfg.preds[i]]  # noqa: E731

    state_in: dict[int, S] = {n.index: analysis.bottom() for n in cfg.nodes}
    state_out: dict[int, S] = {}
    state_in[boundary] = analysis.initial()
    for node in cfg.nodes:
        state_out[node.index] = analysis.transfer(node, state_in[node.index])

    budget = max_iterations if max_iterations is not None else 64 * max(1, len(cfg.nodes))
    worklist = [n.index for n in cfg.nodes]
    pending = set(worklist)
    iterations = 0
    while worklist:
        iterations += 1
        if iterations > budget + len(cfg.nodes):
            raise AnalysisError(
                f"fixpoint did not converge within {budget} iterations "
                "(non-monotone transfer function?)"
            )
        index = worklist.pop(0)
        pending.discard(index)
        incoming = into(index)
        if incoming:
            state = state_out[incoming[0]]
            for other in incoming[1:]:
                state = analysis.join(state, state_out[other])
            if index == boundary:
                state = analysis.join(state, analysis.initial())
        elif index == boundary:
            state = analysis.initial()
        else:
            state = analysis.bottom()
        new_out = analysis.transfer(cfg.nodes[index], state)
        if state != state_in[index] or new_out != state_out[index]:
            state_in[index] = state
            state_out[index] = new_out
            for succ in outof(index):
                if succ not in pending:
                    pending.add(succ)
                    worklist.append(succ)
    return {i: (state_in[i], state_out[i]) for i in state_in}
