"""Intraprocedural control-flow graphs for Python functions.

One :class:`CFG` per function: a synthetic ``entry`` node (index 0), a
synthetic ``exit`` node (index 1) that both normal returns and
escaping exceptions reach, and one node per statement (compound
statements contribute one node for their header — the evaluated
test/iterator/context expression — plus nodes for every statement in
their bodies).  Edges carry a ``kind`` so analyses and golden tests can
tell branch polarity, loop back-edges and exception flow apart.

Handled control flow:

* ``if`` / ``elif`` / ``else`` — ``true`` / ``false`` edges;
* ``while`` and ``for`` with ``else`` — back-edges (``loop``), the
  ``false`` / ``exhausted`` edge into the ``else`` suite, ``break``
  jumping past it, ``continue`` back to the header;
* ``try`` / ``except`` / ``else`` / ``finally`` — every statement that
  can raise gets an ``exception`` edge to each handler (plus the
  unmatched-type continuation), handlers and the ``finally`` suite are
  wired on both the normal and the exceptional path, and ``finally``
  re-raises toward the enclosing handler/exit;
* ``with`` / ``async with`` — one header node for the context
  expressions, body wired through;
* ``match`` — one ``case`` edge per case plus a ``nomatch``
  fall-through unless an unguarded wildcard case is present;
* ``return`` / ``raise`` / ``break`` / ``continue`` — routed through
  every enclosing ``finally`` suite before reaching their target.

Deliberate approximations (conservative for may-analyses, documented
for the golden tests):

* a statement *can raise* when it contains a call, attribute access,
  subscript, arithmetic, comparison, ``assert``, ``await`` or
  ``yield`` — pure constant/name moves get no exception edge;
* loop and ``match`` headers always keep their not-taken edge (a
  ``while True`` still has a ``false`` edge), so the exit stays
  reachable;
* a ``finally`` suite is built once; every continuation that entered
  it (normal, exceptional, ``return``, ``break``, ``continue``) leaves
  from its last frontier, so paths are a superset of the real ones;
* comprehensions are expression-level and stay atomic inside their
  statement's node.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field

__all__ = ["CFG", "CFGNode", "Edge", "build_cfg", "function_cfgs"]

ENTRY = 0
EXIT = 1

#: Expression constituents that make a statement "can raise".
_RAISING_EXPRS = (
    ast.Call,
    ast.Attribute,
    ast.Subscript,
    ast.BinOp,
    ast.Compare,
    ast.Await,
    ast.Yield,
    ast.YieldFrom,
)

_FUNCTIONS = (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)


@dataclass(frozen=True)
class Edge:
    """One directed control-flow edge with a branch/exception kind."""

    src: int
    dst: int
    kind: str


@dataclass
class CFGNode:
    """One CFG node: a statement, a handler header, or entry/exit."""

    index: int
    stmt: ast.AST | None
    label: str

    @property
    def line(self) -> int:
        return getattr(self.stmt, "lineno", 0)


class CFG:
    """The finished graph: nodes, deduplicated edges, adjacency."""

    def __init__(self, nodes: list[CFGNode], edges: list[Edge]) -> None:
        self.nodes = nodes
        seen: dict[tuple[int, int, str], Edge] = {}
        for edge in edges:
            seen.setdefault((edge.src, edge.dst, edge.kind), edge)
        self.edges = sorted(seen.values(), key=lambda e: (e.src, e.dst, e.kind))
        self.succs: dict[int, list[Edge]] = {n.index: [] for n in nodes}
        self.preds: dict[int, list[Edge]] = {n.index: [] for n in nodes}
        for edge in self.edges:
            self.succs[edge.src].append(edge)
            self.preds[edge.dst].append(edge)

    def __len__(self) -> int:
        return len(self.nodes)

    def node_for(self, stmt: ast.AST) -> CFGNode | None:
        """The node whose statement is ``stmt`` (identity), or None."""
        for node in self.nodes:
            if node.stmt is stmt:
                return node
        return None

    def reachable(self, start: int = ENTRY) -> set[int]:
        """Node indices reachable from ``start`` along edges."""
        seen = {start}
        queue = [start]
        while queue:
            current = queue.pop()
            for edge in self.succs[current]:
                if edge.dst not in seen:
                    seen.add(edge.dst)
                    queue.append(edge.dst)
        return seen

    def reaches_exit(self, start: int) -> bool:
        """Whether ``exit`` is reachable from ``start``."""
        return EXIT in self.reachable(start)

    def render(self) -> str:
        """Deterministic text form used by the golden snapshot tests."""
        lines = []
        for node in self.nodes:
            if node.stmt is None:
                lines.append(f"{node.index} {node.label}")
            else:
                lines.append(f"{node.index} L{node.line} {node.label}")
        lines.append("edges:")
        for edge in self.edges:
            lines.append(f"{edge.src} -> {edge.dst} [{edge.kind}]")
        return "\n".join(lines)


def _expr_can_raise(node: ast.AST | None) -> bool:
    if node is None:
        return False
    return any(isinstance(sub, _RAISING_EXPRS) for sub in ast.walk(node))


def _stmt_can_raise(stmt: ast.stmt) -> bool:
    """Whether a *simple* statement can raise (compound headers are
    judged on their evaluated expression only, by the builder)."""
    if isinstance(stmt, (ast.Pass, ast.Break, ast.Continue, ast.Global, ast.Nonlocal)):
        return False
    if isinstance(stmt, (ast.Raise, ast.Assert, ast.Delete)):
        return True
    if isinstance(stmt, _FUNCTIONS + (ast.ClassDef, ast.Import, ast.ImportFrom)):
        return False
    return any(
        isinstance(sub, _RAISING_EXPRS)
        for sub in ast.walk(stmt)
        if not isinstance(sub, _FUNCTIONS)
    )


class _Target:
    """A deferred edge destination (resolved once its node exists)."""

    __slots__ = ("pends", "resolved")

    def __init__(self) -> None:
        self.pends: list[tuple[int, str]] = []
        self.resolved: int | None = None

    def add(self, builder: "_Builder", src: int, kind: str) -> None:
        if self.resolved is not None:
            builder.edges.append(Edge(src, self.resolved, kind))
        else:
            self.pends.append((src, kind))

    def resolve(self, builder: "_Builder", index: int) -> None:
        self.resolved = index
        for src, kind in self.pends:
            builder.edges.append(Edge(src, index, kind))
        self.pends.clear()


@dataclass
class _Loop:
    """Break/continue bookkeeping for one enclosing loop."""

    head: int
    breaks: list[tuple[int, str]] = field(default_factory=list)
    finally_depth: int = 0


@dataclass
class _FinallyFrame:
    """One enclosing ``finally`` suite still being routed through."""

    entry: _Target
    #: ``(kind, target)`` continuations that entered this finally and
    #: must leave from its end frontier.  ``target`` is the exit index,
    #: a :class:`_Loop` (break), or a loop head index (continue).
    continuations: list[tuple[str, object, int]] = field(default_factory=list)


Frontier = list[tuple[int, str]]


class _Builder:
    def __init__(self) -> None:
        self.nodes: list[CFGNode] = [
            CFGNode(ENTRY, None, "entry"),
            CFGNode(EXIT, None, "exit"),
        ]
        self.edges: list[Edge] = []
        self.loops: list[_Loop] = []
        self.finallies: list[_FinallyFrame] = []
        # Innermost exception sinks: ints (node indices) or _Targets.
        self.exc_stack: list[list[object]] = [[EXIT]]

    # -- plumbing ---------------------------------------------------------

    def new_node(self, stmt: ast.AST, label: str | None = None) -> int:
        index = len(self.nodes)
        self.nodes.append(CFGNode(index, stmt, label or type(stmt).__name__))
        return index

    def connect(self, frontier: Frontier, dst: int) -> None:
        for src, kind in frontier:
            self.edges.append(Edge(src, dst, kind))

    def raise_from(self, src: int) -> None:
        """Exception edges from ``src`` to every innermost sink."""
        for sink in self.exc_stack[-1]:
            if isinstance(sink, _Target):
                sink.add(self, src, "exception")
            else:
                self.edges.append(Edge(src, int(sink), "exception"))

    def jump(self, src: int, kind: str, target: object, target_depth: int) -> None:
        """Route a return/break/continue through enclosing finallies."""
        if len(self.finallies) > target_depth:
            frame = self.finallies[-1]
            frame.entry.add(self, src, kind)
            frame.continuations.append((kind, target, target_depth))
        else:
            self._jump_edge([(src, kind)], kind, target)

    def _jump_edge(self, frontier: Frontier, kind: str, target: object) -> None:
        if isinstance(target, _Loop):
            target.breaks.extend((src, kind) for src, _ in frontier)
        else:
            for src, _ in frontier:
                self.edges.append(Edge(src, int(target), kind))

    # -- statement dispatch ----------------------------------------------

    def build_body(self, stmts: list[ast.stmt], frontier: Frontier) -> Frontier:
        for stmt in stmts:
            frontier = self.build_stmt(stmt, frontier)
        return frontier

    def build_stmt(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        if isinstance(stmt, ast.If):
            return self._build_if(stmt, frontier)
        if isinstance(stmt, ast.While):
            return self._build_while(stmt, frontier)
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            return self._build_for(stmt, frontier)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            return self._build_with(stmt, frontier)
        if isinstance(stmt, ast.Try):
            return self._build_try(stmt, frontier)
        if isinstance(stmt, ast.Match):
            return self._build_match(stmt, frontier)
        return self._build_simple(stmt, frontier)

    def _build_simple(self, stmt: ast.stmt, frontier: Frontier) -> Frontier:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if _stmt_can_raise(stmt):
            self.raise_from(node)
        if isinstance(stmt, ast.Return):
            self.jump(node, "return", EXIT, 0)
            return []
        if isinstance(stmt, ast.Raise):
            return []
        if isinstance(stmt, ast.Break):
            loop = self.loops[-1] if self.loops else None
            if loop is not None:
                self.jump(node, "break", loop, loop.finally_depth)
            return []
        if isinstance(stmt, ast.Continue):
            loop = self.loops[-1] if self.loops else None
            if loop is not None:
                self.jump(node, "continue", loop.head, loop.finally_depth)
            return []
        return [(node, "next")]

    def _build_if(self, stmt: ast.If, frontier: Frontier) -> Frontier:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if _expr_can_raise(stmt.test):
            self.raise_from(node)
        body_frontier = self.build_body(stmt.body, [(node, "true")])
        if stmt.orelse:
            else_frontier = self.build_body(stmt.orelse, [(node, "false")])
        else:
            else_frontier = [(node, "false")]
        return body_frontier + else_frontier

    def _build_while(self, stmt: ast.While, frontier: Frontier) -> Frontier:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if _expr_can_raise(stmt.test):
            self.raise_from(node)
        loop = _Loop(head=node, finally_depth=len(self.finallies))
        self.loops.append(loop)
        body_frontier = self.build_body(stmt.body, [(node, "true")])
        for src, _ in body_frontier:
            self.edges.append(Edge(src, node, "loop"))
        self.loops.pop()
        if stmt.orelse:
            else_frontier = self.build_body(stmt.orelse, [(node, "false")])
        else:
            else_frontier = [(node, "false")]
        return else_frontier + loop.breaks

    def _build_for(self, stmt: ast.For | ast.AsyncFor, frontier: Frontier) -> Frontier:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        # Iterator creation and each __next__ can raise.
        self.raise_from(node)
        loop = _Loop(head=node, finally_depth=len(self.finallies))
        self.loops.append(loop)
        body_frontier = self.build_body(stmt.body, [(node, "iter")])
        for src, _ in body_frontier:
            self.edges.append(Edge(src, node, "loop"))
        self.loops.pop()
        if stmt.orelse:
            else_frontier = self.build_body(stmt.orelse, [(node, "exhausted")])
        else:
            else_frontier = [(node, "exhausted")]
        return else_frontier + loop.breaks

    def _build_with(self, stmt: ast.With | ast.AsyncWith, frontier: Frontier) -> Frontier:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if any(_expr_can_raise(item.context_expr) for item in stmt.items):
            self.raise_from(node)
        return self.build_body(stmt.body, [(node, "next")])

    def _build_match(self, stmt: ast.Match, frontier: Frontier) -> Frontier:
        node = self.new_node(stmt)
        self.connect(frontier, node)
        if _expr_can_raise(stmt.subject):
            self.raise_from(node)
        out: Frontier = []
        exhaustive = False
        for case in stmt.cases:
            out.extend(self.build_body(case.body, [(node, "case")]))
            if (
                case.guard is None
                and isinstance(case.pattern, (ast.MatchAs, ast.MatchOr))
                and _pattern_is_wildcard(case.pattern)
            ):
                exhaustive = True
        if not exhaustive:
            out.append((node, "nomatch"))
        return out

    def _build_try(self, stmt: ast.Try, frontier: Frontier) -> Frontier:
        frame: _FinallyFrame | None = None
        if stmt.finalbody:
            frame = _FinallyFrame(entry=_Target())
            self.finallies.append(frame)

        after_body_sink: object
        if frame is not None:
            after_body_sink = frame.entry
        else:
            after_body_sink = None

        handler_targets = [_Target() for _ in stmt.handlers]
        # Exceptions inside the body reach every handler plus the
        # unmatched-type continuation (finally, or the enclosing sinks).
        body_sinks: list[object] = list(handler_targets)
        if after_body_sink is not None:
            body_sinks.append(after_body_sink)
        elif not handler_targets:
            body_sinks = list(self.exc_stack[-1])
        else:
            body_sinks.extend(self.exc_stack[-1])
        self.exc_stack.append(body_sinks)
        body_frontier = self.build_body(stmt.body, frontier)
        self.exc_stack.pop()

        # Handlers and the else suite raise toward finally/enclosing.
        region_sinks = [after_body_sink] if after_body_sink is not None else self.exc_stack[-1]
        self.exc_stack.append(list(region_sinks))
        normal_frontier: Frontier = []
        for handler, target in zip(stmt.handlers, handler_targets):
            handler_node = self.new_node(handler, "ExceptHandler")
            target.resolve(self, handler_node)
            normal_frontier.extend(self.build_body(handler.body, [(handler_node, "next")]))
        if stmt.orelse:
            normal_frontier.extend(self.build_body(stmt.orelse, body_frontier))
        else:
            normal_frontier.extend(body_frontier)
        self.exc_stack.pop()

        if frame is None:
            return normal_frontier

        self.finallies.pop()
        finally_incoming = normal_frontier
        # The first node created while building the finalbody is where
        # control enters it, whatever the first statement's shape (a
        # ``try`` contributes no node of its own — its body's first
        # statement is the entry).  Every suite creates at least one
        # node, so the index is always valid.
        head = len(self.nodes)
        finally_frontier = self.build_body(stmt.finalbody, finally_incoming)
        frame.entry.resolve(self, head)
        # Exceptional entries re-raise after the finally completes.
        for src, _ in finally_frontier:
            for sink in self.exc_stack[-1]:
                if isinstance(sink, _Target):
                    sink.add(self, src, "exception")
                else:
                    self.edges.append(Edge(src, int(sink), "exception"))
        # return/break/continue continuations leave from the end too.
        for kind, target, target_depth in frame.continuations:
            if len(self.finallies) > target_depth:
                outer = self.finallies[-1]
                for src, _ in finally_frontier:
                    outer.entry.add(self, src, kind)
                    outer.continuations.append((kind, target, target_depth))
            else:
                self._jump_edge(finally_frontier, kind, target)
        return finally_frontier


def _pattern_is_wildcard(pattern: ast.pattern) -> bool:
    """Whether a case pattern matches anything (``case _:`` / ``case x:``)."""
    if isinstance(pattern, ast.MatchAs):
        return pattern.pattern is None or _pattern_is_wildcard(pattern.pattern)
    if isinstance(pattern, ast.MatchOr):
        return any(_pattern_is_wildcard(p) for p in pattern.patterns)
    return False


def build_cfg(body: list[ast.stmt]) -> CFG:
    """Build the CFG of one statement suite (usually a function body)."""
    builder = _Builder()
    frontier = builder.build_body(body, [(ENTRY, "next")])
    builder.connect(frontier, EXIT)
    return CFG(builder.nodes, builder.edges)


def function_cfgs(tree: ast.Module) -> list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, CFG]]:
    """``(qualname, def-node, CFG)`` for every function in a module.

    Nested functions get their own independent CFG (intraprocedural
    analyses treat each scope separately), named ``outer.inner``.
    """
    out: list[tuple[str, ast.FunctionDef | ast.AsyncFunctionDef, CFG]] = []

    def visit(node: ast.AST, prefix: str) -> None:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef)):
                qualname = f"{prefix}{child.name}"
                out.append((qualname, child, build_cfg(child.body)))
                visit(child, f"{qualname}.")
            elif isinstance(child, ast.ClassDef):
                visit(child, f"{prefix}{child.name}.")
            else:
                visit(child, prefix)

    visit(tree, "")
    return out
