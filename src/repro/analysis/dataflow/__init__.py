"""Flow-sensitive analysis infrastructure for the dataflow rule tier.

The syntax tier (RR101–RR110) judges one AST node at a time; the rules
in the dataflow tier (RR201–RR205) reason about *paths*: does unseeded
randomness reach this ``return``, is a cached array mutated after
retrieval on some branch, is a span closed on the exception edge too?
Three layers make that possible:

:mod:`~repro.analysis.dataflow.cfg`
    An intraprocedural control-flow graph per Python function —
    branches, loops with ``else``, ``try/except/finally`` (with
    conservative exception edges), ``with``, ``match``, ``break`` /
    ``continue`` / ``return`` / ``raise``.

:mod:`~repro.analysis.dataflow.fixpoint`
    A generic monotone worklist solver: forward or backward, with the
    lattice (bottom / join / transfer) supplied per analysis.

:mod:`~repro.analysis.dataflow.reaching`
    Reaching-definitions and taint building blocks shared by the
    concrete rules: which names a statement binds, whether an
    expression derives from a tainted name, source/sink matching.
"""

from __future__ import annotations

from repro.analysis.dataflow.cfg import CFG, CFGNode, Edge, build_cfg, function_cfgs
from repro.analysis.dataflow.fixpoint import DataflowAnalysis, solve_fixpoint
from repro.analysis.dataflow.reaching import (
    TaintState,
    assigned_names,
    call_name,
    expression_names,
    is_taint_derived,
)

__all__ = [
    "CFG",
    "CFGNode",
    "DataflowAnalysis",
    "Edge",
    "TaintState",
    "assigned_names",
    "build_cfg",
    "call_name",
    "expression_names",
    "function_cfgs",
    "is_taint_derived",
    "solve_fixpoint",
]
