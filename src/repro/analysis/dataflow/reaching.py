"""Reaching-definitions / taint building blocks for the dataflow rules.

The RR201–RR205 rules all reduce to one shape: a *source* seeds a set
of variable names, assignments propagate or kill membership along CFG
paths, and a *sink* reached by a member is a finding.  This module
holds the shared pieces: which names a statement binds, whether an
expression derives from a tainted name, and a ready-made forward
may-taint analysis parameterised by a source predicate.
"""

from __future__ import annotations

import ast
from typing import Callable, Iterator

from repro.analysis.dataflow.cfg import CFGNode
from repro.analysis.dataflow.fixpoint import DataflowAnalysis

__all__ = [
    "TaintState",
    "NameTaint",
    "assigned_names",
    "call_name",
    "expression_names",
    "is_taint_derived",
    "iter_assign_pairs",
    "own_exprs",
]

#: The state of the ready-made taint analysis: tainted variable names.
TaintState = frozenset


def call_name(node: ast.AST) -> str | None:
    """The rightmost identifier of a call's callee, or ``None``."""
    if not isinstance(node, ast.Call):
        return None
    func = node.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def expression_names(node: ast.AST) -> set[str]:
    """Every plain variable name read anywhere under ``node``."""
    return {
        sub.id
        for sub in ast.walk(node)
        if isinstance(sub, ast.Name) and isinstance(sub.ctx, ast.Load)
    }


def own_exprs(stmt: ast.AST) -> list[ast.AST]:
    """The parts evaluated *at* a CFG node.

    A compound statement's CFG node carries its whole subtree, but only
    the header expression executes there — the body statements have
    their own nodes.  Walking ``own_exprs`` instead of the raw ``stmt``
    keeps transfer functions and sink scans from attributing nested
    statements to the header (wrong state, duplicate findings).  Simple
    statements are their own single part.
    """
    if isinstance(stmt, (ast.If, ast.While)):
        return [stmt.test]
    if isinstance(stmt, (ast.For, ast.AsyncFor)):
        return [stmt.iter]
    if isinstance(stmt, (ast.With, ast.AsyncWith)):
        return [item.context_expr for item in stmt.items]
    if isinstance(stmt, ast.Match):
        return [stmt.subject]
    if isinstance(stmt, ast.ExceptHandler):
        return [stmt.type] if stmt.type is not None else []
    if isinstance(
        stmt, (ast.Try, ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef, ast.Lambda)
    ):
        return []
    return [stmt]


def _target_names(target: ast.expr) -> Iterator[str]:
    """Plain names bound by one assignment target (tuples unpacked)."""
    if isinstance(target, ast.Name):
        yield target.id
    elif isinstance(target, (ast.Tuple, ast.List)):
        for element in target.elts:
            yield from _target_names(element)
    elif isinstance(target, ast.Starred):
        yield from _target_names(target.value)


def assigned_names(stmt: ast.AST) -> set[str]:
    """Plain variable names bound by one statement.

    Covers ``=`` / ``+=`` / annotated assignments (tuple targets
    unpacked), ``for`` targets, ``with ... as`` names, walrus
    assignments anywhere in the statement's expressions, and names
    bound by ``except ... as``.  Attribute/subscript stores bind no
    plain name and are excluded by design.
    """
    names: set[str] = set()
    if isinstance(stmt, ast.Assign):
        for target in stmt.targets:
            names.update(_target_names(target))
    elif isinstance(stmt, (ast.AugAssign, ast.AnnAssign)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        names.update(_target_names(stmt.target))
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                names.update(_target_names(item.optional_vars))
    elif isinstance(stmt, ast.ExceptHandler):
        if stmt.name:
            names.add(stmt.name)
    for part in own_exprs(stmt):
        for sub in ast.walk(part):
            if isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
                names.add(sub.target.id)
    return names


def iter_assign_pairs(stmt: ast.AST) -> Iterator[tuple[set[str], ast.expr]]:
    """``(bound names, value expression)`` pairs of one statement.

    One pair per assignment statement; ``for`` loops pair their targets
    with the iterable, walrus expressions pair their single name with
    their value.
    """
    if isinstance(stmt, ast.Assign):
        names: set[str] = set()
        for target in stmt.targets:
            names.update(_target_names(target))
        yield names, stmt.value
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        yield set(_target_names(stmt.target)), stmt.value
    elif isinstance(stmt, ast.AugAssign):
        yield set(_target_names(stmt.target)), stmt.value
    elif isinstance(stmt, (ast.For, ast.AsyncFor)):
        yield set(_target_names(stmt.target)), stmt.iter
    elif isinstance(stmt, (ast.With, ast.AsyncWith)):
        for item in stmt.items:
            if item.optional_vars is not None:
                yield set(_target_names(item.optional_vars)), item.context_expr
    for part in own_exprs(stmt):
        for sub in ast.walk(part):
            if isinstance(sub, ast.NamedExpr) and isinstance(sub.target, ast.Name):
                yield {sub.target.id}, sub.value


def is_taint_derived(
    expr: ast.expr,
    tainted: frozenset[str],
    is_source: Callable[[ast.expr], bool],
) -> bool:
    """Whether an expression's value derives from taint.

    True when the expression mentions a tainted name or contains a
    source expression anywhere (conservative data dependence: any
    function of a tainted value is tainted).
    """
    for sub in ast.walk(expr):
        if isinstance(sub, ast.Name) and sub.id in tainted:
            return True
        if is_source(sub):
            return True
    return False


class NameTaint(DataflowAnalysis[frozenset]):
    """Forward may-taint over variable names.

    ``is_source`` marks expressions whose value is tainted at birth;
    assignments propagate (RHS derived from taint → targets tainted)
    and kill (clean RHS → targets cleaned).  ``seed`` names are tainted
    from function entry (used for parameter-derived taints).  The state
    is a frozenset of names; join is set union (may-analysis).
    """

    direction = "forward"

    def __init__(
        self,
        is_source: Callable[[ast.expr], bool],
        seed: frozenset[str] = frozenset(),
    ) -> None:
        self.is_source = is_source
        self.seed = frozenset(seed)

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return self.seed

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return state
        result = set(state)
        for names, value in iter_assign_pairs(stmt):
            if isinstance(stmt, ast.AugAssign):
                # ``x += e`` keeps x's own taint and adds e's.
                if is_taint_derived(value, state, self.is_source):
                    result.update(names)
            elif is_taint_derived(value, state, self.is_source):
                result.update(names)
            else:
                result.difference_update(names)
        return frozenset(result)
