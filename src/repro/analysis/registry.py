"""Rule base class and the global rule registry.

Rules self-register through the :func:`register_rule` decorator; the
engine instantiates every registered rule per run.  Codes follow the
``RR###`` convention so suppression comments and ``--select`` filters
have a stable vocabulary.
"""

from __future__ import annotations

import ast
import re
from typing import Callable, Iterable, Iterator, TypeVar

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.exceptions import AnalysisError

__all__ = ["Rule", "all_rules", "get_rule", "register_rule"]

_CODE_PATTERN = re.compile(r"^RR\d{3}$")


class Rule:
    """Base class for one lint rule.

    Subclasses set the class attributes and implement :meth:`check`.
    ``applies_to`` gates the rule per module (package scoping); the
    engine only calls ``check`` when it returns true.
    """

    #: Stable identifier, ``RR###``.
    code: str = ""
    #: Short kebab-case name shown by ``--list-rules``.
    name: str = ""
    #: One-line rationale tied to the repo's correctness invariants.
    rationale: str = ""
    #: Analysis tier: ``"syntax"`` (per-node, RR1xx) or ``"dataflow"``
    #: (flow-sensitive over the CFG, RR112 and RR2xx).  ``--tier`` filters on this.
    tier: str = "syntax"

    def applies_to(self, ctx: ModuleContext) -> bool:
        """Whether this rule runs on ``ctx`` at all (default: always)."""
        return True

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        """Yield findings for one module."""
        raise NotImplementedError

    # -- shared AST helpers -------------------------------------------------

    @staticmethod
    def walk_scope(body: Iterable[ast.stmt]) -> Iterator[ast.AST]:
        """Walk statements without descending into nested function scopes.

        Rules that reason about "the enclosing function" (RR103's guard
        domination) need the function's own statements only; a nested
        closure is its own scope with its own guard obligations.
        """
        for stmt in body:
            yield stmt
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield from Rule._walk_no_functions(stmt)

    @staticmethod
    def _walk_no_functions(node: ast.AST) -> Iterator[ast.AST]:
        for child in ast.iter_child_nodes(node):
            if isinstance(child, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            yield child
            yield from Rule._walk_no_functions(child)

    @staticmethod
    def terminal_name(node: ast.AST) -> str | None:
        """The rightmost identifier of a ``Name`` or ``Attribute`` chain."""
        if isinstance(node, ast.Name):
            return node.id
        if isinstance(node, ast.Attribute):
            return node.attr
        return None

    @staticmethod
    def identifier_tokens(node: ast.AST) -> set[str]:
        """Every identifier mentioned anywhere under ``node``."""
        tokens: set[str] = set()
        for sub in ast.walk(node):
            if isinstance(sub, ast.Name):
                tokens.add(sub.id)
            elif isinstance(sub, ast.Attribute):
                tokens.add(sub.attr)
            elif isinstance(sub, ast.arg):
                tokens.add(sub.arg)
        return tokens


_REGISTRY: dict[str, type[Rule]] = {}

R = TypeVar("R", bound=type[Rule])


TIERS = ("syntax", "dataflow")


def register_rule(cls: R) -> R:
    """Class decorator: add ``cls`` to the global registry."""
    if not _CODE_PATTERN.match(cls.code):
        raise AnalysisError(f"rule {cls.__name__} has malformed code {cls.code!r}")
    if cls.code in _REGISTRY:
        raise AnalysisError(f"duplicate rule code {cls.code}")
    if cls.tier not in TIERS:
        raise AnalysisError(f"rule {cls.code} has unknown tier {cls.tier!r}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> list[Rule]:
    """Fresh instances of every registered rule, sorted by code."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def get_rule(code: str) -> Rule:
    """Instantiate one rule by code; raises :class:`AnalysisError` if unknown."""
    try:
        return _REGISTRY[code]()
    except KeyError as exc:
        raise AnalysisError(f"unknown rule code {code!r}") from exc


def known_codes() -> frozenset[str]:
    """The set of registered rule codes."""
    return frozenset(_REGISTRY)


Predicate = Callable[[ModuleContext], bool]
