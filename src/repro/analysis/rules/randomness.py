"""RR101 — no unseeded randomness.

Every stochastic routine in the repo threads an explicit
:class:`numpy.random.Generator` (see ``repro.graph.generators.as_rng``),
which is what makes Monte-Carlo runs reproducible and the E9
cross-validation against the exact algorithms meaningful.  Calling the
stdlib ``random`` module or the legacy global-state ``numpy.random.*``
API bypasses that discipline: results change run to run and a CI
failure can never be replayed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["UnseededRandomness"]

#: ``numpy.random`` attributes that construct *seedable* objects — the
#: sanctioned way in; everything else on the module is legacy global
#: state (``np.random.rand``, ``np.random.seed``, ...).
_SEEDABLE_CONSTRUCTORS = frozenset(
    {
        "default_rng",
        "Generator",
        "SeedSequence",
        "BitGenerator",
        "PCG64",
        "PCG64DXSM",
        "Philox",
        "MT19937",
        "SFC64",
    }
)


def _collect_aliases(tree: ast.Module) -> tuple[set[str], set[str], set[str]]:
    """Names bound to the stdlib ``random`` module, the ``numpy``
    module, and the ``numpy.random`` submodule by import statements."""
    stdlib_random: set[str] = set()
    numpy_mod: set[str] = set()
    numpy_random: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                bound = alias.asname or alias.name.split(".")[0]
                if alias.name == "random":
                    stdlib_random.add(bound)
                elif alias.name == "numpy":
                    numpy_mod.add(bound)
                elif alias.name == "numpy.random":
                    if alias.asname is not None:
                        numpy_random.add(alias.asname)
                    else:
                        numpy_mod.add("numpy")
        elif isinstance(node, ast.ImportFrom):
            if node.module == "numpy":
                for alias in node.names:
                    if alias.name == "random":
                        numpy_random.add(alias.asname or "random")
    return stdlib_random, numpy_mod, numpy_random


@register_rule
class UnseededRandomness(Rule):
    code = "RR101"
    name = "unseeded-randomness"
    rationale = (
        "stdlib random.* and legacy np.random.* use hidden global state; "
        "inject a seeded numpy Generator (as_rng) instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        stdlib_random, numpy_mod, numpy_random = _collect_aliases(ctx.tree)

        # ``from random import shuffle`` — flagged at the import: any
        # use of what it binds is global-state randomness.
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ImportFrom) and node.module == "random":
                names = ", ".join(alias.name for alias in node.names)
                yield ctx.finding(
                    node,
                    self.code,
                    f"import of {names} from the stdlib random module; "
                    "use an injected numpy Generator (repro.graph.generators.as_rng)",
                )
            if isinstance(node, ast.ImportFrom) and node.module == "numpy.random":
                for alias in node.names:
                    if alias.name not in _SEEDABLE_CONSTRUCTORS:
                        yield ctx.finding(
                            node,
                            self.code,
                            f"import of legacy numpy.random.{alias.name}; "
                            "only seedable constructors (default_rng, Generator, ...) "
                            "are allowed",
                        )

        if not stdlib_random and not numpy_mod and not numpy_random:
            return

        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            # ``random.<fn>(...)`` on the stdlib module alias.
            if isinstance(func.value, ast.Name) and func.value.id in stdlib_random:
                yield ctx.finding(
                    node,
                    self.code,
                    f"call to stdlib random.{func.attr}(); results are not "
                    "reproducible — thread a seeded numpy Generator instead",
                )
                continue
            # ``np.random.<fn>(...)`` / ``npr.<fn>(...)`` on numpy.random.
            target = func.value
            is_numpy_random = (
                isinstance(target, ast.Name) and target.id in numpy_random
            ) or (
                isinstance(target, ast.Attribute)
                and target.attr == "random"
                and isinstance(target.value, ast.Name)
                and target.value.id in numpy_mod
            )
            if is_numpy_random and func.attr not in _SEEDABLE_CONSTRUCTORS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"call to legacy numpy.random.{func.attr}(); global-state "
                    "RNG breaks reproducibility — use default_rng / as_rng",
                )
