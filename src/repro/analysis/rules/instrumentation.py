"""RR107 / RR111 — instrumentation discipline rules.

RR107: every duration the repository reports — bench tables, trace
spans, per-solver solve times — must come from the one sanctioned
clock, :func:`repro.obs.wallclock`, and ideally through the
:class:`repro.obs.Recorder` span machinery.  A stray
``time.perf_counter()`` (or ``time.time()``) call measures something no
trace can see: its numbers silently disagree with the phase tree, and
the timed region is invisible to ``repro profile``.  Only
:mod:`repro.obs` itself may touch the stdlib clock.

RR111: metric and span names passed to ``span()`` / ``count()`` /
``gauge()`` / ``progress_ticker()`` must be string literals drawn from
the obs catalogues (``KNOWN_SPANS`` / ``KNOWN_COUNTERS`` /
``KNOWN_TICKER_LABELS``) — never f-strings, concatenations or
``.format()`` calls.  A dynamically built name is an open vocabulary:
the live metrics endpoint, the run ledger diff and the docs tables can
no longer enumerate what a trace may contain, and one typo'd family
silently forks a counter.  Legitimate dynamic families (the per-solver
``solver.<name>.*`` counters) are formatted **once** at class
construction and passed as a bound attribute, which this rule
deliberately lets through (a plain name/attribute argument is assumed
catalogued at its definition site).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule
from repro.obs.recorder import KNOWN_COUNTERS, KNOWN_SPANS, KNOWN_TICKER_LABELS

__all__ = ["DirectClockRead", "UncataloguedMetricName"]

#: ``time`` module attributes that read a clock.  ``sleep`` and the
#: struct/format helpers are deliberately absent — RR107 polices time
#: *measurement*, not time formatting or waiting.
_CLOCK_READS = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _time_module_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the stdlib ``time`` module by import statements."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


@register_rule
class DirectClockRead(Rule):
    code = "RR107"
    name = "direct-clock-read"
    rationale = (
        "durations must be measured through repro.obs (wallclock / spans) so "
        "bench tables and trace output agree; only repro.obs touches time.*"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("obs")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _time_module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            # ``from time import perf_counter`` — flagged at the import:
            # everything it binds is a raw clock read.
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                offending = [a.name for a in node.names if a.name in _CLOCK_READS]
                if offending:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"import of {', '.join(offending)} from the time module; "
                        "measure through repro.obs (wallclock / span) instead",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_READS
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    f"direct call to time.{func.attr}(); instrumentation must go "
                    "through the repro.obs recorder (wallclock / span)",
                )


# -- RR111 ----------------------------------------------------------------

#: The obs entry points whose first argument names a metric, mapped to
#: the catalogue that closes their vocabulary (``None`` = no catalogue,
#: only dynamic construction is policed — gauges derive their names
#: from ticker labels, which are catalogued at the ticker call).
_METRIC_CALLS: dict[str, frozenset[str] | None] = {
    "span": KNOWN_SPANS,
    "count": KNOWN_COUNTERS,
    "gauge": None,
    "progress_ticker": KNOWN_TICKER_LABELS,
}

_CATALOGUE_NAMES = {
    "span": "KNOWN_SPANS",
    "count": "KNOWN_COUNTERS",
    "progress_ticker": "KNOWN_TICKER_LABELS",
}

#: Modules whose import binds the metric entry points.
_OBS_MODULES = frozenset(
    {"repro.obs", "repro.obs.recorder", "repro.obs.progress"}
)

#: Attribute-call receivers recognised as recorder-like.  Restricting
#: the receiver set keeps unrelated ``.count()`` methods (``list``,
#: ``str``, ``bin(...)``) out of scope.
_RECORDER_RECEIVERS = frozenset({"obs", "recorder", "rec"})


def _obs_call_bindings(tree: ast.Module) -> dict[str, str]:
    """Local name -> obs entry point, from ``from repro.obs... import``."""
    bindings: dict[str, str] = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module in _OBS_MODULES:
            for alias in node.names:
                if alias.name in _METRIC_CALLS:
                    bindings[alias.asname or alias.name] = alias.name
    return bindings


def _is_dynamic_string(node: ast.expr) -> str | None:
    """A short description of how ``node`` builds a string, or ``None``."""
    if isinstance(node, ast.JoinedStr):
        return "an f-string"
    if isinstance(node, ast.BinOp) and isinstance(node.op, (ast.Add, ast.Mod)):
        return "string concatenation" if isinstance(node.op, ast.Add) else "%-formatting"
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr in ("format", "join")
    ):
        return f"a .{node.func.attr}() call"
    return None


@register_rule
class UncataloguedMetricName(Rule):
    code = "RR111"
    name = "uncatalogued-metric-name"
    rationale = (
        "span/counter/gauge names must be literals from the obs catalogue "
        "(KNOWN_SPANS / KNOWN_COUNTERS / KNOWN_TICKER_LABELS) so the metrics "
        "endpoint, ledger diffs and docs enumerate a closed vocabulary"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        # repro.obs itself is exempt: it *implements* the machinery and
        # derives ticker gauge names from already-catalogued labels.
        return ctx.in_package("repro") and not ctx.in_package("obs")

    def _entry_point(self, node: ast.Call, bindings: dict[str, str]) -> str | None:
        func = node.func
        if isinstance(func, ast.Name):
            return bindings.get(func.id)
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _METRIC_CALLS
            and self.terminal_name(func.value) in _RECORDER_RECEIVERS
        ):
            return func.attr
        return None

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        bindings = _obs_call_bindings(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call) or not node.args:
                continue
            entry = self._entry_point(node, bindings)
            if entry is None:
                continue
            name_arg = node.args[0]
            how = _is_dynamic_string(name_arg)
            if how is not None:
                yield ctx.finding(
                    node,
                    self.code,
                    f"{entry}() name built with {how}; metric names must be "
                    "string literals from the obs catalogue (format dynamic "
                    "families once at construction and pass the bound name)",
                )
                continue
            catalogue = _METRIC_CALLS[entry]
            if (
                catalogue is not None
                and isinstance(name_arg, ast.Constant)
                and isinstance(name_arg.value, str)
                and name_arg.value not in catalogue
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    f"{entry}() name {name_arg.value!r} is not in "
                    f"repro.obs.{_CATALOGUE_NAMES[entry]}; add it to the "
                    "catalogue or use a catalogued name",
                )
