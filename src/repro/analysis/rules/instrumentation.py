"""RR107 — direct wall-clock reads bypass the recorder.

Every duration the repository reports — bench tables, trace spans,
per-solver solve times — must come from the one sanctioned clock,
:func:`repro.obs.wallclock`, and ideally through the
:class:`repro.obs.Recorder` span machinery.  A stray
``time.perf_counter()`` (or ``time.time()``) call measures something no
trace can see: its numbers silently disagree with the phase tree, and
the timed region is invisible to ``repro profile``.  Only
:mod:`repro.obs` itself may touch the stdlib clock.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["DirectClockRead"]

#: ``time`` module attributes that read a clock.  ``sleep`` and the
#: struct/format helpers are deliberately absent — RR107 polices time
#: *measurement*, not time formatting or waiting.
_CLOCK_READS = frozenset(
    {
        "perf_counter",
        "perf_counter_ns",
        "time",
        "time_ns",
        "monotonic",
        "monotonic_ns",
        "process_time",
        "process_time_ns",
    }
)


def _time_module_aliases(tree: ast.Module) -> set[str]:
    """Names bound to the stdlib ``time`` module by import statements."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == "time":
                    aliases.add(alias.asname or "time")
    return aliases


@register_rule
class DirectClockRead(Rule):
    code = "RR107"
    name = "direct-clock-read"
    rationale = (
        "durations must be measured through repro.obs (wallclock / spans) so "
        "bench tables and trace output agree; only repro.obs touches time.*"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not ctx.in_package("obs")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        aliases = _time_module_aliases(ctx.tree)
        for node in ast.walk(ctx.tree):
            # ``from time import perf_counter`` — flagged at the import:
            # everything it binds is a raw clock read.
            if isinstance(node, ast.ImportFrom) and node.module == "time":
                offending = [a.name for a in node.names if a.name in _CLOCK_READS]
                if offending:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"import of {', '.join(offending)} from the time module; "
                        "measure through repro.obs (wallclock / span) instead",
                    )
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _CLOCK_READS
                and isinstance(func.value, ast.Name)
                and func.value.id in aliases
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    f"direct call to time.{func.attr}(); instrumentation must go "
                    "through the repro.obs recorder (wallclock / span)",
                )
