"""RR102 / RR103 — floating-point accumulation and bitmask-width guards.

RR102: the exact algorithms fold up to ``2^|E|`` probability terms into
one float.  Naive left-to-right accumulation (builtin ``sum`` or a
``+=`` loop) loses low-order bits exactly where the paper's algorithm
claims bit-for-bit exactness; compensated summation (``math.fsum`` or
:class:`repro.core.summation.KahanSum`) costs a constant factor and
keeps the result faithfully rounded.  NumPy's ``ndarray.sum()`` uses
pairwise summation and is accepted.

RR103: table sizes and enumeration ranges are built as ``1 << m`` /
``2 ** m`` where ``m`` is an edge count.  Without a budget guard a
slightly-too-large input turns into a 2^40-entry allocation or a silent
uint64 overflow.  Any function that allocates or iterates a
shift-sized table must be *dominated* by a bound check: a call to
``check_enumerable``-style guards, a comparison against a ``MAX_*``
constant, or an explicit ``raise IntractableError``.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["BareProbabilityAccumulation", "UnguardedShiftWidth"]

#: Substrings of identifiers that mark a value as probability-typed.
_PROBABILITY_TOKENS = ("prob", "pmf", "weight", "reliab", "likelihood")


def _mentions_probability(node: ast.AST) -> str | None:
    """The first probability-ish identifier under ``node``, if any."""
    for token in sorted(Rule.identifier_tokens(node)):
        lowered = token.lower()
        for marker in _PROBABILITY_TOKENS:
            if marker in lowered:
                return token
    return None


@register_rule
class BareProbabilityAccumulation(Rule):
    code = "RR102"
    name = "bare-probability-accumulation"
    rationale = (
        "naive sum()/+= over probability terms loses low-order bits; use "
        "math.fsum or repro.core.summation.KahanSum (numpy pairwise .sum() is fine)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("core", "probability")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "sum"
                and node.args
            ):
                witness = _mentions_probability(node.args[0])
                if witness is not None:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"builtin sum() over probability-typed data ({witness!r}); "
                        "use math.fsum or repro.core.summation.KahanSum",
                    )
            elif isinstance(node, ast.AugAssign) and isinstance(node.op, ast.Add):
                witness = _mentions_probability(node.value) or _mentions_probability(
                    node.target
                )
                if witness is not None:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"+= accumulation of probability-typed data ({witness!r}); "
                        "collect terms for math.fsum or use KahanSum",
                    )


#: Call targets whose terminal name means "this function guards the
#: state-space budget" (raising IntractableError when exceeded).
_GUARD_CALLS = frozenset({"check_enumerable", "check_enumeration_budget"})

#: Callees for which a shift-sized argument means a table allocation or
#: full enumeration.
_ALLOCATING_CALLS = frozenset({"range", "zeros", "ones", "empty", "full", "arange"})

#: Assignment-target names that hold a table size.
_SIZE_NAMES = frozenset({"size", "table_size", "num_configs", "num_configurations"})


def _is_width_shift(node: ast.AST) -> bool:
    """``1 << X`` or ``2 ** X`` with a non-constant width ``X``."""
    if not isinstance(node, ast.BinOp):
        return False
    if isinstance(node.op, ast.LShift):
        base_ok = isinstance(node.left, ast.Constant) and node.left.value == 1
    elif isinstance(node.op, ast.Pow):
        base_ok = isinstance(node.left, ast.Constant) and node.left.value == 2
    else:
        return False
    return base_ok and not isinstance(node.right, ast.Constant)


def _scope_is_guarded(body: list[ast.stmt]) -> bool:
    """Whether a function body contains any budget guard."""
    for node in Rule.walk_scope(body):
        if isinstance(node, ast.Call):
            name = Rule.terminal_name(node.func)
            if name in _GUARD_CALLS:
                return True
        elif isinstance(node, ast.Compare):
            for sub in ast.walk(node):
                name = Rule.terminal_name(sub)
                if name is not None and name.startswith("MAX_") and name.isupper():
                    return True
        elif isinstance(node, ast.Raise) and node.exc is not None:
            exc = node.exc
            name = Rule.terminal_name(exc.func if isinstance(exc, ast.Call) else exc)
            if name == "IntractableError":
                return True
        elif isinstance(node, ast.Assert):
            for sub in ast.walk(node.test):
                name = Rule.terminal_name(sub)
                if name is not None and name.startswith("MAX_") and name.isupper():
                    return True
    return False


def _shift_sites(body: list[ast.stmt]) -> Iterator[tuple[ast.BinOp, str]]:
    """Width-shifts in allocation position within one scope."""
    for node in Rule.walk_scope(body):
        if isinstance(node, ast.Call):
            callee = Rule.terminal_name(node.func)
            if callee in _ALLOCATING_CALLS:
                for arg in node.args:
                    if _is_width_shift(arg):
                        yield arg, f"argument of {callee}()"
        elif isinstance(node, ast.Assign):
            if _is_width_shift(node.value) and any(
                isinstance(t, ast.Name) and t.id in _SIZE_NAMES for t in node.targets
            ):
                target = next(
                    t.id
                    for t in node.targets
                    if isinstance(t, ast.Name) and t.id in _SIZE_NAMES
                )
                yield node.value, f"assigned to {target!r}"


@register_rule
class UnguardedShiftWidth(Rule):
    code = "RR103"
    name = "unguarded-shift-width"
    rationale = (
        "1 << n / 2 ** n table allocations need a dominating MAX_*-style "
        "budget check (e.g. check_enumerable) in the same function"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes: list[list[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            if _scope_is_guarded(body):
                continue
            for shift, where in _shift_sites(body):
                op = "1 <<" if isinstance(shift.op, ast.LShift) else "2 **"
                width = ast.unparse(shift.right)
                yield ctx.finding(
                    shift,
                    self.code,
                    f"unguarded width shift {op} {width} ({where}); add a "
                    "check_enumerable / MAX_* bound check to this function",
                )
