"""RR113 — blocking calls inside the serving daemon's handler paths.

:mod:`repro.serve` is a single-threaded ``select()`` event loop: one
blocked call stalls *every* connected client at once, and the request
coalescing that makes warm answers cheap (one batch per wake) degrades
into serial head-of-line blocking.  This rule statically rejects the
three ways that has actually gone wrong in servers like this:

* ``time.sleep`` — pacing belongs in the ``select`` timeout, never in
  a handler;
* ``subprocess`` / ``os.system`` / ``os.popen`` — a child process is
  an unbounded synchronous wait (and the daemon answers queries from
  its own in-process cache by design);
* blocking socket reads (``recv`` / ``accept`` / ``makefile`` / ...)
  outside the two modules sanctioned to touch sockets: ``server.py``
  (whose loop only calls them on ``select``-ready non-blocking
  sockets) and ``client.py`` (which runs in the *caller's* process).

Scoped to ``serve`` package paths, so planner/protocol helpers are
covered wherever they grow, and fixture trees scope like the source.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["BlockingCallInServeLoop"]

#: Socket methods that block the calling thread until the peer acts.
_BLOCKING_SOCKET_OPS = frozenset(
    {
        "accept",
        "connect",
        "create_connection",
        "makefile",
        "recv",
        "recv_into",
        "recvfrom",
        "recvfrom_into",
        "recvmsg",
        "sendall",
    }
)

#: ``os`` helpers that spawn a child and wait for it.
_OS_SPAWN_CALLS = frozenset({"system", "popen", "spawnl", "spawnv"})

#: Modules allowed to perform socket I/O: the event loop itself (which
#: only touches ``select``-ready non-blocking sockets) and the blocking
#: client (which runs outside the daemon process).
_SOCKET_SANCTIONED = frozenset({"server.py", "client.py"})


@register_rule
class BlockingCallInServeLoop(Rule):
    code = "RR113"
    name = "blocking-call-in-serve-loop"
    rationale = (
        "repro.serve is a single-threaded select() loop; a time.sleep, "
        "subprocess wait or blocking socket read in a handler path stalls "
        "every connected client and defeats request coalescing"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("serve")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        socket_sanctioned = (
            bool(ctx.parts) and ctx.parts[-1] in _SOCKET_SANCTIONED
        )
        time_aliases = _module_aliases(ctx.tree, "time")
        os_aliases = _module_aliases(ctx.tree, "os")
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.Import, ast.ImportFrom)):
                yield from self._check_import(ctx, node)
                continue
            if not isinstance(node, ast.Call):
                continue
            func = node.func
            if not isinstance(func, ast.Attribute):
                continue
            receiver = func.value
            if (
                func.attr == "sleep"
                and isinstance(receiver, ast.Name)
                and receiver.id in time_aliases
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    "time.sleep() in a serve handler path stalls every "
                    "connected client; pace the loop with the select() "
                    "timeout instead",
                )
            elif (
                func.attr in _OS_SPAWN_CALLS
                and isinstance(receiver, ast.Name)
                and receiver.id in os_aliases
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    f"os.{func.attr}() spawns a child and waits for it; "
                    "the daemon must answer from its in-process cache",
                )
            elif func.attr in _BLOCKING_SOCKET_OPS and not socket_sanctioned:
                yield ctx.finding(
                    node,
                    self.code,
                    f"blocking socket call .{func.attr}() outside the "
                    "select() loop (server.py) or the out-of-process "
                    "client (client.py)",
                )

    def _check_import(
        self, ctx: ModuleContext, node: ast.Import | ast.ImportFrom
    ) -> Iterator[Finding]:
        if isinstance(node, ast.Import):
            for alias in node.names:
                root = alias.name.split(".", 1)[0]
                if root == "subprocess":
                    yield ctx.finding(
                        node,
                        self.code,
                        "import of subprocess in repro.serve; a child "
                        "process is an unbounded synchronous wait inside "
                        "the event loop",
                    )
            return
        if node.module is None:
            return
        root = node.module.split(".", 1)[0]
        if root == "subprocess":
            yield ctx.finding(
                node,
                self.code,
                "import from subprocess in repro.serve; a child process "
                "is an unbounded synchronous wait inside the event loop",
            )
        elif root == "time":
            offending = [a.name for a in node.names if a.name == "sleep"]
            if offending:
                yield ctx.finding(
                    node,
                    self.code,
                    "import of sleep from the time module in repro.serve; "
                    "pace the loop with the select() timeout instead",
                )


def _module_aliases(tree: ast.Module, module: str) -> set[str]:
    """Names bound to stdlib ``module`` by plain import statements."""
    aliases: set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or module)
    return aliases
