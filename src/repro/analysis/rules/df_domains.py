"""RR204 — probability parameters must be validated before accumulation.

Eq. (2)/(3) accumulation is a sum of products of probabilities; a
single out-of-domain input (a negative "probability", an availability
above 1) produces a result that *looks* plausible — no NaN, no raise —
which is why every public entry point in the library guards its domain
(``network.py``, ``polynomial.py``, ``_as_failure_probs``).  The rule
enforces the same discipline flow-sensitively: a probability-named
parameter that reaches one of the accumulation sinks must pass through
a validating call or a raising range guard on the way, in the function
under analysis.
"""

from __future__ import annotations

import ast
import re
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.cfg import CFGNode
from repro.analysis.dataflow.fixpoint import DataflowAnalysis, solve_fixpoint
from repro.analysis.dataflow.reaching import assigned_names, own_exprs
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["UnvalidatedProbabilityDomain"]

#: Parameter names that carry raw probabilities.
_PROB_PARAM = re.compile(
    r"^(p|q|prob|probs|probabilit(y|ies)|availability|availabilities|p_values?)$"
    r"|(_prob|_probs|_probability|_probabilities|_availability)$"
)

#: The Eq.2/Eq.3 accumulation entry points (probability-vector sinks).
_SINKS = frozenset(
    {
        "pattern_probability",
        "pattern_probabilities",
        "configuration_probability",
        "configuration_probabilities",
        "conditional_configuration_probabilities",
        "union_probability",
        "union_probability_from_intersections",
    }
)


def _is_validator(call: ast.Call) -> bool:
    name = Rule.terminal_name(call.func) or ""
    return "validate" in name or name in {"_as_failure_probs", "as_probability"}


def _is_range_guard(stmt: ast.AST, name: str) -> bool:
    """``if <test mentioning name and a 0/1 bound>: raise`` (or assert)."""
    if isinstance(stmt, ast.Assert):
        test = stmt.test
        raises = True
    elif isinstance(stmt, ast.If):
        test = stmt.test
        raises = any(isinstance(s, ast.Raise) for s in ast.walk(stmt))
    else:
        return False
    if not raises:
        return False
    mentions = any(
        isinstance(sub, ast.Name) and sub.id == name for sub in ast.walk(test)
    )
    has_bound = any(
        isinstance(sub, ast.Constant) and sub.value in (0, 1, 0.0, 1.0)
        for sub in ast.walk(test)
    )
    return mentions and has_bound


class _Unvalidated(DataflowAnalysis[frozenset]):
    """Forward must-analysis: probability names still unvalidated.

    Seeded with the probability-named parameters; a validating call or
    a raising range guard kills the name.  The join is set *union*
    (a name unvalidated on any path into a sink is a finding), while
    rebinding from an unrelated expression also kills — the value is no
    longer the raw parameter.
    """

    direction = "forward"

    def __init__(self, seed: frozenset[str]) -> None:
        self.seed = seed

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return self.seed

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None or isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return state
        result = set(state)
        for part in own_exprs(stmt):
            for sub in ast.walk(part):
                if isinstance(sub, ast.Call) and _is_validator(sub):
                    for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                        if isinstance(arg, ast.Name):
                            result.discard(arg.id)
        for name in list(result):
            if _is_range_guard(stmt, name):
                result.discard(name)
        result.difference_update(assigned_names(stmt))
        return frozenset(result)


@register_rule
class UnvalidatedProbabilityDomain(Rule):
    code = "RR204"
    name = "unvalidated-probability-domain"
    tier = "dataflow"
    rationale = (
        "an out-of-domain probability reaching Eq.2/Eq.3 accumulation yields "
        "a plausible-looking wrong result instead of an error; validate the "
        "[0, 1] domain (guard + raise, or a validate_* call) before the sink"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, func, cfg in ctx.function_cfgs():
            params = frozenset(
                arg.arg
                for arg in (
                    func.args.posonlyargs + func.args.args + func.args.kwonlyargs
                )
                if _PROB_PARAM.search(arg.arg)
            )
            if not params:
                continue
            states = solve_fixpoint(cfg, _Unvalidated(params))
            for node in cfg.nodes:
                stmt = node.stmt
                if stmt is None or isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                state = states[node.index][0]
                for part in own_exprs(stmt):
                    yield from self._check_sinks(ctx, qualname, part, state)

    def _check_sinks(
        self, ctx: ModuleContext, qualname: str, part: ast.AST, state: frozenset
    ) -> Iterator[Finding]:
        for call in ast.walk(part):
            if (
                not isinstance(call, ast.Call)
                or Rule.terminal_name(call.func) not in _SINKS
            ):
                continue
            arguments = list(call.args) + [kw.value for kw in call.keywords]
            for arg in arguments:
                if isinstance(arg, ast.Name) and arg.id in state:
                    yield ctx.finding(
                        call,
                        self.code,
                        f"{qualname}(): probability parameter {arg.id!r} "
                        f"reaches {Rule.terminal_name(call.func)}() without "
                        "a dominating [0, 1] validation — guard the domain "
                        "(raise on violation) before accumulating",
                    )
