"""RR205 — worker payloads must be spawn-safe (dataflow tier).

``run_chunked`` documents the contract PR 3 established: workers are
module-level (picklable) functions, networks travel as
:func:`repro.graph.io` dicts, solvers travel by registry name.  A
closure, lambda, or locally-constructed callable submitted to a
``ProcessPoolExecutor`` breaks under the spawn start method — often
only on the platform CI doesn't run — with an unpicklable-object error
at best and silently stale captured state at worst.  The rule tracks
locally-defined callables and executor handles flow-sensitively and
flags local callables entering a ``submit``/``map``/``run_chunked``
dispatch.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.cfg import CFGNode
from repro.analysis.dataflow.fixpoint import DataflowAnalysis, solve_fixpoint
from repro.analysis.dataflow.reaching import call_name, own_exprs
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["SpawnUnsafePayload"]

_LOCAL_CALLABLE = "C"
_EXECUTOR = "E"


def _is_executor_ctor(value: ast.expr) -> bool:
    return isinstance(value, ast.Call) and call_name(value) == "ProcessPoolExecutor"


def _wraps_local(call: ast.Call, state: frozenset) -> bool:
    """``partial(f, ...)`` / similar wrapping a local callable or lambda."""
    for arg in list(call.args) + [kw.value for kw in call.keywords]:
        if isinstance(arg, ast.Lambda):
            return True
        if isinstance(arg, ast.Name) and (_LOCAL_CALLABLE, arg.id) in state:
            return True
    return False


class _LocalCallables(DataflowAnalysis[frozenset]):
    """Forward analysis over tagged names: locally-defined callables
    (nested ``def``, lambdas, partials over them) and executor handles."""

    direction = "forward"

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None:
            return state
        result = set(state)
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            result.add((_LOCAL_CALLABLE, stmt.name))
            return frozenset(result)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                if _is_executor_ctor(item.context_expr) and isinstance(
                    item.optional_vars, ast.Name
                ):
                    result.add((_EXECUTOR, item.optional_vars.id))
            return frozenset(result)
        if isinstance(stmt, ast.Assign):
            plain = [t.id for t in stmt.targets if isinstance(t, ast.Name)]
            value = stmt.value
            for name in plain:
                result.discard((_LOCAL_CALLABLE, name))
                result.discard((_EXECUTOR, name))
            if isinstance(value, ast.Lambda):
                result.update((_LOCAL_CALLABLE, n) for n in plain)
            elif _is_executor_ctor(value):
                result.update((_EXECUTOR, n) for n in plain)
            elif isinstance(value, ast.Name):
                for tag in (_LOCAL_CALLABLE, _EXECUTOR):
                    if (tag, value.id) in state:
                        result.update((tag, n) for n in plain)
            elif isinstance(value, ast.Call) and _wraps_local(value, state):
                result.update((_LOCAL_CALLABLE, n) for n in plain)
        return frozenset(result)


@register_rule
class SpawnUnsafePayload(Rule):
    code = "RR205"
    name = "spawn-unsafe-payload"
    tier = "dataflow"
    rationale = (
        "closures/lambdas submitted to ProcessPoolExecutor or run_chunked "
        "break under the spawn start method; use a module-level worker with "
        "graph.io dict payloads and solver registry names (the run_chunked "
        "contract)"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, _func, cfg in ctx.function_cfgs():
            states: dict[int, tuple[frozenset, frozenset]] | None = None
            for node in cfg.nodes:
                stmt = node.stmt
                if stmt is None:
                    continue
                for part in own_exprs(stmt):
                    for call in ast.walk(part):
                        if not isinstance(call, ast.Call):
                            continue
                        dispatch = self._dispatch_kind(call)
                        if dispatch is None or not call.args:
                            continue
                        if states is None:
                            states = solve_fixpoint(cfg, _LocalCallables())
                        state = states[node.index][0]
                        if dispatch == "method" and not self._on_executor(
                            call, state
                        ):
                            continue
                        worker = call.args[0]
                        label: str | None = None
                        if isinstance(worker, ast.Lambda):
                            label = "a lambda"
                        elif (
                            isinstance(worker, ast.Name)
                            and (_LOCAL_CALLABLE, worker.id) in state
                        ):
                            label = f"locally-defined callable {worker.id!r}"
                        elif isinstance(worker, ast.Call) and _wraps_local(
                            worker, state
                        ):
                            label = "a partial over a local callable"
                        if label is None:
                            continue
                        yield ctx.finding(
                            call,
                            self.code,
                            f"{qualname}() dispatches {label} to worker processes; "
                            "closures are not spawn-safe — use a module-level "
                            "worker taking graph.io dict payloads and a solver "
                            "registry name",
                        )

    @staticmethod
    def _dispatch_kind(call: ast.Call) -> str | None:
        name = call_name(call)
        if name == "run_chunked":
            return "function"
        if name in ("submit", "map") and isinstance(call.func, ast.Attribute):
            return "method"
        return None

    @staticmethod
    def _on_executor(call: ast.Call, state: frozenset) -> bool:
        receiver = call.func.value if isinstance(call.func, ast.Attribute) else None
        return isinstance(receiver, ast.Name) and (_EXECUTOR, receiver.id) in state
