"""RR201 — determinism taint (dataflow tier).

RR101 bans the legacy global-state RNG APIs syntactically; RR201 closes
the remaining hole *flow-sensitively*: a generator created by a
zero-argument ``default_rng()`` is unseeded, and any value derived from
it that escapes — through a ``return``, an :class:`ArrayCache` write,
or a :class:`ReliabilityResult` — makes the result unreplayable even
though every individual call was "allowed".  The sanctioned shape is
``repro.graph.generators.as_rng(seed)``: the seed is threaded, so the
taint never exists.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.fixpoint import solve_fixpoint
from repro.analysis.dataflow.reaching import (
    NameTaint,
    call_name,
    is_taint_derived,
    own_exprs,
)
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["DeterminismTaint"]

#: Result-constructor sinks: tainted arguments poison the published value.
_RESULT_SINKS = frozenset({"ReliabilityResult"})


def _is_unseeded_rng(node: ast.AST) -> bool:
    """``default_rng()`` with no seed argument at all."""
    return (
        isinstance(node, ast.Call)
        and call_name(node) == "default_rng"
        and not node.args
        and not node.keywords
    )


def _is_cache_write(node: ast.Call) -> bool:
    """``<cache>.put(...)`` — an ArrayCache-style persistent write."""
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "put"
        and isinstance(func.value, ast.Name)
        and "cache" in func.value.id.lower()
    )


@register_rule
class DeterminismTaint(Rule):
    code = "RR201"
    name = "determinism-taint"
    tier = "dataflow"
    rationale = (
        "a value derived from an unseeded default_rng() reaching a return, "
        "a cache write, or a ReliabilityResult makes the run unreplayable; "
        "thread a seed via repro.graph.generators.as_rng instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, _func, cfg in ctx.function_cfgs():
            if not any(_is_unseeded_rng(sub) for node in cfg.nodes if node.stmt is not None
                       for sub in ast.walk(node.stmt)):
                continue
            states = solve_fixpoint(cfg, NameTaint(_is_unseeded_rng))
            for node in cfg.nodes:
                stmt = node.stmt
                if stmt is None:
                    continue
                state = states[node.index][0]
                if isinstance(stmt, ast.Return) and stmt.value is not None:
                    if is_taint_derived(stmt.value, state, _is_unseeded_rng):
                        yield ctx.finding(
                            stmt,
                            self.code,
                            f"{qualname}() returns a value derived from an unseeded "
                            "default_rng(); the result cannot be replayed — accept a "
                            "seed/Generator parameter (as_rng) instead",
                        )
                    continue
                for part in own_exprs(stmt):
                    yield from self._check_calls(ctx, qualname, part, state)

    def _check_calls(
        self, ctx: ModuleContext, qualname: str, part: ast.AST, state: frozenset
    ) -> Iterator[Finding]:
        for call in ast.walk(part):
            if not isinstance(call, ast.Call):
                continue
            sink: str | None = None
            if _is_cache_write(call):
                sink = "a cache write"
            elif call_name(call) in _RESULT_SINKS:
                sink = "a ReliabilityResult"
            if sink is None:
                continue
            arguments = list(call.args) + [kw.value for kw in call.keywords]
            if any(
                is_taint_derived(arg, state, _is_unseeded_rng) for arg in arguments
            ):
                yield ctx.finding(
                    call,
                    self.code,
                    f"{qualname}() feeds a value derived from an unseeded "
                    f"default_rng() into {sink}; downstream consumers can "
                    "never reproduce it — thread an explicit seed (as_rng)",
                )
