"""RR109 — exponential enumeration loops should walk the lattice.

The repo's enumeration kernels iterate ``2^m`` failure configurations
with a max-flow solve per entry.  A raw ``for mask in range(2 ** m)``
loop hides two costs the shared iterators make explicit: it cannot feed
an incremental engine (consecutive masks differ in many links, so every
solve starts cold) and it cannot exploit monotone pruning (no visit
order discipline).  Inside :mod:`repro.core`, lattice enumeration must
go through :func:`repro.probability.gray_lattice` /
:func:`repro.core.latticewalk.gray_walk_table` (or a popcount-ordered
scan over a precomputed order) — or carry a
``# repro: noqa[RR109] <why>`` with the justification inline.

The rule flags ``for`` loops whose iterable is a single-argument
``range`` over a width shift (``1 << m`` / ``2 ** m`` with non-constant
width), either written inline or bound to a local name earlier in the
same function (``size = 1 << m`` ... ``for mask in range(size)``).
Two-argument ranges, constant widths and non-``range`` iterables are
out of scope: they are chunk slices, fixed tables or already-ordered
walks.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["RawExponentialLoop"]


def _is_width_shift(node: ast.AST) -> bool:
    """``1 << X`` or ``2 ** X`` with a non-constant width ``X``."""
    if not isinstance(node, ast.BinOp):
        return False
    if isinstance(node.op, ast.LShift):
        base_ok = isinstance(node.left, ast.Constant) and node.left.value == 1
    elif isinstance(node.op, ast.Pow):
        base_ok = isinstance(node.left, ast.Constant) and node.left.value == 2
    else:
        return False
    return base_ok and not isinstance(node.right, ast.Constant)


def _shift_bound_names(body: list[ast.stmt]) -> dict[str, str]:
    """Names assigned a width shift anywhere in this scope.

    Light dataflow: a plain ``size = 1 << m`` binding taints ``size``
    for the whole function (no kill analysis — rebinding a tainted name
    to something harmless is not an idiom this codebase uses, and a
    false positive still has the noqa escape).
    """
    bound: dict[str, str] = {}
    for node in Rule.walk_scope(body):
        if isinstance(node, ast.Assign) and _is_width_shift(node.value):
            for target in node.targets:
                if isinstance(target, ast.Name):
                    bound[target.id] = ast.unparse(node.value)
    return bound


def _exponential_range(
    loop: ast.For, bound: dict[str, str]
) -> str | None:
    """The offending width expression if ``loop`` is a raw 2^m scan."""
    call = loop.iter
    if not (
        isinstance(call, ast.Call)
        and Rule.terminal_name(call.func) == "range"
        and len(call.args) == 1
        and not call.keywords
    ):
        return None
    arg = call.args[0]
    if _is_width_shift(arg):
        return ast.unparse(arg)
    if isinstance(arg, ast.Name) and arg.id in bound:
        return f"{arg.id} = {bound[arg.id]}"
    return None


@register_rule
class RawExponentialLoop(Rule):
    code = "RR109"
    name = "raw-exponential-loop"
    rationale = (
        "for ... in range(2 ** m) scans the lattice in an order that defeats "
        "incremental repair and pruning; use gray_lattice/gray_walk_table or "
        "a popcount-ordered walk (or noqa with justification)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("core")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        scopes: list[list[ast.stmt]] = [ctx.tree.body]
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                scopes.append(node.body)
        for body in scopes:
            bound = _shift_bound_names(body)
            for node in Rule.walk_scope(body):
                if not isinstance(node, ast.For):
                    continue
                witness = _exponential_range(node, bound)
                if witness is not None:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"raw exponential enumeration loop over range({witness}); "
                        "walk the lattice via gray_lattice/gray_walk_table or a "
                        "popcount-ordered scan",
                    )
