"""RR203 — spans and tickers must close on every path (dataflow tier).

``obs.span()`` / ``progress_ticker()`` instrumentation left open on an
exception path corrupts the trace for the rest of the process: gauges
are never flushed, nested spans mis-parent, and the ``workers=1``
observability-exactness guarantee silently degrades.  The rule tracks
resource handles bound outside a ``with`` and checks — on the CFG,
including the conservative exception edges — that every path to the
function exit closes, returns, or hands off the handle.  Both handle
types are context managers, so the fix is always the one-line
``with progress_ticker(...) as t:`` form.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.cfg import EXIT, CFGNode
from repro.analysis.dataflow.fixpoint import DataflowAnalysis, solve_fixpoint
from repro.analysis.dataflow.reaching import call_name, own_exprs
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["SpanTickerLeak"]

#: Calls whose return value is an open instrumentation handle.
_ACQUIRERS = frozenset({"progress_ticker", "ProgressTicker", "span"})

#: Methods that close a handle.
_CLOSERS = frozenset({"finish", "close", "__exit__"})


def _acquired_call(value: ast.expr) -> bool:
    return isinstance(value, ast.Call) and call_name(value) in _ACQUIRERS


class _OpenHandles(DataflowAnalysis[frozenset]):
    """Forward may-analysis: ``(name, line)`` handles possibly open."""

    direction = "forward"

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None or isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return state
        result = set(state)

        def release(name: str) -> None:
            result.difference_update({e for e in result if e[0] == name})

        # Closing calls and ownership hand-offs release the handle.  Only
        # the statement's own expressions count — a compound statement's
        # body executes at its own CFG nodes, not at the header.
        for part in own_exprs(stmt):
            for sub in ast.walk(part):
                if not isinstance(sub, ast.Call):
                    continue
                func = sub.func
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr in _CLOSERS
                    and isinstance(func.value, ast.Name)
                ):
                    release(func.value.id)
                    continue
                # A handle passed to any call escapes (stored/managed there).
                if not _acquired_call(sub):
                    for arg in list(sub.args) + [kw.value for kw in sub.keywords]:
                        if isinstance(arg, ast.Name):
                            release(arg.id)
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            # ``with t:`` delegates closing to the context manager.
            for item in stmt.items:
                if isinstance(item.context_expr, ast.Name):
                    release(item.context_expr.id)
        if isinstance(stmt, ast.Return) and stmt.value is not None:
            # Returning the handle transfers ownership to the caller.
            for sub in ast.walk(stmt.value):
                if isinstance(sub, ast.Name):
                    release(sub.id)
        if isinstance(stmt, ast.Assign):
            # Storing the handle into an object/container hands it off;
            # ``u = t`` renames the obligation; rebinding a name drops
            # its old handle; a fresh acquisition opens one.
            value = stmt.value
            plain_targets = [t for t in stmt.targets if isinstance(t, ast.Name)]
            if isinstance(value, ast.Name) and any(
                not isinstance(t, ast.Name) for t in stmt.targets
            ):
                release(value.id)
            moved = (
                {entry for entry in result if entry[0] == value.id}
                if isinstance(value, ast.Name)
                else set()
            )
            if isinstance(value, ast.Name) and plain_targets and moved:
                release(value.id)
            for target in plain_targets:
                release(target.id)
                if _acquired_call(value):
                    result.add((target.id, stmt.lineno))
                for _name, line in moved:
                    result.add((target.id, line))
        return frozenset(result)


@register_rule
class SpanTickerLeak(Rule):
    code = "RR203"
    name = "span-ticker-leak"
    tier = "dataflow"
    rationale = (
        "a progress_ticker()/span() handle not closed on every CFG path "
        "(exception edges included) leaves the trace unflushed and "
        "mis-parented; acquire it with `with` instead"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, _func, cfg in ctx.function_cfgs():
            if not any(
                _acquired_call(sub)
                for node in cfg.nodes
                if node.stmt is not None and isinstance(node.stmt, ast.Assign)
                for sub in ast.walk(node.stmt)
            ):
                continue
            states = solve_fixpoint(cfg, _OpenHandles())
            # Judge each edge into exit separately: an exception edge
            # leaving the *acquiring* statement itself does not leak —
            # if the acquire call raised, the handle never existed.
            open_at_exit: set[tuple[str, int]] = set()
            for edge in cfg.preds[EXIT]:
                source = cfg.nodes[edge.src]
                for name, line in states[edge.src][1]:
                    if edge.kind == "exception" and source.line == line:
                        continue
                    open_at_exit.add((name, line))
            leaked = sorted(open_at_exit, key=lambda e: (e[1], e[0]))
            for name, line in leaked:
                anchor = ast.stmt()
                anchor.lineno = line  # type: ignore[attr-defined]
                anchor.col_offset = 0  # type: ignore[attr-defined]
                yield ctx.finding(
                    anchor,
                    self.code,
                    f"{qualname}(): handle {name!r} acquired here may stay open "
                    "on some path to the function exit (exception paths count); "
                    f"use `with` so {name}.finish() runs on every path",
                )
