"""RR108 — process-pool use outside the sanctioned parallel modules.

Process-level parallelism is easy to get subtly wrong: a worker
function that is not module-level fails under the ``spawn`` start
method, an unpicklable argument (a live :class:`ResidualTemplate`, an
open solver) fails only on some platforms, and a second pool hidden in
a leaf module can fork-bomb the machine the benchmarks are calibrating.
The repository therefore funnels **all** ``multiprocessing`` /
``ProcessPoolExecutor`` use through two modules — ``repro.core.engine``
(the shared chunking/worker-bootstrap machinery) and
``repro.core.parallel`` (the naive scan built on it) — where the
spawn-safety discipline (networks shipped as :mod:`repro.graph.io`
dicts, module-level workers, solver registry names instead of
instances) is enforced and tested once.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["ProcessPoolOutsideEngine"]

#: The only modules allowed to touch process-level parallelism.
_SANCTIONED_FILES = frozenset({"engine.py", "parallel.py"})


def _is_sanctioned(ctx: ModuleContext) -> bool:
    return (
        bool(ctx.parts)
        and ctx.parts[-1] in _SANCTIONED_FILES
        and ctx.in_package("core")
    )


@register_rule
class ProcessPoolOutsideEngine(Rule):
    code = "RR108"
    name = "process-pool-outside-engine"
    rationale = (
        "process parallelism (multiprocessing / ProcessPoolExecutor) must go "
        "through repro.core.engine or repro.core.parallel, where the "
        "spawn-safety and picklable-argument discipline lives"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro") and not _is_sanctioned(ctx)

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                offending = [
                    a.name
                    for a in node.names
                    if a.name == "multiprocessing"
                    or a.name.startswith("multiprocessing.")
                ]
                if offending:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"import of {', '.join(offending)}; route process "
                        "parallelism through repro.core.engine "
                        "(run_chunked / partition_lattice)",
                    )
            elif isinstance(node, ast.ImportFrom):
                module = node.module or ""
                if module == "multiprocessing" or module.startswith(
                    "multiprocessing."
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        f"import from {module}; route process parallelism "
                        "through repro.core.engine (run_chunked / "
                        "partition_lattice)",
                    )
                elif module == "concurrent.futures" and any(
                    a.name == "ProcessPoolExecutor" for a in node.names
                ):
                    yield ctx.finding(
                        node,
                        self.code,
                        "import of ProcessPoolExecutor; route process "
                        "parallelism through repro.core.engine "
                        "(run_chunked / partition_lattice)",
                    )
            elif (
                isinstance(node, ast.Attribute)
                and node.attr == "ProcessPoolExecutor"
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    "attribute access to ProcessPoolExecutor; route process "
                    "parallelism through repro.core.engine "
                    "(run_chunked / partition_lattice)",
                )
