"""RR110 — realization arrays must not be rebuilt inside loops.

The §III-C realization arrays are purely combinatorial: the bits depend
on side topology, capacities, ports and the assignment set — never on
failure probabilities.  A ``build_side_array`` /
``build_realization_arrays`` / ``build_side_array_parallel`` call inside
a loop (the rebuild-per-sweep-point anti-pattern) therefore repeats
``|D| * 2^{m_side}`` max-flow solves whose answers cannot change.
Inside :mod:`repro.core`, repeated builds must go through the
content-addressed cache (:func:`repro.core.sweep.cached_side_array` with
an :class:`~repro.core.sweep.ArrayCache`) — or carry a
``# repro: noqa[RR110] <why>`` justifying why the rebuild is real work
(e.g. the topology or assignment set genuinely changes per iteration).

The rule flags builder calls whose call site sits inside a ``for`` /
``while`` body (without descending into nested function scopes) or
inside a comprehension.  Calls at straight-line function scope — build
once, use many times — are the sanctioned shape.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["UncachedArrayRebuild"]

#: The §III-C builders whose output is loop-invariant for a fixed split.
_BUILDERS = frozenset(
    {"build_side_array", "build_realization_arrays", "build_side_array_parallel"}
)

_COMPREHENSIONS = (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)


def _builder_calls(nodes: Iterator[ast.AST]) -> Iterator[tuple[ast.Call, str]]:
    for node in nodes:
        if isinstance(node, ast.Call):
            name = Rule.terminal_name(node.func)
            if name in _BUILDERS:
                yield node, name


@register_rule
class UncachedArrayRebuild(Rule):
    code = "RR110"
    name = "uncached-array-rebuild"
    rationale = (
        "rebuilding a realization array inside a loop repeats |D| * 2^m "
        "max-flow solves whose bits cannot change; route repeated builds "
        "through repro.core.sweep.cached_side_array / ArrayCache (or noqa "
        "with justification)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("core")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: set[tuple[int, int]] = set()
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.For, ast.AsyncFor, ast.While)):
                sites = _builder_calls(Rule.walk_scope(node.body + node.orelse))
            elif isinstance(node, _COMPREHENSIONS):
                sites = _builder_calls(ast.walk(node))
            else:
                continue
            for call, name in sites:
                site = (call.lineno, call.col_offset)
                if site in seen:
                    continue
                seen.add(site)
                yield ctx.finding(
                    call,
                    self.code,
                    f"{name}() called inside a loop; the realization bits are "
                    "loop-invariant for a fixed split — hoist the build or go "
                    "through repro.core.sweep.cached_side_array",
                )
