"""Rule implementations.

Importing this package registers every rule with
:mod:`repro.analysis.registry`; the modules group related invariants:

* :mod:`~repro.analysis.rules.randomness` — RR101
* :mod:`~repro.analysis.rules.numerics` — RR102, RR103
* :mod:`~repro.analysis.rules.hygiene` — RR104, RR105, RR106
* :mod:`~repro.analysis.rules.instrumentation` — RR107
* :mod:`~repro.analysis.rules.parallelism` — RR108
* :mod:`~repro.analysis.rules.lattices` — RR109
* :mod:`~repro.analysis.rules.caching` — RR110
"""

from __future__ import annotations

from repro.analysis.rules import (
    caching,
    hygiene,
    instrumentation,
    lattices,
    numerics,
    parallelism,
    randomness,
)

__all__ = [
    "caching",
    "hygiene",
    "instrumentation",
    "lattices",
    "numerics",
    "parallelism",
    "randomness",
]
