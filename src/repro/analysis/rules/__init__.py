"""Rule implementations.

Importing this package registers every rule with
:mod:`repro.analysis.registry`; the modules group related invariants:

Syntax tier (per-node):

* :mod:`~repro.analysis.rules.randomness` — RR101
* :mod:`~repro.analysis.rules.numerics` — RR102, RR103
* :mod:`~repro.analysis.rules.hygiene` — RR104, RR105, RR106
* :mod:`~repro.analysis.rules.instrumentation` — RR107
* :mod:`~repro.analysis.rules.parallelism` — RR108
* :mod:`~repro.analysis.rules.lattices` — RR109
* :mod:`~repro.analysis.rules.caching` — RR110
* :mod:`~repro.analysis.rules.serving` — RR113
* :mod:`~repro.analysis.rules.estimators` — RR114

Dataflow tier (flow-sensitive, CFG + fixpoint):

* :mod:`~repro.analysis.rules.df_masks` — RR112
* :mod:`~repro.analysis.rules.df_determinism` — RR201
* :mod:`~repro.analysis.rules.df_aliasing` — RR202
* :mod:`~repro.analysis.rules.df_spans` — RR203
* :mod:`~repro.analysis.rules.df_domains` — RR204
* :mod:`~repro.analysis.rules.df_payloads` — RR205
"""

from __future__ import annotations

from repro.analysis.rules import (
    caching,
    df_aliasing,
    df_determinism,
    df_domains,
    df_masks,
    df_payloads,
    df_spans,
    estimators,
    hygiene,
    instrumentation,
    lattices,
    numerics,
    parallelism,
    randomness,
    serving,
)

__all__ = [
    "caching",
    "df_aliasing",
    "df_determinism",
    "df_domains",
    "df_masks",
    "df_payloads",
    "df_spans",
    "estimators",
    "hygiene",
    "instrumentation",
    "lattices",
    "numerics",
    "parallelism",
    "randomness",
    "serving",
]
