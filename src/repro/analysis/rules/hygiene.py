"""RR104 / RR105 / RR106 — exception discipline, defaults, annotations.

RR104: callers are promised that every deliberate library failure is a
:class:`repro.exceptions.ReproError`; a stray ``raise ValueError``
breaks ``except ReproError`` handling in long-running services.  Use
:class:`~repro.exceptions.ReproValueError` (which still *is* a
``ValueError``) for argument validation.

RR105: a mutable default evaluates once at import; aliased mutations
leak across calls — a classic heisenbug generator.

RR106: ``py.typed`` ships with the wheel, so the public surface of the
algorithmic packages must actually carry annotations for downstream
type checking (and our mypy strict gate) to mean anything.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["BuiltinExceptionRaised", "MutableDefaultArgument", "MissingAnnotations"]

#: Builtin exception names whose direct ``raise`` is forbidden inside
#: the library.  ``NotImplementedError`` stays allowed (abstract-method
#: convention), as do the flow-control exceptions.
_FORBIDDEN_BUILTINS = frozenset(
    {
        "ArithmeticError",
        "AssertionError",
        "AttributeError",
        "BaseException",
        "BufferError",
        "EOFError",
        "Exception",
        "IOError",
        "IndexError",
        "KeyError",
        "LookupError",
        "MemoryError",
        "OSError",
        "OverflowError",
        "RuntimeError",
        "StopIteration",
        "TypeError",
        "ValueError",
        "ZeroDivisionError",
    }
)


@register_rule
class BuiltinExceptionRaised(Rule):
    code = "RR104"
    name = "builtin-exception-raised"
    rationale = (
        "library failures must derive from ReproError so callers can catch "
        "the hierarchy; use ReproValueError for argument validation"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("repro")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Raise) or node.exc is None:
                continue
            exc = node.exc
            name = self.terminal_name(exc.func if isinstance(exc, ast.Call) else exc)
            if name in _FORBIDDEN_BUILTINS:
                yield ctx.finding(
                    node,
                    self.code,
                    f"raise of builtin {name}; raise a ReproError subclass "
                    "(e.g. ReproValueError) instead",
                )


#: Call targets producing a fresh mutable container — still mutable
#: state shared across calls when used as a default.
_MUTABLE_FACTORIES = frozenset(
    {"list", "dict", "set", "bytearray", "deque", "defaultdict", "Counter", "OrderedDict"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)):
        return True
    if isinstance(node, ast.Call):
        return Rule.terminal_name(node.func) in _MUTABLE_FACTORIES
    return False


@register_rule
class MutableDefaultArgument(Rule):
    code = "RR105"
    name = "mutable-default-argument"
    rationale = "a mutable default is evaluated once and shared across calls"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
                continue
            defaults = list(node.args.defaults) + [
                d for d in node.args.kw_defaults if d is not None
            ]
            for default in defaults:
                if _is_mutable_default(default):
                    label = getattr(node, "name", "<lambda>")
                    yield ctx.finding(
                        default,
                        self.code,
                        f"mutable default argument in {label}(); "
                        "use None and create the container inside the body",
                    )


@register_rule
class MissingAnnotations(Rule):
    code = "RR106"
    name = "missing-annotations"
    rationale = (
        "py.typed ships with the wheel: the public API of core/, flow/ and "
        "probability/ must be fully annotated for the strict mypy gate"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("core", "flow", "probability")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for func, owner in self._public_functions(ctx.tree):
            skip_first = owner is not None and not self._is_static(func)
            missing = self._missing_parameters(func, skip_first)
            label = func.name if owner is None else f"{owner}.{func.name}"
            if missing:
                yield ctx.finding(
                    func,
                    self.code,
                    f"public function {label}() has unannotated "
                    f"parameter(s): {', '.join(missing)}",
                )
            if func.returns is None:
                yield ctx.finding(
                    func,
                    self.code,
                    f"public function {label}() has no return annotation",
                )

    @staticmethod
    def _is_static(func: ast.FunctionDef | ast.AsyncFunctionDef) -> bool:
        return any(
            Rule.terminal_name(dec) == "staticmethod" for dec in func.decorator_list
        )

    @staticmethod
    def _public_functions(
        tree: ast.Module,
    ) -> Iterator[tuple[ast.FunctionDef | ast.AsyncFunctionDef, str | None]]:
        """Module-level public functions and public methods of
        module-level public classes (underscore names are exempt, which
        also exempts dunder methods)."""
        for node in tree.body:
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if not node.name.startswith("_"):
                    yield node, None
            elif isinstance(node, ast.ClassDef) and not node.name.startswith("_"):
                for item in node.body:
                    if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        if not item.name.startswith("_"):
                            yield item, node.name

    @staticmethod
    def _missing_parameters(
        func: ast.FunctionDef | ast.AsyncFunctionDef, skip_first: bool
    ) -> list[str]:
        positional = list(func.args.posonlyargs) + list(func.args.args)
        if skip_first and positional:
            positional = positional[1:]
        params = positional + list(func.args.kwonlyargs)
        if func.args.vararg is not None:
            params.append(func.args.vararg)
        if func.args.kwarg is not None:
            params.append(func.args.kwarg)
        return [p.arg for p in params if p.annotation is None]
