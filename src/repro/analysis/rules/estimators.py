"""RR114 — no scalar per-sample RNG draws in estimator loops.

The estimator tier's vectorization contract (see
:mod:`repro.core.rare`): randomness is drawn array-at-a-time —
``rng.standard_exponential((batch, m))``, ``rng.random(size=...)`` —
never one scalar per sample inside a Python loop.  A scalar
``rng.random()`` in a sample loop costs a Generator round-trip per
sample (three orders of magnitude over a batched draw at typical
budgets) and couples the stream consumption order to Python control
flow, which makes batched refactors silently change replays.

The rule flags calls of known ``numpy.random.Generator`` drawing
methods on an RNG-named receiver (``rng``, ``*_rng``, ``generator``)
inside a ``for``/``while`` loop in :mod:`repro.core` modules, unless
the call is batched — a ``size=`` keyword, or a positional shape for
the methods whose first parameter is the shape.  Loops that *must*
draw per item (e.g. a sequential DP walk whose conditional
probabilities depend on earlier draws) carry a
``# repro: noqa[RR114] <why>`` with the justification inline.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["ScalarSampleDraw"]

#: Generator methods whose *first positional* parameter is the output
#: shape — any positional argument (or ``size=``) means a batched draw.
_SIZE_FIRST = frozenset(
    {
        "random",
        "standard_exponential",
        "standard_normal",
        "standard_gamma",
        "exponential",
        "bytes",
    }
)

#: Generator methods whose shape only arrives via the ``size=`` keyword;
#: positional arguments are distribution parameters, not shapes.
_SIZE_KW = frozenset(
    {
        "integers",
        "uniform",
        "normal",
        "choice",
        "binomial",
        "poisson",
        "geometric",
        "gamma",
        "beta",
        "permutation",
        "permuted",
    }
)

#: Receiver names treated as a ``numpy.random.Generator``.
_RNG_NAMES = ("rng", "generator")


def _is_rng_receiver(node: ast.AST) -> bool:
    name = Rule.terminal_name(node)
    if name is None:
        return False
    lowered = name.lower()
    return lowered in _RNG_NAMES or lowered.endswith("_rng")


def _is_batched(call: ast.Call) -> bool:
    if any(kw.arg == "size" for kw in call.keywords):
        return True
    method = call.func.attr if isinstance(call.func, ast.Attribute) else ""
    if method in _SIZE_FIRST:
        return bool(call.args)
    return False


def _scalar_draws(loop: ast.For | ast.While) -> Iterator[ast.Call]:
    """Scalar RNG drawing calls anywhere in ``loop``'s own scope."""
    for node in Rule.walk_scope(loop.body + loop.orelse):
        if not isinstance(node, ast.Call):
            continue
        func = node.func
        if not isinstance(func, ast.Attribute):
            continue
        if func.attr not in _SIZE_FIRST and func.attr not in _SIZE_KW:
            continue
        if not _is_rng_receiver(func.value):
            continue
        if not _is_batched(node):
            yield node


@register_rule
class ScalarSampleDraw(Rule):
    code = "RR114"
    name = "scalar-sample-draw"
    rationale = (
        "a per-sample rng.<draw>() inside a loop defeats the estimator "
        "tier's array-at-a-time contract; hoist one batched draw "
        "(size=...) out of the loop (or noqa with justification)"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        return ctx.in_package("core")

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        seen: set[int] = set()
        for node in ast.walk(ctx.tree):
            if not isinstance(node, (ast.For, ast.While)):
                continue
            for call in _scalar_draws(node):
                if id(call) in seen:  # nested loops walk the same body
                    continue
                seen.add(id(call))
                method = call.func.attr  # type: ignore[union-attr]
                yield ctx.finding(
                    call,
                    self.code,
                    f"scalar rng.{method}() drawn once per loop iteration; "
                    "hoist a single batched draw (size=...) out of the loop",
                )
