"""RR112 — mask arrays must be consumed array-at-a-time (dataflow tier).

The realization kernels' hot currency is the uint64 *mask array*: one
word per assignment (or per lattice level), one bit per entity.  Every
primitive a consumer could want — weighting by popcount, per-bit
gather, lattice transposes, packing — exists vectorized in
:mod:`repro.probability.bitset` (``mask_weights``, ``bitplanes``,
``pack_bitplanes``, ``lattice_bitplanes``) or as plain numpy
(``np.bitwise_count``, broadcast shifts).  A per-element Python loop
over such an array re-introduces exactly the interpreter overhead the
bit-parallel kernels exist to remove, and it does so silently: the
result is still correct, just 100-1000x slower at ``2^m`` scale.

The rule tracks mask-array values flow-sensitively from their producers
(:func:`~repro.core.accumulate.restrict_masks`,
:func:`~repro.probability.sampling.sample_alive_masks`,
:func:`~repro.probability.bitset.pack_bitplanes`, a ``.masks``
attribute read, an ``.astype(np.uint64)`` cast) through direct aliases
(slices, views, bitwise arithmetic) and flags any Python-level
per-element iteration over a tracked name: a ``for`` over it, over
``enumerate(...)``/``range(len(...))`` of it, or a comprehension
generator drawing from it.  Rebinding a name to anything that is not
itself a mask array kills the track, and loops over *derived* scalars
(``range(n_bits)``, popcount tables) are out of scope by construction.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.cfg import CFGNode
from repro.analysis.dataflow.fixpoint import DataflowAnalysis, solve_fixpoint
from repro.analysis.dataflow.reaching import call_name, iter_assign_pairs, own_exprs
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["ScalarMaskLoop"]

#: Functions whose return value is a uint64 mask array.
_SOURCE_FUNCTIONS = frozenset(
    {"restrict_masks", "sample_alive_masks", "pack_bitplanes"}
)

#: Attribute reads that hand out a mask array.
_SOURCE_ATTRIBUTES = frozenset({"masks"})

#: ndarray methods that return a view/recast of the receiver — the
#: result is still the same mask words.
_VIEW_METHODS = frozenset({"view", "reshape", "ravel", "copy"})

#: Operators under which mask words stay mask words.
_BITWISE_OPS = (ast.BitAnd, ast.BitOr, ast.BitXor, ast.LShift, ast.RShift, ast.Invert)


def _is_uint64_cast(node: ast.AST) -> bool:
    """``<x>.astype(np.uint64)`` (or ``.astype(numpy.uint64)``)."""
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Attribute)
        and node.func.attr == "astype"
        and len(node.args) == 1
        and Rule.terminal_name(node.args[0]) == "uint64"
    )


def _is_mask_expr(expr: ast.AST, state: frozenset) -> bool:
    """Whether ``expr`` evaluates to a (view of a) tracked mask array.

    Deliberately *not* the conservative any-function-of-taint closure:
    ``mask_weights(masks)`` returns float weights and
    ``np.bitwise_count(masks)`` returns small ints — looping over those
    is a different (and much cheaper) sin.  Only shapes that keep the
    uint64 words intact propagate.
    """
    if isinstance(expr, ast.Name):
        return expr.id in state
    if isinstance(expr, ast.Attribute):
        return expr.attr in _SOURCE_ATTRIBUTES
    if isinstance(expr, ast.Subscript):
        return _is_mask_expr(expr.value, state)
    if isinstance(expr, ast.BinOp) and isinstance(expr.op, _BITWISE_OPS):
        return _is_mask_expr(expr.left, state) or _is_mask_expr(expr.right, state)
    if isinstance(expr, ast.UnaryOp) and isinstance(expr.op, ast.Invert):
        return _is_mask_expr(expr.operand, state)
    if _is_uint64_cast(expr):
        return True
    if isinstance(expr, ast.Call):
        if call_name(expr) in _SOURCE_FUNCTIONS:
            return True
        if (
            isinstance(expr.func, ast.Attribute)
            and expr.func.attr in _VIEW_METHODS
        ):
            return _is_mask_expr(expr.func.value, state)
    return False


class _MaskArrays(DataflowAnalysis[frozenset]):
    """Forward may-analysis: names currently bound to a mask array."""

    direction = "forward"

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None or isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return state
        result = set(state)
        for names, value in iter_assign_pairs(stmt):
            if isinstance(stmt, ast.AugAssign):
                continue  # ``x &= m`` mutates in place; x keeps its status
            if isinstance(stmt, (ast.For, ast.AsyncFor)):
                continue  # the loop variable holds one *element*, not the array
            if _is_mask_expr(value, state):
                result.update(names)
            else:
                result.difference_update(names)
        return frozenset(result)


def _loop_witness(iterable: ast.expr, state: frozenset) -> tuple[str, str] | None:
    """``(name, how)`` when ``iterable`` draws elements from a tracked array.

    Recognises the three per-element idioms: the array itself (a name,
    a ``.masks`` read or a producer call inline), ``enumerate(array)``,
    and ``range(len(array))`` (indexed access).
    """
    if isinstance(iterable, ast.Name) and iterable.id in state:
        return iterable.id, "for loop over"
    if not isinstance(iterable, ast.Call) and _is_mask_expr(iterable, state):
        return ast.unparse(iterable), "for loop over"
    if isinstance(iterable, ast.Call) and (
        call_name(iterable) in _SOURCE_FUNCTIONS or _is_uint64_cast(iterable)
    ):
        return f"{ast.unparse(iterable.func)}(...)", "for loop over"
    if isinstance(iterable, ast.Call):
        name = call_name(iterable)
        if name == "enumerate" and iterable.args:
            arg = iterable.args[0]
            if isinstance(arg, ast.Name) and arg.id in state:
                return arg.id, "enumerate() over"
        if name == "range" and len(iterable.args) == 1:
            arg = iterable.args[0]
            if (
                isinstance(arg, ast.Call)
                and call_name(arg) == "len"
                and arg.args
                and isinstance(arg.args[0], ast.Name)
                and arg.args[0].id in state
            ):
                return arg.args[0].id, "range(len()) over"
    return None


@register_rule
class ScalarMaskLoop(Rule):
    code = "RR112"
    name = "scalar-mask-loop"
    tier = "dataflow"
    rationale = (
        "per-element Python loops over uint64 mask arrays forfeit the "
        "bit-parallel kernels; use the vectorized bitset primitives "
        "(mask_weights, bitplanes, pack_bitplanes, np.bitwise_count) "
        "or whole-array numpy expressions"
    )

    def applies_to(self, ctx: ModuleContext) -> bool:
        # bitset.py is the vocabulary itself: its per-bit assembly loops
        # (over range(n_bits), never over elements) are the primitives
        # everyone else is being pointed at.
        return ctx.in_package("core", "probability") and not ctx.path.endswith(
            "bitset.py"
        )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, _func, cfg in ctx.function_cfgs():
            states = solve_fixpoint(cfg, _MaskArrays())
            for node in cfg.nodes:
                stmt = node.stmt
                if stmt is None or isinstance(
                    stmt, (ast.FunctionDef, ast.AsyncFunctionDef)
                ):
                    continue
                state = states[node.index][0]
                yield from self._check_stmt(ctx, qualname, stmt, state)

    def _check_stmt(
        self, ctx: ModuleContext, qualname: str, stmt: ast.AST, state: frozenset
    ) -> Iterator[Finding]:
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            witness = _loop_witness(stmt.iter, state)
            if witness is not None:
                yield self._finding(ctx, qualname, stmt, *witness)
        for part in own_exprs(stmt):
            for sub in ast.walk(part):
                if not isinstance(
                    sub, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
                ):
                    continue
                for gen in sub.generators:
                    witness = _loop_witness(gen.iter, state)
                    if witness is not None:
                        name, _how = witness
                        yield self._finding(
                            ctx, qualname, sub, name, "comprehension over"
                        )

    def _finding(
        self, ctx: ModuleContext, qualname: str, node: ast.AST, name: str, how: str
    ) -> Finding:
        return ctx.finding(
            node,
            self.code,
            f"{qualname}(): per-element {how} uint64 mask array {name!r}; "
            "use the vectorized bitset primitives (mask_weights, bitplanes, "
            "pack_bitplanes, np.bitwise_count) or a whole-array numpy "
            "expression",
        )
