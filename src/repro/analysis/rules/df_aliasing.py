"""RR202 — cache-owned arrays must not be mutated in place (dataflow tier).

The content-addressed :class:`~repro.core.sweep.ArrayCache`, the
:func:`~repro.core.sweep.cached_side_array` fast path, and the memoised
:func:`~repro.probability.bitset.popcount_array` table all hand the
*same* numpy buffer to every caller.  An in-place store through any
alias silently poisons every later cache hit — the worst possible
failure mode for a bit-identity project, because the corruption only
shows up at the *next* sweep point.  The rule tracks direct aliases
(plain copies, slices, views) of cache-owned arrays flow-sensitively
and flags in-place mutation through any of them; ``.copy()`` (or any
value-producing operation) breaks the alias and is the sanctioned way
to get a writable array.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.analysis.context import ModuleContext
from repro.analysis.dataflow.cfg import CFGNode
from repro.analysis.dataflow.fixpoint import DataflowAnalysis, solve_fixpoint
from repro.analysis.dataflow.reaching import call_name, iter_assign_pairs, own_exprs
from repro.analysis.findings import Finding
from repro.analysis.registry import Rule, register_rule

__all__ = ["CacheAliasMutation"]

#: Functions whose return value is a shared, cache-owned buffer.
_SOURCE_FUNCTIONS = frozenset({"cached_side_array", "popcount_array"})

#: ndarray methods that return a *view* of the receiver (alias survives).
_VIEW_METHODS = frozenset({"view", "reshape", "ravel", "transpose", "squeeze"})

#: ndarray methods that mutate the receiver in place.
_MUTATING_METHODS = frozenset(
    {"fill", "sort", "partition", "itemset", "resize", "byteswap", "setfield"}
)


def _is_cache_get(node: ast.AST) -> bool:
    """``<cache>.get(key, size)`` — the two-argument ArrayCache read
    (dict-style one-argument ``.get(key)`` probes are not arrays)."""
    if not isinstance(node, ast.Call) or len(node.args) != 2:
        return False
    func = node.func
    return (
        isinstance(func, ast.Attribute)
        and func.attr == "get"
        and isinstance(func.value, ast.Name)
        and "cache" in func.value.id.lower()
    )


def _is_source(node: ast.AST) -> bool:
    return (
        isinstance(node, ast.Call) and call_name(node) in _SOURCE_FUNCTIONS
    ) or _is_cache_get(node)


def _alias_base(expr: ast.expr) -> str | None:
    """The root variable name when ``expr`` is a direct alias chain.

    Covers the shapes that share memory with the root: the bare name, a
    subscript/slice, ``.T``, and the view-producing ndarray methods.
    Anything else (``.copy()``, ``.astype()``, arithmetic, ``np.where``)
    yields a fresh array and returns ``None``.
    """
    if isinstance(expr, ast.Name):
        return expr.id
    if isinstance(expr, ast.Subscript):
        return _alias_base(expr.value)
    if isinstance(expr, ast.Attribute) and expr.attr == "T":
        return _alias_base(expr.value)
    if (
        isinstance(expr, ast.Call)
        and isinstance(expr.func, ast.Attribute)
        and expr.func.attr in _VIEW_METHODS
    ):
        return _alias_base(expr.func.value)
    return None


class _DirectAlias(DataflowAnalysis[frozenset]):
    """Forward may-analysis: names that alias a cache-owned buffer."""

    direction = "forward"

    def bottom(self) -> frozenset:
        return frozenset()

    def initial(self) -> frozenset:
        return frozenset()

    def join(self, a: frozenset, b: frozenset) -> frozenset:
        return a | b

    def transfer(self, node: CFGNode, state: frozenset) -> frozenset:
        stmt = node.stmt
        if stmt is None or isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
            return state
        result = set(state)
        for names, value in iter_assign_pairs(stmt):
            if isinstance(stmt, ast.AugAssign):
                continue  # mutation, not rebinding — judged as a sink
            base = _alias_base(value)
            if _is_source(value) or (base is not None and base in state):
                result.update(names)
            else:
                result.difference_update(names)
        return frozenset(result)


@register_rule
class CacheAliasMutation(Rule):
    code = "RR202"
    name = "cache-alias-mutation"
    tier = "dataflow"
    rationale = (
        "arrays from ArrayCache.get / cached_side_array / popcount_array are "
        "shared buffers; mutating one in place poisons every later cache hit "
        "— call .copy() first to get a private writable array"
    )

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for qualname, _func, cfg in ctx.function_cfgs():
            if not any(
                _is_source(sub)
                for node in cfg.nodes
                if node.stmt is not None
                for sub in ast.walk(node.stmt)
            ):
                continue
            states = solve_fixpoint(cfg, _DirectAlias())
            for node in cfg.nodes:
                stmt = node.stmt
                if stmt is None or isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    continue
                state = states[node.index][0]
                yield from self._check_stmt(ctx, qualname, stmt, state)

    def _check_stmt(
        self, ctx: ModuleContext, qualname: str, stmt: ast.AST, state: frozenset
    ) -> Iterator[Finding]:
        if isinstance(stmt, ast.Assign):
            for target in stmt.targets:
                base = _alias_base(target) if isinstance(target, ast.Subscript) else None
                if base is not None and base in state:
                    yield self._finding(ctx, qualname, stmt, base, "subscript store into")
        elif isinstance(stmt, ast.AugAssign):
            base = _alias_base(stmt.target)
            if base is not None and base in state:
                yield self._finding(ctx, qualname, stmt, base, "augmented assignment to")
        for call in (
            sub for part in own_exprs(stmt) for sub in ast.walk(part)
        ):
            if not isinstance(call, ast.Call):
                continue
            func = call.func
            if (
                isinstance(func, ast.Attribute)
                and func.attr in _MUTATING_METHODS
            ):
                base = _alias_base(func.value)
                if base is not None and base in state:
                    yield self._finding(
                        ctx, qualname, call, base, f"in-place .{func.attr}() on"
                    )
            for keyword in call.keywords:
                if (
                    keyword.arg == "out"
                    and isinstance(keyword.value, ast.Name)
                    and keyword.value.id in state
                ):
                    yield self._finding(
                        ctx, qualname, call, keyword.value.id, "out= write into"
                    )

    def _finding(
        self, ctx: ModuleContext, qualname: str, node: ast.AST, name: str, what: str
    ) -> Finding:
        return ctx.finding(
            node,
            self.code,
            f"{qualname}(): {what} {name!r}, which aliases a cache-owned "
            "array; the shared buffer would poison later cache hits — "
            "take a .copy() before mutating",
        )
