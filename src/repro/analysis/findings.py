"""The unit of lint output: one finding at one source location."""

from __future__ import annotations

from dataclasses import asdict, dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Orders by location first so that reporter output follows the file
    top to bottom regardless of which rule fired.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def render(self) -> str:
        """The canonical one-line text form ``path:line:col: CODE msg``."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

    def to_dict(self) -> dict[str, object]:
        """JSON-serializable form, used by the JSON reporter."""
        return asdict(self)
