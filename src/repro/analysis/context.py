"""Per-module analysis context shared by every rule.

A :class:`ModuleContext` bundles the parsed AST, the raw source, and the
path metadata rules use for scoping (e.g. RR102 only applies inside the
``core`` and ``probability`` packages).  Parsing happens once per file;
every rule then walks the same tree.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import PurePath
from typing import TYPE_CHECKING

from repro.analysis.findings import Finding
from repro.exceptions import AnalysisError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.analysis.dataflow.cfg import CFG

__all__ = ["ModuleContext"]


@dataclass
class ModuleContext:
    """Everything a rule needs to inspect one source module."""

    path: str
    source: str
    tree: ast.Module
    #: Path components, used for package scoping (``("src", "repro", "core", ...)``).
    parts: tuple[str, ...] = field(default_factory=tuple)
    #: Memoized CFGs, built on first dataflow-rule access (one build, five rules).
    _cfgs: "list[tuple[str, ast.AST, CFG]] | None" = field(
        default=None, repr=False, compare=False
    )

    @classmethod
    def from_source(cls, source: str, path: str = "<string>") -> "ModuleContext":
        """Parse ``source`` into a context; raises :class:`AnalysisError`
        (carrying the original ``SyntaxError``) on unparseable input."""
        try:
            tree = ast.parse(source, filename=path)
        except SyntaxError as exc:
            raise AnalysisError(f"{path}: cannot parse: {exc.msg} (line {exc.lineno})") from exc
        parts = tuple(p for p in PurePath(path).parts if p not in (".", ".."))
        return cls(path=path, source=source, tree=tree, parts=parts)

    def in_package(self, *names: str) -> bool:
        """Whether any path component equals one of ``names``.

        Package membership is judged from the path so that fixture trees
        (``tests/analysis/fixtures/repro/core/...``) scope exactly like
        the real source tree (``src/repro/core/...``).
        """
        wanted = set(names)
        return any(part in wanted for part in self.parts)

    def function_cfgs(self) -> "list[tuple[str, ast.AST, CFG]]":
        """``(qualname, def node, CFG)`` for every function in the module.

        Built lazily and memoized: all five dataflow rules share one CFG
        construction pass per module instead of five.
        """
        if self._cfgs is None:
            from repro.analysis.dataflow.cfg import function_cfgs

            self._cfgs = list(function_cfgs(self.tree))
        return self._cfgs

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        """Build a :class:`Finding` anchored at ``node``'s location."""
        return Finding(
            path=self.path,
            line=getattr(node, "lineno", 0),
            column=getattr(node, "col_offset", -1) + 1,
            code=code,
            message=message,
        )
