"""The analysis driver: file discovery, rule dispatch, suppression.

The engine is deliberately small: parse each module once, run every
selected rule whose scope matches, drop findings silenced by
``# repro: noqa`` comments, and hand the rest to a reporter.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.analysis.context import ModuleContext
from repro.analysis.findings import Finding
from repro.analysis.registry import TIERS, Rule, all_rules
from repro.analysis.suppressions import SuppressionIndex
from repro.exceptions import AnalysisError, ReproValueError

__all__ = ["AnalysisReport", "analyze_paths", "analyze_source", "iter_python_files"]

#: Directories never descended into during discovery.
_SKIP_DIRS = frozenset({"__pycache__", ".git", ".mypy_cache", ".ruff_cache", ".pytest_cache"})


@dataclass
class AnalysisReport:
    """Outcome of one analysis run."""

    findings: list[Finding] = field(default_factory=list)
    files_checked: int = 0
    #: Files that failed to parse, as ``(path, message)`` pairs.
    parse_errors: list[tuple[str, str]] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when no findings and no parse errors."""
        return not self.findings and not self.parse_errors

    def counts_by_code(self) -> dict[str, int]:
        """Finding tally per rule code (sorted by code)."""
        counts: dict[str, int] = {}
        for finding in self.findings:
            counts[finding.code] = counts.get(finding.code, 0) + 1
        return dict(sorted(counts.items()))

    def exit_code(self) -> int:
        """CLI contract: 0 clean, 1 findings, 2 parse/usage errors."""
        if self.parse_errors:
            return 2
        return 1 if self.findings else 0


def _select_rules(
    select: Iterable[str] | None,
    ignore: Iterable[str] | None,
    tier: str = "all",
) -> list[Rule]:
    if tier not in (*TIERS, "all"):
        raise AnalysisError(f"unknown tier {tier!r} (expected one of {TIERS + ('all',)})")
    rules = all_rules()
    if tier != "all":
        rules = [r for r in rules if r.tier == tier]
    if select is not None:
        wanted = {c.upper() for c in select}
        unknown = wanted - {r.code for r in all_rules()}
        if unknown:
            raise AnalysisError(f"unknown rule code(s) in --select: {sorted(unknown)}")
        rules = [r for r in rules if r.code in wanted]
    if ignore is not None:
        dropped = {c.upper() for c in ignore}
        unknown = dropped - {r.code for r in all_rules()}
        if unknown:
            raise AnalysisError(f"unknown rule code(s) in --ignore: {sorted(unknown)}")
        rules = [r for r in rules if r.code not in dropped]
    if not rules:
        # A "clean" run with zero rules active is a footgun (a typo'd
        # --select would mask every finding); refuse instead.
        raise AnalysisError("rule selection left no rules to run")
    return rules


def analyze_source(
    source: str,
    path: str = "<string>",
    *,
    rules: Sequence[Rule] | None = None,
) -> list[Finding]:
    """Run rules over one in-memory module; findings come back sorted.

    Raises :class:`AnalysisError` when the source does not parse.
    """
    ctx = ModuleContext.from_source(source, path)
    index = SuppressionIndex.from_source(source)
    active = list(rules) if rules is not None else all_rules()
    findings: list[Finding] = []
    for rule in active:
        if not rule.applies_to(ctx):
            continue
        for finding in rule.check(ctx):
            if not index.suppresses(finding):
                findings.append(finding)
    return sorted(findings)


def iter_python_files(paths: Sequence[str]) -> list[str]:
    """Expand files and directories into a sorted list of ``.py`` files.

    Raises :class:`ReproValueError` for a path that does not exist or a
    scan that matches zero Python files — a typo'd path silently
    scanning nothing would defeat a CI gate.
    """
    result: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            result.append(path)
        elif os.path.isdir(path):
            for root, dirnames, filenames in os.walk(path):
                dirnames[:] = sorted(d for d in dirnames if d not in _SKIP_DIRS)
                for filename in sorted(filenames):
                    if filename.endswith(".py"):
                        result.append(os.path.join(root, filename))
        else:
            raise ReproValueError(f"path does not exist: {path}")
    if paths and not result:
        raise ReproValueError(
            f"no Python files found under: {', '.join(paths)}"
        )
    return sorted(dict.fromkeys(result))


def analyze_paths(
    paths: Sequence[str],
    *,
    select: Iterable[str] | None = None,
    ignore: Iterable[str] | None = None,
    tier: str = "all",
) -> AnalysisReport:
    """Analyze every ``.py`` file under ``paths``."""
    rules = _select_rules(select, ignore, tier)
    report = AnalysisReport()
    for filename in iter_python_files(paths):
        try:
            with open(filename, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as exc:
            report.parse_errors.append((filename, f"cannot read: {exc}"))
            continue
        report.files_checked += 1
        try:
            report.findings.extend(analyze_source(source, filename, rules=rules))
        except AnalysisError as exc:
            report.parse_errors.append((filename, str(exc)))
    report.findings.sort()
    return report
