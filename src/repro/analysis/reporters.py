"""Reporters: render an :class:`AnalysisReport` for humans or machines.

``text`` is the terminal format (one finding per line plus a summary);
``json`` is a stable machine format for CI annotation tooling.
"""

from __future__ import annotations

import json

from repro.analysis.engine import AnalysisReport
from repro.exceptions import AnalysisError

__all__ = ["render_report", "render_text", "render_json"]

#: Bumped whenever the JSON shape changes incompatibly.
JSON_SCHEMA_VERSION = 1


def render_text(report: AnalysisReport) -> str:
    """One line per finding, then parse errors, then a summary line."""
    lines = [finding.render() for finding in report.findings]
    for path, message in report.parse_errors:
        lines.append(f"{path}: PARSE-ERROR {message}")
    counts = report.counts_by_code()
    if report.clean:
        lines.append(f"checked {report.files_checked} file(s): clean")
    else:
        tally = ", ".join(f"{code}×{n}" for code, n in counts.items()) or "none"
        lines.append(
            f"checked {report.files_checked} file(s): "
            f"{len(report.findings)} finding(s) [{tally}], "
            f"{len(report.parse_errors)} parse error(s)"
        )
    return "\n".join(lines)


def render_json(report: AnalysisReport) -> str:
    """Stable JSON document; keys are part of the CI contract."""
    payload = {
        "version": JSON_SCHEMA_VERSION,
        "files_checked": report.files_checked,
        "findings": [finding.to_dict() for finding in report.findings],
        "counts_by_code": report.counts_by_code(),
        "parse_errors": [
            {"path": path, "message": message} for path, message in report.parse_errors
        ],
        "exit_code": report.exit_code(),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def render_report(report: AnalysisReport, fmt: str = "text") -> str:
    """Dispatch on ``fmt`` (``"text"`` or ``"json"``)."""
    if fmt == "text":
        return render_text(report)
    if fmt == "json":
        return render_json(report)
    raise AnalysisError(f"unknown report format {fmt!r}")
